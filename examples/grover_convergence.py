"""Watching Grover converge: the paper's Fig. 12 as ASCII art.

Runs qTKP's search (k = 2, T = 4, unique solution) on the Fig. 1 graph
and draws the probability distribution over all 64 subsets after each
iteration, plus the exact/bounded error-probability trajectory.

Run with:  python examples/grover_convergence.py
"""

from __future__ import annotations

from repro.analysis import bound_error
from repro.core.oracle import KCplexOracle
from repro.datasets import figure1_graph
from repro.grover import PhaseOracleGrover

BAR_WIDTH = 56


def bar(probability: float, peak: float) -> str:
    filled = int(round(BAR_WIDTH * probability / peak)) if peak else 0
    return "#" * filled


def main() -> None:
    graph = figure1_graph()
    oracle = KCplexOracle(graph.complement(), k=2, threshold=4)
    engine = PhaseOracleGrover(graph.num_vertices, oracle.predicate)
    solution = next(iter(engine.marked))
    run = engine.run(6, snapshot_at=range(7))

    print(
        f"searching {1 << graph.num_vertices} subsets for a 2-plex of "
        f"size >= 4; M = {engine.num_marked} solution "
        f"({sorted(v + 1 for v in graph.bitmask_to_subset(solution))})\n"
    )
    for iteration in range(7):
        amps = run.amplitude_snapshots[iteration]
        probs = amps**2
        peak = float(probs.max())
        p_sol = float(probs[solution])
        print(
            f"iteration {iteration}:  P(solution) = {p_sol:7.4f}   "
            f"P(any other) = {float(probs.sum()) - p_sol:7.4f}"
        )
        print(f"  solution  |{bar(p_sol, peak)}")
        other = float(probs[(solution + 1) % 64])
        print(f"  a non-sol |{bar(other, peak)}")

    print(
        "\nerror probability vs the paper's pi^2/(4I)^2 reference "
        "(a bound only at the optimal I = 6):"
    )
    for iteration in range(1, 7):
        exact = 1.0 - run.history[iteration]
        print(
            f"  I={iteration}:  exact {exact:9.6f}   bound "
            f"{bound_error(iteration):9.6f}"
        )
    print(
        "\nmeasuring now collapses to the solution with probability "
        f"{run.success_probability:.4%}"
    )


if __name__ == "__main__":
    main()
