"""Tuning a quantum annealer for MKP: Delta-t, R, and chains.

Reproduces the paper's Section V parameter studies in miniature on the
D_15_70 instance:

1. annealing-time split: with a fixed budget t = Delta-t * s, is it
   better to take many short anneals or a few long ones?
2. penalty weight: how hard should the k-plex constraint be enforced?
3. embedding cost: what do chains look like, and what happens to the
   QUBO as the graph grows?

Run with:  python examples/annealer_tuning.py
"""

from __future__ import annotations

from repro.annealing import SimulatedQPUSampler, chimera_graph
from repro.core import build_mkp_qubo, qamkp
from repro.datasets import chain_experiment_graph, load_instance

K = 3
BUDGET_US = 1000.0


def main() -> None:
    graph = load_instance("D_15_70")
    qpu = SimulatedQPUSampler(hardware=chimera_graph(16), max_call_time_us=None)

    # --- 1. annealing-time split -----------------------------------------
    print(f"budget {BUDGET_US:.0f} us split into shots of Delta-t each:")
    for delta_t in (1.0, 10.0, 50.0, 200.0):
        result = qamkp(
            graph, K, runtime_us=BUDGET_US, delta_t_us=delta_t,
            solver="qpu", qpu=qpu, seed=3,
        )
        shots = result.info["num_reads"]
        print(
            f"  Delta-t={delta_t:>5.0f} us  ({shots:>4} shots)  "
            f"cost={result.cost:>8.1f}"
        )
    print("  -> many short anneals win: spend runtime on shots, not anneal length")

    # --- 2. penalty weight -------------------------------------------------
    print("\npenalty weight R (must exceed 1 for correctness):")
    for penalty in (1.1, 2.0, 4.0, 8.0):
        result = qamkp(
            graph, K, penalty=penalty, runtime_us=BUDGET_US,
            solver="qpu", qpu=qpu, seed=3,
        )
        print(f"  R={penalty:>3}:  cost={result.cost:>8.1f}")
    print("  -> keep R just above 1; the squared penalty is already severe")

    # --- 3. embedding growth ------------------------------------------------
    print("\nembedding growth with graph size (k=3, density 0.7):")
    print(f"  {'n':>3}  {'variables':>9}  {'physical qubits':>15}  {'avg chain':>9}")
    for n in (10, 20, 30, 43):
        model = build_mkp_qubo(chain_experiment_graph(n), K)
        emb = qpu.embed(model.bqm)
        print(
            f"  {n:>3}  {model.num_variables:>9}  "
            f"{emb.num_physical_qubits:>15}  {emb.average_chain_length:>9.1f}"
        )
    print(
        "  -> variables grow O(n log n); chains grow too, which is what\n"
        "     eventually limits the annealer's solution quality"
    )


if __name__ == "__main__":
    main()
