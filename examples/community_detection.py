"""Overlapping community detection via maximal k-plex enumeration.

The paper motivates MKP with community detection; in practice analysts
rarely want only the single largest community — they enumerate all
maximal cohesive groups and study their overlap structure.  This
example plants three overlapping communities in a noisy graph, lists
every maximal 2-plex above a size floor, and recovers the planted
structure.

Run with:  python examples/community_detection.py
"""

from __future__ import annotations

import random

from repro.graphs import Graph
from repro.kplex import enumerate_maximal_kplexes, maximum_connected_kplex


def build_network(seed: int = 4) -> tuple[Graph, list[set[int]]]:
    """Three overlapping near-cliques (sizes 5, 5, 4) plus noise."""
    communities = [
        {0, 1, 2, 3, 4},
        {4, 5, 6, 7, 8},      # shares member 4 with the first
        {8, 9, 10, 11},       # shares member 8 with the second
    ]
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    for community in communities:
        members = sorted(community)
        pairs = [
            (u, v) for i, u in enumerate(members) for v in members[i + 1:]
        ]
        # Drop one intra-community tie per community: real data is noisy.
        dropped = rng.choice(pairs)
        edges.update(p for p in pairs if p != dropped)
    # Sparse random noise between communities.
    for _ in range(4):
        u, v = rng.sample(range(12), 2)
        edges.add((min(u, v), max(u, v)))
    return Graph(12, sorted(edges)), communities


def main() -> None:
    graph, planted = build_network()
    print(
        f"network: {graph.num_vertices} members, {graph.num_edges} ties; "
        f"{len(planted)} planted communities\n"
    )

    print("maximal 2-plexes of size >= 4:")
    found: list[frozenset[int]] = []
    for plex in enumerate_maximal_kplexes(graph, 2, min_size=4):
        found.append(plex)
        print(f"  size {len(plex)}: {sorted(plex)}")

    # Every planted community appears inside some detected plex.
    for community in planted:
        assert any(community <= plex or plex <= community or
                   len(community & plex) >= len(community) - 1
                   for plex in found), community
    print("\nall planted communities recovered (up to one noisy member)")

    core = maximum_connected_kplex(graph, 2)
    print(
        f"\nlargest connected 2-plex: size {core.size} — {sorted(core.subset)}"
    )
    # Overlap structure of the three largest communities: the shared
    # members are exactly the planted bridge vertices.
    top = sorted(found, key=len, reverse=True)[:3]
    for i, a in enumerate(top):
        for b in top[i + 1:]:
            if a & b:
                print(
                    f"communities {sorted(a)} and {sorted(b)} "
                    f"share {sorted(a & b)}"
                )


if __name__ == "__main__":
    main()
