"""Anatomy of the qTKP oracle, drawn gate by gate.

Builds the k-cplex oracle for a 3-vertex path graph — small enough to
draw — and walks through the paper's four components: graph encoding,
degree counting, degree comparison, and size determination.  Ends with
the resource budget of the same oracle on the paper's Fig. 1 graph and
the full MPS run that validates it.

Run with:  python examples/oracle_anatomy.py
"""

from __future__ import annotations

from repro.core.oracle import KCplexOracle
from repro.datasets import figure1_graph
from repro.graphs import Graph
from repro.quantum import draw_circuit

K = 2
THRESHOLD = 2


def main() -> None:
    # A path v1 - v2 - v3; its complement has the single edge (v1, v3).
    graph = Graph(3, [(0, 1), (1, 2)])
    oracle = KCplexOracle(graph.complement(), K, THRESHOLD)

    print(
        f"graph: path on 3 vertices; searching for a {K}-plex of size "
        f">= {THRESHOLD}\n"
        f"complement edges: {sorted(graph.complement().edges)}\n"
    )
    print(
        f"U_check uses {oracle.num_qubits} qubits and "
        f"{oracle.u_check.num_gates} gates:\n"
    )
    print(draw_circuit(oracle.u_check))

    print("\ncomponent budget (U_check + uncompute + mark):")
    costs = oracle.component_costs()
    for name, value in (
        ("graph encoding", costs.encode),
        ("degree counting", costs.degree_count),
        ("degree comparison", costs.degree_compare),
        ("size determination", costs.size_check),
        ("marking Toffoli", costs.mark),
    ):
        print(f"  {name:<20} {value:>4} gates")

    print("\nthe same oracle on the paper's Fig. 1 graph:")
    big = KCplexOracle(figure1_graph().complement(), 2, 4)
    big_costs = big.component_costs()
    print(
        f"  {big.num_qubits} qubits, {big_costs.total} gates per call; "
        "degree counting takes "
        f"{100 * big_costs.shares()['degree_count']:.0f}% of the checking work"
    )
    print(
        "\nevery one of those gates is X-family, so the whole circuit is\n"
        "verified bit-exactly against the k-plex predicate (see\n"
        "tests/properties/test_oracle_properties.py) and runs on the MPS\n"
        "simulator at full width (benchmarks/test_mps_validation.py)."
    )


if __name__ == "__main__":
    main()
