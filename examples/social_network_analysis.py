"""Community cores in a synthetic social network.

The paper motivates MKP with social network analysis: cliques are too
brittle for real, noisy friendship data, while k-plexes tolerate each
member missing up to k - 1 ties.  This example builds a scale-free
"collaboration network" (preferential attachment, like co-authorship
graphs), then:

1. finds the maximum k-plex for k = 1..3 and shows how relaxation
   grows the detected community core;
2. applies core-truss co-pruning first, showing how reduction makes the
   instance small enough for the gate-based pipeline;
3. runs qMKP on the reduced graph and cross-checks the classical answer.

Run with:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs import barabasi_albert_graph, co_prune
from repro.kplex import greedy_kplex, is_kplex, maximum_kplex
from repro.core import qmkp

N_PEOPLE = 40


def main() -> None:
    network = barabasi_albert_graph(N_PEOPLE, m=3, seed=11)
    print(
        f"collaboration network: {network.num_vertices} people, "
        f"{network.num_edges} ties, max degree {network.max_degree()}"
    )

    # --- 1. relaxation widens the community core -------------------------
    print("\ncommunity cores by cohesion level:")
    for k in (1, 2, 3):
        core = maximum_kplex(network, k)
        members = ", ".join(f"p{v}" for v in sorted(core.subset))
        print(f"  k={k}: size {core.size}  [{members}]")
        assert is_kplex(network, core.subset, k)

    # --- 2. reduce, then go quantum --------------------------------------
    k = 2
    seed_plex = greedy_kplex(network, k)
    print(f"\ngreedy lower bound: size {len(seed_plex)}")
    reduced = co_prune(network, k, lower_bound=len(seed_plex))
    print(
        f"co-pruning with that bound: {network.num_vertices} -> "
        f"{reduced.graph.num_vertices} vertices, "
        f"{network.num_edges} -> {reduced.graph.num_edges} ties"
    )

    if reduced.graph.num_vertices == 0:
        print("reduction proved the greedy core optimal; nothing left to search")
        best = seed_plex
    elif reduced.graph.num_vertices <= 20:
        rng = np.random.default_rng(5)
        quantum = qmkp(reduced.graph, k, rng=rng)
        candidate = reduced.translate_back(quantum.subset)
        print(
            f"qMKP on the reduced graph: size {quantum.size} using "
            f"{quantum.oracle_calls} oracle calls"
        )
        best = max((seed_plex, candidate), key=len)
    else:
        print("reduced graph still too large for the simulator; classical fallback")
        best = maximum_kplex(network, k).subset

    classical = maximum_kplex(network, k)
    assert len(best) == classical.size, "pipeline must match the exact answer"
    print(
        f"\nfinal community core (k={k}): size {len(best)} — "
        + ", ".join(f"p{v}" for v in sorted(best))
    )


if __name__ == "__main__":
    main()
