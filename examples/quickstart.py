"""Quickstart: solve the paper's running example every way the library can.

Walks the Fig. 1 graph (6 vertices, 7 edges) through:

1. the classical exact solvers (brute force + branch-and-search);
2. the gate-based quantum pipeline (qTKP decision, qMKP optimisation);
3. the QUBO reformulation solved by simulated annealing, the simulated
   QPU, the hybrid portfolio, and MILP.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Graph, build_mkp_qubo, is_kplex, maximum_kplex, qamkp, qmkp, qtkp
from repro.kplex import maximum_kplex_bruteforce

K = 2


def label(subset) -> str:
    """Print vertices 1-indexed, as the paper does (v1..v6)."""
    return "{" + ", ".join(f"v{v + 1}" for v in sorted(subset)) + "}"


def main() -> None:
    # The graph of Fig. 1: v1 connects to v2..v5; v4-v5, v2-v4, v5-v6.
    graph = Graph(6, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 3), (3, 4), (4, 5)])
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}, k={K}")

    # --- classical exact --------------------------------------------------
    brute = maximum_kplex_bruteforce(graph, K)
    branch = maximum_kplex(graph, K)
    print(f"\n[classical] brute force optimum:   {label(brute)} (size {len(brute)})")
    print(
        f"[classical] branch-and-search:     {label(branch.subset)} "
        f"({branch.stats.nodes} tree nodes)"
    )

    # --- gate-based quantum ------------------------------------------------
    rng = np.random.default_rng(7)
    decision = qtkp(graph, K, threshold=4, rng=rng)
    print(
        f"\n[gate] qTKP(T=4): found={decision.found}, "
        f"subset={label(decision.subset)}, iterations={decision.iterations}, "
        f"P(success)={decision.success_probability:.4f}"
    )
    full = qmkp(graph, K, rng=rng)
    first = full.first_result
    print(
        f"[gate] qMKP: optimum {label(full.subset)} after {full.qtkp_calls} "
        f"qTKP probes and {full.oracle_calls} oracle calls"
    )
    print(
        f"[gate] progression: first feasible result had size {first.size} "
        f"at {100 * full.first_result_fraction():.0f}% of the gate budget"
    )

    # --- annealing ----------------------------------------------------------
    model = build_mkp_qubo(graph, K)
    print(
        f"\n[qubo] variables: {model.num_variables} "
        f"({graph.num_vertices} vertex + {model.num_slack_variables} slack)"
    )
    for solver, budget, delta_t in (
        ("sa", 500.0, 1.0),
        ("qpu", 2000.0, 20.0),
        ("hybrid", 3e6, 1.0),
        ("milp", 1e6, 1.0),
    ):
        result = qamkp(
            graph, K, runtime_us=budget, delta_t_us=delta_t, solver=solver,
            seed=0, sa_shot_cost_us=1.0,
        )
        note = ""
        if result.feasible and result.cost > model.feasible_cost(result.subset):
            # The paper's remark: the annealer can return the optimal
            # vertex set before the auxiliary slack bits settle.
            note = "  (slack not fully optimised — harmless)"
        print(
            f"[{solver:>6}] cost={result.cost:+.1f}  "
            f"decoded={label(result.repaired)}  feasible={result.feasible}{note}"
        )
        assert is_kplex(graph, result.repaired, K)

    print("\nAll solvers agree: the maximum 2-plex is {v1, v2, v4, v5}.")


if __name__ == "__main__":
    main()
