"""Beyond k-plexes: n-clans and n-clubs on the same toolbox.

The paper's adaptability section argues the oracle machinery carries
over to distance-based clique relaxations.  This example compares four
cohesion models on one noisy "terrorist cell" graph (the classic
Krebs-style use case the paper cites): clique, 2-plex, 2-clan, 2-club —
and shows why the relaxations recover the true cell where the clique
model fails.

Run with:  python examples/clique_relaxations.py
"""

from __future__ import annotations

from repro.graphs import Graph
from repro.kplex import (
    is_kplex,
    maximum_kplex,
    maximum_nclan_bruteforce,
    maximum_nclub_bruteforce,
)


def build_cell_network() -> Graph:
    """A covert network: a dense 6-person cell observed with two missing
    ties (surveillance never sees every link), plus peripheral contacts."""
    cell = [0, 1, 2, 3, 4, 5]
    edges = [
        (u, v) for i, u in enumerate(cell) for v in cell[i + 1:]
    ]
    edges.remove((0, 3))  # unobserved tie
    edges.remove((2, 5))  # unobserved tie
    # peripheral contacts
    edges += [(5, 6), (6, 7), (1, 8), (8, 9), (9, 10), (4, 10)]
    return Graph(11, edges)


def names(subset) -> str:
    return "{" + ", ".join(f"m{v}" for v in sorted(subset)) + "}"


def main() -> None:
    g = build_cell_network()
    print(f"observed network: {g.num_vertices} members, {g.num_edges} ties\n")

    clique = maximum_kplex(g, 1)
    print(f"clique (1-plex):       size {clique.size}  {names(clique.subset)}")
    print("  -> misses the cell: two unobserved ties break the clique\n")

    plex = maximum_kplex(g, 2)
    print(f"2-plex:                size {plex.size}  {names(plex.subset)}")
    assert is_kplex(g, plex.subset, 2)
    assert set(range(6)) == set(plex.subset), "2-plex recovers the full cell"
    print("  -> recovers all six members despite the missing ties\n")

    clan = maximum_nclan_bruteforce(g, 2)
    print(f"2-clan:                size {len(clan)}  {names(clan)}")
    club = maximum_nclub_bruteforce(g, 2)
    print(f"2-club:                size {len(club)}  {names(club)}")
    print(
        "  -> distance-based models also tolerate the noise, but admit\n"
        "     peripheral members reachable within two hops"
    )
    assert len(club) >= len(clan) >= 6

    # --- the paper's adaptability claim, executed ------------------------
    import numpy as np

    from repro.core import maximum_nclub_quantum

    rng = np.random.default_rng(0)
    quantum = maximum_nclub_quantum(g, 2, rng=rng)
    print(
        f"\nquantum 2-club search: size {quantum.size}  "
        f"({quantum.oracle_calls} oracle calls) — same machinery as qMKP,\n"
        "the oracle swapped for the distance predicate"
    )
    assert quantum.size == len(club)


if __name__ == "__main__":
    main()
