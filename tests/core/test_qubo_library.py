"""Unit tests for the graph-QUBO toolbox."""

import pytest

from repro.core.qubo_library import (
    build_clique_qubo,
    build_independent_set_qubo,
    build_vertex_cover_qubo,
)
from repro.graphs import Graph, complete_graph, cycle_graph, gnm_random_graph
from repro.kplex import maximum_kplex_bruteforce
from repro.milp import solve_branch_bound


def _max_clique_bruteforce(graph):
    return len(maximum_kplex_bruteforce(graph, 1))


def _min_vertex_cover_bruteforce(graph):
    best = graph.num_vertices
    for mask in range(1 << graph.num_vertices):
        subset = graph.bitmask_to_subset(mask)
        if all(u in subset or v in subset for u, v in graph.edges):
            best = min(best, len(subset))
    return best


class TestCliqueQubo:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_minimum_encodes_max_clique(self, seed):
        g = gnm_random_graph(7, 11, seed=seed)
        model = build_clique_qubo(g)
        result = solve_branch_bound(model.bqm)
        opt = _max_clique_bruteforce(g)
        assert result.energy == pytest.approx(-opt)
        decoded = model.decode(result.assignment)
        assert model.is_feasible(decoded)
        assert len(decoded) == opt

    def test_complete_graph(self):
        g = complete_graph(5)
        model = build_clique_qubo(g)
        assert solve_branch_bound(model.bqm).energy == pytest.approx(-5)

    def test_penalty_validation(self, fig1):
        with pytest.raises(ValueError):
            build_clique_qubo(fig1, penalty=1.0)


class TestIndependentSetQubo:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_duality_with_complement_clique(self, seed):
        g = gnm_random_graph(7, 10, seed=seed)
        mis = solve_branch_bound(build_independent_set_qubo(g).bqm).energy
        cliq = solve_branch_bound(build_clique_qubo(g.complement()).bqm).energy
        assert mis == pytest.approx(cliq)

    def test_cycle(self):
        # alpha(C_6) = 3
        model = build_independent_set_qubo(cycle_graph(6))
        assert solve_branch_bound(model.bqm).energy == pytest.approx(-3)

    def test_feasibility_check(self, fig1):
        model = build_independent_set_qubo(fig1)
        assert model.is_feasible(frozenset({2, 5}))
        assert not model.is_feasible(frozenset({0, 1}))


class TestVertexCoverQubo:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_minimum_encodes_cover(self, seed):
        g = gnm_random_graph(6, 8, seed=seed)
        model = build_vertex_cover_qubo(g)
        result = solve_branch_bound(model.bqm)
        opt = _min_vertex_cover_bruteforce(g)
        assert result.energy == pytest.approx(opt)
        decoded = model.decode(result.assignment)
        assert model.is_feasible(decoded)

    def test_gallai_identity(self):
        # alpha(G) + tau(G) = n for any graph.
        g = gnm_random_graph(7, 12, seed=5)
        alpha = -solve_branch_bound(build_independent_set_qubo(g).bqm).energy
        tau = solve_branch_bound(build_vertex_cover_qubo(g).bqm).energy
        assert alpha + tau == pytest.approx(g.num_vertices)

    def test_star_cover_is_centre(self):
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        model = build_vertex_cover_qubo(g)
        result = solve_branch_bound(model.bqm)
        assert result.energy == pytest.approx(1)
        assert model.decode(result.assignment) == frozenset({0})
