"""Unit tests for the qaMKP driver (Algorithm 4)."""

import pytest

from repro.annealing import SimulatedQPUSampler, chimera_graph
from repro.core import build_mkp_qubo, cost_versus_runtime, qamkp
from repro.datasets import figure1_graph
from repro.graphs import gnm_random_graph
from repro.kplex import is_kplex, maximum_kplex_bruteforce


@pytest.fixture(scope="module")
def small_qpu():
    return SimulatedQPUSampler(hardware=chimera_graph(6), max_call_time_us=None)


class TestValidation:
    def test_bad_solver(self, fig1):
        with pytest.raises(ValueError, match="solver"):
            qamkp(fig1, 2, solver="quantum")

    def test_bad_runtime(self, fig1):
        with pytest.raises(ValueError, match="runtime"):
            qamkp(fig1, 2, runtime_us=0)


class TestSaSolver:
    def test_finds_optimum_on_small_instance(self, fig1):
        result = qamkp(fig1, 2, runtime_us=500, solver="sa", seed=0, sa_shot_cost_us=1.0)
        assert result.repaired_size == 4
        assert is_kplex(fig1, result.repaired, 2)

    def test_cost_reaches_minus_optimum(self, fig1):
        result = qamkp(fig1, 2, runtime_us=2000, solver="sa", seed=0, sa_shot_cost_us=1.0)
        assert result.cost <= -3  # near the -4 optimum

    def test_cost_decreases_with_runtime(self):
        g = gnm_random_graph(10, 25, seed=2)
        short = qamkp(g, 3, runtime_us=5, solver="sa", seed=5, sa_shot_cost_us=1.0)
        long = qamkp(g, 3, runtime_us=2000, solver="sa", seed=5, sa_shot_cost_us=1.0)
        assert long.cost <= short.cost

    def test_repair_always_feasible(self):
        g = gnm_random_graph(9, 18, seed=4)
        result = qamkp(g, 2, runtime_us=3, solver="sa", seed=1, sa_shot_cost_us=1.0)
        assert is_kplex(g, result.repaired, 2)


class TestQpuSolver:
    def test_runs_and_reports_chain_stats(self, fig1, small_qpu):
        result = qamkp(fig1, 2, runtime_us=200, solver="qpu", qpu=small_qpu, seed=0)
        assert "average_chain_length" in result.info
        assert result.info["total_runtime_us"] == pytest.approx(200)
        assert is_kplex(fig1, result.repaired, 2)

    def test_shots_follow_budget(self, fig1, small_qpu):
        result = qamkp(
            fig1, 2, runtime_us=100, delta_t_us=10, solver="qpu",
            qpu=small_qpu, seed=0,
        )
        assert result.info["num_reads"] == 10


class TestHybridSolver:
    def test_minimum_runtime_floor(self, fig1):
        result = qamkp(fig1, 2, runtime_us=10, solver="hybrid", seed=0)
        assert result.runtime_us == pytest.approx(3.0e6)

    def test_hybrid_finds_optimum(self, fig1):
        result = qamkp(fig1, 2, solver="hybrid", seed=0)
        assert result.cost == pytest.approx(-4.0)
        assert result.repaired_size == 4


class TestMilpSolver:
    def test_milp_optimal(self, fig1):
        result = qamkp(fig1, 2, runtime_us=5e6, solver="milp")
        assert result.cost == pytest.approx(-4.0)
        assert result.info["status"] in ("optimal", "time_limit")

    def test_milp_matches_bruteforce(self):
        g = gnm_random_graph(8, 14, seed=7)
        result = qamkp(g, 2, runtime_us=5e6, solver="milp")
        opt = len(maximum_kplex_bruteforce(g, 2))
        assert result.cost == pytest.approx(-opt)


class TestCostVersusRuntime:
    def test_curve_lengths(self, fig1):
        curve = cost_versus_runtime(fig1, 2, [5, 50, 500], solver="sa", seed=3)
        assert len(curve) == 3
        assert [r.runtime_us for r in curve] == [5, 50, 500]

    def test_curve_roughly_monotone(self):
        g = gnm_random_graph(12, 40, seed=1)
        curve = cost_versus_runtime(g, 3, [2, 2000], solver="sa", seed=9)
        assert curve[-1].cost <= curve[0].cost + 1e-9
