"""Unit tests for qMKP (Algorithm 3)."""

import numpy as np
import pytest

from repro.core import qmkp
from repro.graphs import complete_graph, empty_graph, gnm_random_graph
from repro.kplex import is_kplex, maximum_kplex_bruteforce


class TestOptimality:
    def test_paper_example(self, fig1, rng):
        result = qmkp(fig1, 2, rng=rng)
        assert result.subset == frozenset({0, 1, 3, 4})
        assert result.size == 4

    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bruteforce(self, k, seed):
        g = gnm_random_graph(7, 10, seed=seed)
        rng = np.random.default_rng(seed)
        result = qmkp(g, k, rng=rng)
        assert result.size == len(maximum_kplex_bruteforce(g, k))
        assert is_kplex(g, result.subset, k)

    def test_complete_graph(self, rng):
        result = qmkp(complete_graph(6), 1, rng=rng)
        assert result.size == 6

    def test_zero_vertices(self, rng):
        result = qmkp(empty_graph(0), 2, rng=rng)
        assert result.size == 0
        assert result.qtkp_calls == 0


class TestProgression:
    def test_progressive_results_are_recorded(self, fig1, rng):
        result = qmkp(fig1, 2, rng=rng)
        assert result.progression
        sizes = [event.size for event in result.progression]
        assert sizes == sorted(sizes)  # each new result is larger

    def test_first_result_at_least_half_optimum(self, rng):
        """The paper's progression guarantee of binary search."""
        for seed in range(4):
            g = gnm_random_graph(8, 14, seed=seed)
            result = qmkp(g, 2, rng=np.random.default_rng(seed))
            first = result.first_result
            assert first is not None
            assert first.size >= result.size / 2

    def test_first_result_arrives_early(self, fig1, rng):
        """Paper: first feasible answer within ~30% of the runtime."""
        result = qmkp(fig1, 2, rng=rng)
        assert result.first_result_fraction() < 0.5

    def test_binary_search_call_budget(self, fig1, rng):
        # ceil(log2) probes of the [1, upper-bound] interval.
        result = qmkp(fig1, 2, rng=rng)
        assert result.qtkp_calls <= 4


class TestOrthogonality:
    def test_reduction_preserves_answer(self, rng):
        g = gnm_random_graph(9, 18, seed=3)
        plain = qmkp(g, 2, rng=np.random.default_rng(1))
        reduced = qmkp(g, 2, reduce_first=True, rng=np.random.default_rng(1))
        assert reduced.size == plain.size

    def test_upper_bound_off_still_correct(self, fig1):
        result = qmkp(fig1, 2, use_upper_bound=False, rng=np.random.default_rng(2))
        assert result.size == 4


class TestAccounting:
    def test_costs_accumulate(self, fig1, rng):
        result = qmkp(fig1, 2, rng=rng)
        assert result.oracle_calls > 0
        assert result.gate_units > 0
        totals = result.oracle_costs_total
        assert totals["degree_count"] > totals["degree_compare"]

    def test_probe_log_kept(self, fig1, rng):
        result = qmkp(fig1, 2, rng=rng)
        assert len(result.probes) == result.qtkp_calls
        assert sum(p.oracle_calls for p in result.probes) == result.oracle_calls
