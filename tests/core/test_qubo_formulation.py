"""Unit tests for the MKP -> QUBO reformulation (Section IV)."""

import itertools

import pytest

from repro.core import build_mkp_qubo, slack_width
from repro.graphs import complete_graph, empty_graph, gnm_random_graph
from repro.kplex import is_kplex, maximum_kplex_bruteforce
from repro.milp import solve_branch_bound


class TestSlackWidth:
    @pytest.mark.parametrize(
        ("max_slack", "width"), [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)]
    )
    def test_corrected_formula(self, max_slack, width):
        assert slack_width(max_slack) == width

    def test_paper_formula_underallocates_powers_of_two(self):
        # paper: ceil(log2 4) = 2 bits -> can only represent 0..3 < 4.
        assert slack_width(4, paper_faithful=True) == 2
        assert slack_width(4, paper_faithful=False) == 3

    def test_formulas_agree_off_powers(self):
        for v in (3, 5, 6, 7, 9):
            # corrected = ceil(log2(v+1)); paper = ceil(log2 v); equal
            # unless v + 1 is a power of two boundary case.
            assert slack_width(v, paper_faithful=True) <= slack_width(v)


class TestStructure:
    def test_variable_count_is_n_plus_slack(self, fig1):
        model = build_mkp_qubo(fig1, 2)
        assert model.num_variables == 6 + model.num_slack_variables

    def test_unconstrained_vertices_get_no_slack(self):
        # K_n: complement has no edges, no vertex can violate.
        model = build_mkp_qubo(complete_graph(5), 2)
        assert model.num_slack_variables == 0
        assert model.bqm.num_interactions == 0

    def test_nlogn_scaling(self):
        """The paper's headline: O(n log n) binary variables."""
        counts = []
        for n in (10, 20, 30):
            g = gnm_random_graph(n, round(0.7 * n * (n - 1) / 2), seed=0)
            counts.append(build_mkp_qubo(g, 3).num_variables)
        import math

        for n, c in zip((10, 20, 30), counts):
            assert c <= n * (1 + math.ceil(math.log2(n)) + 1)

    def test_invalid_penalty(self, fig1):
        with pytest.raises(ValueError, match="R"):
            build_mkp_qubo(fig1, 2, penalty=1.0)

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            build_mkp_qubo(fig1, 0)


class TestEnergyLandscape:
    def _best_energy_over_slacks(self, model, subset):
        """Minimum energy over all slack assignments for fixed x."""
        x_part = {
            model.vertex_variable(v): int(v in subset) for v in model.graph.vertices
        }
        slack_names = [name for bits in model.slack_bits.values() for name in bits]
        best = float("inf")
        for values in itertools.product((0, 1), repeat=len(slack_names)):
            assignment = dict(x_part)
            assignment.update(zip(slack_names, values))
            best = min(best, model.bqm.energy(assignment))
        return best

    def test_feasible_subsets_reach_minus_size(self, fig1):
        """A k-plex with optimal slack has energy exactly -|P|."""
        model = build_mkp_qubo(fig1, 2)
        for subset in ({0, 1, 3, 4}, {0, 1}, set()):
            assert is_kplex(fig1, subset, 2)
            assert self._best_energy_over_slacks(model, subset) == pytest.approx(
                -len(subset)
            )

    def test_infeasible_subsets_cost_more(self, fig1):
        model = build_mkp_qubo(fig1, 2)
        bad = {0, 1, 2, 3, 4}  # not a 2-plex
        assert self._best_energy_over_slacks(model, bad) > -5

    def test_global_minimum_is_optimum(self):
        """Minimising F solves MKP (paper's correctness claim)."""
        for seed in (0, 1):
            g = gnm_random_graph(6, 8, seed=seed)
            model = build_mkp_qubo(g, 2)
            result = solve_branch_bound(model.bqm)
            opt = len(maximum_kplex_bruteforce(g, 2))
            assert result.energy == pytest.approx(-opt)
            decoded = model.decode(result.assignment)
            assert is_kplex(g, decoded, 2)
            assert len(decoded) == opt

    def test_penalty_r_greater_than_one_required(self, fig1):
        """With R = 2 the optimum is feasible; the decoded set is a plex."""
        model = build_mkp_qubo(fig1, 2, penalty=2.0)
        result = solve_branch_bound(model.bqm)
        assert is_kplex(fig1, model.decode(result.assignment), 2)


class TestAblations:
    def test_global_big_m_same_optimum(self, fig1):
        per_vertex = build_mkp_qubo(fig1, 2)
        global_m = build_mkp_qubo(fig1, 2, global_big_m=True)
        a = solve_branch_bound(per_vertex.bqm).energy
        b = solve_branch_bound(global_m.bqm).energy
        assert a == pytest.approx(b)

    def test_global_big_m_uses_more_slack(self):
        g = gnm_random_graph(8, 12, seed=1)
        per_vertex = build_mkp_qubo(g, 2)
        global_m = build_mkp_qubo(g, 2, global_big_m=True)
        assert global_m.num_slack_variables >= per_vertex.num_slack_variables

    def test_cost_helper_defaults_missing_vars(self, fig1):
        model = build_mkp_qubo(fig1, 2)
        partial = {model.vertex_variable(0): 1}
        full = {model.vertex_variable(v): int(v == 0) for v in range(6)}
        for bits in model.slack_bits.values():
            full.update({name: 0 for name in bits})
        assert model.cost(partial) == pytest.approx(model.bqm.energy(full))

    def test_feasible_cost(self, fig1):
        model = build_mkp_qubo(fig1, 2)
        assert model.feasible_cost(frozenset({0, 1, 3, 4})) == -4.0


class TestDecoding:
    def test_decode_roundtrip(self, fig1):
        model = build_mkp_qubo(fig1, 2)
        assignment = {model.vertex_variable(v): int(v in {0, 3}) for v in range(6)}
        assert model.decode(assignment) == frozenset({0, 3})

    def test_decode_ignores_slack(self, fig1):
        model = build_mkp_qubo(fig1, 2)
        assignment = {name: 1 for bits in model.slack_bits.values() for name in bits}
        assert model.decode(assignment) == frozenset()

    def test_empty_graph(self):
        model = build_mkp_qubo(empty_graph(3), 2)
        # complement is K_3: every vertex has degree 2 > k - 1 = 1.
        assert model.num_slack_variables > 0
