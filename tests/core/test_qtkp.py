"""Unit tests for qTKP (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import qtkp
from repro.graphs import complete_graph, gnm_random_graph
from repro.kplex import find_kplex_of_size, is_kplex


class TestBasics:
    def test_finds_the_paper_solution(self, fig1, rng):
        result = qtkp(fig1, 2, 4, rng=rng)
        assert result.found
        assert result.subset == frozenset({0, 1, 3, 4})
        assert result.num_marked == 1
        assert result.iterations == 6  # floor(pi/4 * sqrt(64))

    def test_result_verified_as_kplex(self, fig1, rng):
        result = qtkp(fig1, 2, 3, rng=rng)
        assert result.found
        assert len(result.subset) >= 3
        assert is_kplex(fig1, result.subset, 2)

    def test_not_found_above_optimum(self, fig1, rng):
        result = qtkp(fig1, 2, 5, rng=rng)
        assert not result.found
        assert result.subset == frozenset()
        assert result.num_marked == 0
        assert result.oracle_calls > 0  # a failed attempt still costs

    def test_success_probability_high(self, fig1, rng):
        result = qtkp(fig1, 2, 4, rng=rng)
        assert result.success_probability > 0.99

    def test_gate_units_scale_with_calls(self, fig1, rng):
        result = qtkp(fig1, 2, 4, rng=rng)
        per_round = result.oracle_costs.total + (4 * 6 + 1)
        assert result.gate_units == result.oracle_calls * per_round


class TestValidation:
    def test_threshold_bounds(self, fig1, rng):
        with pytest.raises(ValueError):
            qtkp(fig1, 2, 0, rng=rng)
        with pytest.raises(ValueError):
            qtkp(fig1, 2, 7, rng=rng)

    def test_bad_counting_mode(self, fig1, rng):
        with pytest.raises(ValueError):
            qtkp(fig1, 2, 3, counting="guess", rng=rng)

    def test_bad_max_attempts(self, fig1, rng):
        with pytest.raises(ValueError):
            qtkp(fig1, 2, 3, max_attempts=0, rng=rng)


class TestAgreementWithClassical:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("threshold", [2, 3, 4, 5])
    def test_decision_agrees_with_branch_search(self, seed, threshold):
        g = gnm_random_graph(7, 11, seed=seed)
        rng = np.random.default_rng(seed)
        quantum = qtkp(g, 2, threshold, rng=rng)
        classical = find_kplex_of_size(g, 2, threshold)
        assert quantum.found == bool(classical.subset)

    def test_complete_graph_whole_set(self, rng):
        g = complete_graph(6)
        result = qtkp(g, 1, 6, rng=rng)
        assert result.found
        assert result.subset == frozenset(range(6))


class TestQuantumCounting:
    def test_quantum_counting_still_succeeds(self, fig1):
        # Counting error can change the schedule but verification
        # protects correctness: across seeds, found results are valid.
        found_any = False
        for seed in range(5):
            rng = np.random.default_rng(seed)
            result = qtkp(fig1, 2, 4, counting="quantum", rng=rng)
            if result.found:
                found_any = True
                assert is_kplex(fig1, result.subset, 2)
        assert found_any

    def test_exact_counting_reports_true_m(self, fig1, rng):
        result = qtkp(fig1, 2, 3, rng=rng)
        # brute force: count 2-plexes with >= 3 vertices
        brute = sum(
            1
            for m in range(64)
            if len(fig1.bitmask_to_subset(m)) >= 3
            and is_kplex(fig1, fig1.bitmask_to_subset(m), 2)
        )
        assert result.num_marked == brute
