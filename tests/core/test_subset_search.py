"""Unit tests for the generic Grover subset search (adaptability)."""

import numpy as np
import pytest

from repro.core.subset_search import (
    grover_maximum_subset,
    grover_subset_decision,
    maximum_clique_quantum,
    maximum_independent_set_quantum,
    maximum_nclan_quantum,
    maximum_nclub_quantum,
)
from repro.graphs import Graph, complete_graph, empty_graph, gnm_random_graph
from repro.kplex import (
    is_kplex,
    maximum_kplex_bruteforce,
    maximum_nclan_bruteforce,
    maximum_nclub_bruteforce,
)


class TestDecision:
    def test_validation(self, fig1, rng):
        with pytest.raises(ValueError, match="threshold"):
            grover_subset_decision(fig1, lambda s: True, 0, rng=rng)
        big = empty_graph(25)
        with pytest.raises(ValueError, match="supports"):
            grover_subset_decision(big, lambda s: True, 1, rng=rng)

    def test_finds_when_exists(self, fig1, rng):
        result = grover_subset_decision(
            fig1, lambda s: is_kplex(fig1, s, 2), 4, rng=rng
        )
        assert result.found
        assert result.subset == frozenset({0, 1, 3, 4})

    def test_fails_above_optimum(self, fig1, rng):
        result = grover_subset_decision(
            fig1, lambda s: is_kplex(fig1, s, 2), 5, rng=rng
        )
        assert not result.found
        assert result.oracle_calls > 0


class TestMaximum:
    def test_reduces_to_qmkp(self, fig1, rng):
        result = grover_maximum_subset(
            fig1, lambda s: is_kplex(fig1, s, 2), rng=rng
        )
        assert result.size == 4

    def test_upper_bound_respected(self, fig1, rng):
        result = grover_maximum_subset(
            fig1, lambda s: is_kplex(fig1, s, 2), rng=rng, upper_bound=3
        )
        assert result.size == 3  # capped below the true optimum

    def test_empty_graph(self, rng):
        result = grover_maximum_subset(empty_graph(0), lambda s: True, rng=rng)
        assert result.size == 0

    def test_probe_log(self, fig1, rng):
        result = grover_maximum_subset(
            fig1, lambda s: is_kplex(fig1, s, 2), rng=rng
        )
        assert result.probes
        assert sum(p.oracle_calls for p in result.probes) == result.oracle_calls


class TestModelWrappers:
    def test_clique_on_complete_graph(self, rng):
        result = maximum_clique_quantum(complete_graph(5), rng=rng)
        assert result.size == 5

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_clique_matches_1plex(self, seed):
        g = gnm_random_graph(7, 11, seed=seed)
        rng = np.random.default_rng(seed)
        quantum = maximum_clique_quantum(g, rng=rng)
        assert quantum.size == len(maximum_kplex_bruteforce(g, 1))

    def test_independent_set_duality(self, rng):
        g = gnm_random_graph(7, 10, seed=4)
        mis = maximum_independent_set_quantum(g, rng=rng)
        clique_in_complement = maximum_clique_quantum(g.complement(), rng=np.random.default_rng(4))
        assert mis.size == clique_in_complement.size

    @pytest.mark.parametrize("seed", [0, 1])
    def test_nclan_matches_bruteforce(self, seed):
        g = gnm_random_graph(7, 9, seed=seed)
        rng = np.random.default_rng(seed)
        quantum = maximum_nclan_quantum(g, 2, rng=rng)
        assert quantum.size == len(maximum_nclan_bruteforce(g, 2))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_nclub_matches_bruteforce(self, seed):
        g = gnm_random_graph(7, 9, seed=seed)
        rng = np.random.default_rng(seed)
        quantum = maximum_nclub_quantum(g, 2, rng=rng)
        assert quantum.size == len(maximum_nclub_bruteforce(g, 2))

    def test_paper_example_club(self, fig1, rng):
        # fig1 is connected with diameter 3: the whole set is a 3-club.
        result = maximum_nclub_quantum(fig1, 3, rng=rng)
        assert result.size == 6

    def test_star_clan(self, rng):
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        result = maximum_nclan_quantum(g, 2, rng=rng)
        assert result.size == 5  # a star is a 2-clan
