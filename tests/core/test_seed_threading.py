"""Seed-threading regression tests.

One seeded generator flows ``qmkp -> qtkp -> bbht_search ->
GroverRun.measure_once`` with no layer creating its own entropy, so a
fixed seed must pin the entire run — subsets, cost totals, progression —
across every counting mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import qmkp, qtkp

COUNTING_MODES = ["exact", "quantum", "bbht"]


@pytest.mark.parametrize("counting", COUNTING_MODES)
def test_identical_seed_identical_qmkp(fig1, counting):
    a = qmkp(fig1, 2, counting=counting, rng=np.random.default_rng(2024))
    b = qmkp(fig1, 2, counting=counting, rng=np.random.default_rng(2024))
    assert a.subset == b.subset
    assert a.oracle_calls == b.oracle_calls
    assert a.gate_units == b.gate_units
    assert a.qtkp_calls == b.qtkp_calls
    assert a.progression == b.progression


@pytest.mark.parametrize("counting", COUNTING_MODES)
def test_int_seed_matches_generator(fig1, counting):
    via_int = qmkp(fig1, 2, counting=counting, rng=2024)
    via_gen = qmkp(fig1, 2, counting=counting, rng=np.random.default_rng(2024))
    assert via_int.subset == via_gen.subset
    assert via_int.oracle_calls == via_gen.oracle_calls


@pytest.mark.parametrize("counting", COUNTING_MODES)
def test_identical_seed_identical_qtkp(small_random_graph, counting):
    g = small_random_graph
    a = qtkp(g, 2, 2, counting=counting, rng=np.random.default_rng(99))
    b = qtkp(g, 2, 2, counting=counting, rng=np.random.default_rng(99))
    assert a.subset == b.subset
    assert a.oracle_calls == b.oracle_calls
    assert a.attempts == b.attempts


def test_seed_determinism_survives_fault_injection(fig1):
    kwargs = dict(
        counting="bbht",
        gate_faults="readout=0.4,transient=1,seed=5",
    )
    a = qmkp(fig1, 2, rng=np.random.default_rng(31), **kwargs)
    b = qmkp(fig1, 2, rng=np.random.default_rng(31), **kwargs)
    assert a.subset == b.subset
    assert a.oracle_calls == b.oracle_calls
    assert a.verification == b.verification
