"""Equivalence and savings contracts for the adaptive threshold ladder.

``qmkp(..., ladder="adaptive")`` must be *provably* an optimization, not
an approximation:

* identical optimum size to the classical branch search and to the
  binary ladder, on every paper gate instance and counting mode;
* never more qTKP probes or Grover oracle calls than the binary ladder,
  and strictly fewer in aggregate across the suite;
* ledgers that still reconcile (skipped thresholds are claimed, probe
  counts add up);
* checkpoint journals (schema v2) that resume bit-identically from any
  truncation point, including when the resuming process uses a
  different kernel backend than the writer.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.qmkp import qmkp
from repro.datasets.paper_instances import GATE_INSTANCES
from repro.graphs import Graph
from repro.kplex import maximum_kplex
from repro.obs import RunLedger, Tracer
from repro.perf.kernels import available_backends
from repro.resilience.checkpoint import CheckpointMismatchError

INSTANCES = [
    (name, inst, k)
    for name, inst in GATE_INSTANCES.items()
    for k in inst.known_optima
]


def _random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < p
    ]
    return Graph(n, edges)


class TestOptimumEquivalence:
    @pytest.mark.parametrize(
        "name,inst,k", INSTANCES, ids=[f"{n}-k{k}" for n, _, k in INSTANCES]
    )
    @pytest.mark.parametrize("counting", ["exact", "bbht"])
    def test_matches_known_optimum_and_binary(self, name, inst, k, counting):
        graph = inst.build()
        expected = inst.known_optima[k]
        assert len(maximum_kplex(graph, k).subset) == expected
        binary = qmkp(graph, k, counting=counting, rng=7)
        adaptive = qmkp(graph, k, counting=counting, rng=7, ladder="adaptive")
        assert binary.size == expected
        assert adaptive.size == expected
        assert adaptive.qtkp_calls <= binary.qtkp_calls
        if counting == "exact":
            # Exact counting has a deterministic per-probe cost, so the
            # ladder can never be worse instance-by-instance.  BBHT's
            # ceiling carryover redraws the schedule, so its guarantee
            # is aggregate (test_strict_savings_in_aggregate) rather
            # than per-instance.
            assert adaptive.oracle_calls <= binary.oracle_calls
            assert adaptive.gate_units <= binary.gate_units

    @pytest.mark.parametrize("counting", ["exact", "bbht"])
    def test_strict_savings_in_aggregate(self, counting):
        total_binary = total_adaptive = 0
        probes_binary = probes_adaptive = 0
        for _, inst, k in INSTANCES:
            graph = inst.build()
            b = qmkp(graph, k, counting=counting, rng=3)
            a = qmkp(graph, k, counting=counting, rng=3, ladder="adaptive")
            assert a.size == b.size
            total_binary += b.oracle_calls
            total_adaptive += a.oracle_calls
            probes_binary += b.qtkp_calls
            probes_adaptive += a.qtkp_calls
        assert probes_adaptive < probes_binary
        assert total_adaptive < total_binary

    def test_reduce_and_bounds_compose(self):
        graph = _random_graph(12, 0.45, 5)
        ref = qmkp(graph, 2, reduce_first=True, rng=11)
        adaptive = qmkp(
            graph, 2, reduce_first=True, rng=11, ladder="adaptive"
        )
        assert adaptive.size == ref.size

    def test_invalid_ladder_rejected(self):
        with pytest.raises(ValueError, match="ladder"):
            qmkp(Graph(3, [(0, 1)]), 2, ladder="galactic")

    def test_binary_default_unchanged(self):
        graph = _random_graph(10, 0.5, 9)
        default = qmkp(graph, 2, counting="bbht", rng=21)
        explicit = qmkp(graph, 2, counting="bbht", rng=21, ladder="binary")
        assert default.subset == explicit.subset
        assert default.oracle_calls == explicit.oracle_calls
        assert default.gate_units == explicit.gate_units
        assert default.skipped_thresholds == explicit.skipped_thresholds == 0


class TestLedger:
    @pytest.mark.parametrize("counting", ["exact", "bbht"])
    def test_traced_adaptive_run_reconciles(self, counting):
        graph = _random_graph(11, 0.5, 7)
        tracer = Tracer()
        result = qmkp(
            graph, 2, counting=counting, rng=123, ladder="adaptive",
            tracer=tracer,
        )
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify(raise_on_drift=False) == []
        if result.skipped_thresholds:
            assert (
                ledger.total("qmkp_skipped_thresholds")
                == result.skipped_thresholds
            )
        assert ledger.total("oracle_calls") == result.oracle_calls

    def test_progression_is_monotone_and_reaches_optimum(self):
        graph = _random_graph(11, 0.5, 13)
        result = qmkp(graph, 2, counting="bbht", rng=5, ladder="adaptive")
        sizes = [event.size for event in result.progression]
        assert sizes == sorted(sizes)
        assert sizes[-1] == result.size


class TestJournalReplay:
    @pytest.mark.parametrize("counting", ["exact", "bbht"])
    def test_resume_bit_identical_from_every_prefix(self, tmp_path, counting):
        graph = _random_graph(11, 0.5, 7)
        ref_path = tmp_path / "ref.wal"
        ref = qmkp(
            graph, 2, counting=counting, rng=123, ladder="adaptive",
            checkpoint=ref_path,
        )
        lines = ref_path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["ladder"] == "adaptive"
        assert header["schema"].endswith("/v2")
        assert len(lines) > 2  # header + at least two records to truncate
        for keep in range(1, len(lines)):
            part = tmp_path / f"part{keep}.wal"
            part.write_text("\n".join(lines[: 1 + keep]) + "\n")
            res = qmkp(
                graph, 2, counting=counting, rng=123, ladder="adaptive",
                resume=part, checkpoint=part,
            )
            assert res.subset == ref.subset
            assert res.oracle_calls == ref.oracle_calls
            assert res.gate_units == ref.gate_units
            assert res.qtkp_calls == ref.qtkp_calls
            assert res.skipped_thresholds == ref.skipped_thresholds
            # The extended journal must equal the uninterrupted one.
            assert part.read_text() == ref_path.read_text()

    def test_resume_across_kernel_backends(self, tmp_path):
        backends = available_backends()
        if len(backends) < 2:
            pytest.skip("only one kernel backend available")
        graph = _random_graph(11, 0.5, 17)
        ref_path = tmp_path / "ref.wal"
        ref = qmkp(
            graph, 2, counting="bbht", rng=42, ladder="adaptive",
            checkpoint=ref_path, kernel=backends[0],
        )
        lines = ref_path.read_text().splitlines()
        part = tmp_path / "part.wal"
        part.write_text("\n".join(lines[:2]) + "\n")
        res = qmkp(
            graph, 2, counting="bbht", rng=42, ladder="adaptive",
            resume=part, checkpoint=part, kernel=backends[-1],
        )
        assert res.subset == ref.subset
        assert res.oracle_calls == ref.oracle_calls
        assert res.skipped_thresholds == ref.skipped_thresholds
        assert part.read_text() == ref_path.read_text()

    def test_ladder_mismatch_rejected(self, tmp_path):
        graph = _random_graph(9, 0.5, 2)
        path = tmp_path / "adaptive.wal"
        qmkp(graph, 2, rng=1, ladder="adaptive", checkpoint=path)
        with pytest.raises(CheckpointMismatchError, match="ladder"):
            qmkp(graph, 2, rng=1, ladder="binary", resume=path)

    def test_v1_journal_resumes_as_binary(self, tmp_path):
        graph = _random_graph(9, 0.5, 2)
        path = tmp_path / "bin.wal"
        ref = qmkp(graph, 2, counting="bbht", rng=5, checkpoint=path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["ladder"] == "binary"
        v1_header = {k: v for k, v in header.items() if k != "ladder"}
        v1_header["schema"] = "repro.resilience/qmkp-checkpoint/v1"
        v1 = tmp_path / "v1.wal"
        v1.write_text(
            json.dumps(v1_header, sort_keys=True) + "\n"
            + "\n".join(lines[1:2]) + "\n"
        )
        res = qmkp(graph, 2, counting="bbht", rng=5, resume=v1)
        assert res.subset == ref.subset
        assert res.oracle_calls == ref.oracle_calls
