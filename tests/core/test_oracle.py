"""Unit tests for the k-cplex oracle (the heart of qTKP)."""

import pytest

from repro.core.oracle import KCplexOracle
from repro.datasets import figure1_graph
from repro.graphs import Graph, complete_graph, empty_graph, gnm_random_graph
from repro.kplex import is_kplex


class TestConstruction:
    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            KCplexOracle(fig1.complement(), 0, 1)

    def test_invalid_threshold(self, fig1):
        with pytest.raises(ValueError):
            KCplexOracle(fig1.complement(), 2, -1)
        with pytest.raises(ValueError):
            KCplexOracle(fig1.complement(), 2, 7)

    def test_registers_present(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        regs = oracle.u_check.registers
        assert regs["v"].size == 6
        assert regs["e"].size == fig1.complement().num_edges

    def test_qubit_budget_reported(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        assert oracle.num_qubits > 6
        assert oracle.num_vertices == 6


class TestPredicate:
    def test_matches_kplex_definition(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        for mask in range(64):
            subset = fig1.bitmask_to_subset(mask)
            expected = len(subset) >= 4 and is_kplex(fig1, subset, 2)
            assert oracle.predicate(mask) == expected

    def test_threshold_zero_accepts_empty(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 0)
        assert oracle.predicate(0)

    def test_unique_solution_on_paper_graph(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        marked = [m for m in range(64) if oracle.predicate(m)]
        assert len(marked) == 1
        assert fig1.bitmask_to_subset(marked[0]) == frozenset({0, 1, 3, 4})


class TestCircuitFaithfulness:
    """The built circuit must compute exactly the predicate."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("threshold", [1, 3, 5])
    def test_circuit_equals_predicate_fig1(self, k, threshold):
        g = figure1_graph()
        oracle = KCplexOracle(g.complement(), k, threshold)
        for mask in range(64):
            assert oracle.classical_eval(mask) == oracle.predicate(mask)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_circuit_equals_predicate_random(self, seed):
        g = gnm_random_graph(6, 8, seed=seed)
        oracle = KCplexOracle(g.complement(), 2, 3)
        for mask in range(64):
            assert oracle.classical_eval(mask) == oracle.predicate(mask)

    def test_uncompute_restores_all_ancillas(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        for mask in range(64):
            assert oracle.uncompute_is_clean(mask)

    def test_complete_graph_every_subset_passes_degree(self):
        # Complement of K_n is empty: every subset is a 1-cplex.
        g = complete_graph(5)
        oracle = KCplexOracle(g.complement(), 1, 3)
        for mask in range(32):
            expected = bin(mask).count("1") >= 3
            assert oracle.classical_eval(mask) == expected

    def test_empty_graph_edge_cases(self):
        # Complement of the empty graph is complete: only tiny subsets pass.
        g = empty_graph(4)
        oracle = KCplexOracle(g.complement(), 2, 1)
        for mask in range(16):
            subset = g.bitmask_to_subset(mask)
            expected = 1 <= len(subset) and is_kplex(g, subset, 2)
            assert oracle.classical_eval(mask) == expected


class TestPhaseOracleCircuit:
    def test_width_is_ucheck_plus_oracle_qubit(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        assert oracle.phase_oracle_circuit().num_qubits == oracle.num_qubits + 1

    def test_gate_count_is_twice_plus_mark(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        phase = oracle.phase_oracle_circuit()
        assert phase.num_gates == 2 * oracle.u_check.num_gates + 1


class TestComponentCosts:
    def test_components_sum_to_total(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        costs = oracle.component_costs()
        assert costs.total == (
            costs.encode + costs.degree_count + costs.degree_compare
            + costs.size_check + costs.mark
        )

    def test_shares_sum_to_one(self, fig1):
        shares = KCplexOracle(fig1.complement(), 2, 4).component_costs().shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_degree_count_dominates(self, fig1):
        # Table IV: degree counting is the largest oracle component.
        shares = KCplexOracle(fig1.complement(), 2, 4).component_costs().shares()
        assert shares["degree_count"] > shares["degree_compare"]
        assert shares["degree_count"] > shares["size_check"]

    def test_degree_count_share_grows_with_n(self):
        """Table IV trend: the degree-count share increases with n."""
        shares = []
        for n, m in [(6, 8), (8, 14), (10, 23)]:
            g = gnm_random_graph(n, m, seed=0)
            oracle = KCplexOracle(g.complement(), 2, 3)
            shares.append(oracle.component_costs().shares()["degree_count"])
        assert shares[0] < shares[-1]

    def test_encode_gate_count_matches_complement_edges(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4)
        # one Toffoli per complement edge, counted twice (U and U-dagger)
        assert oracle.component_costs().encode == 2 * fig1.complement().num_edges


class TestDegenerateGraphs:
    def test_single_vertex(self):
        g = Graph(1)
        oracle = KCplexOracle(g.complement(), 1, 1)
        assert oracle.classical_eval(0) is False
        assert oracle.classical_eval(1) is True

    def test_two_vertices_no_edge(self):
        g = Graph(2)  # complement = single edge
        oracle = KCplexOracle(g.complement(), 1, 2)
        # {0,1} is not a 1-plex of g (they are not adjacent).
        assert oracle.classical_eval(3) is False


class TestAdderModes:
    """The oracle supports both accumulation circuits."""

    def test_full_adder_oracle_is_faithful(self, fig1):
        oracle = KCplexOracle(fig1.complement(), 2, 4, adder="full_adder")
        for mask in range(64):
            assert oracle.classical_eval(mask) == oracle.predicate(mask)
            assert oracle.uncompute_is_clean(mask)

    def test_full_adder_uses_more_resources(self, fig1):
        compact = KCplexOracle(fig1.complement(), 2, 4)
        faithful = KCplexOracle(fig1.complement(), 2, 4, adder="full_adder")
        assert faithful.num_qubits > compact.num_qubits
        assert faithful.component_costs().total > compact.component_costs().total

    def test_unknown_adder_rejected(self, fig1):
        with pytest.raises(ValueError, match="adder"):
            KCplexOracle(fig1.complement(), 2, 4, adder="ripple")
