"""CircuitBreaker half-open behavior under concurrency.

A breaker shared across threads (the service supervisor keeps one per
backend, and the gateway's handlers run callers from many connections)
must admit **exactly one** half-open trial call no matter how many
callers race it, and a failed trial must re-open the breaker without
losing the racer's typed rejection.
"""

from __future__ import annotations

import threading

from repro.resilience import CircuitBreaker, CircuitOpenError


def _open_breaker(cooldown_calls: int = 1) -> CircuitBreaker:
    breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=cooldown_calls)
    breaker.record_failure()
    assert breaker.state == "open"
    return breaker


class TestHalfOpenSingleProbe:
    def test_two_racing_threads_admit_exactly_one_trial(self):
        breaker = _open_breaker(cooldown_calls=1)
        barrier = threading.Barrier(2)
        admitted: list[bool] = []
        lock = threading.Lock()

        def caller() -> None:
            barrier.wait()
            allowed = breaker.allow()
            with lock:
                admitted.append(allowed)

        threads = [threading.Thread(target=caller) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert sorted(admitted) == [False, True]
        assert breaker.state == "half_open"

    def test_many_racers_still_admit_exactly_one(self):
        for _ in range(20):  # repeat to shake out interleavings
            breaker = _open_breaker(cooldown_calls=1)
            n = 8
            barrier = threading.Barrier(n)
            results: list[bool] = []
            lock = threading.Lock()

            def caller() -> None:
                barrier.wait()
                allowed = breaker.allow()
                with lock:
                    results.append(allowed)

            threads = [threading.Thread(target=caller) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results.count(True) == 1, results

    def test_sequential_callers_behind_the_probe_are_rejected(self):
        breaker = _open_breaker(cooldown_calls=1)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        before = breaker.rejections_total
        assert not breaker.allow()  # racer: rejected, counted
        assert not breaker.allow()
        assert breaker.rejections_total == before + 2
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_trial_reopens_without_dropping_racer_rejection(self):
        breaker = _open_breaker(cooldown_calls=1)
        assert breaker.allow()  # probe admitted
        racer_allowed = breaker.allow()  # racing caller
        breaker.record_failure()  # the trial call failed
        assert breaker.state == "open"
        # The racer was rejected — in the sampler loop that surfaces as
        # CircuitOpenError — and the failed probe must not have eaten
        # that rejection's accounting.
        assert racer_allowed is False
        assert breaker.rejections_total >= 2  # cooldown rejection + racer
        # The re-opened breaker starts a fresh cooldown: the next call
        # is the new half-open probe only after cooldown_calls misses.
        assert breaker.allow()  # cooldown_calls=1 -> immediately probes
        assert breaker.state == "half_open"
        assert breaker._probe_in_flight

    def test_typed_error_path_survives_a_concurrent_failed_trial(self):
        """End-to-end shape of the race the service can produce.

        Thread A runs the half-open trial and fails it; thread B races
        `allow()` and must observe a typed rejection (here modeled the
        way ResilientSampler raises it), not a second admitted trial.
        """
        breaker = _open_breaker(cooldown_calls=2)
        assert not breaker.allow()  # cooldown rejection 1
        started = threading.Event()
        errors: list[BaseException] = []

        def trial() -> None:
            assert breaker.allow()  # cooldown rejection 2 -> the probe
            started.set()
            breaker.record_failure()

        def racer() -> None:
            started.wait()
            if not breaker.allow():
                errors.append(CircuitOpenError("circuit open"))

        a = threading.Thread(target=trial)
        b = threading.Thread(target=racer)
        a.start()
        b.start()
        a.join()
        b.join()
        # Whether the racer hit half_open (probe in flight) or the
        # re-opened state (fresh cooldown), it was rejected with the
        # typed error — never admitted as a duplicate trial.
        assert breaker.state == "open"
        assert len(errors) == 1
        assert isinstance(errors[0], CircuitOpenError)

    def test_success_clears_probe_so_next_half_open_admits_again(self):
        breaker = _open_breaker(cooldown_calls=1)
        assert breaker.allow()
        breaker.record_success()
        breaker.record_failure()  # threshold 1 -> open again
        assert breaker.state == "open"
        assert breaker.allow()  # new probe admitted, not blocked by stale flag
        assert breaker.state == "half_open"


class TestRacerRejectionIsDeterministicInState:
    def test_half_open_rejections_do_not_advance_cooldown(self):
        breaker = _open_breaker(cooldown_calls=2)
        assert not breaker.allow()  # rejection 1 of the cooldown
        assert breaker.allow()  # rejection 2 -> this caller is the probe
        assert breaker.state == "half_open"
        for _ in range(5):
            assert not breaker.allow()
        # Still half-open, still exactly one probe outstanding.
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open"

