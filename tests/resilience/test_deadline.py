"""Gate-unit deadline budget + qMKP degradation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import qmkp
from repro.kplex import is_kplex, maximum_kplex
from repro.obs import RunLedger, Tracer
from repro.resilience import DeadlineBudget, DeadlineExpired


class TestDeadlineBudget:
    def test_charge_and_remaining(self):
        budget = DeadlineBudget(100)
        budget.charge(30)
        assert budget.remaining == 70
        assert not budget.expired
        budget.charge(80)
        assert budget.remaining == 0
        assert budget.expired

    def test_negative_charges_ignored(self):
        budget = DeadlineBudget(10)
        budget.charge(-5)
        assert budget.charged == 0

    def test_check_raises_when_dry(self):
        budget = DeadlineBudget(1)
        budget.check()
        budget.charge(2)
        with pytest.raises(DeadlineExpired):
            budget.check()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            DeadlineBudget(0)
        with pytest.raises(ValueError):
            DeadlineBudget(-3)

    def test_as_dict(self):
        budget = DeadlineBudget(10)
        budget.charge(4)
        assert budget.as_dict() == {
            "budget": 10.0, "charged": 4.0, "remaining": 6.0,
        }


class TestQmkpDeadline:
    def _run(self, graph, **kwargs):
        return qmkp(
            graph, 2, rng=np.random.default_rng(7), use_upper_bound=False,
            **kwargs,
        )

    def test_expiry_degrades_to_branch_search(self, fig1):
        result = self._run(fig1, deadline=1.0)
        assert result.deadline_expired
        assert result.degraded_to == "kplex.branch_search"
        # The degradation is to the exact classical solver, so the
        # answer is still optimal and feasible.
        optimum = maximum_kplex(fig1, 2).subset
        assert len(result.subset) == len(optimum)
        assert is_kplex(fig1, result.subset, 2)

    def test_probe_in_flight_completes(self, fig1):
        # The budget is checked between probes: even a 1-unit budget
        # lets the first probe run and charges its full cost.
        result = self._run(fig1, deadline=1.0)
        assert result.qtkp_calls == 1
        assert result.gate_units > 1

    def test_huge_deadline_identical_to_none(self, fig1):
        reference = self._run(fig1)
        bounded = self._run(fig1, deadline=1e12)
        assert bounded.subset == reference.subset
        assert bounded.oracle_calls == reference.oracle_calls
        assert not bounded.deadline_expired
        assert bounded.degraded_to is None

    def test_shared_budget_object(self, fig1):
        budget = DeadlineBudget(1e12)
        result = self._run(fig1, deadline=budget)
        assert budget.charged == result.gate_units

    def test_fallback_ledger_reconciles(self, fig1):
        tracer = Tracer()
        result = self._run(fig1, deadline=1.0, tracer=tracer)
        assert result.degraded_to == "kplex.branch_search"
        assert RunLedger.from_tracer(tracer).verify(raise_on_drift=False) == []
