"""Gate-unit deadline budget + qMKP degradation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import qmkp
from repro.kplex import is_kplex, maximum_kplex
from repro.obs import RunLedger, Tracer
from repro.resilience import DeadlineBudget, DeadlineExpired


class TestDeadlineBudget:
    def test_charge_and_remaining(self):
        budget = DeadlineBudget(100)
        budget.charge(30)
        assert budget.remaining == 70
        assert not budget.expired
        budget.charge(80)
        assert budget.remaining == 0
        assert budget.expired

    def test_negative_charges_ignored(self):
        budget = DeadlineBudget(10)
        budget.charge(-5)
        assert budget.charged == 0

    def test_check_raises_when_dry(self):
        budget = DeadlineBudget(1)
        budget.check()
        budget.charge(2)
        with pytest.raises(DeadlineExpired):
            budget.check()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            DeadlineBudget(0)
        with pytest.raises(ValueError):
            DeadlineBudget(-3)

    def test_as_dict(self):
        budget = DeadlineBudget(10)
        budget.charge(4)
        assert budget.as_dict() == {
            "budget": 10.0, "charged": 4.0, "remaining": 6.0,
        }


class TestQmkpDeadline:
    def _run(self, graph, **kwargs):
        return qmkp(
            graph, 2, rng=np.random.default_rng(7), use_upper_bound=False,
            **kwargs,
        )

    def test_expiry_degrades_to_branch_search(self, fig1):
        result = self._run(fig1, deadline=1.0)
        assert result.deadline_expired
        assert result.degraded_to == "kplex.branch_search"
        # The degradation is to the exact classical solver, so the
        # answer is still optimal and feasible.
        optimum = maximum_kplex(fig1, 2).subset
        assert len(result.subset) == len(optimum)
        assert is_kplex(fig1, result.subset, 2)

    def test_probe_in_flight_completes(self, fig1):
        # The budget is checked between probes: even a 1-unit budget
        # lets the first probe run and charges its full cost.
        result = self._run(fig1, deadline=1.0)
        assert result.qtkp_calls == 1
        assert result.gate_units > 1

    def test_huge_deadline_identical_to_none(self, fig1):
        reference = self._run(fig1)
        bounded = self._run(fig1, deadline=1e12)
        assert bounded.subset == reference.subset
        assert bounded.oracle_calls == reference.oracle_calls
        assert not bounded.deadline_expired
        assert bounded.degraded_to is None

    def test_shared_budget_object(self, fig1):
        budget = DeadlineBudget(1e12)
        result = self._run(fig1, deadline=budget)
        assert budget.charged == result.gate_units

    def test_fallback_ledger_reconciles(self, fig1):
        tracer = Tracer()
        result = self._run(fig1, deadline=1.0, tracer=tracer)
        assert result.degraded_to == "kplex.branch_search"
        assert RunLedger.from_tracer(tracer).verify(raise_on_drift=False) == []

    def _fallback_span(self, tracer):
        stack = list(tracer.roots)
        while stack:
            span = stack.pop()
            if span.name == "qmkp.fallback":
                return span
            stack.extend(span.children)
        return None

    def test_fallback_is_warm_started(self, fig1):
        # A budget wide enough for a few probes leaves a verified
        # incumbent behind; the classical fallback must be seeded with
        # it (recorded as the span's ``warm_incumbent``) rather than
        # re-deriving the bound from the greedy seed.
        tracer = Tracer()
        result = self._run(fig1, deadline=200.0, tracer=tracer)
        assert result.deadline_expired
        span = self._fallback_span(tracer)
        assert span is not None
        warm = span.attributes["warm_incumbent"]
        assert warm > 0
        # The seed was a genuine k-plex, and seeding preserved exactness.
        assert is_kplex(fig1, result.subset, 2)
        assert len(result.subset) == maximum_kplex(fig1, 2).size
        assert len(result.subset) >= warm

    def test_minimal_budget_still_records_feasible_incumbent(self, fig1):
        # Even a 1-unit budget lets the first probe complete, so the
        # fallback span advertises a bound that is feasible (never
        # above the optimum) — the degraded path starts from a real
        # k-plex, not a guess.
        tracer = Tracer()
        result = self._run(fig1, deadline=1.0, tracer=tracer)
        assert result.deadline_expired
        span = self._fallback_span(tracer)
        assert span is not None
        optimum = maximum_kplex(fig1, 2).size
        assert 0 < span.attributes["warm_incumbent"] <= optimum
        assert len(result.subset) == optimum

    def test_warm_fallback_matches_cold_fallback_answer(self, fig1):
        # Seeding the branch search changes its pruning order, never
        # its answer: both fallback flavours return an optimum.
        warm = self._run(fig1, deadline=200.0)
        cold = self._run(fig1, deadline=1.0)
        assert warm.degraded_to == cold.degraded_to == "kplex.branch_search"
        assert len(warm.subset) == len(cold.subset)


class TestSharedPoolEdges:
    """Edge semantics the service's per-tenant pools rely on."""

    def test_exhaustion_exactly_at_the_boundary(self):
        # charged == budget is expired, not "one more free probe".
        budget = DeadlineBudget(100)
        budget.charge(100)
        assert budget.expired
        assert budget.remaining == 0
        with pytest.raises(DeadlineExpired):
            budget.check()

    def test_qmkp_expiry_exactly_at_first_probe_cost(self, fig1):
        # A budget equal to the first probe's exact cost expires at the
        # probe boundary: the probe completes, then the search degrades.
        probe_cost = qmkp(
            fig1, 2, rng=np.random.default_rng(7),
            use_upper_bound=False, deadline=1.0,
        ).gate_units
        result = qmkp(
            fig1, 2, rng=np.random.default_rng(7),
            use_upper_bound=False, deadline=float(probe_cost),
        )
        assert result.qtkp_calls == 1
        assert result.deadline_expired
        assert result.degraded_to == "kplex.branch_search"

    def test_concurrent_consumers_lose_no_charges(self):
        import threading

        pool = DeadlineBudget(1e9)
        per_thread, threads_n = 1000, 8

        def consumer():
            for _ in range(per_thread):
                pool.charge(1.0)

        threads = [threading.Thread(target=consumer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Unlocked read-modify-write would drop updates here.
        assert pool.charged == per_thread * threads_n

    def test_two_solves_sharing_one_pool(self, fig1):
        # The service charges completed jobs against one tenant pool;
        # both solves' gate units must land, in full, in the same pool.
        pool = DeadlineBudget(1e12)
        first = qmkp(
            fig1, 2, rng=np.random.default_rng(7),
            use_upper_bound=False, deadline=pool,
        )
        second = qmkp(
            fig1, 2, rng=np.random.default_rng(11),
            use_upper_bound=False, deadline=pool,
        )
        assert pool.charged == first.gate_units + second.gate_units
