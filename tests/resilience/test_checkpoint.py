"""Checkpoint journal + qMKP resume tests.

The contract under test: a qMKP run journaled to a checkpoint and killed
at any probe boundary resumes **bit-identically** — same subset, same
cost totals, same reconciled ledger — and a journal that does not match
the run (wrong instance, edited lines, invented witnesses) is refused
loudly instead of silently replayed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import qmkp
from repro.obs import RunLedger, Tracer
from repro.resilience import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
)
from repro.resilience.checkpoint import SCHEMA, restore_rng_state, rng_state

HEADER = {"k": 2, "graph": "abc"}


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointJournal(path, HEADER) as journal:
            journal.append_probe({"threshold": 3, "found": True})
            journal.append_probe({"threshold": 5, "found": False})
        header, records = CheckpointJournal.load(path)
        assert header["schema"] == SCHEMA
        assert header["k"] == 2
        assert [r["threshold"] for r in records] == [3, 5]

    def test_fresh_open_truncates_stale_file(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointJournal(path, HEADER) as journal:
            journal.append_probe({"threshold": 3})
        with CheckpointJournal(path, HEADER):
            pass
        _, records = CheckpointJournal.load(path)
        assert records == []

    def test_resume_open_appends(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointJournal(path, HEADER) as journal:
            journal.append_probe({"threshold": 3})
        with CheckpointJournal(path, HEADER, resume=True) as journal:
            assert journal.records_written == 1
            journal.append_probe({"threshold": 5})
        _, records = CheckpointJournal.load(path)
        assert [r["threshold"] for r in records] == [3, 5]

    def test_resume_open_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointJournal(path, HEADER):
            pass
        with pytest.raises(CheckpointMismatchError, match="header field"):
            CheckpointJournal(path, {"k": 3, "graph": "abc"}, resume=True)

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointJournal(path, HEADER) as journal:
            journal.append_probe({"threshold": 3})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"threshold": 5, "fo')  # kill mid-write
        _, records = CheckpointJournal.load(path)
        assert [r["threshold"] for r in records] == [3]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointJournal(path, HEADER) as journal:
            journal.append_probe({"threshold": 3})
            journal.append_probe({"threshold": 5})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptError, match="unparseable"):
            CheckpointJournal.load(path)

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "run.wal"
        path.write_text(json.dumps({"schema": "other/v9"}) + "\n")
        with pytest.raises(CheckpointMismatchError, match="schema"):
            CheckpointJournal.load(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "run.wal"
        path.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            CheckpointJournal.load(path)


class TestRngState:
    def test_round_trip_restores_stream(self):
        rng = np.random.default_rng(7)
        rng.random(5)
        state = rng_state(rng)
        expected = rng.random(8).tolist()
        other = np.random.default_rng(999)
        restore_rng_state(other, state)
        assert other.random(8).tolist() == expected

    def test_state_is_json_safe(self):
        state = rng_state(np.random.default_rng(7))
        json.dumps(state)  # must not raise

    def test_kind_mismatch_rejected(self):
        state = rng_state(np.random.default_rng(7))
        state["bit_generator"] = "MT19937"
        with pytest.raises(CheckpointMismatchError, match="RNG kind"):
            restore_rng_state(np.random.default_rng(7), state)


class TestQmkpResume:
    """End-to-end resume semantics through the solver itself."""

    def _run(self, graph, **kwargs):
        return qmkp(
            graph, 2, rng=np.random.default_rng(7), use_upper_bound=False,
            **kwargs,
        )

    def test_full_journal_resume_is_bit_identical(self, fig1, tmp_path):
        path = tmp_path / "run.wal"
        reference = self._run(fig1)
        journaled = self._run(fig1, checkpoint=path)
        assert journaled.subset == reference.subset
        resumed = self._run(fig1, checkpoint=path, resume=path)
        assert resumed.subset == reference.subset
        assert resumed.oracle_calls == reference.oracle_calls
        assert resumed.gate_units == reference.gate_units
        assert resumed.qtkp_calls == reference.qtkp_calls
        assert resumed.resumed_probes == reference.qtkp_calls

    def test_partial_journal_resume_is_bit_identical(self, fig1, tmp_path):
        path = tmp_path / "run.wal"
        reference = self._run(fig1)
        assert reference.qtkp_calls >= 2  # the scenario needs a mid-point
        self._run(fig1, checkpoint=path)
        # Simulate a kill after the first probe: drop every later record.
        lines = path.read_text().splitlines()
        truncated = tmp_path / "truncated.wal"
        truncated.write_text("\n".join(lines[:2]) + "\n")
        resumed = self._run(fig1, checkpoint=truncated, resume=truncated)
        assert resumed.resumed_probes == 1
        assert resumed.subset == reference.subset
        assert resumed.oracle_calls == reference.oracle_calls
        assert resumed.gate_units == reference.gate_units
        # The journal was extended back to the full run.
        _, records = CheckpointJournal.load(truncated)
        assert len(records) == reference.qtkp_calls

    def test_resume_ledger_reconciles(self, fig1, tmp_path):
        path = tmp_path / "run.wal"
        self._run(fig1, checkpoint=path)
        lines = path.read_text().splitlines()
        truncated = tmp_path / "truncated.wal"
        truncated.write_text("\n".join(lines[:2]) + "\n")
        tracer = Tracer()
        resumed = self._run(
            fig1, checkpoint=truncated, resume=truncated, tracer=tracer
        )
        assert resumed.resumed_probes == 1
        assert RunLedger.from_tracer(tracer).verify(raise_on_drift=False) == []

    def test_resume_rejects_other_instance(self, fig1, small_random_graph, tmp_path):
        path = tmp_path / "run.wal"
        self._run(fig1, checkpoint=path)
        with pytest.raises(CheckpointMismatchError):
            qmkp(
                small_random_graph, 2, rng=np.random.default_rng(7),
                use_upper_bound=False, resume=path,
            )

    def test_resume_rejects_forged_witness(self, fig1, tmp_path):
        path = tmp_path / "run.wal"
        self._run(fig1, checkpoint=path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        if not record["found"]:
            pytest.skip("first probe was not a witness on this instance")
        record["subset"] = record["subset"][:1]  # forged: below threshold
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptError, match="re-verification"):
            self._run(fig1, resume=path)

    def test_checkpointing_does_not_change_the_answer(self, fig1, tmp_path):
        reference = self._run(fig1)
        journaled = self._run(fig1, checkpoint=tmp_path / "run.wal")
        assert journaled.subset == reference.subset
        assert journaled.oracle_calls == reference.oracle_calls
        assert journaled.resumed_probes == 0


class TestResumable:
    """``CheckpointJournal.resumable`` — the auto-resume gate.

    Only journals that never got a durable header (zero-length, torn
    first line) read as "nothing to resume"; anything with a parseable
    header is resumable=True so that a *mismatched* journal still fails
    loudly in ``load`` instead of being silently restarted.
    """

    def test_missing_file(self, tmp_path):
        assert CheckpointJournal.resumable(tmp_path / "nope.wal") is False

    def test_zero_length_file(self, tmp_path):
        path = tmp_path / "empty.wal"
        path.touch()
        assert CheckpointJournal.resumable(path) is False

    def test_torn_header(self, tmp_path):
        path = tmp_path / "torn.wal"
        path.write_text('{"schema": 1, "k"')  # kill landed mid-write
        assert CheckpointJournal.resumable(path) is False

    def test_whitespace_only(self, tmp_path):
        path = tmp_path / "blank.wal"
        path.write_text("\n")
        assert CheckpointJournal.resumable(path) is False

    def test_valid_journal(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointJournal(path, HEADER) as journal:
            journal.append_probe({"threshold": 3, "found": True})
        assert CheckpointJournal.resumable(path) is True

    def test_header_only_journal(self, tmp_path):
        path = tmp_path / "run.wal"
        with CheckpointJournal(path, HEADER):
            pass
        assert CheckpointJournal.resumable(path) is True

    def test_foreign_header_still_resumable(self, tmp_path):
        # Deliberate: a journal from a *different* run must reach
        # ``load`` and raise a mismatch, not be treated as fresh.
        path = tmp_path / "foreign.wal"
        path.write_text(json.dumps({"schema": 999, "k": 5}) + "\n")
        assert CheckpointJournal.resumable(path) is True
