"""Unit tests for the fault-injection layer."""

import math

import pytest

from repro.annealing import (
    BinaryQuadraticModel,
    EmbeddingError,
    QPURuntimeExceeded,
    SampleSet,
)
from repro.resilience import FaultInjectingSampler, FaultPlan, TransientSamplerError


def _bqm():
    return BinaryQuadraticModel({"a": -1.0, "b": -1.0}, {("a", "b"): 2.0})


class FakeSampler:
    """Deterministic inner sampler: returns the two single-one states."""

    max_call_time_us = 1000.0

    def __init__(self):
        self.calls = 0

    def sample(self, bqm, annealing_time_us=1.0, num_reads=10, seed=None, **kw):
        self.calls += 1
        states = [{"a": 1, "b": 0}, {"a": 0, "b": 1}]
        energies = [bqm.energy(s) for s in states]
        out = SampleSet.from_states(states, energies)
        out.info.update(
            {
                "total_runtime_us": annealing_time_us * num_reads,
                "chain_break_fraction": 0.05,
            }
        )
        return out


class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("transient=2,storm:0.5,latency=0.25,seed=7")
        assert plan.transient == 2
        assert plan.storm == 0.5
        assert plan.latency == 0.25
        assert plan.seed == 7

    def test_parse_empty_is_noop(self):
        assert FaultPlan.parse("").is_noop
        assert FaultPlan().is_noop

    def test_parse_rejects_unknown_class(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            FaultPlan.parse("explosions=1")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad value"):
            FaultPlan.parse("transient=many")

    def test_probability_bounds_checked(self):
        with pytest.raises(ValueError):
            FaultPlan(storm=1.5)
        with pytest.raises(ValueError):
            FaultPlan(transient=-1)


class TestScriptedFaults:
    def test_transient_countdown_then_success(self):
        inner = FakeSampler()
        sampler = FaultInjectingSampler(inner, FaultPlan(transient=2))
        for _ in range(2):
            with pytest.raises(TransientSamplerError):
                sampler.sample(_bqm())
        result = sampler.sample(_bqm())
        assert len(result.samples) == 2
        assert inner.calls == 1  # the two faulted calls never reached it
        assert [f for _, f in sampler.fault_log] == ["transient", "transient"]

    def test_embedding_and_runtime_faults_use_real_types(self):
        sampler = FaultInjectingSampler(
            FakeSampler(), FaultPlan(embedding=1, runtime=1)
        )
        with pytest.raises(EmbeddingError):
            sampler.sample(_bqm())
        with pytest.raises(QPURuntimeExceeded):
            sampler.sample(_bqm())
        sampler.sample(_bqm())  # plan exhausted


class TestSamplesetFaults:
    def test_storm_flips_bits_and_reports_fraction(self):
        plan = FaultPlan(storm=1.0, storm_flip_prob=0.5, seed=0)
        sampler = FaultInjectingSampler(FakeSampler(), plan)
        result = sampler.sample(_bqm())
        assert result.info["injected_storm"] is True
        # composed rate: 0.5 + 0.5 * 0.05
        assert result.info["chain_break_fraction"] == pytest.approx(0.525)
        # energies stay consistent with the clean model
        bqm = _bqm()
        for s in result.samples:
            assert s.energy == pytest.approx(bqm.energy(s.assignment))

    def test_corrupt_rows_are_detectably_broken(self):
        plan = FaultPlan(corrupt=1.0, corrupt_row_prob=1.0, seed=0)
        sampler = FaultInjectingSampler(FakeSampler(), plan)
        result = sampler.sample(_bqm())
        assert result.info["injected_corruption"] is True
        assert all(math.isnan(s.energy) for s in result.samples)
        assert any(
            x not in (0, 1)
            for s in result.samples
            for x in s.assignment.values()
        )

    def test_latency_spike_inflates_reported_runtime(self):
        plan = FaultPlan(latency=1.0, latency_factor=8.0, seed=0)
        sampler = FaultInjectingSampler(FakeSampler(), plan)
        result = sampler.sample(_bqm(), annealing_time_us=1.0, num_reads=10)
        assert result.info["total_runtime_us"] == pytest.approx(80.0)

    def test_seeded_injection_is_deterministic(self):
        def run():
            plan = FaultPlan(storm=0.5, seed=42)
            sampler = FaultInjectingSampler(FakeSampler(), plan)
            log = []
            for _ in range(10):
                sampler.sample(_bqm())
                log.append(tuple(sampler.fault_log))
            return log

        assert run() == run()


class TestPassthrough:
    def test_exposes_inner_call_cap(self):
        sampler = FaultInjectingSampler(FakeSampler(), FaultPlan())
        assert sampler.max_call_time_us == 1000.0

    def test_noop_plan_is_transparent(self):
        inner = FakeSampler()
        sampler = FaultInjectingSampler(inner, None)
        result = sampler.sample(_bqm(), annealing_time_us=2.0, num_reads=5)
        assert result.info["total_runtime_us"] == pytest.approx(10.0)
        assert sampler.fault_log == []
