"""The acceptance matrix: every fault class, injected deterministically
into a full ``qamkp`` solve, must still yield a feasible k-plex through
the resilient pipeline, never overdraw the runtime budget, and leave a
complete :class:`ResilienceReport` trail.
"""

import pytest

from repro.core import qamkp
from repro.datasets import figure1_graph
from repro.kplex import is_kplex

BUDGET_US = 500.0

#: fault-class spec -> does it force a fallback off the qpu rung?
FAULT_MATRIX = {
    "transient": "transient=2,seed=1",
    "embedding": "embedding=1,seed=1",
    "runtime": "runtime=1,seed=1",
    "storm": "storm=1.0,seed=3",
    "corrupt": "corrupt=1.0,corrupt_row_prob=1.0,seed=3",
    "latency": "latency=1.0,latency_factor=8,seed=3",
}


@pytest.mark.parametrize("fault", sorted(FAULT_MATRIX))
def test_fault_class_degrades_gracefully(fault):
    """Acceptance criterion: feasible answer, budget respected, full trail."""
    g = figure1_graph()
    result = qamkp(
        g, 2,
        runtime_us=BUDGET_US,
        solver="qpu",
        seed=0,
        retries=3,
        fallback=True,
        fault_plan=FAULT_MATRIX[fault],
    )
    # 1. the answer is a usable k-plex
    assert is_kplex(g, result.repaired, 2)
    assert result.repaired_size >= 1
    # 2. the budget was never overdrawn, across all retries and rungs
    report = result.info["resilience"]
    assert report["charged_us"] <= report["budget_us"] + 1e-9
    assert report["budget_us"] == BUDGET_US
    for attempt in report["attempts"]:
        assert attempt["charged_us"] >= 0.0
        assert attempt["backoff_us"] >= 0.0
    # 3. the report enumerates every attempt and names the backend used
    assert report["attempts"], "no attempts recorded"
    assert report["final_backend"] == result.info["backend_used"]
    assert report["final_backend"] in ("qpu", "sa", "tabu", "greedy")
    # scripted faults must show up in the trail
    if fault in ("transient", "embedding", "runtime"):
        expected = {"transient": "transient",
                    "embedding": "embedding",
                    "runtime": "runtime_exceeded"}[fault]
        assert expected in report["faults"]


@pytest.mark.parametrize("fault", sorted(FAULT_MATRIX))
def test_fault_matrix_is_deterministic(fault):
    """Same seed, same plan: bit-identical resilience trail."""

    def run():
        result = qamkp(
            figure1_graph(), 2,
            runtime_us=BUDGET_US, solver="qpu", seed=0,
            retries=2, fallback=True, fault_plan=FAULT_MATRIX[fault],
        )
        report = result.info["resilience"]
        return (
            result.cost,
            frozenset(result.repaired),
            report["charged_us"],
            tuple((a["outcome"], a["fault"]) for a in report["attempts"]),
        )

    assert run() == run()


def test_clean_run_reports_no_faults():
    """The resilient path is transparent when nothing goes wrong."""
    result = qamkp(
        figure1_graph(), 2,
        runtime_us=BUDGET_US, solver="qpu", seed=0, retries=3,
    )
    report = result.info["resilience"]
    assert report["faults"] == []
    assert report["final_backend"] == "qpu"
    assert len(report["attempts"]) == 1


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(5))
def test_combined_fault_soak(seed):
    """Slow soak: several fault classes at once, many seeds — the cascade
    must always land on a feasible answer within budget."""
    g = figure1_graph()
    result = qamkp(
        g, 2,
        runtime_us=BUDGET_US, solver="qpu", seed=seed,
        retries=3, fallback=True,
        fault_plan=f"transient=1,storm=0.4,corrupt=0.3,latency=0.3,seed={seed}",
    )
    assert is_kplex(g, result.repaired, 2)
    report = result.info["resilience"]
    assert report["charged_us"] <= report["budget_us"] + 1e-9
