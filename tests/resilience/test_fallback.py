"""Unit tests for the qpu -> sa -> tabu -> greedy degradation cascade."""

import pytest

from repro.core.qubo_formulation import build_mkp_qubo
from repro.datasets import figure1_graph
from repro.kplex import is_kplex
from repro.resilience import (
    CASCADE_ORDER,
    FallbackCascade,
    FaultInjectingSampler,
    FaultPlan,
    RetryPolicy,
)


@pytest.fixture(scope="module")
def instance():
    g = figure1_graph()
    return g, 2, build_mkp_qubo(g, 2, 2.0)


class AlwaysFailingSampler:
    max_call_time_us = None

    def sample(self, *a, **kw):
        from repro.resilience import TransientSamplerError

        raise TransientSamplerError("down for maintenance")


class TestConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backends"):
            FallbackCascade(backends=("qpu", "quantum-teleporter"))

    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError):
            FallbackCascade(backends=())


class TestDescent:
    def test_qpu_failure_falls_to_sa(self, instance):
        graph, k, model = instance
        sampler = FaultInjectingSampler(
            AlwaysFailingSampler(), FaultPlan()
        )
        cascade = FallbackCascade(
            sampler, policy=RetryPolicy(max_attempts=2, backoff_base_us=0.0)
        )
        outcome = cascade.solve(model, graph, k, runtime_us=500.0, seed=0)
        assert outcome.backend == "sa"
        assert outcome.report.fallbacks[0] == "sa"
        subset = model.decode(outcome.assignment)
        assert subset  # sa found something decodable

    def test_no_qpu_configured_skips_to_sa(self, instance):
        graph, k, model = instance
        cascade = FallbackCascade(qpu_sampler=None)
        outcome = cascade.solve(model, graph, k, runtime_us=1000.0, seed=0)
        assert outcome.backend == "sa"

    def test_zero_budget_lands_on_tabu(self, instance):
        graph, k, model = instance
        # 0.5 us cannot pay for a single 100 us SA shot; tabu is free.
        cascade = FallbackCascade(qpu_sampler=None)
        outcome = cascade.solve(model, graph, k, runtime_us=0.5, seed=0)
        assert outcome.backend == "tabu"
        # warm-started tabu matches the optimum on Fig. 1
        assert len(model.decode(outcome.assignment)) == 4

    def test_greedy_rung_always_answers(self, instance):
        graph, k, model = instance
        cascade = FallbackCascade(qpu_sampler=None, backends=("greedy",))
        outcome = cascade.solve(model, graph, k, runtime_us=0.0, seed=0)
        assert outcome.backend == "greedy"
        subset = model.decode(outcome.assignment)
        assert is_kplex(graph, subset, k)
        assert outcome.cost == pytest.approx(-len(subset))

    def test_without_terminal_rung_reraises(self, instance):
        graph, k, model = instance
        cascade = FallbackCascade(
            AlwaysFailingSampler(),
            backends=("qpu",),
            policy=RetryPolicy(max_attempts=2, backoff_base_us=0.0),
        )
        from repro.resilience import TransientSamplerError

        with pytest.raises(TransientSamplerError) as excinfo:
            cascade.solve(model, graph, k, runtime_us=100.0, seed=0)
        assert excinfo.value.resilience_report.attempts


class TestReport:
    def test_report_enumerates_everything(self, instance):
        graph, k, model = instance
        cascade = FallbackCascade(
            AlwaysFailingSampler(),
            policy=RetryPolicy(max_attempts=3, backoff_base_us=10.0),
        )
        outcome = cascade.solve(model, graph, k, runtime_us=500.0, seed=0)
        report = outcome.report.as_dict()
        backends = [a["backend"] for a in report["attempts"]]
        assert backends.count("qpu") == 3
        assert backends[-1] == "sa"
        assert report["final_backend"] == "sa"
        assert report["faults"].count("transient") == 3
        assert report["charged_us"] <= report["budget_us"]

    def test_budget_is_shared_across_rungs(self, instance):
        graph, k, model = instance
        cascade = FallbackCascade(
            AlwaysFailingSampler(),
            policy=RetryPolicy(max_attempts=2, backoff_base_us=100.0),
        )
        outcome = cascade.solve(model, graph, k, runtime_us=1000.0, seed=0)
        # sa shots were sized from what the qpu attempts left over
        sa_attempt = next(
            a for a in outcome.report.attempts if a.backend == "sa"
        )
        backoff_spent = sum(a.backoff_us for a in outcome.report.attempts)
        assert sa_attempt.requested_reads == int((1000.0 - backoff_spent) // 100.0)
        assert outcome.report.charged_us <= 1000.0


class TestOrder:
    def test_cascade_order_constant(self):
        assert CASCADE_ORDER == ("qpu", "sa", "tabu", "greedy")
