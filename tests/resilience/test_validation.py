"""Unit tests for sampleset validation and quarantine."""

import pytest

from repro.annealing import BinaryQuadraticModel, Sample, SampleSet
from repro.resilience import validate_sampleset


def _bqm():
    return BinaryQuadraticModel({"a": -1.0, "b": -1.0}, {("a", "b"): 2.0})


def _set(samples):
    return SampleSet(list(samples))


class TestCleanPassthrough:
    def test_clean_set_is_untouched(self):
        bqm = _bqm()
        ss = _set([Sample({"a": 1, "b": 0}, -1.0), Sample({"a": 0, "b": 0}, 0.0)])
        clean, report = validate_sampleset(ss, bqm)
        assert report.clean
        assert report.kept_rows == 2
        assert len(clean.samples) == 2
        assert "validation" not in clean.info


class TestEnergyRepair:
    def test_inconsistent_energy_is_recomputed(self):
        bqm = _bqm()
        ss = _set([Sample({"a": 1, "b": 1}, -99.0)])
        clean, report = validate_sampleset(ss, bqm)
        assert report.repaired_energies == 1
        assert clean.first.energy == pytest.approx(bqm.energy({"a": 1, "b": 1}))
        assert report.reasons == {"inconsistent_energy": 1}

    def test_nan_energy_is_recomputed(self):
        bqm = _bqm()
        ss = _set([Sample({"a": 1, "b": 0}, float("nan"))])
        clean, report = validate_sampleset(ss, bqm)
        assert report.repaired_energies == 1
        assert clean.first.energy == pytest.approx(-1.0)
        assert report.reasons == {"non_finite_energy": 1}


class TestQuarantine:
    def test_non_binary_value_quarantined(self):
        clean, report = validate_sampleset(
            _set([Sample({"a": 3, "b": 0}, 0.0)]), _bqm()
        )
        assert not clean.samples
        assert report.quarantined_rows == 1
        assert report.reasons == {"non_binary_value": 1}

    def test_missing_variable_quarantined(self):
        clean, report = validate_sampleset(_set([Sample({"a": 1}, 0.0)]), _bqm())
        assert report.quarantined_rows == 1
        assert report.reasons == {"missing_variable": 1}

    def test_nan_value_quarantined(self):
        clean, report = validate_sampleset(
            _set([Sample({"a": float("nan"), "b": 0}, 0.0)]), _bqm()
        )
        assert report.quarantined_rows == 1
        assert report.reasons == {"non_finite_value": 1}

    def test_occurrence_counts_respected(self):
        bqm = _bqm()
        ss = _set(
            [
                Sample({"a": 1, "b": 0}, -1.0, num_occurrences=3),
                Sample({"a": 7, "b": 0}, 0.0, num_occurrences=2),
            ]
        )
        clean, report = validate_sampleset(ss, bqm)
        assert report.total_rows == 5
        assert report.kept_rows == 3
        assert report.quarantined_rows == 2

    def test_mixed_set_keeps_good_rows_and_records_report(self):
        bqm = _bqm()
        ss = _set(
            [
                Sample({"a": 1, "b": 0}, -1.0),
                Sample({"a": 2, "b": 0}, 0.0),
                Sample({"a": 0, "b": 1}, 5.0),  # wrong energy, repaired
            ]
        )
        clean, report = validate_sampleset(ss, bqm)
        assert len(clean.samples) == 2
        assert clean.info["validation"]["quarantined_rows"] == 1
        assert clean.info["validation"]["repaired_energies"] == 1
        # sorted after repair: both survivors have energy -1
        assert clean.lowest_energy == pytest.approx(-1.0)
