"""Fault-matrix acceptance tests for the gate stack.

Mirror of ``test_fault_matrix.py`` (the annealing stack's matrix): every
gate fault class, alone and composed, must either recover to the
seed-identical clean answer or exit through a documented degradation
path — never return an unverified wrong answer, never diverge between
two runs with the same seeds.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import qmkp, qtkp
from repro.obs import RunLedger, Tracer
from repro.resilience import (
    GateFaultInjector,
    GateFaultPlan,
    TransientSimulatorError,
)
from repro.resilience.gate import execute_with_retries


def _scrub(node):
    """Drop wall-clock fields so ledgers compare on structure + totals."""
    if isinstance(node, dict):
        return {k: _scrub(v) for k, v in node.items() if k != "duration_s"}
    if isinstance(node, list):
        return [_scrub(v) for v in node]
    return node


def _ledger_json(tracer: Tracer) -> str:
    return json.dumps(
        _scrub(RunLedger.from_tracer(tracer).as_dict()),
        sort_keys=True,
        default=str,
    )


class TestGateFaultPlan:
    def test_parse_round_trip(self):
        plan = GateFaultPlan.parse("transient=2,readout=0.5,seed=7")
        assert plan.transient == 2
        assert plan.readout == 0.5
        assert plan.seed == 7
        assert not plan.is_noop

    def test_parse_colon_separator(self):
        plan = GateFaultPlan.parse("depolarize:0.1,truncate_bond:2")
        assert plan.depolarize == 0.1
        assert plan.truncate_bond == 2

    def test_parse_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown gate fault class"):
            GateFaultPlan.parse("storm=0.5")

    def test_parse_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            GateFaultPlan.parse("transient=two")

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="probability"):
            GateFaultPlan(readout=1.5)

    def test_noop_detection(self):
        assert GateFaultPlan().is_noop
        assert GateFaultPlan(seed=99).is_noop
        assert not GateFaultPlan(transient=1).is_noop


class TestFaultMatrix:
    """Every fault class recovers to the clean answer or degrades loudly."""

    CLEAN_SEED = 7

    def _clean(self, fig1):
        return qmkp(fig1, 2, rng=np.random.default_rng(self.CLEAN_SEED))

    @pytest.mark.parametrize(
        "spec",
        [
            "transient=2,seed=3",
            "readout=0.6,seed=3",
            "depolarize=0.08,seed=3",
            "transient=1,readout=0.4,depolarize=0.05,seed=3",
        ],
    )
    def test_fault_class_recovers_to_clean_answer(self, fig1, spec):
        clean = self._clean(fig1)
        noisy = qmkp(
            fig1, 2, rng=np.random.default_rng(self.CLEAN_SEED), gate_faults=spec
        )
        assert noisy.subset == clean.subset
        assert noisy.verification is not None
        v = noisy.verification
        # Accounting must balance: every measurement either verified or
        # was rejected as a false positive.
        assert v["measurements"] == v["verified"] + v["false_positives"]
        assert not v["false_negative"]

    @pytest.mark.parametrize("counting", ["exact", "quantum", "bbht"])
    def test_faults_recover_across_counting_modes(self, fig1, counting):
        clean = qmkp(
            fig1, 2, counting=counting, rng=np.random.default_rng(11)
        )
        noisy = qmkp(
            fig1, 2, counting=counting, rng=np.random.default_rng(11),
            gate_faults="transient=1,readout=0.3,seed=5",
        )
        assert len(noisy.subset) == len(clean.subset)

    def test_same_seeds_same_noisy_run(self, fig1):
        spec = "transient=1,readout=0.5,depolarize=0.05,seed=13"
        a = qmkp(fig1, 2, rng=np.random.default_rng(21), gate_faults=spec)
        b = qmkp(fig1, 2, rng=np.random.default_rng(21), gate_faults=spec)
        assert a.subset == b.subset
        assert a.oracle_calls == b.oracle_calls
        assert a.verification == b.verification

    def test_noop_plan_byte_identical_to_no_injector(self, fig1):
        t_clean, t_noop = Tracer(), Tracer()
        clean = qmkp(fig1, 2, rng=np.random.default_rng(7), tracer=t_clean)
        noop = qmkp(
            fig1, 2, rng=np.random.default_rng(7), tracer=t_noop,
            gate_faults="seed=42",
        )
        assert noop.subset == clean.subset
        assert noop.oracle_calls == clean.oracle_calls
        assert noop.verification is None
        assert _ledger_json(t_noop) == _ledger_json(t_clean)

    def test_persistent_transient_exhausts_retry_budget(self, fig1):
        # More scripted failures than the retry budget: the documented
        # degradation is a raised TransientSimulatorError, not a wrong
        # answer.
        injector = GateFaultInjector(GateFaultPlan(transient=100))
        with pytest.raises(TransientSimulatorError):
            qtkp(fig1, 2, 4, injector=injector, max_attempts=3)

    def test_fault_log_surfaced_on_result(self, fig1):
        result = qmkp(
            fig1, 2, rng=np.random.default_rng(7),
            gate_faults="transient=2,seed=3",
        )
        kinds = [name for _, name in result.verification["faults"]]
        assert kinds.count("transient") == 2

    def test_ledger_reconciles_under_faults(self, fig1):
        tracer = Tracer()
        qmkp(
            fig1, 2, rng=np.random.default_rng(7), tracer=tracer,
            gate_faults="transient=1,readout=0.5,seed=3",
        )
        assert RunLedger.from_tracer(tracer).verify(raise_on_drift=False) == []

    def test_ledger_reconciles_under_bbht_faults(self, fig1):
        tracer = Tracer()
        qmkp(
            fig1, 2, counting="bbht", rng=np.random.default_rng(7),
            tracer=tracer, gate_faults="readout=0.4,seed=3",
        )
        assert RunLedger.from_tracer(tracer).verify(raise_on_drift=False) == []


class TestInjectorMechanics:
    def test_transient_countdown(self):
        injector = GateFaultInjector(GateFaultPlan(transient=2))

        class _Engine:
            def run(self, iterations):
                return "ran"

        engine = _Engine()
        for _ in range(2):
            with pytest.raises(TransientSimulatorError):
                injector.execute(engine, 1)
        assert injector.execute(engine, 1) == "ran"
        assert injector.fault_log == [(1, "transient"), (2, "transient")]

    def test_corrupt_measurement_deterministic(self):
        a = GateFaultInjector(GateFaultPlan(readout=1.0, seed=5))
        b = GateFaultInjector(GateFaultPlan(readout=1.0, seed=5))
        masks_a = [a.corrupt_measurement(0b1010, 4) for _ in range(16)]
        masks_b = [b.corrupt_measurement(0b1010, 4) for _ in range(16)]
        assert masks_a == masks_b

    def test_corrupt_measurement_off_is_identity(self):
        injector = GateFaultInjector(GateFaultPlan())
        assert injector.corrupt_measurement(0b1010, 4) == 0b1010
        assert injector.fault_log == []

    def test_mps_bond_cap_forcing(self):
        injector = GateFaultInjector(GateFaultPlan(truncate_bond=2))
        assert injector.mps_bond_cap(None) == 2
        assert injector.mps_bond_cap(8) == 2
        assert injector.mps_bond_cap(1) == 1
        clean = GateFaultInjector(GateFaultPlan())
        assert clean.mps_bond_cap(None) is None
        assert clean.mps_bond_cap(8) == 8

    def test_execute_with_retries_accounting(self):
        from repro.resilience import GateVerification

        injector = GateFaultInjector(GateFaultPlan(transient=2))
        stats = GateVerification()

        class _Engine:
            def run(self, iterations):
                return "ran"

        out = execute_with_retries(_Engine(), 1, injector, stats, None or _null(), 5)
        assert out == "ran"
        assert stats.transient_retries == 2


def _null():
    from repro.obs import NULL_TRACER

    return NULL_TRACER
