"""Unit tests for the budgeted retry loop and circuit breaker."""

import pytest

from repro.annealing import BinaryQuadraticModel, EmbeddingError, SampleSet
from repro.annealing.qpu import QPURuntimeExceeded
from repro.resilience import (
    BudgetExhausted,
    CircuitBreaker,
    CircuitOpenError,
    ResilientSampler,
    RetryPolicy,
    TransientSamplerError,
)


def _bqm():
    return BinaryQuadraticModel({"a": -1.0, "b": -1.0}, {("a", "b"): 2.0})


class ScriptedSampler:
    """Raises the scripted exceptions in order, then succeeds forever."""

    def __init__(self, script=(), max_call_time_us=None, chain_break=0.05):
        self.script = list(script)
        self.max_call_time_us = max_call_time_us
        self.chain_break = chain_break
        self.requests = []  # (num_reads, annealing_time_us) per real call

    def sample(self, bqm, annealing_time_us=1.0, num_reads=10, seed=None, **kw):
        if self.script:
            raise self.script.pop(0)
        self.requests.append((num_reads, annealing_time_us))
        out = SampleSet.from_states([{"a": 1, "b": 0}], [bqm.energy({"a": 1, "b": 0})])
        out.info.update(
            {
                "total_runtime_us": annealing_time_us * num_reads,
                "chain_break_fraction": self.chain_break,
            }
        )
        return out


class TestRetrySuccess:
    def test_succeeds_after_transient_faults(self):
        inner = ScriptedSampler([TransientSamplerError("x"), TransientSamplerError("x")])
        sampler = ResilientSampler(inner, RetryPolicy(max_attempts=4))
        result, report = sampler.sample(
            _bqm(), annealing_time_us=1.0, num_reads=100,
            runtime_budget_us=1000.0, seed=0,
        )
        assert result.first.assignment == {"a": 1, "b": 0}
        outcomes = [a.outcome for a in report.attempts]
        assert outcomes == ["fault", "fault", "ok"]
        assert report.final_backend == "qpu"
        assert report.charged_us <= report.budget_us

    def test_backoff_debits_budget_and_shrinks_reads(self):
        inner = ScriptedSampler([TransientSamplerError("x")])
        sampler = ResilientSampler(inner, RetryPolicy(max_attempts=3))
        _, report = sampler.sample(
            _bqm(), annealing_time_us=1.0, num_reads=500,
            runtime_budget_us=500.0, seed=1,
        )
        retry = report.attempts[1]
        assert retry.backoff_us > 0
        # the retry could only afford what the backoff left over
        assert retry.requested_reads == int(500.0 - retry.backoff_us)
        assert report.charged_us <= 500.0

    def test_deterministic_given_seed(self):
        def run():
            inner = ScriptedSampler([TransientSamplerError("x")])
            sampler = ResilientSampler(inner, RetryPolicy(max_attempts=3))
            _, report = sampler.sample(
                _bqm(), num_reads=100, runtime_budget_us=500.0, seed=7
            )
            return [(a.outcome, a.backoff_us, a.requested_reads) for a in report.attempts]

        assert run() == run()


class TestBudget:
    def test_budget_exhaustion_raises(self):
        inner = ScriptedSampler([TransientSamplerError("x")] * 10)
        sampler = ResilientSampler(
            inner, RetryPolicy(max_attempts=10, backoff_base_us=400.0)
        )
        with pytest.raises((BudgetExhausted, TransientSamplerError)) as excinfo:
            sampler.sample(_bqm(), num_reads=100, runtime_budget_us=300.0, seed=0)
        report = excinfo.value.resilience_report
        assert report.charged_us <= report.budget_us

    def test_zero_read_budget_fails_immediately(self):
        inner = ScriptedSampler()
        sampler = ResilientSampler(inner)
        with pytest.raises(BudgetExhausted):
            sampler.sample(
                _bqm(), annealing_time_us=10.0, num_reads=5, runtime_budget_us=5.0
            )
        assert inner.requests == []

    def test_call_cap_clamps_reads(self):
        inner = ScriptedSampler(max_call_time_us=50.0)
        sampler = ResilientSampler(inner)
        result, report = sampler.sample(
            _bqm(), annealing_time_us=1.0, num_reads=500, runtime_budget_us=500.0
        )
        assert inner.requests == [(50, 1.0)]
        assert report.attempts[0].requested_reads == 50

    def test_runtime_exceeded_halves_next_request(self):
        # No advertised cap: the loop has to learn it from the exception.
        inner = ScriptedSampler([QPURuntimeExceeded("cap", cap_us=40.0)])
        sampler = ResilientSampler(inner, RetryPolicy(max_attempts=3))
        _, report = sampler.sample(
            _bqm(), annealing_time_us=1.0, num_reads=100,
            runtime_budget_us=200.0, seed=0,
        )
        assert report.attempts[0].fault == "runtime_exceeded"
        # second attempt clamped under the learned 40 us cap
        assert inner.requests[0][0] <= 40

    def test_latency_spike_cannot_overdraw_budget(self):
        class SlowSampler(ScriptedSampler):
            def sample(self, bqm, **kw):
                out = super().sample(bqm, **kw)
                out.info["total_runtime_us"] = 1e9
                return out

        sampler = ResilientSampler(SlowSampler())
        _, report = sampler.sample(_bqm(), num_reads=10, runtime_budget_us=100.0)
        assert report.charged_us <= 100.0


class TestPermanentFaults:
    def test_embedding_error_raises_immediately(self):
        inner = ScriptedSampler([EmbeddingError("no fit")] * 5)
        sampler = ResilientSampler(inner, RetryPolicy(max_attempts=5))
        with pytest.raises(EmbeddingError) as excinfo:
            sampler.sample(_bqm(), num_reads=10, runtime_budget_us=100.0)
        report = excinfo.value.resilience_report
        assert len(report.attempts) == 1  # no pointless retries
        assert report.attempts[0].fault == "embedding"


class TestQuarantineIntegration:
    def test_all_quarantined_counts_as_failure(self):
        class CorruptSampler(ScriptedSampler):
            def sample(self, bqm, **kw):
                out = super().sample(bqm, **kw)
                from repro.annealing import Sample

                return SampleSet(
                    [Sample({"a": 9, "b": 9}, 0.0)], dict(out.info)
                )

        sampler = ResilientSampler(CorruptSampler(), RetryPolicy(max_attempts=2))
        with pytest.raises(ValueError, match="quarantined"):
            sampler.sample(_bqm(), num_reads=10, runtime_budget_us=1000.0, seed=0)


class TestChainBreakStorm:
    def test_storm_retries_then_accepts_degraded(self):
        inner = ScriptedSampler(chain_break=0.95)
        sampler = ResilientSampler(inner, RetryPolicy(max_attempts=3))
        result, report = sampler.sample(
            _bqm(), num_reads=10, runtime_budget_us=1000.0, seed=0
        )
        assert [a.fault for a in report.attempts] == ["chain_break_storm"] * 3
        assert "degraded_accept" in report.fallbacks
        assert result.samples  # a noisy answer beats none


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_calls=100)
        inner = ScriptedSampler([TransientSamplerError("x")] * 10)
        sampler = ResilientSampler(
            inner, RetryPolicy(max_attempts=5, backoff_base_us=0.0), breaker=breaker
        )
        with pytest.raises(CircuitOpenError):
            sampler.sample(_bqm(), num_reads=1, runtime_budget_us=1000.0, seed=0)
        assert breaker.state == "open"

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=2)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # rejection 1
        assert breaker.allow()  # rejection 2 -> half-open probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_calls=1)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow()  # half-open
        breaker.record_failure()
        assert breaker.state == "open"

    def test_shared_breaker_carries_state_across_calls(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_calls=50)
        inner = ScriptedSampler([TransientSamplerError("x")] * 2)
        sampler = ResilientSampler(
            inner, RetryPolicy(max_attempts=2, backoff_base_us=0.0), breaker=breaker
        )
        with pytest.raises(TransientSamplerError):
            sampler.sample(_bqm(), num_reads=1, runtime_budget_us=100.0, seed=0)
        # next call through the same breaker fails fast without sampling
        with pytest.raises(CircuitOpenError):
            sampler.sample(_bqm(), num_reads=1, runtime_budget_us=100.0, seed=0)
        assert inner.requests == []
