"""Unit tests for the error model."""

import pytest

from repro.analysis import bound_error, exact_error, iterations_for_error, repeated_error


class TestErrorModel:
    def test_exact_error_small_at_optimum(self):
        assert exact_error(64, 1, 6) < 0.01

    def test_bound_dominates(self):
        assert bound_error(6) >= exact_error(64, 1, 6)

    def test_repeats_reduce_error(self):
        assert repeated_error(10, 3) == pytest.approx(bound_error(10) ** 3)

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            repeated_error(5, 0)

    def test_iterations_for_error_inverts_bound(self):
        for target in (0.1, 0.01, 0.001):
            iters = iterations_for_error(target)
            assert bound_error(iters) <= target
            if iters > 1:
                assert bound_error(iters - 1) > target

    def test_iterations_for_error_validation(self):
        with pytest.raises(ValueError):
            iterations_for_error(0.0)
        with pytest.raises(ValueError):
            iterations_for_error(1.5)


class TestNoisyGrover:
    def test_zero_noise_recovers_exact(self):
        from repro.analysis import noisy_success_probability
        from repro.grover import success_probability

        assert noisy_success_probability(64, 1, 6, 0.0) == pytest.approx(
            success_probability(64, 1, 6)
        )

    def test_full_noise_gives_uniform(self):
        from repro.analysis import noisy_success_probability

        assert noisy_success_probability(64, 1, 3, 1.0) == pytest.approx(1 / 64)

    def test_noise_never_helps(self):
        from repro.analysis import noisy_success_probability

        for rate in (0.0, 0.05, 0.2, 0.5):
            clean = noisy_success_probability(64, 1, 6, 0.0)
            noisy = noisy_success_probability(64, 1, 6, rate)
            assert noisy <= clean + 1e-12

    def test_strong_noise_shifts_optimum_earlier(self):
        from repro.analysis import noise_limited_iterations
        from repro.grover import optimal_iterations

        clean_opt = optimal_iterations(1 << 10, 1)
        noisy_opt = noise_limited_iterations(1 << 10, 1, 0.2)
        assert noisy_opt < clean_opt

    def test_invalid_rate(self):
        from repro.analysis import noisy_success_probability

        with pytest.raises(ValueError):
            noisy_success_probability(8, 1, 2, 1.5)
