"""Unit tests for table rendering and result persistence."""

import pytest

from repro.analysis import format_table, results_dir, write_result


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title(self):
        text = format_table(["c"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159265]])
        assert "3.142" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])


class TestResults:
    def test_results_dir_exists(self):
        assert results_dir().is_dir()

    def test_write_result(self):
        path = write_result("unit_test_artifact", "hello")
        assert path.read_text() == "hello\n"
        path.unlink()
