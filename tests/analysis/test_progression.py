"""Unit tests for anytime-behaviour analysis."""

import numpy as np
import pytest

from repro.analysis.progression import (
    AnytimeCurve,
    curve_from_cost_runs,
    curve_from_qmkp,
)


class TestConstruction:
    def test_from_events_drops_dominated(self):
        curve = AnytimeCurve.from_events([(1, 2.0), (2, 1.0), (3, 4.0)])
        assert curve.budgets == (1.0, 3.0)
        assert curve.qualities == (2.0, 4.0)

    def test_from_events_sorts(self):
        curve = AnytimeCurve.from_events([(5, 3.0), (1, 1.0)])
        assert curve.budgets == (1.0, 5.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            AnytimeCurve((1.0,), (1.0, 2.0))
        with pytest.raises(ValueError, match="ascending"):
            AnytimeCurve((2.0, 1.0), (1.0, 2.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            AnytimeCurve((1.0, 2.0), (2.0, 1.0))


class TestQueries:
    @pytest.fixture
    def curve(self):
        return AnytimeCurve((10.0, 50.0, 100.0), (1.0, 3.0, 4.0))

    def test_quality_at(self, curve):
        assert curve.quality_at(5) is None
        assert curve.quality_at(10) == 1.0
        assert curve.quality_at(75) == 3.0
        assert curve.quality_at(1000) == 4.0

    def test_budget_for(self, curve):
        assert curve.budget_for(1.0) == 10.0
        assert curve.budget_for(2.0) == 50.0
        assert curve.budget_for(5.0) is None

    def test_final_quality(self, curve):
        assert curve.final_quality() == 4.0
        assert AnytimeCurve((), ()).final_quality() is None


class TestAuc:
    def test_instant_optimum_is_one(self):
        curve = AnytimeCurve((0.0,), (4.0,))
        assert curve.normalized_auc(horizon=100, best_possible=4.0) == pytest.approx(1.0)

    def test_nothing_found_is_zero(self):
        curve = AnytimeCurve((), ())
        assert curve.normalized_auc(horizon=100, best_possible=4.0) == 0.0

    def test_half_time_half_quality(self):
        curve = AnytimeCurve((50.0,), (2.0,))
        # quality 2/4 over the second half => area fraction 0.25
        assert curve.normalized_auc(100, 4.0) == pytest.approx(0.25)

    def test_validation(self):
        curve = AnytimeCurve((0.0,), (1.0,))
        with pytest.raises(ValueError):
            curve.normalized_auc(0, 1.0)
        with pytest.raises(ValueError):
            curve.normalized_auc(10, 0.0)

    # The exact-value cases below pin the left-closed step convention
    # documented on normalized_auc; each expected area is computed by
    # hand from the segment geometry.

    def test_first_event_after_zero_contributes_zero_prefix(self):
        curve = AnytimeCurve((2.0, 6.0), (1.0, 3.0))
        # [0,2): 0;  [2,6): 4*1;  [6,10): 4*3  =>  16 / (10*4)
        assert curve.normalized_auc(10, 4.0) == 16.0 / 40.0

    def test_first_event_exactly_at_zero(self):
        curve = AnytimeCurve((0.0, 5.0), (1.0, 2.0))
        # [0,5): 5*1;  [5,10): 5*2  =>  15 / (10*2)
        assert curve.normalized_auc(10, 2.0) == 15.0 / 20.0

    def test_horizon_strictly_inside_last_segment_truncates(self):
        curve = AnytimeCurve((0.0, 4.0), (1.0, 3.0))
        # horizon 6 cuts the last segment: [0,4): 4*1;  [4,6): 2*3
        assert curve.normalized_auc(6, 3.0) == 10.0 / 18.0

    def test_horizon_inside_a_middle_segment_ignores_later_events(self):
        curve = AnytimeCurve((0.0, 4.0, 8.0), (1.0, 2.0, 5.0))
        # horizon 6: [0,4): 4*1;  [4,6): 2*2;  the 8.0 event is outside
        assert curve.normalized_auc(6, 5.0) == 8.0 / 30.0

    def test_event_exactly_at_horizon_adds_zero_width_segment(self):
        curve = AnytimeCurve((0.0, 10.0), (1.0, 4.0))
        # The event AT the horizon changes quality_at(10) but not the
        # area: [0,10) is all that is integrated.
        assert curve.quality_at(10) == 4.0
        assert curve.normalized_auc(10, 4.0) == 10.0 / 40.0

    def test_all_events_past_horizon_is_zero(self):
        curve = AnytimeCurve((20.0,), (4.0,))
        assert curve.normalized_auc(10, 4.0) == 0.0

    def test_result_is_clamped_to_unit_interval(self):
        # best_possible below the achieved quality would push past 1.
        curve = AnytimeCurve((0.0,), (10.0,))
        assert curve.normalized_auc(5, 1.0) == 1.0


class TestAdapters:
    def test_qmkp_adapter(self, fig1):
        from repro.core import qmkp

        result = qmkp(fig1, 2, rng=np.random.default_rng(0))
        curve = curve_from_qmkp(result)
        assert curve.final_quality() == result.size
        assert curve.normalized_auc(result.gate_units, result.size) > 0

    def test_cost_runs_adapter(self, fig1):
        from repro.core import cost_versus_runtime

        runs = cost_versus_runtime(
            fig1, 2, [10.0, 100.0, 1000.0], solver="sa", seed=1
        )
        curve = curve_from_cost_runs(runs)
        assert curve.final_quality() is not None
        # anytime quality never decreases
        qs = [curve.quality_at(b) for b in (10.0, 100.0, 1000.0)]
        assert qs == sorted(qs)
