"""Unit tests for the calibrated runtime model."""

import pytest

from repro.analysis import PAPER_ANCHOR, RuntimeModel


class TestRuntimeModel:
    def test_calibration_reproduces_anchor(self):
        model = RuntimeModel.calibrated(
            anchor_nodes=50, anchor_gate_units=100_000, anchor_n=10
        )
        assert model.classical_time_us(50, 10) == pytest.approx(PAPER_ANCHOR["bs_us"])
        assert model.quantum_time_us(100_000) == pytest.approx(PAPER_ANCHOR["qmkp_us"])

    def test_linear_scaling(self):
        model = RuntimeModel(classical_node_us=0.1, quantum_gate_us=0.001)
        assert model.quantum_time_us(2000) == pytest.approx(2.0)
        assert model.classical_time_us(10, 5) == pytest.approx(0.1 * 10 * 25)

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            RuntimeModel.calibrated(0, 100, 10)
        with pytest.raises(ValueError):
            RuntimeModel.calibrated(100, 0, 10)

    def test_speedup_preserved_at_anchor(self):
        model = RuntimeModel.calibrated(40, 80_000, 10)
        speedup = model.classical_time_us(40, 10) / model.quantum_time_us(80_000)
        assert speedup == pytest.approx(
            PAPER_ANCHOR["bs_us"] / PAPER_ANCHOR["qmkp_us"]
        )
