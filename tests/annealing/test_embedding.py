"""Unit tests for minor embedding."""

import pytest

from repro.annealing import (
    Embedding,
    EmbeddingError,
    chimera_graph,
    clique_embedding,
    find_embedding,
    pegasus_like_graph,
    suggest_chain_strength,
)


def _cycle_edges(n):
    return [(i, (i + 1) % n) for i in range(n)]


def _clique_edges(n):
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


class TestGreedyEmbedding:
    def test_sparse_problem_short_chains(self):
        hw = chimera_graph(4)
        emb = find_embedding(list(range(6)), _cycle_edges(6), hw, seed=0)
        emb.validate(_cycle_edges(6))
        assert emb.average_chain_length < 4

    def test_chains_disjoint(self):
        hw = chimera_graph(4)
        emb = find_embedding(list(range(8)), _cycle_edges(8), hw, seed=1)
        seen = set()
        for chain in emb.chains.values():
            assert not seen.intersection(chain)
            seen.update(chain)

    def test_impossible_raises(self):
        hw = chimera_graph(1)  # 8 qubits
        with pytest.raises(EmbeddingError):
            find_embedding(list(range(40)), _clique_edges(40), hw, seed=0)


class TestCliqueEmbedding:
    @pytest.mark.parametrize("n_vars", [4, 8, 12, 16])
    def test_valid_for_cliques(self, n_vars):
        hw = chimera_graph(6)
        emb = clique_embedding(list(range(n_vars)), hw)
        emb.validate(_clique_edges(n_vars))

    def test_chain_length_formula(self):
        hw = chimera_graph(8)
        emb = clique_embedding(list(range(16)), hw)  # needs C4 subgrid
        assert emb.max_chain_length == 5  # m' + 1

    def test_chain_length_grows_with_variables(self):
        hw = chimera_graph(10)
        small = clique_embedding(list(range(8)), hw)
        large = clique_embedding(list(range(32)), hw)
        assert large.average_chain_length > small.average_chain_length

    def test_too_many_variables(self):
        hw = chimera_graph(2)
        with pytest.raises(EmbeddingError, match="subgrid"):
            clique_embedding(list(range(12)), hw)

    def test_requires_grid_metadata(self):
        from repro.annealing import HardwareGraph

        hw = HardwareGraph(4, ((1,), (0,), (3,), (2,)), "adhoc")
        with pytest.raises(EmbeddingError, match="grid"):
            clique_embedding([0, 1], hw)

    def test_works_on_pegasus_like(self):
        hw = pegasus_like_graph(5)
        emb = clique_embedding(list(range(12)), hw)
        emb.validate(_clique_edges(12))


class TestFallback:
    def test_dense_problem_falls_back_to_clique(self):
        hw = chimera_graph(6)
        edges = _clique_edges(20)
        emb = find_embedding(list(range(20)), edges, hw, seed=0, max_tries=2)
        emb.validate(edges)


class TestEmbeddingProperties:
    def test_stats(self):
        hw = chimera_graph(2)
        emb = Embedding({0: (0,), 1: (4, 8)}, hw)
        assert emb.num_physical_qubits == 3
        assert emb.average_chain_length == 1.5
        assert emb.max_chain_length == 2

    def test_validate_overlap(self):
        hw = chimera_graph(2)
        emb = Embedding({0: (0,), 1: (0,)}, hw)
        with pytest.raises(EmbeddingError, match="overlap"):
            emb.validate([])

    def test_validate_disconnected_chain(self):
        hw = chimera_graph(2)
        emb = Embedding({0: (0, 1)}, hw)  # same shore: not coupled
        with pytest.raises(EmbeddingError, match="disconnected"):
            emb.validate([])

    def test_validate_missing_coupler(self):
        hw = chimera_graph(2)
        emb = Embedding({0: (0,), 1: (1,)}, hw)
        with pytest.raises(EmbeddingError, match="coupler"):
            emb.validate([(0, 1)])

    def test_validate_empty_chain(self):
        hw = chimera_graph(2)
        emb = Embedding({0: ()}, hw)
        with pytest.raises(EmbeddingError, match="empty"):
            emb.validate([])


class TestChainStrength:
    def test_scales_with_couplings(self):
        weak = suggest_chain_strength({}, {("a", "b"): 1.0})
        strong = suggest_chain_strength({}, {("a", "b"): 10.0})
        assert strong > weak

    def test_floor_at_one(self):
        assert suggest_chain_strength({}, {}) >= 1.0
