"""Unit tests for the simulated QPU sampler."""

import pytest

from repro.annealing import (
    BinaryQuadraticModel,
    QPURuntimeExceeded,
    SimulatedQPUSampler,
    chimera_graph,
)


@pytest.fixture(scope="module")
def qpu():
    return SimulatedQPUSampler(hardware=chimera_graph(4), max_call_time_us=1000.0)


def _toy_bqm():
    # minimum at x = (1, 1, 0): E = -3
    return BinaryQuadraticModel(
        {"a": -2.0, "b": -2.0, "c": 1.0},
        {("a", "b"): 1.0, ("b", "c"): 2.0},
    )


class TestValidation:
    def test_bad_annealing_time(self, qpu):
        with pytest.raises(ValueError):
            qpu.sample(_toy_bqm(), annealing_time_us=0)

    def test_bad_reads(self, qpu):
        with pytest.raises(ValueError):
            qpu.sample(_toy_bqm(), num_reads=0)

    def test_runtime_cap_enforced(self, qpu):
        with pytest.raises(QPURuntimeExceeded):
            qpu.sample(_toy_bqm(), annealing_time_us=100, num_reads=100)

    def test_cap_disabled(self):
        sampler = SimulatedQPUSampler(
            hardware=chimera_graph(2), max_call_time_us=None
        )
        ss = sampler.sample(_toy_bqm(), annealing_time_us=100, num_reads=20, seed=0)
        assert ss.info["total_runtime_us"] == pytest.approx(2000)

    def test_exactly_at_cap_is_accepted(self, qpu):
        # cap is 1000 us: 10 us x 100 reads sits exactly on the boundary.
        ss = qpu.sample(_toy_bqm(), annealing_time_us=10, num_reads=100, seed=0)
        assert ss.info["total_runtime_us"] == pytest.approx(1000.0)

    def test_one_read_over_cap_is_rejected(self, qpu):
        with pytest.raises(QPURuntimeExceeded) as excinfo:
            qpu.sample(_toy_bqm(), annealing_time_us=10, num_reads=101, seed=0)
        assert excinfo.value.requested_us == pytest.approx(1010.0)
        assert excinfo.value.cap_us == pytest.approx(1000.0)

    def test_max_reads_helper(self, qpu):
        assert qpu.max_reads(10.0) == 100
        assert qpu.max_reads(3.0) == 333
        uncapped = SimulatedQPUSampler(
            hardware=chimera_graph(2), max_call_time_us=None
        )
        assert uncapped.max_reads(10.0) is None

    def test_non_finite_bias_rejected(self, qpu):
        bad = BinaryQuadraticModel({"a": float("nan")})
        with pytest.raises(ValueError, match="non-finite"):
            qpu.sample(bad, annealing_time_us=1, num_reads=1)


class TestFixedChipEmbedding:
    def test_too_small_chip_raises_without_expansion(self):
        # A C1 Chimera cell (8 qubits, bipartite) cannot host a clique on
        # many densely coupled logical variables.
        from repro.annealing import EmbeddingError

        sampler = SimulatedQPUSampler(
            hardware=chimera_graph(1),
            max_call_time_us=None,
            allow_hardware_expansion=False,
        )
        n = 12
        dense = BinaryQuadraticModel(
            {i: -1.0 for i in range(n)},
            {(i, j): 1.0 for i in range(n) for j in range(i + 1, n)},
        )
        with pytest.raises(EmbeddingError):
            sampler.sample(dense, annealing_time_us=1, num_reads=2, seed=0)

    def test_expansion_flagged_when_allowed(self):
        sampler = SimulatedQPUSampler(
            hardware=chimera_graph(1), max_call_time_us=None
        )
        n = 12
        dense = BinaryQuadraticModel(
            {i: -1.0 for i in range(n)},
            {(i, j): 1.0 for i in range(n) for j in range(i + 1, n)},
        )
        ss = sampler.sample(dense, annealing_time_us=1, num_reads=2, seed=0)
        assert ss.info["hardware_expanded"] is True


class TestSampling:
    def test_solves_toy_model(self, qpu):
        ss = qpu.sample(_toy_bqm(), annealing_time_us=5, num_reads=50, seed=0)
        assert ss.lowest_energy == pytest.approx(-3.0)
        assert ss.first.assignment == {"a": 1, "b": 1, "c": 0}

    def test_info_fields(self, qpu):
        ss = qpu.sample(_toy_bqm(), annealing_time_us=2, num_reads=10, seed=1)
        info = ss.info
        assert info["annealing_time_us"] == 2
        assert info["num_reads"] == 10
        assert info["total_runtime_us"] == pytest.approx(20)
        assert info["average_chain_length"] >= 1.0
        assert 0.0 <= info["chain_break_fraction"] <= 1.0

    def test_sweeps_scale_with_annealing_time(self, qpu):
        short = qpu.sample(_toy_bqm(), annealing_time_us=1, num_reads=5, seed=2)
        long = qpu.sample(_toy_bqm(), annealing_time_us=50, num_reads=5, seed=2)
        assert long.info["sweeps_per_read"] > short.info["sweeps_per_read"]

    def test_embedding_cached(self, qpu):
        bqm = _toy_bqm()
        first = qpu.embed(bqm, seed=0)
        second = qpu.embed(bqm, seed=99)  # cache hit ignores the new seed
        assert first is second

    def test_logical_energies_reported(self, qpu):
        """Reported energies are of the LOGICAL model, not the embedded one."""
        bqm = _toy_bqm()
        ss = qpu.sample(bqm, annealing_time_us=5, num_reads=20, seed=3)
        for sample in ss:
            assert sample.energy == pytest.approx(bqm.energy(sample.assignment))


class TestNoise:
    def test_noise_free_sampler_more_reliable(self):
        noisy = SimulatedQPUSampler(
            hardware=chimera_graph(3), noise_scale=0.5, max_call_time_us=None
        )
        clean = SimulatedQPUSampler(
            hardware=chimera_graph(3), noise_scale=0.0, max_call_time_us=None
        )
        bqm = _toy_bqm()
        noisy_best = noisy.sample(bqm, annealing_time_us=2, num_reads=30, seed=4).lowest_energy
        clean_best = clean.sample(bqm, annealing_time_us=2, num_reads=30, seed=4).lowest_energy
        assert clean_best <= noisy_best + 1e-9


class TestSpinReversalTransforms:
    def test_gauge_preserves_energies(self):
        from repro.annealing.qpu import _gauge_transform

        bqm = _toy_bqm()
        flips = {"a", "c"}
        gauged = _gauge_transform(bqm, flips)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    x = {"a": a, "b": b, "c": c}
                    flipped = {v: (1 - val if v in flips else val) for v, val in x.items()}
                    assert gauged.energy(flipped) == pytest.approx(bqm.energy(x))

    def test_sampling_with_gauges_still_solves(self, qpu):
        ss = qpu.sample(
            _toy_bqm(), annealing_time_us=5, num_reads=40, seed=0,
            num_spin_reversal_transforms=4,
        )
        assert ss.lowest_energy == pytest.approx(-3.0)
        assert ss.info["num_spin_reversal_transforms"] == 4

    def test_energies_reported_in_original_frame(self, qpu):
        bqm = _toy_bqm()
        ss = qpu.sample(
            bqm, annealing_time_us=5, num_reads=20, seed=1,
            num_spin_reversal_transforms=2,
        )
        for sample in ss:
            assert sample.energy == pytest.approx(bqm.energy(sample.assignment))
