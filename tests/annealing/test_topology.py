"""Unit tests for hardware topologies."""

import pytest

from repro.annealing import chimera_graph, pegasus_like_graph


class TestChimera:
    def test_qubit_count(self):
        # C_m with shore t has 2 t m^2 qubits.
        assert chimera_graph(2).num_qubits == 32
        assert chimera_graph(16).num_qubits == 2048

    def test_coupler_count_c1(self):
        # a single K_{4,4} cell has 16 couplers
        assert chimera_graph(1).num_couplers == 16

    def test_coupler_count_formula(self):
        # m^2 cells x t^2 intra + 2 t m (m-1) inter
        for m in (2, 3):
            g = chimera_graph(m)
            expected = m * m * 16 + 2 * 4 * m * (m - 1)
            assert g.num_couplers == expected

    def test_intra_cell_bipartite(self):
        g = chimera_graph(2)
        # left-shore qubits of a cell are never coupled to each other
        assert not g.are_coupled(0, 1)
        # left-right coupling inside the cell
        assert g.are_coupled(0, 4)

    def test_inter_cell_coupling(self):
        g = chimera_graph(2, t=4)
        # left shore couples vertically: cell (0,0) index 0 <-> cell (1,0) index 0
        q_top = 0                      # row 0, col 0, side 0, index 0
        q_bottom = ((1 * 2 + 0) * 2 + 0) * 4  # row 1, col 0, side 0, index 0
        assert g.are_coupled(q_top, q_bottom)

    def test_grid_metadata(self):
        g = chimera_graph(3, t=2)
        assert g.grid_size == 3
        assert g.shore_size == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            chimera_graph(0)

    def test_degree_bounds(self):
        g = chimera_graph(3)
        degrees = [len(a) for a in g.adjacency]
        assert max(degrees) <= 6  # t intra + 2 inter
        assert min(degrees) >= 4


class TestPegasusLike:
    def test_superset_of_chimera(self):
        chim = chimera_graph(2)
        peg = pegasus_like_graph(2)
        for q in range(chim.num_qubits):
            for w in chim.adjacency[q]:
                assert peg.are_coupled(q, w)

    def test_strictly_denser(self):
        assert pegasus_like_graph(3).num_couplers > chimera_graph(3).num_couplers

    def test_odd_couplers_within_shore(self):
        peg = pegasus_like_graph(2)
        assert peg.are_coupled(0, 1)  # same shore, consecutive indices

    def test_metadata(self):
        assert pegasus_like_graph(4).grid_size == 4
