"""Unit tests for the hybrid solver and steepest descent."""

import pytest

from repro.annealing import (
    MIN_RUNTIME_US,
    BinaryQuadraticModel,
    HybridSampler,
    steepest_descent,
)
from repro.milp import solve_branch_bound


def _bqm():
    return BinaryQuadraticModel(
        {"a": -1.0, "b": -1.0, "c": -1.0},
        {("a", "b"): 3.0, ("b", "c"): 3.0},
    )


class TestSteepestDescent:
    def test_reaches_local_minimum(self):
        bqm = _bqm()
        local = steepest_descent(bqm, {"a": 0, "b": 0, "c": 0})
        energy = bqm.energy(local)
        # no single flip improves
        for var in local:
            flipped = dict(local)
            flipped[var] = 1 - flipped[var]
            assert bqm.energy(flipped) >= energy

    def test_descends_from_bad_start(self):
        bqm = _bqm()
        start = {"a": 1, "b": 1, "c": 1}
        local = steepest_descent(bqm, start)
        assert bqm.energy(local) < bqm.energy(start)


class TestHybridSampler:
    def test_finds_optimum(self):
        bqm = _bqm()
        ss = HybridSampler().sample(bqm, seed=0)
        assert ss.lowest_energy == pytest.approx(solve_branch_bound(bqm).energy)

    def test_runtime_floored_at_minimum(self):
        ss = HybridSampler().sample(_bqm(), time_limit_us=10.0, seed=0)
        assert ss.info["total_runtime_us"] == MIN_RUNTIME_US

    def test_longer_budget_reported(self):
        ss = HybridSampler().sample(_bqm(), time_limit_us=5e6, seed=0)
        assert ss.info["total_runtime_us"] == 5e6

    def test_all_samples_locally_optimal(self):
        bqm = _bqm()
        ss = HybridSampler(num_restarts=8).sample(bqm, seed=1)
        for sample in ss:
            descended = steepest_descent(bqm, dict(sample.assignment))
            assert bqm.energy(descended) == pytest.approx(sample.energy)
