"""Unit tests for anneal schedules."""

import numpy as np
import pytest

from repro.annealing import BinaryQuadraticModel, SimulatedAnnealingSampler
from repro.annealing.schedule import (
    geometric_schedule,
    linear_schedule,
    paused_schedule,
    quench_schedule,
)

HOT, COLD, SWEEPS = 0.1, 10.0, 40


class TestShapes:
    @pytest.mark.parametrize(
        "factory",
        [geometric_schedule, linear_schedule, paused_schedule, quench_schedule],
    )
    def test_endpoints_and_length(self, factory):
        betas = factory(HOT, COLD, SWEEPS)
        assert len(betas) == SWEEPS
        assert betas[0] == pytest.approx(HOT, rel=1e-6)
        assert betas[-1] == pytest.approx(COLD, rel=1e-6)

    @pytest.mark.parametrize(
        "factory",
        [geometric_schedule, linear_schedule, paused_schedule, quench_schedule],
    )
    def test_monotone_non_decreasing(self, factory):
        betas = factory(HOT, COLD, SWEEPS)
        assert np.all(np.diff(betas) >= -1e-12)

    def test_single_sweep(self):
        assert geometric_schedule(HOT, COLD, 1).tolist() == [COLD]
        assert linear_schedule(HOT, COLD, 1).tolist() == [COLD]

    def test_pause_holds_constant_run(self):
        betas = paused_schedule(HOT, COLD, 50, pause_fraction=0.4)
        diffs = np.diff(betas)
        longest_flat = max(
            len(run)
            for run in "".join("0" if d < 1e-12 else "1" for d in diffs).split("1")
        )
        assert longest_flat >= 10

    def test_quench_jumps_to_cold(self):
        betas = quench_schedule(HOT, COLD, 20, quench_at=0.5)
        assert np.sum(betas == COLD) >= 9

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_schedule(-1, COLD, 10)
        with pytest.raises(ValueError):
            geometric_schedule(COLD, HOT, 10)  # cold < hot
        with pytest.raises(ValueError):
            linear_schedule(HOT, COLD, 0)
        with pytest.raises(ValueError):
            paused_schedule(HOT, COLD, 10, pause_at=1.5)
        with pytest.raises(ValueError):
            quench_schedule(HOT, COLD, 10, quench_at=0.0)


class TestSamplerIntegration:
    def _bqm(self):
        return BinaryQuadraticModel(
            {"a": -2.0, "b": -2.0}, {("a", "b"): 3.0}
        )

    def test_custom_schedule_used(self):
        bqm = self._bqm()
        schedule = geometric_schedule(0.05, 20.0, 25)
        ss = SimulatedAnnealingSampler().sample(
            bqm, num_reads=10, beta_schedule=schedule, seed=0
        )
        assert ss.info["sweeps_per_read"] == 25
        assert ss.lowest_energy == pytest.approx(-2.0)

    def test_schedule_length_overrides_num_sweeps(self):
        bqm = self._bqm()
        ss = SimulatedAnnealingSampler().sample(
            bqm, num_reads=2, num_sweeps=999,
            beta_schedule=linear_schedule(0.1, 5.0, 7), seed=0,
        )
        assert ss.info["sweeps_per_read"] == 7

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError, match="beta_schedule"):
            SimulatedAnnealingSampler().sample(
                self._bqm(), beta_schedule=np.zeros((2, 2))
            )

    def test_paused_schedule_samples_fine(self):
        bqm = self._bqm()
        ss = SimulatedAnnealingSampler().sample(
            bqm, num_reads=10,
            beta_schedule=paused_schedule(0.05, 20.0, 30), seed=1,
        )
        assert ss.lowest_energy == pytest.approx(-2.0)
