"""Unit tests for SampleSet."""

import pytest

from repro.annealing import Sample, SampleSet


class TestSample:
    def test_value_accessor(self):
        s = Sample({"a": 1, "b": 0}, -2.0)
        assert s.value("a") == 1
        assert s.num_occurrences == 1


class TestSampleSet:
    def test_sorted_by_energy(self):
        ss = SampleSet([Sample({"a": 0}, 5.0), Sample({"a": 1}, -1.0)])
        assert ss.first.energy == -1.0
        assert ss.lowest_energy == -1.0

    def test_empty_first_raises(self):
        with pytest.raises(ValueError, match="empty"):
            SampleSet().first

    def test_len_counts_occurrences(self):
        ss = SampleSet([Sample({"a": 0}, 0.0, num_occurrences=3)])
        assert len(ss) == 3

    def test_from_states_merges_duplicates(self):
        states = [{"a": 1}, {"a": 1}, {"a": 0}]
        ss = SampleSet.from_states(states, [2.0, 2.0, 1.0])
        assert len(ss.samples) == 2
        dup = next(s for s in ss if s.assignment == {"a": 1})
        assert dup.num_occurrences == 2

    def test_truncate(self):
        ss = SampleSet([Sample({"a": i}, float(i)) for i in range(5)])
        top = ss.truncate(2)
        assert [s.energy for s in top.samples] == [0.0, 1.0]

    def test_info_passthrough(self):
        ss = SampleSet.from_states([{"a": 0}], [0.0], info={"k": 1})
        assert ss.info["k"] == 1

    def test_iteration(self):
        ss = SampleSet([Sample({"a": 0}, 0.0)])
        assert [s.energy for s in ss] == [0.0]

    def test_constructor_does_not_mutate_callers_list(self):
        # Regression: __post_init__ used to list.sort() the caller's
        # list in place, corrupting fixtures that index into it.
        mine = [Sample({"a": 0}, 5.0), Sample({"a": 1}, -1.0)]
        ss = SampleSet(mine)
        assert [s.energy for s in mine] == [5.0, -1.0]
        assert [s.energy for s in ss.samples] == [-1.0, 5.0]
        assert ss.samples is not mine

    def test_equal_energy_ties_break_on_occurrences_then_input_order(self):
        rare = Sample({"a": 0}, 1.0, num_occurrences=1)
        common = Sample({"a": 1}, 1.0, num_occurrences=5)
        also_rare = Sample({"a": 2}, 1.0, num_occurrences=1)
        ss = SampleSet([rare, common, also_rare])
        # Descending multiplicity first, then stable input order.
        assert ss.samples == [common, rare, also_rare]
        assert ss.first is common


class TestRowAssignment:
    def _ra(self):
        import numpy as np

        from repro.annealing import RowAssignment

        row = np.array([1, 0, 1], dtype=np.int8)
        return RowAssignment(("a", "b", "c"), row)

    def test_mapping_protocol(self):
        ra = self._ra()
        assert len(ra) == 3
        assert list(ra) == ["a", "b", "c"]
        assert ra["a"] == 1 and ra["b"] == 0
        assert dict(ra) == {"a": 1, "b": 0, "c": 1}

    def test_values_are_python_ints(self):
        # Downstream code (JSON encoding, dict equality against plain
        # int dicts) relies on native ints, not numpy scalars.
        ra = self._ra()
        assert all(type(v) is int for v in ra.values())

    def test_equality_with_dict_and_peer(self):
        ra = self._ra()
        assert ra == {"a": 1, "b": 0, "c": 1}
        assert {"a": 1, "b": 0, "c": 1} == ra
        assert ra == self._ra()
        assert ra != {"a": 0, "b": 0, "c": 1}
        assert ra != "not a mapping"

    def test_lazy_materialisation(self):
        ra = self._ra()
        assert ra._dict is None
        _ = ra["a"]
        assert ra._dict is not None

    def test_works_inside_sample(self):
        s = Sample(self._ra(), -1.5)
        assert s.value("c") == 1
        assert s.assignment == {"a": 1, "b": 0, "c": 1}


class TestFromCounts:
    def test_matches_from_states_on_deduped_input(self):
        states = [{"a": 0, "b": 1}, {"a": 1, "b": 1}, {"a": 0, "b": 1}]
        energies = [2.0, -1.0, 2.0]
        via_states = SampleSet.from_states(states, energies)
        via_counts = SampleSet.from_counts(
            [{"a": 0, "b": 1}, {"a": 1, "b": 1}], [2.0, -1.0], [2, 1]
        )
        assert [
            (s.assignment, s.energy, s.num_occurrences) for s in via_states.samples
        ] == [
            (s.assignment, s.energy, s.num_occurrences) for s in via_counts.samples
        ]

    def test_counts_and_info(self):
        ss = SampleSet.from_counts([{"a": 1}], [0.5], [7], info={"k": 2})
        assert len(ss) == 7
        assert ss.info == {"k": 2}
