"""Unit tests for the Cai-Macready congestion router."""

import pytest

from repro.annealing import chimera_graph, pegasus_like_graph
from repro.annealing.embedding import EmbeddingError
from repro.annealing.embedding_cm import find_embedding_cm


def _cycle_edges(n):
    return [(i, (i + 1) % n) for i in range(n)]


def _clique_edges(n):
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def _grid_edges(rows, cols):
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


class TestSparseProblems:
    def test_cycle(self):
        hw = chimera_graph(4)
        edges = _cycle_edges(10)
        emb = find_embedding_cm(list(range(10)), edges, hw, seed=0)
        emb.validate(edges)

    def test_grid(self):
        hw = chimera_graph(6)
        edges = _grid_edges(4, 5)
        emb = find_embedding_cm(list(range(20)), edges, hw, seed=1)
        emb.validate(edges)
        assert emb.average_chain_length < 6

    def test_no_edges(self):
        hw = chimera_graph(2)
        emb = find_embedding_cm([0, 1, 2], [], hw, seed=0)
        emb.validate([])
        assert emb.num_physical_qubits == 3


class TestDenseProblems:
    @pytest.mark.parametrize("n", [6, 10])
    def test_small_cliques(self, n):
        hw = chimera_graph(6)
        edges = _clique_edges(n)
        emb = find_embedding_cm(list(range(n)), edges, hw, seed=0)
        emb.validate(edges)

    def test_mkp_qubo_mid_size(self):
        from repro.core import build_mkp_qubo
        from repro.datasets import load_instance

        g = load_instance("D_15_70")
        model = build_mkp_qubo(g, 3)
        hw = chimera_graph(16)
        emb = find_embedding_cm(
            model.bqm.variables, model.bqm.interaction_graph_edges(), hw, seed=3
        )
        emb.validate(model.bqm.interaction_graph_edges())


class TestFailure:
    def test_too_big_for_tiny_chip(self):
        hw = chimera_graph(1)
        edges = _clique_edges(12)
        with pytest.raises(EmbeddingError):
            find_embedding_cm(list(range(12)), edges, hw, seed=0, max_passes=2)


class TestDeterminism:
    def test_same_seed_same_chains(self):
        hw = chimera_graph(4)
        edges = _cycle_edges(8)
        a = find_embedding_cm(list(range(8)), edges, hw, seed=5)
        b = find_embedding_cm(list(range(8)), edges, hw, seed=5)
        assert a.chains == b.chains

    def test_works_on_pegasus_like(self):
        hw = pegasus_like_graph(4)
        edges = _clique_edges(8)
        emb = find_embedding_cm(list(range(8)), edges, hw, seed=2)
        emb.validate(edges)
