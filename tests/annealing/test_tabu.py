"""Unit tests for the tabu search sampler."""

import numpy as np
import pytest

from repro.annealing import BinaryQuadraticModel, batched_tabu, tabu_search
from repro.milp import solve_branch_bound


def _random_bqm(n, seed, density=0.5):
    rng = np.random.default_rng(seed)
    bqm = BinaryQuadraticModel()
    for i in range(n):
        bqm.add_linear(i, float(rng.normal()))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                bqm.add_quadratic(i, j, float(rng.normal()))
    return bqm


class TestTabuSearch:
    def test_empty_model(self):
        bqm = BinaryQuadraticModel(offset=3.0)
        assignment, energy = tabu_search(bqm)
        assert assignment == {}
        assert energy == 3.0

    def test_energy_matches_assignment(self):
        bqm = _random_bqm(8, 0)
        assignment, energy = tabu_search(bqm, iterations=500, seed=0)
        assert bqm.energy(assignment) == pytest.approx(energy)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_finds_optimum_on_small_models(self, seed):
        bqm = _random_bqm(10, seed)
        opt = solve_branch_bound(bqm).energy
        _assignment, energy = tabu_search(bqm, iterations=3000, seed=seed)
        assert energy == pytest.approx(opt, abs=1e-9)

    def test_respects_initial_assignment(self):
        bqm = BinaryQuadraticModel({0: 10.0, 1: 10.0})
        start = {0: 0, 1: 0}
        assignment, energy = tabu_search(bqm, initial=start, iterations=50, seed=1)
        assert energy == pytest.approx(0.0)

    def test_escapes_local_minimum(self):
        # Two decoupled wells: flipping both a and b together gains -4,
        # but each single flip costs +1 — greedy descent is stuck,
        # tabu's forced moves escape.
        bqm = BinaryQuadraticModel({"a": 1.0, "b": 1.0}, {("a", "b"): -6.0})
        start = {"a": 0, "b": 0}
        _assignment, energy = tabu_search(bqm, initial=start, iterations=50, seed=0)
        assert energy == pytest.approx(-4.0)

    def test_deterministic_given_seed(self):
        bqm = _random_bqm(9, 7)
        a = tabu_search(bqm, iterations=800, seed=42)
        b = tabu_search(bqm, iterations=800, seed=42)
        assert a == b

    def test_more_iterations_never_worse(self):
        bqm = _random_bqm(12, 3, density=0.7)
        _x1, short = tabu_search(bqm, iterations=50, seed=5)
        _x2, long = tabu_search(bqm, iterations=5000, seed=5)
        assert long <= short + 1e-9


class TestBatchedTabu:
    def test_multi_restart_never_worse_than_single(self):
        bqm = _random_bqm(12, 1, density=0.6)
        single = batched_tabu(bqm, num_restarts=1, iterations=300, seed=9)
        multi = batched_tabu(bqm, num_restarts=8, iterations=300, seed=9)
        assert multi.best_energy <= single.best_energy + 1e-9

    def test_initial_states_as_array(self):
        bqm = BinaryQuadraticModel({0: 10.0, 1: 10.0})
        res = batched_tabu(
            bqm, num_restarts=2, initial_states=np.zeros((2, 2)), iterations=30
        )
        assert res.best_energy == pytest.approx(0.0)

    def test_deterministic_given_seed(self):
        bqm = _random_bqm(10, 4, density=0.5)
        a = batched_tabu(bqm, num_restarts=4, iterations=200, seed=21)
        b = batched_tabu(bqm, num_restarts=4, iterations=200, seed=21)
        assert a.assignments == b.assignments
        assert np.array_equal(a.energies, b.energies)

    def test_finds_optimum_with_restarts(self):
        bqm = _random_bqm(10, 6)
        opt = solve_branch_bound(bqm).energy
        res = batched_tabu(bqm, num_restarts=6, iterations=1500, seed=0)
        assert res.best_energy == pytest.approx(opt, abs=1e-9)

    def test_info_counts_flip_budget(self):
        bqm = _random_bqm(8, 2)
        res = batched_tabu(bqm, num_restarts=3, iterations=50, seed=1)
        assert res.info["num_flips"] == 150
        assert res.info["num_restarts"] == 3
