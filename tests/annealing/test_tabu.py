"""Unit tests for the tabu search sampler."""

import numpy as np
import pytest

from repro.annealing import BinaryQuadraticModel, tabu_search
from repro.milp import solve_branch_bound


def _random_bqm(n, seed, density=0.5):
    rng = np.random.default_rng(seed)
    bqm = BinaryQuadraticModel()
    for i in range(n):
        bqm.add_linear(i, float(rng.normal()))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                bqm.add_quadratic(i, j, float(rng.normal()))
    return bqm


class TestTabuSearch:
    def test_empty_model(self):
        bqm = BinaryQuadraticModel(offset=3.0)
        assignment, energy = tabu_search(bqm)
        assert assignment == {}
        assert energy == 3.0

    def test_energy_matches_assignment(self):
        bqm = _random_bqm(8, 0)
        assignment, energy = tabu_search(bqm, iterations=500, seed=0)
        assert bqm.energy(assignment) == pytest.approx(energy)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_finds_optimum_on_small_models(self, seed):
        bqm = _random_bqm(10, seed)
        opt = solve_branch_bound(bqm).energy
        _assignment, energy = tabu_search(bqm, iterations=3000, seed=seed)
        assert energy == pytest.approx(opt, abs=1e-9)

    def test_respects_initial_assignment(self):
        bqm = BinaryQuadraticModel({0: 10.0, 1: 10.0})
        start = {0: 0, 1: 0}
        assignment, energy = tabu_search(bqm, initial=start, iterations=50, seed=1)
        assert energy == pytest.approx(0.0)

    def test_escapes_local_minimum(self):
        # Two decoupled wells: flipping both a and b together gains -4,
        # but each single flip costs +1 — greedy descent is stuck,
        # tabu's forced moves escape.
        bqm = BinaryQuadraticModel({"a": 1.0, "b": 1.0}, {("a", "b"): -6.0})
        start = {"a": 0, "b": 0}
        _assignment, energy = tabu_search(bqm, initial=start, iterations=50, seed=0)
        assert energy == pytest.approx(-4.0)

    def test_deterministic_given_seed(self):
        bqm = _random_bqm(9, 7)
        a = tabu_search(bqm, iterations=800, seed=42)
        b = tabu_search(bqm, iterations=800, seed=42)
        assert a == b

    def test_more_iterations_never_worse(self):
        bqm = _random_bqm(12, 3, density=0.7)
        _x1, short = tabu_search(bqm, iterations=50, seed=5)
        _x2, long = tabu_search(bqm, iterations=5000, seed=5)
        assert long <= short + 1e-9
