"""Seed-equivalence and ledger tests for the sparse annealing engine.

The engine rewrote the SA sampler and tabu search on the CSR kernels in
``repro.perf.anneal``; these tests pin the contract that made that safe:

* the new SA sampler is **bit-identical** to the historical dense
  sampler for fixed seeds (same RNG stream, same acceptance formula,
  same flip order);
* ``batched_tabu`` with one replica reproduces the historical
  single-trajectory ``tabu_search`` **flip-for-flip**;
* traced runs reconcile in the run ledger, with sweep/flip totals
  matching what ``SampleSet.info`` / ``BatchedTabuResult.info`` report.

The reference implementations below are faithful transcriptions of the
seed samplers (dense matrices, per-variable field recomputation).  The
hypothesis models draw half-integer coefficients, for which every
energy/field value is exact in float64 regardless of summation order —
so "bit-identical" is a deterministic property, not a probabilistic one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import (
    BinaryQuadraticModel,
    SimulatedAnnealingSampler,
    batched_tabu,
    tabu_search,
)
from repro.obs import RunLedger, Tracer

# ----------------------------------------------------------------------
# Seed reference implementations
# ----------------------------------------------------------------------


def seed_sa_states(bqm, num_reads, num_sweeps, seed, beta_range=None):
    """The historical dense SA sweep loop; returns the final state matrix."""
    rng = np.random.default_rng(seed)
    h, j, _offset, order = bqm.to_numpy()
    n = len(order)
    jsym = j + j.T
    states = rng.integers(0, 2, size=(num_reads, n)).astype(float)
    if beta_range is not None:
        hot, cold = beta_range
    else:
        max_delta = max(float(np.max(np.abs(h) + np.sum(np.abs(jsym), axis=0))), 1e-9)
        coeffs = np.concatenate([np.abs(h[h != 0]), np.abs(jsym[jsym != 0])])
        min_coeff = float(coeffs.min()) if coeffs.size else 1.0
        hot = np.log(2.0) / max_delta
        cold = np.log(100.0) / max(min_coeff, 1e-9)
    if num_sweeps == 1:
        betas = np.array([cold])
    else:
        betas = np.geomspace(max(hot, 1e-12), max(cold, hot * 1.0001), num_sweeps)
    for beta in betas:
        for i in range(n):
            field = h[i] + states @ jsym[:, i]
            delta = (1.0 - 2.0 * states[:, i]) * field
            accept = (delta <= 0) | (
                rng.random(num_reads) < np.exp(-beta * np.clip(delta, 0, 700))
            )
            states[accept, i] = 1.0 - states[accept, i]
    return states, order


def seed_tabu_flips(bqm, initial, iterations, tenure, seed):
    """The historical single-trajectory tabu loop, recording every flip."""
    rng = np.random.default_rng(seed)
    h, j, _offset, order = bqm.to_numpy()
    n = len(order)
    if tenure is None:
        tenure = min(20, n // 4 + 1)
    jsym = j + j.T
    if initial is not None:
        x = np.array([initial[v] for v in order], dtype=float)
    else:
        x = rng.integers(0, 2, size=n).astype(float)
    field = h + jsym @ x
    delta = (1.0 - 2.0 * x) * field
    energy = float(bqm.energies(x[None, :], order)[0])
    best_energy = energy
    best_x = x.copy()
    tabu_until = np.zeros(n, dtype=np.int64)
    flips = []
    for step in range(1, iterations + 1):
        allowed = (tabu_until < step) | (energy + delta < best_energy - 1e-12)
        if not np.any(allowed):
            allowed[:] = True
        scores = np.where(allowed, delta, np.inf)
        i = int(np.argmin(scores))
        flips.append(i)
        sign = 1.0 - 2.0 * x[i]
        x[i] += sign
        energy += delta[i]
        delta[i] = -delta[i]
        shift = (1.0 - 2.0 * x) * jsym[i] * sign
        shift[i] = 0.0
        delta += shift
        tabu_until[i] = step + tenure
        if energy < best_energy - 1e-12:
            best_energy = energy
            best_x = x.copy()
    assignment = {v: int(best_x[c]) for c, v in enumerate(order)}
    return assignment, float(best_energy), flips


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

half_int = st.integers(min_value=-6, max_value=6).map(lambda k: k / 2)


@st.composite
def sparse_bqms(draw, min_vars=1, max_vars=12):
    """Random sparse models with half-integer coefficients (exact in f64)."""
    n = draw(st.integers(min_value=min_vars, max_value=max_vars))
    bqm = BinaryQuadraticModel(offset=draw(half_int))
    for i in range(n):
        bqm.add_linear(i, draw(half_int))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.integers(0, 2)) == 0:
                bqm.add_quadratic(i, j, draw(half_int))
    return bqm


def fingerprint(sampleset):
    return [
        (tuple(sorted(s.assignment.items())), s.energy, s.num_occurrences)
        for s in sampleset.samples
    ]


# ----------------------------------------------------------------------
# SA seed equivalence
# ----------------------------------------------------------------------


class TestSASeedEquivalence:
    @given(sparse_bqms(), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_states_bit_identical_to_seed(self, bqm, seed):
        ref_states, order = seed_sa_states(bqm, num_reads=5, num_sweeps=7, seed=seed)
        ss = SimulatedAnnealingSampler().sample(
            bqm, num_reads=5, num_sweeps=7, seed=seed
        )
        ref_energies = bqm.energies(ref_states, order)
        ref_assignments = [
            {v: int(ref_states[r, c]) for c, v in enumerate(order)}
            for r in range(ref_states.shape[0])
        ]
        from repro.annealing.sampleset import SampleSet

        ref_ss = SampleSet.from_states(ref_assignments, ref_energies.tolist())
        assert fingerprint(ss) == fingerprint(ref_ss)

    @given(sparse_bqms(min_vars=2), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_explicit_beta_range_matches_seed(self, bqm, seed):
        ref_states, order = seed_sa_states(
            bqm, num_reads=3, num_sweeps=4, seed=seed, beta_range=(0.5, 8.0)
        )
        ss = SimulatedAnnealingSampler(beta_range=(0.5, 8.0)).sample(
            bqm, num_reads=3, num_sweeps=4, seed=seed
        )
        ref_energies = sorted(bqm.energies(ref_states, order).tolist())
        assert ss.lowest_energy == ref_energies[0]

    def test_workers_byte_identical(self):
        rng = np.random.default_rng(11)
        bqm = BinaryQuadraticModel()
        for v in range(20):
            bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
        for _ in range(50):
            u, v = rng.choice(20, size=2, replace=False)
            bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
        solo = SimulatedAnnealingSampler().sample(
            bqm, num_reads=12, num_sweeps=9, seed=5
        )
        sharded = SimulatedAnnealingSampler().sample(
            bqm, num_reads=12, num_sweeps=9, seed=5, workers=3
        )
        assert fingerprint(solo) == fingerprint(sharded)
        assert solo.info["num_flips"] == sharded.info["num_flips"]


# ----------------------------------------------------------------------
# Tabu seed equivalence
# ----------------------------------------------------------------------


class TestTabuSeedEquivalence:
    @given(
        sparse_bqms(min_vars=2),
        st.integers(0, 2**31 - 1),
        st.integers(0, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_single_replica_flip_for_flip(self, bqm, seed, iterations):
        ref_assignment, ref_energy, ref_flips = seed_tabu_flips(
            bqm, None, iterations, None, seed
        )
        recorded: list = []
        res = batched_tabu(
            bqm, num_restarts=1, iterations=iterations, seed=seed,
            _record_flips=recorded,
        )
        new_flips = [int(step[0]) for step in recorded]
        assert new_flips == ref_flips
        assert res.assignments[0] == ref_assignment
        assert float(res.energies[0]) == ref_energy

    @given(sparse_bqms(min_vars=2), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_wrapper_matches_seed_trajectory(self, bqm, seed):
        ref_assignment, ref_energy, _ = seed_tabu_flips(bqm, None, 80, None, seed)
        assignment, energy = tabu_search(bqm, iterations=80, seed=seed)
        assert assignment == ref_assignment
        assert energy == ref_energy

    def test_batch_rows_equal_independent_runs(self):
        # Replicas share no state: a batch from fixed initial states must
        # equal one tabu_search per initial state (seeded starts never
        # consume the RNG).
        rng = np.random.default_rng(3)
        bqm = BinaryQuadraticModel()
        for v in range(10):
            bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
        for _ in range(20):
            u, v = rng.choice(10, size=2, replace=False)
            bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
        inits = [
            {v: int(rng.integers(0, 2)) for v in bqm.variables} for _ in range(4)
        ]
        res = batched_tabu(
            bqm, num_restarts=4, initial_states=inits, iterations=150
        )
        for init, assignment, energy in zip(inits, res.assignments, res.energies):
            solo_assignment, solo_energy = tabu_search(
                bqm, initial=init, iterations=150
            )
            assert assignment == solo_assignment
            assert float(energy) == solo_energy


# ----------------------------------------------------------------------
# Ledger reconciliation
# ----------------------------------------------------------------------


class TestLedgerReconciliation:
    def _bqm(self):
        rng = np.random.default_rng(9)
        bqm = BinaryQuadraticModel()
        for v in range(12):
            bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
        for _ in range(25):
            u, v = rng.choice(12, size=2, replace=False)
            bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
        return bqm

    def test_sa_totals_reconcile_with_info(self):
        tracer = Tracer()
        ss = SimulatedAnnealingSampler().sample(
            self._bqm(), num_reads=6, num_sweeps=11, seed=1, tracer=tracer
        )
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        assert ledger.total("anneal_sweeps") == ss.info["sweeps_per_read"]
        assert ledger.total("anneal_flips") == ss.info["num_flips"]

    def test_sa_sharded_totals_reconcile(self):
        tracer = Tracer()
        ss = SimulatedAnnealingSampler().sample(
            self._bqm(), num_reads=8, num_sweeps=5, seed=2, workers=2, tracer=tracer
        )
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        assert ledger.total("anneal_sweeps") == 5
        assert ledger.total("anneal_flips") == ss.info["num_flips"]

    def test_tabu_totals_reconcile_with_info(self):
        tracer = Tracer()
        res = batched_tabu(
            self._bqm(), num_restarts=3, iterations=40, seed=4, tracer=tracer
        )
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        assert ledger.total("anneal_tabu_steps") == res.info["iterations"]
        assert ledger.total("anneal_tabu_flips") == res.info["num_flips"]
        assert res.info["num_flips"] == 3 * 40

    def test_traced_qamkp_sa_solve_reconciles(self):
        from repro.core import qamkp
        from repro.graphs import Graph

        rng = np.random.default_rng(0)
        edges = [
            (u, v) for u in range(10) for v in range(u + 1, 10) if rng.random() < 0.6
        ]
        tracer = Tracer()
        qamkp(Graph(10, edges), 2, solver="sa", runtime_us=500.0, seed=3, tracer=tracer)
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        assert ledger.total("anneal_sweeps") == 2  # the paper's fixed sweep count

    def test_traced_hybrid_solve_reconciles(self):
        from repro.core import qamkp
        from repro.graphs import Graph

        rng = np.random.default_rng(1)
        edges = [
            (u, v) for u in range(8) for v in range(u + 1, 8) if rng.random() < 0.6
        ]
        tracer = Tracer()
        qamkp(Graph(8, edges), 2, solver="hybrid", seed=3, tracer=tracer)
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        assert ledger.total("anneal_tabu_steps") > 0


# ----------------------------------------------------------------------
# Engine odds and ends
# ----------------------------------------------------------------------


class TestEngineEdgeCases:
    def test_batched_tabu_empty_model_dicts_independent(self):
        res = batched_tabu(BinaryQuadraticModel(offset=2.0), num_restarts=3)
        res.assignments[0]["ghost"] = 1
        assert res.assignments[1] == {}
        assert res.best_energy == 2.0

    def test_batched_tabu_validation(self):
        bqm = BinaryQuadraticModel({0: 1.0})
        with pytest.raises(ValueError, match="num_restarts"):
            batched_tabu(bqm, num_restarts=0)
        with pytest.raises(ValueError, match="initial_states"):
            batched_tabu(bqm, num_restarts=2, initial_states=np.zeros((1, 1)))

    def test_batched_tabu_energies_match_assignments(self):
        rng = np.random.default_rng(5)
        bqm = BinaryQuadraticModel()
        for v in range(9):
            bqm.add_linear(v, float(rng.normal()))
        for _ in range(15):
            u, v = rng.choice(9, size=2, replace=False)
            bqm.add_quadratic(int(u), int(v), float(rng.normal()))
        res = batched_tabu(bqm, num_restarts=5, iterations=100, seed=6)
        for assignment, energy in zip(res.assignments, res.energies):
            assert bqm.energy(assignment) == pytest.approx(float(energy))
        assert res.best_energy == min(float(e) for e in res.energies)
        assert res.best_assignment == res.assignments[res.best_index]

    def test_sa_flip_count_is_reported(self):
        ss = SimulatedAnnealingSampler().sample(
            BinaryQuadraticModel({0: -5.0, 1: -5.0}), num_reads=4, num_sweeps=3, seed=0
        )
        assert ss.info["num_flips"] >= 0

    def test_steepest_descent_reaches_local_minimum(self):
        from repro.annealing import steepest_descent

        rng = np.random.default_rng(8)
        bqm = BinaryQuadraticModel()
        for v in range(10):
            bqm.add_linear(v, float(rng.normal()))
        for _ in range(18):
            u, v = rng.choice(10, size=2, replace=False)
            bqm.add_quadratic(int(u), int(v), float(rng.normal()))
        start = {v: int(rng.integers(0, 2)) for v in bqm.variables}
        final = steepest_descent(bqm, start)
        base = bqm.energy(final)
        for v in bqm.variables:
            flipped = dict(final)
            flipped[v] = 1 - flipped[v]
            assert bqm.energy(flipped) >= base - 1e-9


# ----------------------------------------------------------------------
# Sweep plan chunking
# ----------------------------------------------------------------------


class TestSweepPlan:
    def test_chunk_size_invariance(self):
        # The chunk size is a pure performance knob: any chunking must
        # leave spins, flip counts, and therefore samplesets untouched.
        from repro.perf.anneal import build_sweep_plan, sa_sweep

        rng = np.random.default_rng(2)
        bqm = BinaryQuadraticModel()
        for v in range(15):
            bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
        for _ in range(35):
            u, v = rng.choice(15, size=2, replace=False)
            bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
        csr = bqm.to_csr()
        spins0 = rng.choice([-1.0, 1.0], size=(15, 6))
        uniforms = rng.random((15, 6))
        reference = None
        for chunk in (1, 2, 5, 15, 64):
            plan = build_sweep_plan(
                csr.h, csr.indptr, csr.indices, csr.data, csr.row_sums, chunk
            )
            spins = spins0.copy()
            flips = sa_sweep(plan, spins, 0.7, uniforms)
            outcome = (flips, spins.tobytes())
            if reference is None:
                reference = outcome
            else:
                assert outcome == reference

    def test_plan_covers_all_variables_once(self):
        from repro.perf.anneal import build_sweep_plan

        rng = np.random.default_rng(4)
        bqm = BinaryQuadraticModel()
        for v in range(11):
            bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
        for _ in range(18):
            u, v = rng.choice(11, size=2, replace=False)
            bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
        csr = bqm.to_csr()
        plan = build_sweep_plan(
            csr.h, csr.indptr, csr.indices, csr.data, csr.row_sums, 4
        )
        spans = [(entry[0], entry[1]) for entry in plan]
        assert spans[0][0] == 0 and spans[-1][1] == 11
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
