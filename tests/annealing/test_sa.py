"""Unit tests for the simulated annealing sampler."""

import numpy as np
import pytest

from repro.annealing import BinaryQuadraticModel, SimulatedAnnealingSampler
from repro.milp import solve_branch_bound


def _random_bqm(n, seed):
    rng = np.random.default_rng(seed)
    bqm = BinaryQuadraticModel()
    for i in range(n):
        bqm.add_linear(i, float(rng.normal()))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.4:
                bqm.add_quadratic(i, j, float(rng.normal()))
    return bqm


class TestValidation:
    def test_bad_reads(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample(_random_bqm(3, 0), num_reads=0)

    def test_bad_sweeps(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler().sample(_random_bqm(3, 0), num_sweeps=0)

    def test_bad_initial_shape(self):
        with pytest.raises(ValueError, match="initial_states"):
            SimulatedAnnealingSampler().sample(
                _random_bqm(3, 0), num_reads=2, initial_states=np.zeros((1, 3))
            )


class TestSampling:
    def test_empty_model(self):
        bqm = BinaryQuadraticModel(offset=4.0)
        ss = SimulatedAnnealingSampler().sample(bqm, num_reads=3)
        assert ss.lowest_energy == 4.0

    def test_empty_model_samples_are_independent_dicts(self):
        # Regression: the n==0 path once built its sample list as
        # ``[{}] * num_reads``, aliasing one shared dict across reads.
        bqm = BinaryQuadraticModel(offset=1.0)
        ss = SimulatedAnnealingSampler().sample(bqm, num_reads=3)
        ss.samples[0].assignment["ghost"] = 1
        again = SimulatedAnnealingSampler().sample(bqm, num_reads=3)
        for sample in again.samples:
            assert sample.assignment == {}
        assert ss.info["num_flips"] == 0

    def test_energies_match_assignments(self):
        bqm = _random_bqm(6, 1)
        ss = SimulatedAnnealingSampler().sample(bqm, num_reads=8, seed=0)
        for sample in ss:
            assert sample.energy == pytest.approx(bqm.energy(sample.assignment))

    def test_finds_optimum_small_model(self):
        bqm = _random_bqm(8, 2)
        opt = solve_branch_bound(bqm).energy
        ss = SimulatedAnnealingSampler().sample(
            bqm, num_reads=30, num_sweeps=200, seed=1
        )
        assert ss.lowest_energy == pytest.approx(opt, abs=1e-9)

    def test_deterministic_given_seed(self):
        bqm = _random_bqm(5, 3)
        a = SimulatedAnnealingSampler().sample(bqm, num_reads=4, seed=7)
        b = SimulatedAnnealingSampler().sample(bqm, num_reads=4, seed=7)
        assert a.lowest_energy == b.lowest_energy

    def test_more_sweeps_not_worse_on_average(self):
        bqm = _random_bqm(12, 4)
        quick = SimulatedAnnealingSampler().sample(bqm, num_reads=20, num_sweeps=1, seed=5)
        slow = SimulatedAnnealingSampler().sample(bqm, num_reads=20, num_sweeps=200, seed=5)
        assert slow.lowest_energy <= quick.lowest_energy + 1e-9

    def test_initial_states_respected_at_zero_sweeps_equivalent(self):
        # With an all-zero initial state and a model whose optimum is
        # all-zero, SA must stay at the optimum.
        bqm = BinaryQuadraticModel({0: 5.0, 1: 5.0})
        init = np.zeros((3, 2))
        ss = SimulatedAnnealingSampler(beta_range=(10.0, 20.0)).sample(
            bqm, num_reads=3, num_sweeps=5, seed=0, initial_states=init
        )
        assert ss.lowest_energy == pytest.approx(0.0)

    def test_info_metadata(self):
        ss = SimulatedAnnealingSampler().sample(_random_bqm(4, 0), num_reads=2, num_sweeps=7)
        assert ss.info["num_reads"] == 2
        assert ss.info["sweeps_per_read"] == 7

    def test_custom_beta_range(self):
        bqm = _random_bqm(5, 6)
        ss = SimulatedAnnealingSampler(beta_range=(0.1, 50.0)).sample(
            bqm, num_reads=10, num_sweeps=100, seed=2
        )
        assert ss.lowest_energy <= 0.0 or ss.lowest_energy == pytest.approx(
            solve_branch_bound(bqm).energy, abs=5.0
        )
