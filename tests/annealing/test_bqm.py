"""Unit tests for the binary quadratic model."""

import numpy as np
import pytest

from repro.annealing import BinaryQuadraticModel


@pytest.fixture
def toy() -> BinaryQuadraticModel:
    # E = 1 - x + 2y + 3xy
    return BinaryQuadraticModel({"x": -1.0, "y": 2.0}, {("x", "y"): 3.0}, offset=1.0)


class TestConstruction:
    def test_counts(self, toy):
        assert toy.num_variables == 2
        assert toy.num_interactions == 1

    def test_linear_accumulates(self):
        bqm = BinaryQuadraticModel()
        bqm.add_linear("a", 1.0)
        bqm.add_linear("a", 2.0)
        assert bqm.linear["a"] == 3.0

    def test_quadratic_accumulates_order_free(self):
        bqm = BinaryQuadraticModel()
        bqm.add_quadratic("a", "b", 1.0)
        bqm.add_quadratic("b", "a", 2.0)
        assert bqm.num_interactions == 1
        assert list(bqm.quadratic.values()) == [3.0]

    def test_diagonal_rejected(self):
        bqm = BinaryQuadraticModel()
        with pytest.raises(ValueError, match="diagonal"):
            bqm.add_quadratic("a", "a", 1.0)

    def test_add_variable_idempotent(self):
        bqm = BinaryQuadraticModel()
        bqm.add_variable("v")
        bqm.add_variable("v")
        assert bqm.variables == ["v"]

    def test_from_qubo_with_diagonal(self):
        bqm = BinaryQuadraticModel.from_qubo({("a", "a"): 2.0, ("a", "b"): 1.0})
        assert bqm.linear["a"] == 2.0
        assert bqm.num_interactions == 1

    def test_copy_independent(self, toy):
        clone = toy.copy()
        clone.add_linear("x", 5.0)
        assert toy.linear["x"] == -1.0


class TestEnergy:
    @pytest.mark.parametrize(
        ("x", "y", "expected"),
        [(0, 0, 1.0), (1, 0, 0.0), (0, 1, 3.0), (1, 1, 5.0)],
    )
    def test_energy_truth_table(self, toy, x, y, expected):
        assert toy.energy({"x": x, "y": y}) == pytest.approx(expected)

    def test_vectorised_matches_scalar(self, toy):
        states = np.array([[0, 0], [1, 0], [0, 1], [1, 1]])
        energies = toy.energies(states, order=["x", "y"])
        scalar = [toy.energy({"x": a, "y": b}) for a, b in states]
        assert np.allclose(energies, scalar)

    def test_energies_default_order(self, toy):
        states = np.array([[1, 1]])
        assert toy.energies(states)[0] == pytest.approx(5.0)


class TestCSR:
    def test_matches_dense_view(self, toy):
        csr = toy.to_csr()
        h, j, _offset, order = toy.to_numpy()
        assert list(csr.order) == order
        assert np.array_equal(csr.h, h)
        assert np.array_equal(csr.dense(), j)

    def test_symmetric_rows_cover_both_directions(self, toy):
        csr = toy.to_csr()
        cols_x, vals_x = csr.neighbours(0)
        cols_y, vals_y = csr.neighbours(1)
        assert cols_x.tolist() == [1] and vals_x.tolist() == [3.0]
        assert cols_y.tolist() == [0] and vals_y.tolist() == [3.0]

    def test_cached_until_mutation(self, toy):
        first = toy.to_csr()
        assert toy.to_csr() is first
        toy.add_linear("x", 1.0)
        second = toy.to_csr()
        assert second is not first
        assert second.h[0] == 0.0

    def test_invalidated_by_new_variable(self, toy):
        first = toy.to_csr()
        toy.add_variable("z")
        assert toy.to_csr() is not first
        assert toy.to_csr().num_variables == 3

    def test_offset_read_live(self, toy):
        assert toy.to_csr() is not None
        toy.add_offset(2.0)
        assert toy.energy({"x": 0, "y": 0}) == pytest.approx(3.0)

    def test_energy_bitwise_equals_energies_row(self):
        rng = np.random.default_rng(0)
        bqm = BinaryQuadraticModel(offset=float(rng.normal()))
        for v in range(15):
            bqm.add_linear(v, float(rng.normal()))
        for _ in range(30):
            u, v = rng.choice(15, size=2, replace=False)
            bqm.add_quadratic(int(u), int(v), float(rng.normal()))
        states = rng.integers(0, 2, size=(9, 15))
        energies = bqm.energies(states)
        for r in range(9):
            sample = {v: int(states[r, c]) for c, v in enumerate(bqm.variables)}
            assert bqm.energy(sample) == energies[r]  # exact, not approx

    def test_abs_row_sums(self, toy):
        assert toy.to_csr().abs_row_sums().tolist() == [3.0, 3.0]


class TestRequireFinite:
    def test_clean_model_passes(self, toy):
        toy.require_finite()

    def test_names_nonfinite_linear(self, toy):
        toy.add_linear("x", float("nan"))
        with pytest.raises(ValueError, match="linear bias.*'x'"):
            toy.require_finite()

    def test_names_nonfinite_quadratic(self, toy):
        toy.add_quadratic("x", "y", float("inf"))
        with pytest.raises(ValueError, match="quadratic bias"):
            toy.require_finite()

    def test_names_nonfinite_offset(self, toy):
        toy.add_offset(float("nan"))
        with pytest.raises(ValueError, match="offset"):
            toy.require_finite()


class TestConversions:
    def test_to_numpy_shapes(self, toy):
        h, j, offset, order = toy.to_numpy()
        assert h.shape == (2,)
        assert j.shape == (2, 2)
        assert offset == 1.0
        assert order == ["x", "y"]
        assert np.allclose(j, np.triu(j, k=1))

    def test_ising_roundtrip_energy(self, toy):
        h_s, j_s, offset_s = toy.to_ising()
        for x in (0, 1):
            for y in (0, 1):
                sx, sy = 2 * x - 1, 2 * y - 1
                ising = (
                    offset_s
                    + h_s["x"] * sx
                    + h_s["y"] * sy
                    + j_s[("x", "y")] * sx * sy
                )
                assert ising == pytest.approx(toy.energy({"x": x, "y": y}))

    def test_interaction_graph_skips_zero(self):
        bqm = BinaryQuadraticModel(quadratic={("a", "b"): 0.0, ("b", "c"): 1.0})
        assert bqm.interaction_graph_edges() == [("b", "c")]

    def test_repr(self, toy):
        assert "vars=2" in repr(toy)
