"""Property-based tests for the graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, to_adjacency_matrix


@st.composite
def graphs(draw, max_n=9):
    n = draw(st.integers(min_value=0, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    return Graph(n, edges)


class TestGraphInvariants:
    @given(graphs())
    def test_degree_sum_is_twice_edges(self, g):
        assert sum(g.degrees()) == 2 * g.num_edges

    @given(graphs())
    def test_complement_is_involution(self, g):
        assert g.complement().complement() == g

    @given(graphs())
    def test_complement_edge_partition(self, g):
        comp = g.complement()
        total = g.num_vertices * (g.num_vertices - 1) // 2
        assert g.num_edges + comp.num_edges == total
        assert not g.edges & comp.edges

    @given(graphs())
    def test_bitmask_roundtrip(self, g):
        for mask in range(min(1 << g.num_vertices, 128)):
            assert g.subset_to_bitmask(g.bitmask_to_subset(mask)) == mask

    @given(graphs())
    def test_adjacency_matrix_faithful(self, g):
        mat = to_adjacency_matrix(g)
        for u in g.vertices:
            for v in g.vertices:
                assert bool(mat[u, v]) == g.has_edge(u, v)

    @given(graphs(), st.data())
    @settings(max_examples=50)
    def test_induced_subgraph_preserves_adjacency(self, g, data):
        if g.num_vertices == 0:
            return
        subset = data.draw(
            st.lists(
                st.integers(0, g.num_vertices - 1), unique=True, min_size=1
            )
        )
        keep = sorted(set(subset))
        sub = g.induced_subgraph(keep)
        for i, u in enumerate(keep):
            for j, v in enumerate(keep):
                assert sub.has_edge(i, j) == g.has_edge(u, v)

    @given(graphs())
    def test_neighbors_symmetric(self, g):
        for u in g.vertices:
            for v in g.neighbors(u):
                assert u in g.neighbors(v)
