"""Property-based tests for the k-plex domain layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.kplex import (
    best_upper_bound,
    greedy_kplex,
    is_kcplex,
    is_kplex,
    max_k_for_subset,
    maximum_kplex,
    maximum_kplex_bruteforce,
    repair_to_kplex,
)


@st.composite
def graph_and_k(draw, max_n=8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    k = draw(st.integers(min_value=1, max_value=3))
    return Graph(n, edges), k


class TestPredicateProperties:
    @given(graph_and_k())
    @settings(max_examples=60)
    def test_hereditary(self, gk):
        """Every subset of a k-plex is a k-plex."""
        g, k = gk
        plex = maximum_kplex_bruteforce(g, k)
        members = sorted(plex)
        for drop in members:
            assert is_kplex(g, set(members) - {drop}, k)

    @given(graph_and_k())
    @settings(max_examples=60)
    def test_monotone_in_k(self, gk):
        g, k = gk
        for mask in range(1 << g.num_vertices):
            subset = g.bitmask_to_subset(mask)
            if is_kplex(g, subset, k):
                assert is_kplex(g, subset, k + 1)

    @given(graph_and_k())
    @settings(max_examples=60)
    def test_complement_duality(self, gk):
        g, k = gk
        comp = g.complement()
        for mask in range(1 << g.num_vertices):
            subset = g.bitmask_to_subset(mask)
            assert is_kplex(g, subset, k) == is_kcplex(comp, subset, k)

    @given(graph_and_k())
    @settings(max_examples=60)
    def test_max_k_is_minimal(self, gk):
        g, _ = gk
        subset = frozenset(g.vertices)
        k_min = max_k_for_subset(g, subset)
        assert is_kplex(g, subset, k_min)


class TestSolverProperties:
    @given(graph_and_k(max_n=7))
    @settings(max_examples=40, deadline=None)
    def test_branch_search_optimal(self, gk):
        g, k = gk
        assert maximum_kplex(g, k).size == len(maximum_kplex_bruteforce(g, k))

    @given(graph_and_k())
    @settings(max_examples=40, deadline=None)
    def test_greedy_feasible_and_bounded(self, gk):
        g, k = gk
        plex = greedy_kplex(g, k)
        assert is_kplex(g, plex, k)
        assert len(plex) <= best_upper_bound(g, k)

    @given(graph_and_k(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_repair_always_feasible(self, gk, data):
        g, k = gk
        raw = data.draw(
            st.lists(st.integers(0, g.num_vertices - 1), unique=True)
        )
        repaired = repair_to_kplex(g, raw, k)
        assert is_kplex(g, repaired, k)
        assert repaired <= set(raw)

    @given(graph_and_k(max_n=7))
    @settings(max_examples=40, deadline=None)
    def test_upper_bound_valid(self, gk):
        g, k = gk
        assert best_upper_bound(g, k) >= len(maximum_kplex_bruteforce(g, k))
