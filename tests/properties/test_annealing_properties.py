"""Property-based tests for the annealing substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import BinaryQuadraticModel, SimulatedAnnealingSampler, tabu_search
from repro.annealing.qpu import _gauge_transform


@st.composite
def bqms(draw, max_vars=6):
    n = draw(st.integers(min_value=1, max_value=max_vars))
    bqm = BinaryQuadraticModel(offset=draw(st.floats(-3, 3)))
    for i in range(n):
        bqm.add_linear(i, draw(st.floats(-3, 3)))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                bqm.add_quadratic(i, j, draw(st.floats(-3, 3)))
    return bqm


class TestGaugeInvariance:
    @given(bqms(), st.data())
    @settings(max_examples=40)
    def test_energy_spectrum_preserved(self, bqm, data):
        """A spin-reversal transform is an exact change of variables."""
        flips = {
            v for v in bqm.variables if data.draw(st.booleans())
        }
        gauged = _gauge_transform(bqm, flips)
        for mask in range(1 << bqm.num_variables):
            x = {v: (mask >> i) & 1 for i, v in enumerate(bqm.variables)}
            flipped = {v: (1 - val if v in flips else val) for v, val in x.items()}
            assert abs(gauged.energy(flipped) - bqm.energy(x)) < 1e-8

    @given(bqms())
    @settings(max_examples=30)
    def test_double_gauge_is_identity(self, bqm):
        flips = set(bqm.variables[::2])
        twice = _gauge_transform(_gauge_transform(bqm, flips), flips)
        for v in bqm.variables:
            assert abs(twice.linear[v] - bqm.linear[v]) < 1e-8
        for key, bias in bqm.quadratic.items():
            assert abs(twice.quadratic.get(key, twice.quadratic.get((key[1], key[0]), 0.0)) - bias) < 1e-8


class TestSamplerInvariants:
    @given(bqms(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_sa_energies_are_consistent(self, bqm, seed):
        ss = SimulatedAnnealingSampler().sample(bqm, num_reads=4, num_sweeps=10, seed=seed)
        for sample in ss:
            assert abs(sample.energy - bqm.energy(sample.assignment)) < 1e-8

    @given(bqms(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_tabu_never_beats_global_minimum(self, bqm, seed):
        order = bqm.variables
        exact = min(
            bqm.energy({v: (mask >> i) & 1 for i, v in enumerate(order)})
            for mask in range(1 << len(order))
        )
        _assignment, energy = tabu_search(bqm, iterations=200, seed=seed)
        assert energy >= exact - 1e-8

    @given(bqms(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_energies_bitwise_equal_scalar_energy(self, bqm, seed):
        """The CSR-routed batch path and scalar path are exactly equal.

        Not approx: ``energy()`` evaluates through the same cached CSR
        arrays with row-independent reductions, so the equality is
        bitwise on arbitrary float coefficients.
        """
        rng = np.random.default_rng(seed)
        states = rng.integers(0, 2, size=(5, bqm.num_variables))
        energies = bqm.energies(states)
        for r in range(5):
            sample = {v: int(states[r, c]) for c, v in enumerate(bqm.variables)}
            assert bqm.energy(sample) == energies[r]

    @given(bqms())
    @settings(max_examples=20, deadline=None)
    def test_ising_and_numpy_views_agree(self, bqm):
        h, j, offset, order = bqm.to_numpy()
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, size=len(order)).astype(float)
        matrix_energy = float(offset + h @ x + x @ j @ x)
        dict_energy = bqm.energy(dict(zip(order, x.astype(int))))
        assert abs(matrix_energy - dict_energy) < 1e-8


class TestGaugeInvarianceAtScale:
    """Sampled (non-exhaustive) gauge check on larger random BQMs.

    The exhaustive spectrum test above stops at 6 variables; this one
    drives `_gauge_transform` on models up to 16 variables with random
    assignments, covering the sizes the MKP QUBOs actually reach.
    """

    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_bqm_random_flips_preserve_energy(self, n, seed):
        rng = np.random.default_rng(seed)
        bqm = BinaryQuadraticModel(offset=float(rng.normal()))
        for i in range(n):
            bqm.add_linear(i, float(rng.normal()))
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.4:
                    bqm.add_quadratic(i, j, float(rng.normal()))
        flips = {v for v in bqm.variables if rng.random() < 0.5}
        gauged = _gauge_transform(bqm, flips)
        for _ in range(20):
            x = {v: int(rng.integers(0, 2)) for v in bqm.variables}
            flipped = {v: (1 - val if v in flips else val) for v, val in x.items()}
            assert abs(gauged.energy(flipped) - bqm.energy(x)) < 1e-8


class TestValidationInvariants:
    @given(bqms(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_validation_is_idempotent_and_energy_faithful(self, bqm, seed):
        from repro.resilience import validate_sampleset

        ss = SimulatedAnnealingSampler().sample(
            bqm, num_reads=4, num_sweeps=5, seed=seed
        )
        once, report1 = validate_sampleset(ss, bqm)
        twice, report2 = validate_sampleset(once, bqm)
        assert report1.clean  # organic samplesets are already valid
        assert report2.clean
        assert [s.energy for s in twice.samples] == [s.energy for s in once.samples]
        for sample in once:
            assert abs(sample.energy - bqm.energy(sample.assignment)) < 1e-8
