"""Property-based tests: the oracle circuit IS the k-plex predicate.

The strongest faithfulness property in the library: on arbitrary small
graphs, for every (k, T) and every basis state, the constructed
U_check circuit — executed gate by gate — computes exactly the
"k-cplex with size >= T" predicate and restores all ancillas.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import KCplexOracle
from repro.graphs import Graph
from repro.kplex import is_kplex


@st.composite
def oracle_instances(draw, max_n=5):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    g = Graph(n, edges)
    k = draw(st.integers(min_value=1, max_value=3))
    threshold = draw(st.integers(min_value=0, max_value=n))
    return g, k, threshold


class TestOracleFaithfulness:
    @given(oracle_instances())
    @settings(max_examples=40, deadline=None)
    def test_circuit_computes_predicate(self, instance):
        g, k, threshold = instance
        oracle = KCplexOracle(g.complement(), k, threshold)
        for mask in range(1 << g.num_vertices):
            subset = g.bitmask_to_subset(mask)
            expected = len(subset) >= threshold and is_kplex(g, subset, k)
            assert oracle.predicate(mask) == expected
            assert oracle.classical_eval(mask) == expected

    @given(oracle_instances())
    @settings(max_examples=30, deadline=None)
    def test_uncompute_clean_everywhere(self, instance):
        g, k, threshold = instance
        oracle = KCplexOracle(g.complement(), k, threshold)
        for mask in range(1 << g.num_vertices):
            assert oracle.uncompute_is_clean(mask)

    @given(oracle_instances())
    @settings(max_examples=30, deadline=None)
    def test_component_costs_consistent(self, instance):
        g, k, threshold = instance
        oracle = KCplexOracle(g.complement(), k, threshold)
        costs = oracle.component_costs()
        # U_check gates doubled plus the single mark equals the phase oracle.
        assert costs.total == oracle.phase_oracle_circuit().num_gates
