"""Property-based tests: the MPS simulator equals the dense simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import QuantumCircuit, simulate
from repro.quantum.mps import simulate_mps


@st.composite
def random_circuits(draw, num_qubits=5, max_gates=15):
    qc = QuantumCircuit(num_qubits)
    for _ in range(draw(st.integers(0, max_gates))):
        kind = draw(st.integers(0, 5))
        if kind == 0:
            qc.h(draw(st.integers(0, num_qubits - 1)))
        elif kind == 1:
            qc.x(draw(st.integers(0, num_qubits - 1)))
        elif kind == 2:
            qc.z(draw(st.integers(0, num_qubits - 1)))
        elif kind == 3:
            pair = draw(
                st.lists(st.integers(0, num_qubits - 1), min_size=2,
                         max_size=2, unique=True)
            )
            qc.cx(pair[0], pair[1])
        elif kind == 4:
            triple = draw(
                st.lists(st.integers(0, num_qubits - 1), min_size=3,
                         max_size=3, unique=True)
            )
            values = draw(st.lists(st.integers(0, 1), min_size=2, max_size=2))
            qc.mcx(triple[:2], triple[2], control_values=values)
        else:
            pair = draw(
                st.lists(st.integers(0, num_qubits - 1), min_size=2,
                         max_size=2, unique=True)
            )
            qc.cz(pair[0], pair[1])
    return qc


class TestMpsDenseEquivalence:
    @given(random_circuits())
    @settings(max_examples=30, deadline=None)
    def test_all_amplitudes_agree(self, qc):
        mps = simulate_mps(qc)
        sv = simulate(qc)
        for basis in range(1 << qc.num_qubits):
            assert abs(mps.amplitude(basis) - sv.data[basis]) < 1e-9

    @given(random_circuits(), st.integers(0, 31))
    @settings(max_examples=30, deadline=None)
    def test_basis_inputs_agree(self, qc, initial):
        mps = simulate_mps(qc, initial_bits=initial)
        sv = simulate(qc, initial=initial)
        for basis in range(1 << qc.num_qubits):
            assert abs(mps.amplitude(basis) - sv.data[basis]) < 1e-9

    @given(random_circuits())
    @settings(max_examples=20, deadline=None)
    def test_norm_one_without_truncation(self, qc):
        mps = simulate_mps(qc)
        assert abs(mps.norm() - 1.0) < 1e-9
        assert mps.truncation_error < 1e-12

    @given(random_circuits())
    @settings(max_examples=15, deadline=None)
    def test_marginals_agree(self, qc):
        mps = simulate_mps(qc)
        sv = simulate(qc)
        qubits = [0, 2]
        ours = mps.marginal_probabilities(qubits)
        theirs = sv.marginal_probabilities(qubits)
        for key in set(ours) | set(theirs):
            assert abs(ours.get(key, 0.0) - theirs.get(key, 0.0)) < 1e-9
