"""Property-based tests for the QUBO formulation and annealing models."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import BinaryQuadraticModel
from repro.core import build_mkp_qubo
from repro.graphs import Graph
from repro.kplex import is_kplex, maximum_kplex_bruteforce
from repro.milp import linearize_qubo, solve_branch_bound


@st.composite
def small_graphs(draw, max_n=6):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    return Graph(n, edges)


@st.composite
def small_bqms(draw, max_vars=6):
    n = draw(st.integers(min_value=1, max_value=max_vars))
    bqm = BinaryQuadraticModel(offset=draw(st.floats(-5, 5)))
    for i in range(n):
        bqm.add_linear(i, draw(st.floats(-3, 3)))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                bqm.add_quadratic(i, j, draw(st.floats(-3, 3)))
    return bqm


class TestQuboCorrectness:
    @given(small_graphs(), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_global_minimum_encodes_optimum(self, g, k):
        """The paper's Theorem-level claim: min F = -|maximum k-plex|."""
        model = build_mkp_qubo(g, k)
        if model.num_variables > 18:
            return  # keep exact minimisation tractable
        result = solve_branch_bound(model.bqm)
        opt = len(maximum_kplex_bruteforce(g, k))
        assert result.energy == -opt
        decoded = model.decode(result.assignment)
        assert is_kplex(g, decoded, k)
        assert len(decoded) == opt

    @given(small_graphs(), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_feasible_sets_reach_minus_size(self, g, k):
        """Every k-plex admits a zero-penalty slack completion."""
        model = build_mkp_qubo(g, k)
        slack_names = [b for bits in model.slack_bits.values() for b in bits]
        if len(slack_names) > 12:
            return
        plex = maximum_kplex_bruteforce(g, k)
        x_part = {model.vertex_variable(v): int(v in plex) for v in g.vertices}
        best = min(
            model.bqm.energy({**x_part, **dict(zip(slack_names, values))})
            for values in itertools.product((0, 1), repeat=len(slack_names))
        ) if slack_names else model.bqm.energy(x_part)
        assert best == -len(plex)


class TestBqmProperties:
    @given(small_bqms(), st.data())
    @settings(max_examples=50)
    def test_ising_energy_identity(self, bqm, data):
        sample = {
            v: data.draw(st.integers(0, 1)) for v in bqm.variables
        }
        h_s, j_s, offset = bqm.to_ising()
        spins = {v: 2 * x - 1 for v, x in sample.items()}
        ising = offset + sum(h_s[v] * spins[v] for v in spins) + sum(
            bias * spins[u] * spins[v] for (u, v), bias in j_s.items()
        )
        assert abs(ising - bqm.energy(sample)) < 1e-8

    @given(small_bqms(), st.data())
    @settings(max_examples=50)
    def test_vectorised_energy_matches(self, bqm, data):
        import numpy as np

        order = bqm.variables
        state = [data.draw(st.integers(0, 1)) for _ in order]
        vec = bqm.energies(np.array([state]), order)[0]
        scalar = bqm.energy(dict(zip(order, state)))
        assert abs(vec - scalar) < 1e-8


class TestLinearizationProperties:
    @given(small_bqms(max_vars=5), st.data())
    @settings(max_examples=40)
    def test_true_products_always_feasible(self, bqm, data):
        import numpy as np

        lin = linearize_qubo(bqm)
        x = {v: data.draw(st.integers(0, 1)) for v in lin.x_variables}
        z = np.array(
            [float(x[v]) for v in lin.x_variables]
            + [float(x[u] * x[v]) for (u, v) in lin.y_pairs]
        )
        if lin.a_ub.shape[0]:
            assert np.all(lin.a_ub @ z <= lin.b_ub + 1e-9)
        # objective with true products equals the QUBO energy
        assert abs(float(lin.c @ z) + lin.offset - bqm.energy(x)) < 1e-8
