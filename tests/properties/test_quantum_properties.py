"""Property-based tests for the quantum substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grover import PhaseOracleGrover
from repro.quantum import (
    QuantumCircuit,
    QubitAllocator,
    classical_simulate,
    compare_geq_const,
    compare_leq_const,
    popcount,
    simulate,
)


@st.composite
def classical_circuits(draw, num_qubits=5, max_gates=12):
    qc = QuantumCircuit(num_qubits)
    n_gates = draw(st.integers(0, max_gates))
    for _ in range(n_gates):
        target = draw(st.integers(0, num_qubits - 1))
        others = [q for q in range(num_qubits) if q != target]
        n_controls = draw(st.integers(0, min(2, len(others))))
        controls = draw(
            st.lists(st.sampled_from(others), min_size=n_controls,
                     max_size=n_controls, unique=True)
        )
        values = draw(
            st.lists(st.integers(0, 1), min_size=len(controls),
                     max_size=len(controls))
        )
        qc.mcx(controls, target, control_values=values) if controls else qc.x(target)
    return qc


class TestReversibility:
    @given(classical_circuits(), st.integers(0, 31))
    @settings(max_examples=60)
    def test_inverse_undoes(self, qc, bits):
        forward = classical_simulate(qc, bits)
        assert classical_simulate(qc.inverse(), forward) == bits

    @given(classical_circuits())
    @settings(max_examples=30)
    def test_permutation_property(self, qc):
        """A classical-reversible circuit permutes the basis states."""
        outputs = {classical_simulate(qc, b) for b in range(32)}
        assert len(outputs) == 32

    @given(classical_circuits(), st.integers(0, 31))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_dense_simulator(self, qc, bits):
        expected = classical_simulate(qc, bits)
        sv = simulate(qc, initial=bits)
        assert sv.probability_of(expected) > 0.999999


class TestArithmeticProperties:
    @given(st.integers(1, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_popcount_correct(self, width, data):
        pattern = data.draw(st.integers(0, (1 << width) - 1))
        qc = QuantumCircuit(width)
        counter = popcount(qc, list(range(width)), QubitAllocator(qc))
        out = classical_simulate(qc, pattern)
        value = sum(((out >> q) & 1) << i for i, q in enumerate(counter))
        assert value == bin(pattern).count("1")

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=60, deadline=None)
    def test_comparators_agree_with_python(self, width, data):
        x = data.draw(st.integers(0, (1 << width) - 1))
        const = data.draw(st.integers(0, (1 << width) - 1))
        qc = QuantumCircuit(width)
        alloc = QubitAllocator(qc)
        leq = compare_leq_const(qc, list(range(width)), const, alloc)
        geq = compare_geq_const(qc, list(range(width)), const, alloc)
        out = classical_simulate(qc, x)
        assert (out >> leq) & 1 == int(x <= const)
        assert (out >> geq) & 1 == int(x >= const)


class TestGroverProperties:
    @given(st.integers(2, 8), st.data())
    @settings(max_examples=40, deadline=None)
    def test_amplitudes_stay_normalised(self, n, data):
        dim = 1 << n
        marked = data.draw(
            st.lists(st.integers(0, dim - 1), unique=True, max_size=dim // 2)
        )
        engine = PhaseOracleGrover(n, marked)
        run = engine.run(data.draw(st.integers(0, 8)))
        np.testing.assert_allclose(np.sum(run.amplitudes ** 2), 1.0, rtol=1e-9)

    @given(st.integers(2, 8), st.data())
    @settings(max_examples=40, deadline=None)
    def test_simulation_matches_closed_form(self, n, data):
        dim = 1 << n
        m = data.draw(st.integers(1, dim // 2))
        marked = list(range(m))
        engine = PhaseOracleGrover(n, marked)
        iters = data.draw(st.integers(0, 6))
        run = engine.run(iters)
        assert abs(run.success_probability - engine.theoretical_success(iters)) < 1e-9

    @given(st.integers(2, 7), st.data())
    @settings(max_examples=30, deadline=None)
    def test_uniform_amplitudes_among_marked(self, n, data):
        """Symmetry: all marked states share one amplitude, likewise unmarked."""
        dim = 1 << n
        marked = data.draw(
            st.lists(st.integers(0, dim - 1), unique=True, min_size=1,
                     max_size=dim - 1)
        )
        run = PhaseOracleGrover(n, marked).run(3)
        marked_amps = {round(float(run.amplitudes[i]), 12) for i in marked}
        unmarked_amps = {
            round(float(run.amplitudes[i]), 12)
            for i in range(dim)
            if i not in set(marked)
        }
        assert len(marked_amps) == 1
        assert len(unmarked_amps) <= 1
