"""Unit tests for the pinned paper instances."""

import pytest

from repro.core import build_mkp_qubo
from repro.datasets import (
    ANNEALING_INSTANCES,
    GATE_INSTANCES,
    annealing_instances,
    chain_experiment_graph,
    figure1_graph,
    gate_instances,
    load_instance,
)
from repro.kplex import is_kplex, maximum_kplex


class TestFigure1:
    def test_shape(self):
        g = figure1_graph()
        assert g.num_vertices == 6
        assert g.num_edges == 7

    def test_known_2plex(self):
        g = figure1_graph()
        assert is_kplex(g, {0, 1, 3, 4}, 2)

    def test_optimum(self):
        assert maximum_kplex(figure1_graph(), 2).size == 4


class TestGateInstances:
    @pytest.mark.parametrize("name", sorted(GATE_INSTANCES))
    def test_sizes_match_names(self, name):
        inst = GATE_INSTANCES[name]
        g = inst.build()
        assert g.num_vertices == inst.num_vertices
        assert g.num_edges == inst.num_edges

    @pytest.mark.parametrize("name", ["G_7_8", "G_8_10", "G_9_15", "G_10_23"])
    def test_table2_optima_certified(self, name):
        """Table II row check: max 2-plex sizes 4, 4, 5, 6."""
        inst = GATE_INSTANCES[name]
        g = inst.build()
        assert maximum_kplex(g, 2).size == inst.known_optima[2]

    def test_g_10_37_profile(self):
        inst = GATE_INSTANCES["G_10_37"]
        g = inst.build()
        for k, opt in inst.known_optima.items():
            assert maximum_kplex(g, k).size == opt

    def test_builder_dict(self):
        built = gate_instances()
        assert set(built) == set(GATE_INSTANCES)


class TestAnnealingInstances:
    @pytest.mark.parametrize("name", sorted(ANNEALING_INSTANCES))
    def test_sizes(self, name):
        inst = ANNEALING_INSTANCES[name]
        g = inst.build()
        assert (g.num_vertices, g.num_edges) == (inst.num_vertices, inst.num_edges)

    def test_d_instances_nontrivial_qubo(self):
        """Every D instance must actually exercise the penalty machinery."""
        for name, g in annealing_instances().items():
            model = build_mkp_qubo(g, 3)
            assert model.num_slack_variables > 0, name

    def test_known_optimum_d_10_40(self):
        g = load_instance("D_10_40")
        assert maximum_kplex(g, 3).size == 9


class TestLoadInstance:
    def test_known_names(self):
        assert load_instance("G_7_8").num_vertices == 7
        assert load_instance("D_30_300").num_edges == 300

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown instance"):
            load_instance("G_99_99")


class TestChainExperiment:
    def test_density_controls_edges(self):
        g = chain_experiment_graph(20, density=0.7, seed=0)
        assert g.num_vertices == 20
        assert g.num_edges == round(0.7 * 190)

    def test_reproducible(self):
        assert chain_experiment_graph(15) == chain_experiment_graph(15)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            chain_experiment_graph(1)
