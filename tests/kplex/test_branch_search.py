"""Unit tests for the branch-and-search exact solver (the BS baseline)."""

import pytest

from repro.graphs import complete_graph, empty_graph, gnm_random_graph, star_graph
from repro.kplex import (
    find_kplex_of_size,
    is_kplex,
    maximum_kplex,
    maximum_kplex_bruteforce,
)


class TestMaximumKplex:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_agrees_with_bruteforce(self, k, seed):
        g = gnm_random_graph(8, 13, seed=seed)
        assert maximum_kplex(g, k).size == len(maximum_kplex_bruteforce(g, k))

    def test_result_is_valid_plex(self, fig1):
        res = maximum_kplex(fig1, 2)
        assert is_kplex(fig1, res.subset, 2)

    def test_paper_example(self, fig1):
        assert maximum_kplex(fig1, 2).size == 4

    def test_complete_graph(self):
        assert maximum_kplex(complete_graph(8), 1).size == 8

    def test_empty_graph_instance(self):
        assert maximum_kplex(empty_graph(5), 2).size == 2

    def test_zero_vertices(self):
        assert maximum_kplex(empty_graph(0), 1).size == 0

    def test_star_2plex(self):
        # Star: centre + 2 leaves is a 2-plex (leaves miss each other);
        # 3 leaves would leave each leaf with deficiency 2.
        assert maximum_kplex(star_graph(8), 2).size == 3

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            maximum_kplex(fig1, 0)

    def test_warm_start_does_not_change_answer(self, small_random_graph):
        a = maximum_kplex(small_random_graph, 2, warm_start=True).size
        b = maximum_kplex(small_random_graph, 2, warm_start=False).size
        assert a == b

    def test_stats_populated(self, fig1):
        res = maximum_kplex(fig1, 2, warm_start=False)
        assert res.stats.nodes > 0

    def test_warm_start_prunes_more(self):
        g = gnm_random_graph(12, 30, seed=5)
        cold = maximum_kplex(g, 2, warm_start=False)
        warm = maximum_kplex(g, 2, warm_start=True)
        assert warm.size == cold.size
        assert warm.stats.nodes <= cold.stats.nodes


class TestDecisionVariant:
    def test_finds_when_exists(self, fig1):
        res = find_kplex_of_size(fig1, 2, 4)
        assert len(res.subset) >= 4
        assert is_kplex(fig1, res.subset, 2)

    def test_empty_when_impossible(self, fig1):
        assert find_kplex_of_size(fig1, 2, 5).subset == frozenset()

    def test_size_zero(self, fig1):
        assert find_kplex_of_size(fig1, 2, 0).subset == frozenset()

    def test_early_stop_cheaper_than_full_search(self):
        g = gnm_random_graph(12, 35, seed=1)
        decision = find_kplex_of_size(g, 2, 3)
        full = maximum_kplex(g, 2, warm_start=False)
        assert decision.stats.nodes <= full.stats.nodes

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 6])
    def test_matches_bruteforce_threshold(self, fig1, size):
        found = bool(find_kplex_of_size(fig1, 2, size).subset)
        brute = any(
            is_kplex(fig1, fig1.bitmask_to_subset(m), 2)
            and len(fig1.bitmask_to_subset(m)) >= size
            for m in range(64)
        )
        assert found == brute


class TestProgressiveFeatures:
    def test_incumbent_callback_fires(self):
        g = gnm_random_graph(9, 16, seed=2)
        events = []
        res = maximum_kplex(
            g, 2, warm_start=False,
            on_incumbent=lambda subset, nodes: events.append((len(subset), nodes)),
        )
        assert events
        sizes = [s for s, _n in events]
        assert sizes == sorted(sizes)
        assert sizes[-1] == res.size

    def test_warm_start_reports_seed_incumbent(self):
        g = gnm_random_graph(9, 16, seed=2)
        events = []
        maximum_kplex(g, 2, on_incumbent=lambda s, n: events.append(n))
        assert events[0] == 0  # the greedy seed arrives before any node

    def test_time_limit_returns_incumbent(self):
        g = gnm_random_graph(14, 45, seed=1)
        res = maximum_kplex(g, 3, warm_start=False, time_limit_s=0.0)
        assert res.stats.timed_out
        assert is_kplex(g, res.subset, 3)

    def test_no_time_limit_proves_optimality(self, fig1):
        res = maximum_kplex(fig1, 2)
        assert not res.stats.timed_out
