"""Unit tests for the polynomial upper bounds."""

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnm_random_graph,
    star_graph,
)
from repro.kplex import (
    best_upper_bound,
    coloring_bound,
    degeneracy,
    degeneracy_bound,
    maximum_kplex_bruteforce,
    trivial_bound,
)


class TestDegeneracy:
    def test_complete(self):
        assert degeneracy(complete_graph(5)) == 4

    def test_cycle(self):
        assert degeneracy(cycle_graph(7)) == 2

    def test_star(self):
        assert degeneracy(star_graph(9)) == 1

    def test_empty(self):
        assert degeneracy(empty_graph(4)) == 0


class TestBoundsAreValid:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_all_bounds_dominate_optimum(self, k, seed):
        g = gnm_random_graph(8, 14, seed=seed)
        opt = len(maximum_kplex_bruteforce(g, k))
        assert trivial_bound(g, k) >= opt
        assert degeneracy_bound(g, k) >= opt
        assert coloring_bound(g, k) >= opt
        assert best_upper_bound(g, k) >= opt

    def test_best_is_min(self, fig1):
        assert best_upper_bound(fig1, 2) == min(
            trivial_bound(fig1, 2),
            degeneracy_bound(fig1, 2),
            coloring_bound(fig1, 2),
        )


class TestBoundTightness:
    def test_degeneracy_tight_on_clique(self):
        g = complete_graph(6)
        assert degeneracy_bound(g, 1) == 6

    def test_coloring_bound_on_empty_graph(self):
        # 1 colour suffices; a k-plex in the empty graph has size <= k.
        assert coloring_bound(empty_graph(5), 3) == 3

    def test_bounds_never_exceed_n(self, fig1):
        for k in (1, 2, 3, 4):
            assert degeneracy_bound(fig1, k) <= 6
            assert coloring_bound(fig1, k) <= 6

    def test_zero_vertices(self):
        g = empty_graph(0)
        assert degeneracy_bound(g, 2) == 0
        assert coloring_bound(g, 2) == 0

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            degeneracy_bound(fig1, 0)
        with pytest.raises(ValueError):
            coloring_bound(fig1, 0)
