"""Unit tests for the brute-force baselines."""

import pytest

from repro.graphs import Graph, complete_graph, empty_graph, gnm_random_graph
from repro.kplex import (
    count_kplexes_of_size,
    enumerate_kplexes,
    is_kplex,
    kplexes_of_min_size,
    maximum_kplex_bruteforce,
)


class TestEnumerate:
    def test_all_yields_are_plexes(self, fig1):
        for p in enumerate_kplexes(fig1, 2):
            assert is_kplex(fig1, p, 2)

    def test_includes_empty_set(self, fig1):
        assert frozenset() in set(enumerate_kplexes(fig1, 1))

    def test_count_matches_predicate_scan(self, fig1):
        direct = sum(
            1
            for mask in range(64)
            if is_kplex(fig1, fig1.bitmask_to_subset(mask), 2)
        )
        assert sum(1 for _ in enumerate_kplexes(fig1, 2)) == direct

    def test_refuses_large_graphs(self):
        with pytest.raises(ValueError, match="refuses"):
            list(enumerate_kplexes(empty_graph(30), 2))


class TestMaximum:
    def test_paper_example(self, fig1):
        best = maximum_kplex_bruteforce(fig1, 2)
        assert best == frozenset({0, 1, 3, 4})

    def test_clique_whole_graph(self):
        assert maximum_kplex_bruteforce(complete_graph(5), 1) == frozenset(range(5))

    def test_empty_graph_kplex_is_k(self):
        # k isolated vertices are a k-plex; k + 1 are not.
        assert len(maximum_kplex_bruteforce(empty_graph(6), 3)) == 3

    def test_monotone_in_k(self, small_random_graph):
        sizes = [
            len(maximum_kplex_bruteforce(small_random_graph, k)) for k in (1, 2, 3)
        ]
        assert sizes == sorted(sizes)

    def test_deterministic_tie_break(self):
        g = Graph(4, [(0, 1), (2, 3)])
        a = maximum_kplex_bruteforce(g, 1)
        b = maximum_kplex_bruteforce(g, 1)
        assert a == b


class TestCounting:
    def test_count_of_max_size(self, fig1):
        # Exactly one 2-plex of size 4 in the running example.
        assert count_kplexes_of_size(fig1, 2, 4) == 1

    def test_count_zero_above_optimum(self, fig1):
        assert count_kplexes_of_size(fig1, 2, 5) == 0

    def test_min_size_filter(self, fig1):
        plexes = kplexes_of_min_size(fig1, 2, 4)
        assert plexes == [frozenset({0, 1, 3, 4})]

    def test_min_size_one_excludes_empty(self, fig1):
        assert all(len(p) >= 1 for p in kplexes_of_min_size(fig1, 2, 1))

    def test_counts_sum_consistency(self):
        g = gnm_random_graph(7, 11, seed=2)
        total = sum(1 for _ in enumerate_kplexes(g, 2))
        by_size = sum(count_kplexes_of_size(g, 2, s) for s in range(8))
        assert total == by_size
