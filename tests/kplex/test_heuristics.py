"""Unit tests for the heuristic constructors."""

import pytest

from repro.graphs import complete_graph, empty_graph, gnm_random_graph
from repro.kplex import (
    grasp_kplex,
    greedy_kplex,
    is_kplex,
    local_search_improve,
    maximum_kplex_bruteforce,
    repair_to_kplex,
)


class TestGreedy:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_output_is_kplex(self, small_random_graph, k):
        assert is_kplex(small_random_graph, greedy_kplex(small_random_graph, k), k)

    def test_output_is_maximal(self, fig1):
        plex = greedy_kplex(fig1, 2)
        for v in fig1.vertices:
            if v not in plex:
                assert not is_kplex(fig1, plex | {v}, 2)

    def test_clique_found_on_complete(self):
        assert len(greedy_kplex(complete_graph(6), 1)) == 6

    def test_empty_graph(self):
        assert greedy_kplex(empty_graph(0), 2) == frozenset()

    def test_start_vertex_respected(self, fig1):
        assert 5 in greedy_kplex(fig1, 2, start=5)

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            greedy_kplex(fig1, 0)


class TestGrasp:
    def test_output_is_kplex(self, small_random_graph):
        plex = grasp_kplex(small_random_graph, 2, iterations=5, seed=1)
        assert is_kplex(small_random_graph, plex, 2)

    def test_at_least_greedy_quality_on_example(self, fig1):
        plex = grasp_kplex(fig1, 2, iterations=10, seed=3)
        assert len(plex) == 4  # finds the optimum on the small example

    def test_deterministic_given_seed(self, fig1):
        a = grasp_kplex(fig1, 2, iterations=5, seed=9)
        b = grasp_kplex(fig1, 2, iterations=5, seed=9)
        assert a == b

    def test_invalid_alpha(self, fig1):
        with pytest.raises(ValueError):
            grasp_kplex(fig1, 2, alpha=1.5)

    def test_invalid_iterations(self, fig1):
        with pytest.raises(ValueError):
            grasp_kplex(fig1, 2, iterations=0)


class TestLocalSearch:
    def test_never_shrinks(self, small_random_graph):
        seed_plex = greedy_kplex(small_random_graph, 2)
        improved = local_search_improve(small_random_graph, seed_plex, 2)
        assert len(improved) >= len(seed_plex)
        assert is_kplex(small_random_graph, improved, 2)

    def test_requires_feasible_start(self, fig1):
        with pytest.raises(ValueError, match="feasible"):
            local_search_improve(fig1, {0, 1, 2, 3, 4}, 2)

    def test_improves_singleton(self, fig1):
        improved = local_search_improve(fig1, {5}, 2)
        assert len(improved) >= 2


class TestRepair:
    def test_already_feasible_unchanged(self, fig1):
        assert repair_to_kplex(fig1, {0, 1, 3, 4}, 2) == frozenset({0, 1, 3, 4})

    def test_repairs_whole_vertex_set(self, fig1):
        repaired = repair_to_kplex(fig1, range(6), 2)
        assert is_kplex(fig1, repaired, 2)

    def test_repair_never_exceeds_optimum(self):
        g = gnm_random_graph(8, 12, seed=4)
        opt = len(maximum_kplex_bruteforce(g, 2))
        assert len(repair_to_kplex(g, range(8), 2)) <= opt

    def test_empty_input(self, fig1):
        assert repair_to_kplex(fig1, [], 2) == frozenset()
