"""Unit tests for maximal k-plex enumeration and connected search."""

import pytest

from repro.graphs import Graph, complete_graph, empty_graph, gnm_random_graph
from repro.kplex import is_kplex, maximum_kplex_bruteforce
from repro.kplex.enumeration import (
    enumerate_maximal_kplexes,
    maximum_connected_kplex,
)


def _bruteforce_maximal(graph, k, min_size=1):
    """Reference: maximal k-plexes by filtering all k-plexes."""
    plexes = [
        graph.bitmask_to_subset(m)
        for m in range(1 << graph.num_vertices)
        if is_kplex(graph, graph.bitmask_to_subset(m), k)
    ]
    plex_set = set(plexes)
    maximal = []
    for p in plexes:
        if len(p) < min_size:
            continue
        extendable = any(
            (p | {v}) in plex_set for v in graph.vertices if v not in p
        )
        if not extendable:
            maximal.append(p)
    return set(maximal)


class TestEnumerateMaximal:
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bruteforce(self, k, seed):
        g = gnm_random_graph(7, 10, seed=seed)
        ours = set(enumerate_maximal_kplexes(g, k))
        assert ours == _bruteforce_maximal(g, k)

    def test_no_duplicates(self, fig1):
        out = list(enumerate_maximal_kplexes(fig1, 2))
        assert len(out) == len(set(out))

    def test_all_outputs_are_maximal_plexes(self, fig1):
        for plex in enumerate_maximal_kplexes(fig1, 2):
            assert is_kplex(fig1, plex, 2)
            for v in fig1.vertices:
                if v not in plex:
                    assert not is_kplex(fig1, plex | {v}, 2)

    def test_min_size_filter(self, fig1):
        out = list(enumerate_maximal_kplexes(fig1, 2, min_size=4))
        assert out == [frozenset({0, 1, 3, 4})]

    def test_max_results_cap(self):
        g = gnm_random_graph(8, 12, seed=3)
        out = list(enumerate_maximal_kplexes(g, 2, max_results=2))
        assert len(out) <= 2

    def test_complete_graph_single_maximal(self):
        out = list(enumerate_maximal_kplexes(complete_graph(5), 1))
        assert out == [frozenset(range(5))]

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            list(enumerate_maximal_kplexes(fig1, 0))

    def test_size_guard(self):
        with pytest.raises(ValueError, match="refuses"):
            list(enumerate_maximal_kplexes(empty_graph(50), 2))

    def test_maximum_is_among_maximal(self, fig1):
        best = maximum_kplex_bruteforce(fig1, 2)
        assert best in set(enumerate_maximal_kplexes(fig1, 2))


class TestConnectedMaximum:
    def test_connected_result(self, fig1):
        res = maximum_connected_kplex(fig1, 2)
        from repro.graphs import is_connected

        assert is_connected(fig1.induced_subgraph(res.subset))
        assert is_kplex(fig1, res.subset, 2)

    def test_disconnected_graph_forces_smaller_answer(self):
        # Two disjoint triangles: the maximum 2-plex may span both
        # (each vertex misses only far vertices? no: spanning 4+ fails),
        # but the maximum *connected* 2-plex is one triangle.
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        connected = maximum_connected_kplex(g, 2)
        assert len(connected.subset) == 3

    def test_empty_graph_pairs(self):
        # isolated vertices: any 2 form a (disconnected) 2-plex; the
        # best connected one is a single vertex.
        g = empty_graph(4)
        assert len(maximum_connected_kplex(g, 2).subset) == 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_never_exceeds_unconstrained(self, seed):
        g = gnm_random_graph(8, 12, seed=seed)
        connected = maximum_connected_kplex(g, 2)
        assert len(connected.subset) <= len(maximum_kplex_bruteforce(g, 2))

    def test_matches_on_connected_optimum(self, fig1):
        # fig1's optimum is connected, so both searches agree.
        res = maximum_connected_kplex(fig1, 2)
        assert res.subset == frozenset({0, 1, 3, 4})
