"""Unit tests for k-plex / k-cplex predicates."""

import pytest

from repro.graphs import complete_graph, empty_graph
from repro.kplex import (
    is_kcplex,
    is_kplex,
    kplex_deficiencies,
    max_k_for_subset,
    violating_vertices,
)


class TestIsKplex:
    def test_paper_example(self, fig1):
        assert is_kplex(fig1, {0, 1, 3, 4}, 2)

    def test_paper_example_not_extensible(self, fig1):
        assert not is_kplex(fig1, {0, 1, 2, 3, 4}, 2)

    def test_empty_set(self, fig1):
        assert is_kplex(fig1, [], 1)

    def test_singleton(self, fig1):
        assert is_kplex(fig1, [2], 1)

    def test_clique_is_1plex(self):
        g = complete_graph(5)
        assert is_kplex(g, range(5), 1)

    def test_independent_set_is_kplex_iff_small(self):
        g = empty_graph(5)
        assert is_kplex(g, range(3), 3)       # 3 isolated vertices, k = 3
        assert not is_kplex(g, range(4), 3)   # deficiency 3 > k - 1

    def test_small_sets_trivially_plexes(self, fig1):
        # any set of size <= k is a k-plex
        assert is_kplex(fig1, {2, 5}, 2)

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            is_kplex(fig1, {0}, 0)


class TestIsKcplex:
    def test_complement_duality(self, fig1, small_random_graph):
        for g in (fig1, small_random_graph):
            comp = g.complement()
            for mask in range(1 << g.num_vertices):
                subset = g.bitmask_to_subset(mask)
                assert is_kplex(g, subset, 2) == is_kcplex(comp, subset, 2)

    def test_paper_cplex_example(self, fig1):
        # {v1, v2, v4, v5} is the max 2-cplex of the complement (Fig. 5).
        assert is_kcplex(fig1.complement(), {0, 1, 3, 4}, 2)

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            is_kcplex(fig1, {0}, 0)


class TestDeficiencies:
    def test_values(self, fig1):
        defs = kplex_deficiencies(fig1, {0, 1, 3, 4})
        # v1 adjacent to all three others; v2 misses v5.
        assert defs[0] == 0
        assert defs[1] == 1

    def test_plex_iff_max_deficiency_small(self, fig1):
        subset = {0, 1, 3, 4}
        assert max(kplex_deficiencies(fig1, subset).values()) <= 1

    def test_violating_vertices(self, fig1):
        bad = violating_vertices(fig1, {0, 1, 2, 3, 4}, 2)
        assert 2 in bad  # v3 has only one neighbour (v1) among the five

    def test_violating_empty_for_plex(self, fig1):
        assert violating_vertices(fig1, {0, 1, 3, 4}, 2) == []


class TestMaxK:
    def test_clique(self):
        assert max_k_for_subset(complete_graph(4), range(4)) == 1

    def test_singleton(self, fig1):
        assert max_k_for_subset(fig1, {0}) == 1

    def test_agrees_with_predicate(self, fig1):
        for mask in range(1, 64):
            subset = fig1.bitmask_to_subset(mask)
            k_min = max_k_for_subset(fig1, subset)
            assert is_kplex(fig1, subset, k_min)
            if k_min > 1:
                assert not is_kplex(fig1, subset, k_min - 1)
