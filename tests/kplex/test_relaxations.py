"""Unit tests for the n-clan / n-club relaxations."""

import pytest

from repro.graphs import Graph, complete_graph, cycle_graph, path_graph
from repro.kplex import (
    is_nclan,
    is_nclique,
    is_nclub,
    maximum_nclan_bruteforce,
    maximum_nclub_bruteforce,
)


class TestNClique:
    def test_clique_is_1clique(self):
        g = complete_graph(4)
        assert is_nclique(g, range(4), 1)

    def test_path_endpoints(self):
        g = path_graph(4)
        assert is_nclique(g, {0, 3}, 3)
        assert not is_nclique(g, {0, 3}, 2)

    def test_distances_may_use_outside_vertices(self):
        # 0 and 2 are within distance 2 through 1, even excluding 1.
        g = path_graph(3)
        assert is_nclique(g, {0, 2}, 2)

    def test_invalid_n(self, fig1):
        with pytest.raises(ValueError):
            is_nclique(fig1, {0}, 0)


class TestNClub:
    def test_small_sets_trivial(self, fig1):
        assert is_nclub(fig1, [], 1)
        assert is_nclub(fig1, [3], 1)

    def test_triangle_is_1club(self, fig1):
        assert is_nclub(fig1, {0, 1, 3}, 1)

    def test_induced_distance_matters(self):
        # {0, 2} at distance 2 via vertex 1 — but the induced subgraph
        # on {0, 2} is disconnected, so it is not a 2-club.
        g = path_graph(3)
        assert not is_nclub(g, {0, 2}, 2)
        assert is_nclub(g, {0, 1, 2}, 2)

    def test_cycle_whole_is_club(self):
        g = cycle_graph(6)
        assert is_nclub(g, range(6), 3)
        assert not is_nclub(g, range(6), 2)


class TestNClan:
    def test_clan_requires_both_conditions(self):
        # The classic example: a 2-clique that is not a 2-clan.
        # Star-of-paths: hub 0; 1 and 2 adjacent to 0; 3 adjacent to 1 and 2.
        g = Graph(5, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 4)])
        subset = {1, 2, 4}
        assert is_nclique(g, subset, 2)  # distances via 0
        assert not is_nclan(g, subset, 2)  # induced subgraph edgeless

    def test_clique_is_1clan(self):
        g = complete_graph(4)
        assert is_nclan(g, range(4), 1)


class TestBruteForce:
    def test_nclub_at_least_nclan(self, fig1):
        # Every n-clan is an n-club, so the max n-club is at least as big.
        clan = maximum_nclan_bruteforce(fig1, 2)
        club = maximum_nclub_bruteforce(fig1, 2)
        assert len(club) >= len(clan)

    def test_results_satisfy_predicates(self, fig1):
        assert is_nclan(fig1, maximum_nclan_bruteforce(fig1, 2), 2)
        assert is_nclub(fig1, maximum_nclub_bruteforce(fig1, 2), 2)

    def test_whole_graph_when_diameter_fits(self, fig1):
        # fig1 is connected with diameter 3.
        assert len(maximum_nclub_bruteforce(fig1, 3)) == 6

    def test_refuses_large(self):
        from repro.graphs import empty_graph

        with pytest.raises(ValueError):
            maximum_nclub_bruteforce(empty_graph(20), 2)
