"""Unit tests for the Grover simulation backends."""

import numpy as np
import pytest

from repro.grover import PhaseOracleGrover, grover_circuit
from repro.quantum import QuantumCircuit, simulate


class TestPhaseOracleGrover:
    def test_marked_from_predicate(self):
        engine = PhaseOracleGrover(4, lambda m: m in (3, 7))
        assert engine.marked == frozenset({3, 7})

    def test_marked_from_iterable(self):
        engine = PhaseOracleGrover(3, [1, 5])
        assert engine.num_marked == 2

    def test_out_of_range_marked(self):
        with pytest.raises(ValueError):
            PhaseOracleGrover(2, [4])

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            PhaseOracleGrover(0, [])
        with pytest.raises(ValueError):
            PhaseOracleGrover(40, [])

    def test_run_matches_closed_form(self):
        engine = PhaseOracleGrover(6, [13])
        for iters in (0, 1, 3, 6):
            run = engine.run(iters)
            assert run.success_probability == pytest.approx(
                engine.theoretical_success(iters)
            )

    def test_history_tracks_each_round(self):
        engine = PhaseOracleGrover(5, [7])
        run = engine.run(4)
        assert len(run.history) == 5
        assert run.history[0] == pytest.approx(1 / 32)

    def test_snapshots(self):
        engine = PhaseOracleGrover(4, [2])
        run = engine.run(3, snapshot_at=[0, 2])
        assert set(run.amplitude_snapshots) == {0, 2}
        assert run.amplitude_snapshots[0].shape == (16,)

    def test_optimal_iterations_zero_when_unmarked(self):
        assert PhaseOracleGrover(4, []).optimal_iterations() == 0

    def test_no_marked_states_stay_uniform(self):
        engine = PhaseOracleGrover(3, [])
        run = engine.run(2)
        assert np.allclose(run.amplitudes, 1 / np.sqrt(8))

    def test_measure_concentrates_on_solution(self, rng):
        engine = PhaseOracleGrover(6, [42])
        run = engine.run()
        counts = run.measure(2000, rng)
        assert counts.get(42, 0) > 1900

    def test_measure_once_returns_index(self, rng):
        engine = PhaseOracleGrover(4, [9])
        run = engine.run()
        assert 0 <= run.measure_once(rng) < 16

    def test_error_probability_property(self):
        engine = PhaseOracleGrover(6, [1])
        run = engine.run()
        assert run.error_probability == pytest.approx(1 - run.success_probability)

    def test_negative_iterations(self):
        with pytest.raises(ValueError):
            PhaseOracleGrover(3, [1]).run(-1)


class TestFullCircuitAgreement:
    def _phase_oracle_for(self, n, marked):
        """Textbook phase oracle: mark by multi-controlled Z."""
        qc = QuantumCircuit(n)
        for m in marked:
            values = [(m >> q) & 1 for q in range(n)]
            # flip zeros so all controls read 1, apply MCZ, flip back
            for q, v in enumerate(values):
                if not v:
                    qc.x(q)
            if n == 1:
                qc.z(0)
            else:
                qc.mcz(list(range(n - 1)), n - 1)
            for q, v in enumerate(values):
                if not v:
                    qc.x(q)
        return qc

    @pytest.mark.parametrize("marked", [[5], [1, 6], [0, 3, 7]])
    def test_dense_circuit_matches_phase_backend(self, marked):
        """Fig. 11 built literally must agree with the fast backend."""
        n = 3
        oracle = self._phase_oracle_for(n, marked)
        engine = PhaseOracleGrover(n, marked)
        iters = max(engine.optimal_iterations(), 1)
        circuit = grover_circuit(n, oracle, iters)
        sv = simulate(circuit)
        run = engine.run(iters)
        dense_probs = sv.probabilities()
        fast_probs = run.amplitudes ** 2
        assert np.allclose(dense_probs, fast_probs, atol=1e-9)


class TestMeasurementMemoization:
    def test_probabilities_cached_and_normalized(self):
        engine = PhaseOracleGrover(4, [3, 9])
        run = engine.run(2)
        probs = run.probabilities()
        assert probs is run.probabilities()  # same object: computed once
        assert probs.sum() == pytest.approx(1.0)
        assert np.array_equal(probs, run.amplitudes ** 2 / (run.amplitudes ** 2).sum())

    def test_measure_paths_share_distribution(self):
        engine = PhaseOracleGrover(3, [5])
        run = engine.run(1)
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        first = run.measure_once(rng_a)
        counts = run.measure(1, rng_b)
        assert counts == {first: 1}
