"""Unit tests for the diffusion operator circuit."""

import numpy as np
import pytest

from repro.grover import diffusion_circuit, diffusion_gate_count, diffusion_matrix
from repro.quantum import simulate


def _circuit_matrix(qc):
    dim = 1 << qc.num_qubits
    cols = []
    for basis in range(dim):
        cols.append(simulate(qc, initial=basis).data)
    return np.column_stack(cols)


class TestDiffusion:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_ideal_reflection_up_to_phase(self, n):
        built = _circuit_matrix(diffusion_circuit(n))
        ideal = diffusion_matrix(n)
        # The circuit realises the reflection up to a global -1 phase.
        ratio = built @ np.linalg.inv(ideal)
        assert np.allclose(ratio, np.eye(1 << n)) or np.allclose(
            ratio, -np.eye(1 << n)
        )

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_unitary(self, n):
        u = _circuit_matrix(diffusion_circuit(n))
        assert np.allclose(u @ u.conj().T, np.eye(1 << n))

    def test_preserves_uniform_superposition(self):
        ideal = diffusion_matrix(3)
        s = np.full(8, 1 / np.sqrt(8))
        assert np.allclose(ideal @ s, s)

    def test_gate_count_formula(self):
        for n in (1, 2, 5, 10):
            assert diffusion_gate_count(n) == 4 * n + 1

    def test_gate_count_matches_circuit(self):
        for n in (2, 3, 4):
            assert diffusion_circuit(n).num_gates == diffusion_gate_count(n)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            diffusion_circuit(0)
