"""Unit tests for Grover schedules and probabilities."""

import math

import pytest

from repro.grover import (
    error_probability,
    optimal_iterations,
    paper_error_bound,
    success_probability,
)


class TestOptimalIterations:
    def test_single_marked_64(self):
        # The paper's Fig. 12 run: N = 64, M = 1 -> 6 iterations.
        assert optimal_iterations(64, 1) == 6

    def test_formula(self):
        for n_states, marked in [(16, 1), (256, 4), (1024, 10)]:
            expected = math.floor(math.pi / 4 * math.sqrt(n_states / marked))
            assert optimal_iterations(n_states, marked) == expected

    def test_majority_marked_gives_zero(self):
        assert optimal_iterations(4, 4) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_iterations(0, 1)
        with pytest.raises(ValueError):
            optimal_iterations(8, 0)
        with pytest.raises(ValueError):
            optimal_iterations(8, 9)


class TestSuccessProbability:
    def test_initial_uniform(self):
        assert success_probability(64, 1, 0) == pytest.approx(1 / 64)

    def test_monotone_until_optimum(self):
        probs = [success_probability(64, 1, i) for i in range(7)]
        assert probs == sorted(probs)

    def test_near_one_at_optimum(self):
        iters = optimal_iterations(64, 1)
        assert success_probability(64, 1, iters) > 0.99

    def test_zero_marked(self):
        assert success_probability(16, 0, 3) == 0.0

    def test_error_complements_success(self):
        assert error_probability(64, 1, 6) == pytest.approx(
            1 - success_probability(64, 1, 6)
        )

    def test_negative_iterations(self):
        with pytest.raises(ValueError):
            success_probability(8, 1, -1)


class TestPaperBound:
    def test_bound_dominates_exact_error_at_optimum(self):
        for n_states in (64, 256, 1024):
            iters = optimal_iterations(n_states, 1)
            assert paper_error_bound(iters) >= error_probability(n_states, 1, iters)

    def test_decreases_quadratically(self):
        assert paper_error_bound(20) == pytest.approx(paper_error_bound(10) / 4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            paper_error_bound(0)
