"""Unit tests for BBHT search (Grover with unknown M)."""

import numpy as np
import pytest

from repro.grover import PhaseOracleGrover, bbht_search


class TestBBHT:
    @pytest.mark.parametrize("marked", [[5], [1, 9, 14], list(range(8))])
    def test_finds_a_solution(self, marked, rng):
        engine = PhaseOracleGrover(4, marked)
        result = bbht_search(engine, rng=rng)
        assert result.found
        assert result.mask in set(marked)

    def test_no_solutions_terminates(self, rng):
        engine = PhaseOracleGrover(4, [])
        result = bbht_search(engine, rng=rng)
        assert not result.found
        assert result.mask is None
        # the default budget, plus at most one overshooting round
        assert result.oracle_calls <= (6 * 4 + 12) + 4

    def test_cost_scales_with_rarity(self):
        """Expected calls grow as M shrinks (the O(sqrt(N/M)) law)."""
        n = 8
        dense_costs, sparse_costs = [], []
        for seed in range(20):
            rng = np.random.default_rng(seed)
            dense = bbht_search(PhaseOracleGrover(n, range(64)), rng=rng)
            rng = np.random.default_rng(seed)
            sparse = bbht_search(PhaseOracleGrover(n, [7]), rng=rng)
            assert dense.found and sparse.found
            dense_costs.append(dense.oracle_calls)
            sparse_costs.append(sparse.oracle_calls)
        assert np.mean(sparse_costs) > np.mean(dense_costs)

    def test_respects_budget(self, rng):
        engine = PhaseOracleGrover(6, [3])
        result = bbht_search(engine, rng=rng, max_oracle_calls=0)
        assert not result.found
        assert result.oracle_calls == 0

    def test_near_optimal_expected_cost(self):
        """Mean BBHT cost is within a small factor of pi/4 sqrt(N/M)."""
        n, m = 8, 4
        engine = PhaseOracleGrover(n, range(m))
        optimal = np.pi / 4 * np.sqrt((1 << n) / m)
        costs = [
            bbht_search(engine, rng=np.random.default_rng(s)).oracle_calls
            for s in range(40)
        ]
        assert np.mean(costs) < 8 * optimal


class TestQtkpIntegration:
    def test_bbht_mode_finds_paper_solution(self, fig1, rng):
        from repro.core import qtkp

        result = qtkp(fig1, 2, 4, counting="bbht", rng=rng)
        assert result.found
        assert result.subset == frozenset({0, 1, 3, 4})
        assert result.iterations == 0  # mode marker
        assert result.oracle_calls > 0

    def test_bbht_mode_fails_above_optimum(self, fig1, rng):
        from repro.core import qtkp

        result = qtkp(fig1, 2, 5, counting="bbht", rng=rng)
        assert not result.found
        assert result.oracle_calls > 0

    def test_unknown_counting_mode_rejected(self, fig1, rng):
        from repro.core import qtkp

        with pytest.raises(ValueError, match="counting"):
            qtkp(fig1, 2, 3, counting="magic", rng=rng)
