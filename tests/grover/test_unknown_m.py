"""Unit tests for BBHT search (Grover with unknown M)."""

import numpy as np
import pytest

from repro.grover import PhaseOracleGrover, bbht_search


class TestBBHT:
    @pytest.mark.parametrize("marked", [[5], [1, 9, 14], list(range(8))])
    def test_finds_a_solution(self, marked, rng):
        engine = PhaseOracleGrover(4, marked)
        result = bbht_search(engine, rng=rng)
        assert result.found
        assert result.mask in set(marked)

    def test_no_solutions_terminates(self, rng):
        engine = PhaseOracleGrover(4, [])
        result = bbht_search(engine, rng=rng)
        assert not result.found
        assert result.mask is None
        # the default budget, plus at most one overshooting round
        assert result.oracle_calls <= (6 * 4 + 12) + 4

    def test_cost_scales_with_rarity(self):
        """Expected calls grow as M shrinks (the O(sqrt(N/M)) law)."""
        n = 8
        dense_costs, sparse_costs = [], []
        for seed in range(20):
            rng = np.random.default_rng(seed)
            dense = bbht_search(PhaseOracleGrover(n, range(64)), rng=rng)
            rng = np.random.default_rng(seed)
            sparse = bbht_search(PhaseOracleGrover(n, [7]), rng=rng)
            assert dense.found and sparse.found
            dense_costs.append(dense.oracle_calls)
            sparse_costs.append(sparse.oracle_calls)
        assert np.mean(sparse_costs) > np.mean(dense_costs)

    def test_respects_budget(self, rng):
        engine = PhaseOracleGrover(6, [3])
        result = bbht_search(engine, rng=rng, max_oracle_calls=0)
        assert not result.found
        assert result.oracle_calls == 0

    def test_near_optimal_expected_cost(self):
        """Mean BBHT cost is within a small factor of pi/4 sqrt(N/M)."""
        n, m = 8, 4
        engine = PhaseOracleGrover(n, range(m))
        optimal = np.pi / 4 * np.sqrt((1 << n) / m)
        costs = [
            bbht_search(engine, rng=np.random.default_rng(s)).oracle_calls
            for s in range(40)
        ]
        assert np.mean(costs) < 8 * optimal


class TestRestartsAndHooks:
    """The resilience hooks: execute/corrupt callables and schedule restarts."""

    def test_clean_run_reports_no_restarts(self, rng):
        engine = PhaseOracleGrover(4, [5])
        result = bbht_search(engine, rng=rng)
        assert result.restarts_used == 0

    def test_passthrough_hooks_are_identity(self):
        engine = PhaseOracleGrover(4, [5])
        plain = bbht_search(engine, rng=np.random.default_rng(3))
        hooked = bbht_search(
            engine,
            rng=np.random.default_rng(3),
            execute=lambda eng, iters: eng.run(iters),
            corrupt=lambda mask: mask,
        )
        assert hooked.mask == plain.mask
        assert hooked.oracle_calls == plain.oracle_calls
        assert hooked.rounds == plain.rounds

    def test_execute_hook_sees_every_run(self, rng):
        engine = PhaseOracleGrover(4, [5])
        calls = []

        def execute(eng, iterations):
            calls.append(iterations)
            return eng.run(iterations)

        result = bbht_search(engine, rng=rng, execute=execute)
        assert result.found
        assert len(calls) == result.rounds

    def test_corrupting_every_sample_consumes_restarts(self, rng):
        # A corrupt hook that maps every measurement to an unmarked
        # state defeats each schedule; the restart budget is consumed
        # and the failure is reported with full accounting.
        engine = PhaseOracleGrover(4, [5])
        result = bbht_search(
            engine, rng=rng, restarts=2, corrupt=lambda mask: 0
        )
        assert not result.found
        assert result.restarts_used == 2
        assert result.rejected == result.rounds

    def test_restart_recovers_from_transient_corruption(self):
        # Corruption that stops after the first schedule: the restart
        # finds the solution the first schedule was denied.
        engine = PhaseOracleGrover(4, [5])
        state = {"rounds": 0}

        def corrupt(mask):
            state["rounds"] += 1
            return 0 if state["rounds"] <= 40 else mask

        result = bbht_search(
            engine, rng=np.random.default_rng(4), restarts=3, corrupt=corrupt
        )
        assert result.found
        assert result.restarts_used >= 1
        assert result.rejected >= 40

    def test_same_seed_same_run_with_hooks(self):
        engine = PhaseOracleGrover(4, [1, 9])
        runs = [
            bbht_search(
                engine,
                rng=np.random.default_rng(17),
                restarts=1,
                corrupt=lambda mask: mask,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestQtkpIntegration:
    def test_bbht_mode_finds_paper_solution(self, fig1, rng):
        from repro.core import qtkp

        result = qtkp(fig1, 2, 4, counting="bbht", rng=rng)
        assert result.found
        assert result.subset == frozenset({0, 1, 3, 4})
        assert result.iterations == 0  # mode marker
        assert result.oracle_calls > 0

    def test_bbht_mode_fails_above_optimum(self, fig1, rng):
        from repro.core import qtkp

        result = qtkp(fig1, 2, 5, counting="bbht", rng=rng)
        assert not result.found
        assert result.oracle_calls > 0

    def test_unknown_counting_mode_rejected(self, fig1, rng):
        from repro.core import qtkp

        with pytest.raises(ValueError, match="counting"):
            qtkp(fig1, 2, 3, counting="magic", rng=rng)
