"""Unit tests for the span tracer and its no-op twin."""

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        t = Tracer()
        with t.span("qmkp", k=2) as root:
            with t.span("qtkp", threshold=3):
                with t.span("qtkp.attempt", attempt=0):
                    pass
            with t.span("qtkp", threshold=4):
                pass
        assert t.roots == [root]
        assert [c.name for c in root.children] == ["qtkp", "qtkp"]
        assert root.children[0].children[0].name == "qtkp.attempt"
        assert root.attributes == {"k": 2}
        assert t.current is None

    def test_add_charges_current_span_and_registry(self):
        t = Tracer()
        with t.span("a") as a:
            t.add("oracle_calls", 3)
            with t.span("b") as b:
                t.add("oracle_calls", 4)
        assert a.metrics == {"oracle_calls": 3}
        assert b.metrics == {"oracle_calls": 4}
        assert a.subtree_total("oracle_calls") == 7
        assert t.registry.counter("oracle_calls").value == 7

    def test_add_outside_any_span_goes_to_orphans(self):
        t = Tracer()
        t.add("oracle_calls", 2)
        assert t.orphan_metrics == {"oracle_calls": 2}
        assert t.registry.counter("oracle_calls").value == 2

    def test_span_closes_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("a"):
                raise RuntimeError("boom")
        assert t.current is None
        assert t.roots[0].duration_s is not None

    def test_durations_are_recorded_and_nested(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert inner.duration_s is not None
        assert outer.duration_s >= inner.duration_s

    def test_claim_and_observe(self):
        t = Tracer()
        with t.span("a") as a:
            a.claim("oracle_calls", 10)
            t.observe("chain_break_fraction", 0.25)
        assert a.claims == {"oracle_calls": 10}
        assert t.registry.histogram("chain_break_fraction").count == 1

    def test_walk_and_find(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b"):
                pass
            with t.span("c"):
                pass
        root = t.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        assert root.find("c").name == "c"
        assert root.find("missing") is None

    def test_as_dict_omits_empty_fields(self):
        t = Tracer()
        with t.span("a"):
            pass
        doc = t.roots[0].as_dict()
        assert doc["name"] == "a"
        assert "attributes" not in doc and "metrics" not in doc


class TestNullTracer:
    def test_is_a_shared_inert_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.is_recording is False
        # The same pre-built span object every time: no per-call state.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", k=2)

    def test_all_operations_are_noops(self):
        with NULL_TRACER.span("a", k=1) as span:
            span.set("x", 1)
            span.add("m", 2)
            span.claim("m", 3)
            NULL_TRACER.add("m", 4)
            NULL_TRACER.set("x", 5)
            NULL_TRACER.observe("h", 0.5)
        assert NULL_TRACER.registry is None

    def test_null_span_swallows_nothing(self):
        # __exit__ must not suppress exceptions.
        with pytest.raises(ValueError):
            with NULL_TRACER.span("a"):
                raise ValueError("propagates")
