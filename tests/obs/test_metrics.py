"""Unit tests for the metric registry (counters, gauges, histograms)."""

import pytest

from repro.obs import MetricRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricRegistry()
        c = reg.counter("oracle_calls")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        c = MetricRegistry().counter("oracle_calls")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert len(reg) == 1


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricRegistry().gauge("depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        h = MetricRegistry().histogram("cbf", buckets=(0.1, 0.5, 1.0))
        for v in (0.05, 0.3, 0.3, 0.9, 7.0):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 1, 1]  # last = +inf
        assert h.count == 5
        assert h.min == 0.05 and h.max == 7.0
        assert h.mean() == pytest.approx(8.55 / 5)

    def test_empty_histogram_has_no_mean(self):
        h = MetricRegistry().histogram("cbf")
        assert h.mean() is None

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            MetricRegistry().histogram("bad", buckets=(1.0, 0.5))


class TestRegistry:
    def test_kind_mismatch_is_an_error(self):
        reg = MetricRegistry()
        reg.counter("n")
        with pytest.raises(TypeError, match="not a Gauge"):
            reg.gauge("n")

    def test_counters_slice_excludes_other_kinds(self):
        reg = MetricRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(9)
        reg.histogram("c").observe(1.0)
        assert reg.counters() == {"a": 2}

    def test_as_dict_roundtrips_through_json(self):
        import json

        reg = MetricRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(-1.5)
        reg.histogram("c", buckets=(1.0,)).observe(0.5)
        doc = json.loads(json.dumps(reg.as_dict()))
        assert doc["counters"] == {"a": 3}
        assert doc["gauges"] == {"b": -1.5}
        assert doc["histograms"]["c"]["count"] == 1
        assert doc["histograms"]["c"]["buckets"] == {"1": 1, "+Inf": 0}


class TestPrometheusRendering:
    def test_counter_gauge_histogram_blocks(self):
        reg = MetricRegistry()
        reg.counter("oracle_calls", help="oracle invocations").inc(7)
        reg.gauge("depth").set(2.5)
        h = reg.histogram("cbf", buckets=(0.5, 1.0))
        h.observe(0.25)
        h.observe(0.75)
        text = reg.render_prometheus()
        assert "# HELP repro_oracle_calls oracle invocations" in text
        assert "# TYPE repro_oracle_calls counter" in text
        assert "repro_oracle_calls_total 7" in text
        assert "repro_depth 2.5" in text
        # Buckets are cumulative and +Inf equals the total count.
        assert 'repro_cbf_bucket{le="0.5"} 1' in text
        assert 'repro_cbf_bucket{le="1"} 2' in text
        assert 'repro_cbf_bucket{le="+Inf"} 2' in text
        assert "repro_cbf_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricRegistry().render_prometheus() == ""
