"""Property test: traced runs reconcile, span totals match result fields.

The run ledger's whole contract is zero drift: whatever a traced solver
reports in its result object must equal, bit for bit, what the span
tree actually accumulated.  These tests run the real qMKP and qaMKP
stacks on random small graphs under a recording tracer and check both
``ledger.verify()`` and the total-vs-result-field equalities directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import grover_maximum_subset, qamkp, qmkp
from repro.kplex import is_kplex
from repro.graphs import Graph
from repro.obs import RunLedger, Tracer
from repro.perf import MarkedSetCache


@st.composite
def graph_instances(draw, max_n=6):
    n = draw(st.integers(min_value=2, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    k = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return Graph(n, edges), k, seed


class TestQmkpReconciliation:
    @given(graph_instances())
    @settings(max_examples=25, deadline=None)
    def test_traced_qmkp_reconciles_bit_for_bit(self, instance):
        graph, k, seed = instance
        tracer = Tracer()
        result = qmkp(
            graph, k, rng=np.random.default_rng(seed), tracer=tracer
        )
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        assert ledger.total("oracle_calls") == result.oracle_calls
        assert ledger.total("gate_units") == result.gate_units
        assert ledger.total("qtkp_calls") == result.qtkp_calls
        # One qtkp child span per binary-search probe.
        root = ledger.find("qmkp")
        assert sum(1 for s in root.walk() if s.name == "qtkp") == result.qtkp_calls

    @given(graph_instances(max_n=5))
    @settings(max_examples=10, deadline=None)
    def test_shared_cache_claims_are_deltas_not_absolutes(self, instance):
        graph, k, seed = instance
        cache = MarkedSetCache()
        # Warm the cache with an untraced run first: the traced run's
        # hit/miss claims must cover only its own probes.
        qmkp(graph, k, rng=np.random.default_rng(seed), cache=cache)
        stats_before = cache.stats()
        tracer = Tracer()
        qmkp(graph, k, rng=np.random.default_rng(seed), cache=cache, tracer=tracer)
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        stats_after = cache.stats()
        assert ledger.total("marked_cache_hits") == (
            stats_after["hits"] - stats_before["hits"]
        )
        assert ledger.total("marked_cache_misses") == (
            stats_after["misses"] - stats_before["misses"]
        )
        # The warmed table serves every probe: no misses, no new sweep.
        assert ledger.total("marked_cache_misses") == 0
        assert ledger.total("perf_masks_scanned") == 0
        # The tracer handed to qmkp is detached again afterwards.
        assert cache.tracer.is_recording is False


class TestQamkpReconciliation:
    @given(
        graph_instances(max_n=5),
        st.sampled_from([None, "transient=1,seed=5", "transient=2,storm=0.6,seed=9"]),
        st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_traced_resilient_qamkp_reconciles(self, instance, plan, fallback):
        graph, k, seed = instance
        tracer = Tracer()
        result = qamkp(
            graph, k, runtime_us=300.0, solver="qpu", seed=seed,
            retries=2, fallback=fallback, fault_plan=plan, tracer=tracer,
        )
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        report = result.info["resilience"]
        assert ledger.total("resilience_attempts") == len(report["attempts"])
        assert ledger.total("resilience_faults") == len(report["faults"])
        assert ledger.total("resilience_fallback_hops") == len(report["fallbacks"])
        assert ledger.total("resilience_retries") == sum(
            1 for a in report["attempts"] if a["attempt"] > 0
        )
        # Budget microseconds agree to float tolerance (summation order
        # differs); the ledger's verify() already enforced 1e-9.
        assert ledger.total("resilience_charged_us") == pytest.approx(
            report["charged_us"], rel=1e-9
        )
        # One attempt span per AttemptRecord, across retry and rung paths.
        spans = [
            s
            for root in ledger.roots
            for s in root.walk()
            if s.name == "resilience.attempt"
        ]
        assert len(spans) == len(report["attempts"])

    def test_plain_solver_paths_trace_clean(self, fig1):
        for solver in ("sa", "hybrid"):
            tracer = Tracer()
            qamkp(fig1, 2, runtime_us=500.0, solver=solver, seed=1, tracer=tracer)
            ledger = RunLedger.from_tracer(tracer)
            assert ledger.verify() == []
            assert ledger.total("qamkp_solves") == 1
            assert ledger.find("qamkp.sample").attributes["backend"] == solver


class TestSubsetSearchReconciliation:
    @given(graph_instances(max_n=5))
    @settings(max_examples=10, deadline=None)
    def test_traced_subset_search_reconciles(self, instance):
        graph, k, seed = instance
        tracer = Tracer()
        result = grover_maximum_subset(
            graph,
            lambda s: is_kplex(graph, s, k),
            rng=np.random.default_rng(seed),
            tracer=tracer,
        )
        ledger = RunLedger.from_tracer(tracer)
        assert ledger.verify() == []
        assert ledger.total("oracle_calls") == result.oracle_calls
