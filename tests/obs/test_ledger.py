"""Unit tests for run-ledger assembly, verification, and export."""

import json

import pytest

from repro.obs import LedgerDriftError, RunLedger, Tracer


def _traced_run(claim_ok=True):
    t = Tracer()
    with t.span("qmkp", k=2) as root:
        with t.span("qtkp", threshold=3):
            t.add("oracle_calls", 5)
        with t.span("qtkp", threshold=4):
            t.add("oracle_calls", 7)
        root.claim("oracle_calls", 12 if claim_ok else 13)
    return t


class TestVerification:
    def test_matching_claims_verify_clean(self):
        ledger = RunLedger.from_tracer(_traced_run())
        assert ledger.verify() == []
        assert ledger.total("oracle_calls") == 12

    def test_integral_drift_fails_bit_for_bit(self):
        ledger = RunLedger.from_tracer(_traced_run(claim_ok=False))
        with pytest.raises(LedgerDriftError) as exc:
            ledger.verify()
        (drift,) = exc.value.drift
        assert drift.where == "qmkp"
        assert drift.metric == "oracle_calls"
        assert drift.claimed == 13 and drift.observed == 12

    def test_raise_on_drift_false_returns_records(self):
        ledger = RunLedger.from_tracer(_traced_run(claim_ok=False))
        drift = ledger.verify(raise_on_drift=False)
        assert len(drift) == 1

    def test_drift_paths_disambiguate_repeated_names(self):
        t = Tracer()
        with t.span("qmkp"):
            with t.span("qtkp") as first:
                t.add("oracle_calls", 1)
                first.claim("oracle_calls", 1)
            with t.span("qtkp") as second:
                t.add("oracle_calls", 1)
                second.claim("oracle_calls", 99)
        drift = RunLedger.from_tracer(t).verify(raise_on_drift=False)
        assert [d.where for d in drift] == ["qmkp/qtkp[1]"]

    def test_float_claims_tolerate_summation_order(self):
        t = Tracer()
        parts = [0.1] * 10  # sum != 1.0 exactly in binary
        with t.span("cascade") as root:
            for p in parts:
                t.add("charged_us", p)
            root.claim("charged_us", 1.0)
        assert RunLedger.from_tracer(t).verify() == []

    def test_registry_cross_check_catches_bypass_increment(self):
        t = _traced_run()
        # A stray increment that never went through tracer.add:
        t.registry.counter("oracle_calls").inc(1)
        drift = RunLedger.from_tracer(t).verify(raise_on_drift=False)
        assert [(d.where, d.metric) for d in drift] == [
            ("registry", "oracle_calls")
        ]

    def test_orphan_contributions_reconcile(self):
        t = Tracer()
        t.add("oracle_calls", 3)  # outside any span
        ledger = RunLedger.from_tracer(t)
        assert ledger.verify() == []
        assert ledger.total("oracle_calls") == 3
        assert ledger.orphan_metrics == {"oracle_calls": 3}


class TestExport:
    def test_as_dict_shape(self):
        ledger = RunLedger.from_tracer(_traced_run(), meta={"solver": "qmkp"})
        doc = ledger.as_dict()
        assert doc["schema"] == "repro.obs/run-ledger/v1"
        assert doc["verified"] is True
        assert doc["drift"] == []
        assert doc["meta"] == {"solver": "qmkp"}
        assert doc["totals"]["oracle_calls"] == 12
        assert doc["spans"][0]["name"] == "qmkp"

    def test_as_dict_records_drift_without_raising(self):
        doc = RunLedger.from_tracer(_traced_run(claim_ok=False)).as_dict()
        assert doc["verified"] is False
        assert doc["drift"][0]["metric"] == "oracle_calls"

    def test_to_json_writes_valid_document(self, tmp_path):
        path = RunLedger.from_tracer(_traced_run()).to_json(
            tmp_path / "ledger.json"
        )
        doc = json.loads(path.read_text())
        assert doc["verified"] is True

    def test_find_searches_across_roots(self):
        t = Tracer()
        with t.span("first"):
            pass
        with t.span("second"):
            with t.span("inner"):
                pass
        ledger = RunLedger.from_tracer(t)
        assert ledger.find("inner").name == "inner"
        assert ledger.find("absent") is None
