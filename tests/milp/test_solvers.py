"""Unit tests for the MILP backends (HiGHS adapter + branch and bound)."""

import numpy as np
import pytest

from repro.annealing import BinaryQuadraticModel
from repro.milp import (
    solve_branch_bound,
    solve_qubo_milp,
    solve_with_highs,
)


def _random_bqm(n, seed, density=0.5):
    rng = np.random.default_rng(seed)
    bqm = BinaryQuadraticModel(offset=float(rng.normal()))
    for i in range(n):
        bqm.add_linear(i, float(rng.normal()))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                bqm.add_quadratic(i, j, float(rng.normal()))
    return bqm


def _bruteforce_min(bqm):
    order = bqm.variables
    best = float("inf")
    for mask in range(1 << len(order)):
        sample = {v: (mask >> i) & 1 for i, v in enumerate(order)}
        best = min(best, bqm.energy(sample))
    return best


class TestBranchBound:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_bruteforce(self, seed):
        bqm = _random_bqm(9, seed)
        result = solve_branch_bound(bqm)
        assert result.energy == pytest.approx(_bruteforce_min(bqm))
        assert result.proven_optimal

    def test_energy_matches_assignment(self):
        bqm = _random_bqm(7, 5)
        result = solve_branch_bound(bqm)
        assert bqm.energy(result.assignment) == pytest.approx(result.energy)

    def test_refuses_huge_models(self):
        bqm = BinaryQuadraticModel({i: 1.0 for i in range(100)})
        with pytest.raises(ValueError, match="refuses"):
            solve_branch_bound(bqm)

    def test_time_limit_returns_incumbent(self):
        bqm = _random_bqm(20, 1, density=0.9)
        result = solve_branch_bound(bqm, time_limit_s=1e-4)
        assert result.assignment is not None

    def test_offset_included(self):
        bqm = BinaryQuadraticModel({"a": 1.0}, offset=10.0)
        assert solve_branch_bound(bqm).energy == pytest.approx(10.0)


class TestHighs:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bruteforce(self, seed):
        bqm = _random_bqm(8, seed)
        result = solve_with_highs(bqm)
        assert result.found
        assert result.energy == pytest.approx(_bruteforce_min(bqm), abs=1e-6)
        assert result.status == "optimal"

    def test_energy_consistent_with_assignment(self):
        bqm = _random_bqm(6, 9)
        result = solve_with_highs(bqm)
        assert bqm.energy(result.assignment) == pytest.approx(result.energy)

    def test_time_limit_passed(self):
        bqm = _random_bqm(10, 4)
        result = solve_with_highs(bqm, time_limit_us=5e6)
        assert result.found
        assert result.runtime_limit_us == 5e6


class TestFacade:
    def test_auto_uses_highs(self):
        result = solve_qubo_milp(_random_bqm(6, 0))
        assert result.backend == "highs"

    def test_branch_bound_backend(self):
        bqm = _random_bqm(6, 0)
        a = solve_qubo_milp(bqm, backend="branch_bound")
        b = solve_qubo_milp(bqm, backend="highs")
        assert a.energy == pytest.approx(b.energy)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            solve_qubo_milp(_random_bqm(3, 0), backend="gurobi")

    def test_agreement_across_backends(self):
        for seed in range(3):
            bqm = _random_bqm(8, seed + 10)
            highs = solve_qubo_milp(bqm, backend="highs")
            bnb = solve_qubo_milp(bqm, backend="branch_bound")
            assert highs.energy == pytest.approx(bnb.energy, abs=1e-6)
