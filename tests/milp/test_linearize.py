"""Unit tests for the QUBO -> MILP linearisation."""

import numpy as np
import pytest

from repro.annealing import BinaryQuadraticModel
from repro.milp import linearize_qubo


@pytest.fixture
def toy():
    return BinaryQuadraticModel(
        {"x": -1.0, "y": 2.0}, {("x", "y"): 3.0}, offset=1.0
    )


class TestLinearize:
    def test_column_layout(self, toy):
        lin = linearize_qubo(toy)
        assert lin.num_x == 2
        assert lin.num_y == 1
        assert lin.x_variables == ["x", "y"]
        assert lin.y_pairs == [("x", "y")]

    def test_objective_coefficients(self, toy):
        lin = linearize_qubo(toy)
        assert lin.c.tolist() == [-1.0, 2.0, 3.0]
        assert lin.offset == 1.0

    def test_three_constraints_per_pair(self, toy):
        lin = linearize_qubo(toy)
        assert lin.a_ub.shape == (3, 3)

    def test_mccormick_rows(self, toy):
        lin = linearize_qubo(toy)
        # For each feasible binary (x, y) with y_xy = x*y, all rows hold.
        for x in (0, 1):
            for y in (0, 1):
                z = np.array([x, y, x * y], dtype=float)
                assert np.all(lin.a_ub @ z <= lin.b_ub + 1e-12)

    def test_mccormick_cuts_wrong_products(self, toy):
        lin = linearize_qubo(toy)
        # y_xy = 1 with x = 0 violates y <= x.
        z = np.array([0, 1, 1], dtype=float)
        assert np.any(lin.a_ub @ z > lin.b_ub + 1e-12)

    def test_integrality_marks_only_x(self, toy):
        lin = linearize_qubo(toy)
        assert lin.integrality.tolist() == [1.0, 1.0, 0.0]

    def test_zero_coupling_dropped(self):
        bqm = BinaryQuadraticModel({"a": 1.0}, {("a", "b"): 0.0})
        lin = linearize_qubo(bqm)
        assert lin.num_y == 0
        assert lin.a_ub.shape[0] == 0

    def test_decode_rounds(self, toy):
        lin = linearize_qubo(toy)
        z = np.array([0.999, 0.001, 0.0])
        assert lin.decode(z) == {"x": 1, "y": 0}
