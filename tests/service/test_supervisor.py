"""End-to-end supervisor tests: real worker subprocesses, scripted chaos.

These exercise the full service stack — submit, worker subprocess,
JSON event relay, crash policy — against tiny graphs so each job is a
sub-second solve.  Chaos tests use the deterministic
``QMKP_CRASH_AFTER_PROBES`` / ``QMKP_SIGINT_AFTER_PROBES`` hooks, so
every kill lands at an exact journal record and the asserted
bit-identical resumes are reproducible.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import qmkp
from repro.datasets import figure1_graph
from repro.graphs import gnm_random_graph, read_edge_list, write_edge_list
from repro.kplex import maximum_kplex
from repro.service import (
    AdmissionError,
    BackpressureError,
    ChaosPlan,
    JobSpec,
    ServiceConfig,
    ServiceError,
    Supervisor,
    Worker,
)


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.edges"
    write_edge_list(figure1_graph(), path)
    return str(path)


@pytest.fixture
def multi_probe_graph_file(tmp_path):
    """Needs three qMKP probes, so kills after probe 1 land mid-search."""
    path = tmp_path / "gnm.edges"
    write_edge_list(gnm_random_graph(7, 10, seed=1), path)
    return str(path)


def _config(tmp_path, **kwargs) -> ServiceConfig:
    kwargs.setdefault("workdir", str(tmp_path / "work"))
    return ServiceConfig(**kwargs)


async def _solve(supervisor: Supervisor, spec: JobSpec):
    job = supervisor.submit(spec)
    events = [event async for event in job.stream()]
    result = await job.result_dict()
    return job, events, result


class TestEndToEnd:
    def test_answers_match_direct_solves(self, graph_file, tmp_path):
        async def scenario():
            async with Supervisor(_config(tmp_path, workers=2)) as sup:
                q, b = await asyncio.gather(
                    _solve(sup, JobSpec(graph_file, k=2, seed=7, name="q")),
                    _solve(sup, JobSpec(graph_file, k=2, solver="bs", name="b")),
                )
            return q, b, sup

        (qjob, qevents, qres), (bjob, _, bres), sup = asyncio.run(scenario())
        direct = qmkp(figure1_graph(), 2, rng=np.random.default_rng(7))
        assert qres["answer"]["size"] == direct.size
        assert qres["answer"]["gate_units"] == direct.gate_units
        assert qres["answer"]["oracle_calls"] == direct.oracle_calls
        assert bres["answer"]["size"] == maximum_kplex(figure1_graph(), 2).size
        # Every job carries a reconciled ledger receipt.
        assert qres["verified"] and bres["verified"]
        # The anytime stream ends with the final incumbent.
        assert qevents and qevents[-1].size == qres["answer"]["size"]
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_jobs_completed"] == 2
        assert "service_worker_crashes" not in counters

    def test_result_dict_raises_on_failure(self, tmp_path):
        async def scenario():
            async with Supervisor(_config(tmp_path, workers=1)) as sup:
                job = sup.submit(JobSpec(str(tmp_path / "missing.edges")))
                with pytest.raises(ServiceError, match="failed"):
                    await job.result_dict()
                return job, sup

        job, sup = asyncio.run(scenario())
        assert job.state == "failed"
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_jobs_failed"] == 1


class TestChaos:
    def test_sigkill_resumes_bit_identically_on_another_worker(
        self, multi_probe_graph_file, tmp_path
    ):
        spec = JobSpec(multi_probe_graph_file, k=2, seed=7, name="victim")

        async def run(chaos, workdir):
            config = _config(tmp_path, workers=2, workdir=str(workdir))
            async with Supervisor(config, chaos=chaos) as sup:
                job, events, result = await _solve(sup, spec)
            return job, events, result, sup

        _, ref_events, reference, _ = asyncio.run(
            run(None, tmp_path / "ref")
        )
        chaos = ChaosPlan(kills={"victim": [1]})
        job, events, result, sup = asyncio.run(run(chaos, tmp_path / "chaos"))

        # The whole point: the answer is byte-identical to the
        # undisturbed run, crash or no crash.
        assert result["answer"] == reference["answer"]
        assert result["verified"]
        assert job.resumes == 1
        assert result["resumed_probes"] == 1
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_worker_crashes"] == 1
        assert counters["service_jobs_resumed"] == 1
        # The caller's stream re-announces the incumbent on replay
        # (flagged), then continues live — it never regresses.
        sizes = [event.size for event in events]
        assert sizes[-1] == ref_events[-1].size
        assert any(event.replayed for event in events)
        assert not any(event.replayed for event in ref_events)

    def test_resume_budget_exhaustion_fails_the_job(
        self, multi_probe_graph_file, tmp_path
    ):
        # Kill every attempt (cumulative probe counts); with one resume
        # allowed the job must settle failed after the second kill.
        chaos = ChaosPlan(kills={"victim": [1, 2, 3, 4]})
        spec = JobSpec(multi_probe_graph_file, k=2, seed=7, name="victim")

        async def scenario():
            config = _config(tmp_path, workers=1, max_resumes=1)
            async with Supervisor(config, chaos=chaos) as sup:
                job = sup.submit(spec)
                with pytest.raises(ServiceError, match="resume budget"):
                    await job.result_dict()
                return job, sup

        job, sup = asyncio.run(scenario())
        assert job.state == "failed"
        assert job.resumes == 1
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_worker_crashes"] == 2
        assert counters["service_jobs_resumed"] == 1

    def test_sigint_suspends_with_resumable_checkpoint(
        self, multi_probe_graph_file, tmp_path
    ):
        chaos = ChaosPlan(interrupts={"victim": [1]})
        spec = JobSpec(multi_probe_graph_file, k=2, seed=7, name="victim")

        async def scenario():
            config = _config(tmp_path, workers=1)
            async with Supervisor(config, chaos=chaos) as sup:
                job = sup.submit(spec)
                with pytest.raises(ServiceError, match="suspended"):
                    await job.result_dict()
                return job, sup

        job, sup = asyncio.run(scenario())
        assert job.state == "suspended"
        # The journal is on disk with the completed probe — a direct
        # resume finishes the search bit-identically.
        from repro.graphs import read_edge_list

        graph, _ = read_edge_list(multi_probe_graph_file)
        resumed = qmkp(
            graph, 2, rng=np.random.default_rng(7),
            checkpoint=job.checkpoint_path, resume=job.checkpoint_path,
        )
        reference = qmkp(graph, 2, rng=np.random.default_rng(7))
        assert resumed.subset == reference.subset
        assert resumed.gate_units == reference.gate_units
        assert resumed.resumed_probes == 1


class TestWorkdirPersistence:
    """The workdir may outlive many supervisors; artifact names must
    never depend on submission order or the restart-resetting job
    sequence."""

    def test_restarted_service_resumes_regardless_of_submission_order(
        self, multi_probe_graph_file, graph_file, tmp_path
    ):
        workdir = tmp_path / "work"
        chaos = ChaosPlan(interrupts={"victim": [1]})
        victim_spec = JobSpec(
            multi_probe_graph_file, k=2, seed=7, name="victim"
        )

        # Server 1: the victim job is suspended with one journaled probe.
        async def server1():
            config = _config(tmp_path, workers=1, workdir=str(workdir))
            async with Supervisor(config, chaos=chaos) as sup:
                job = sup.submit(victim_spec)
                with pytest.raises(ServiceError, match="suspended"):
                    await job.result_dict()
                return job

        suspended = asyncio.run(server1())
        assert suspended.state == "suspended"
        assert suspended.checkpoint_path.exists()

        # Server 2, same workdir: an unrelated spec goes first — under
        # sequence-numbered artifacts it would inherit the victim's
        # stale journal and fail with a header mismatch — then the
        # victim spec is resubmitted and must resume its own journal.
        async def server2():
            config = _config(tmp_path, workers=1, workdir=str(workdir))
            async with Supervisor(config) as sup:
                other = await _solve(
                    sup, JobSpec(graph_file, k=2, seed=3, name="other")
                )
                victim = await _solve(sup, victim_spec)
            return other, victim

        (other, _, other_result), (victim, _, victim_result) = asyncio.run(
            server2()
        )
        assert other.state == "done"
        assert victim.state == "done"
        assert victim_result["resumed_probes"] == 1
        graph, _ = read_edge_list(multi_probe_graph_file)
        reference = qmkp(graph, 2, rng=np.random.default_rng(7))
        assert victim_result["answer"]["size"] == reference.size
        assert victim_result["answer"]["gate_units"] == reference.gate_units
        # Finished jobs delete their journals, so nothing is left to
        # shadow yet another resubmission of either spec.
        assert not victim.checkpoint_path.exists()
        assert not other.checkpoint_path.exists()

    def test_artifacts_are_content_keyed_and_duplicates_disambiguated(
        self, graph_file, tmp_path
    ):
        sup = Supervisor(_config(tmp_path, workers=1))
        spec = JobSpec(graph_file, k=2, seed=7, name="twin")
        first = sup.submit(spec)
        second = sup.submit(spec)
        # Checkpoint names derive from the spec content, not the
        # restart-resetting job sequence...
        assert spec.artifact_stem() in first.checkpoint_path.name
        assert first.checkpoint_path.name == f"{spec.artifact_stem()}.wal"
        # ...while two live submissions of one spec still never share
        # a journal.
        assert first.checkpoint_path != second.checkpoint_path
        assert first.receipt_path != second.receipt_path
        # A different spec (same but for the name) gets a different key.
        other = sup.submit(JobSpec(graph_file, k=2, seed=7, name="tw1n"))
        assert other.checkpoint_path.name == "tw1n-" + (
            other.spec.content_key() + ".wal"
        )
        assert other.spec.content_key() != spec.content_key()


class TestWorkerRobustness:
    def test_spawn_failure_fails_the_job_not_the_worker(
        self, graph_file, tmp_path
    ):
        # A missing interpreter makes create_subprocess_exec raise
        # OSError inside the worker; the job must settle failed (so
        # result_dict never hangs) and the slot must keep serving.
        async def scenario():
            config = _config(
                tmp_path, workers=1, python=str(tmp_path / "no-such-python")
            )
            async with Supervisor(config) as sup:
                first = sup.submit(JobSpec(graph_file, k=2, name="boom"))
                with pytest.raises(ServiceError, match="internal error"):
                    await first.result_dict()
                second = sup.submit(
                    JobSpec(graph_file, k=2, solver="bs", name="next")
                )
                with pytest.raises(ServiceError, match="internal error"):
                    await second.result_dict()
            return first, second, sup

        first, second, sup = asyncio.run(scenario())
        assert first.state == "failed"
        assert second.state == "failed"
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_worker_errors"] == 2

    def test_malformed_protocol_lines_are_counted_not_fatal(
        self, graph_file, tmp_path
    ):
        sup = Supervisor(_config(tmp_path, workers=1))
        worker = Worker("w0", sup)
        job = sup.submit(JobSpec(graph_file, name="proto"))
        for line in (
            b"not json at all\n",
            b'{"event": "incumbent"}\n',            # missing keys
            b'{"event": "incumbent", "size": "x"}\n',  # uncoercible
            b'{"event": "result"}\n',              # missing answer
            b'{"event": "started", "pid": "nope"}\n',
        ):
            worker._handle_line(job, line)
        assert job.incumbents == []
        assert job.result is None
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_protocol_errors"] == 5


class TestAdmission:
    def test_backpressure_is_typed_end_to_end(self, graph_file, tmp_path):
        # Unstarted supervisor: nothing drains the queue, so the bound
        # is hit deterministically.
        sup = Supervisor(_config(tmp_path, workers=1, queue_capacity=1))
        sup.submit(JobSpec(graph_file, name="first"))
        with pytest.raises(BackpressureError) as info:
            sup.submit(JobSpec(graph_file, name="second"))
        assert info.value.capacity == 1
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_jobs_rejected_backpressure"] == 1
        assert counters["service_jobs_submitted"] == 1

    def test_admission_rejects_dry_tenant(self, graph_file, tmp_path):
        sup = Supervisor(
            _config(tmp_path, tenant_budgets={"acme": 100.0})
        )
        sup.tenants.charge("acme", 150.0)  # as if earlier jobs spent it
        with pytest.raises(AdmissionError):
            sup.submit(JobSpec(graph_file, tenant="acme"))
        sup.submit(JobSpec(graph_file, tenant="other"))  # isolated
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_jobs_rejected_admission"] == 1

    def test_completed_jobs_charge_their_tenant(self, graph_file, tmp_path):
        async def scenario():
            config = _config(tmp_path, workers=1, tenant_budgets={"acme": 1e9})
            async with Supervisor(config) as sup:
                _, _, result = await _solve(
                    sup, JobSpec(graph_file, k=2, seed=7, tenant="acme")
                )
            return result, sup

        result, sup = asyncio.run(scenario())
        pool = sup.tenants.pool("acme")
        assert pool.charged == float(result["answer"]["gate_units"]) > 0


class TestDegradation:
    def test_open_breaker_routes_fresh_jobs_down_the_ladder(
        self, graph_file, tmp_path
    ):
        async def scenario():
            config = _config(tmp_path, workers=1)
            async with Supervisor(config) as sup:
                breaker = sup.breaker("qmkp")
                for _ in range(config.breaker_failure_threshold):
                    breaker.record_failure()
                assert breaker.state == "open"
                job, _, result = await _solve(
                    sup, JobSpec(graph_file, k=2, seed=7, name="deg")
                )
            return job, result, sup

        job, result, sup = asyncio.run(scenario())
        assert job.degraded_from == ["qmkp"]
        assert job.solver == "bs"
        assert result["answer"]["solver"] == "bs"
        assert result["answer"]["size"] == maximum_kplex(figure1_graph(), 2).size
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_jobs_degraded"] == 1
        # Breaker lifecycle is visible in the service registry.
        assert counters["breaker_transitions"] >= 1
        gauges = sup.tracer.registry.as_dict()["gauges"]
        assert "breaker_state_qmkp" in gauges

    def test_all_rungs_open_fails_the_job(self, graph_file, tmp_path):
        async def scenario():
            config = _config(tmp_path, workers=1)
            async with Supervisor(config) as sup:
                for backend in ("qmkp", "bs"):
                    breaker = sup.breaker(backend)
                    for _ in range(config.breaker_failure_threshold):
                        breaker.record_failure()
                job = sup.submit(JobSpec(graph_file, k=2, name="doomed"))
                with pytest.raises(ServiceError, match="no degradation rung"):
                    await job.result_dict()
                return job

        job = asyncio.run(scenario())
        assert job.state == "failed"


class TestShutdown:
    def test_suspend_checkpoints_queued_and_inflight_jobs(
        self, multi_probe_graph_file, tmp_path
    ):
        # One worker: "held" runs (pinned by the hold hook), "queued"
        # waits.  A non-drain shutdown must suspend both, not lose them.
        chaos = ChaosPlan(holds={"held": 30.0})

        async def scenario():
            config = _config(tmp_path, workers=1)
            sup = Supervisor(config, chaos=chaos)
            await sup.start()
            held = sup.submit(
                JobSpec(multi_probe_graph_file, k=2, seed=7, name="held")
            )
            queued = sup.submit(
                JobSpec(multi_probe_graph_file, k=2, seed=7, name="queued")
            )
            # The "started" event guarantees the child's SIGINT handler
            # is installed, so the suspend below is graceful.
            while held.child_pid is None:
                await asyncio.sleep(0.01)
            await sup.shutdown(drain=False)
            return held, queued, sup

        held, queued, sup = asyncio.run(scenario())
        assert held.state == "suspended"
        assert queued.state == "suspended"
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_jobs_suspended"] == 2

    def test_suspending_flag_blocks_new_spawns(
        self, multi_probe_graph_file, tmp_path
    ):
        # A job dequeued after the shutdown sweep (which only SIGINTs
        # children that already exist) must be suspended by the worker
        # before it spawns, not run to completion behind the suspend.
        async def scenario():
            sup = Supervisor(_config(tmp_path, workers=1))
            job = sup.submit(
                JobSpec(multi_probe_graph_file, k=2, seed=7, name="late")
            )
            sup._suspending = True  # as if shutdown(drain=False) swept now
            await sup.start()
            await sup.drain()
            return job, sup

        job, sup = asyncio.run(scenario())
        assert job.state == "suspended"
        assert job.child_pid is None  # no subprocess was ever spawned
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_jobs_suspended"] == 1

    def test_drain_finishes_accepted_work(self, graph_file, tmp_path):
        async def scenario():
            sup = Supervisor(_config(tmp_path, workers=2))
            await sup.start()
            jobs = [
                sup.submit(JobSpec(graph_file, k=2, seed=7, name=f"j{i}"))
                for i in range(3)
            ]
            await sup.shutdown(drain=True)
            return jobs

        jobs = asyncio.run(scenario())
        assert all(job.state == "done" for job in jobs)
