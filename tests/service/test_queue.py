"""Unit tests for the bounded job queue and tenant admission pools."""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.service import (
    AdmissionError,
    BackpressureError,
    Job,
    JobQueue,
    JobSpec,
    ServiceError,
    TenantPools,
)


def _job(i: int, tmp_path: Path, **kwargs) -> Job:
    spec = JobSpec(graph_path="g.edges", name=f"j{i}", **kwargs)
    return Job(f"job-{i:04d}", spec, tmp_path)


class TestJobQueue:
    def test_backpressure_is_typed_and_carries_depth(self, tmp_path):
        queue = JobQueue(capacity=2)
        queue.submit(_job(0, tmp_path))
        queue.submit(_job(1, tmp_path))
        with pytest.raises(BackpressureError) as info:
            queue.submit(_job(2, tmp_path))
        assert info.value.capacity == 2
        assert info.value.depth == 2
        # The queue never grew past its bound.
        assert queue.depth == 2

    def test_requeue_bypasses_the_bound_and_jumps_the_line(self, tmp_path):
        queue = JobQueue(capacity=1)
        fresh = _job(0, tmp_path)
        queue.submit(fresh)
        crashed = _job(1, tmp_path)
        crashed.state = "running"
        queue.requeue(crashed)  # full queue must not bounce a resume
        assert crashed.state == "queued"
        assert queue.depth == 2
        # Workers drain the resume lane first.
        assert asyncio.run(queue.get()) is crashed
        assert asyncio.run(queue.get()) is fresh

    def test_get_blocks_until_submit(self, tmp_path):
        queue = JobQueue(capacity=1)
        job = _job(0, tmp_path)

        async def scenario():
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            queue.submit(job)
            return await getter

        assert asyncio.run(scenario()) is job

    def test_closed_queue_rejects_and_unblocks_workers(self, tmp_path):
        queue = JobQueue(capacity=1)
        queue.submit(_job(0, tmp_path))
        queue.close()
        with pytest.raises(ServiceError):
            queue.submit(_job(1, tmp_path))
        # Drains what was accepted, then signals shutdown with None.
        assert asyncio.run(queue.get()) is not None
        assert asyncio.run(queue.get()) is None

    def test_drain_pending_empties_both_lanes(self, tmp_path):
        queue = JobQueue(capacity=4)
        a, b, c = (_job(i, tmp_path) for i in range(3))
        queue.submit(a)
        queue.submit(b)
        queue.requeue(c)
        pending = queue.drain_pending()
        assert pending == [c, a, b]  # resumes first
        assert queue.depth == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0)


class TestTenantPools:
    def test_unknown_tenant_is_unlimited_but_accounted(self):
        pools = TenantPools({})
        pools.admit("acme")  # never raises
        pools.charge("acme", 123.0)
        assert pools.as_dict() == {"acme": {"budget": None, "charged": 123.0}}

    def test_budgeted_tenant_rejected_once_dry(self):
        pools = TenantPools({"acme": 100.0})
        pools.admit("acme")
        pools.charge("acme", 60.0)
        pools.admit("acme")  # 40 left
        pools.charge("acme", 60.0)  # overdraw by in-flight work: allowed
        with pytest.raises(AdmissionError) as info:
            pools.admit("acme")
        assert info.value.tenant == "acme"
        assert info.value.budget == 100.0
        assert info.value.charged == 120.0

    def test_tenants_are_isolated(self):
        pools = TenantPools({"acme": 10.0, "globex": 10.0})
        pools.charge("acme", 11.0)
        with pytest.raises(AdmissionError):
            pools.admit("acme")
        pools.admit("globex")  # untouched


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = JobSpec("g.edges", k=3, solver="bs", seed=4, name="x")
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_rejects_unknown_solver_and_fields(self):
        with pytest.raises(ValueError):
            JobSpec("g.edges", solver="quantum-magic")
        with pytest.raises(ValueError):
            JobSpec.from_dict({"graph_path": "g", "frobnicate": 1})
        with pytest.raises(ValueError):
            JobSpec.from_dict({"k": 2})
