"""Subprocess-protocol tests for the worker child (repro.service.runner)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets import figure1_graph
from repro.graphs import write_edge_list

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _write_job(tmp_path, spec, job_id="job-0000"):
    job_file = tmp_path / f"{job_id}.job.json"
    job_file.write_text(json.dumps({
        "job_id": job_id,
        "spec": spec,
        "checkpoint": str(tmp_path / f"{job_id}.wal"),
        "receipt": str(tmp_path / f"{job_id}.receipt.json"),
    }))
    return job_file


def _run_runner(job_file, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("QMKP_CRASH_AFTER_PROBES", None)
    env.pop("QMKP_SIGINT_AFTER_PROBES", None)
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.service.runner", str(job_file)],
        capture_output=True, text=True, env=env, timeout=120,
    )


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.edges"
    write_edge_list(figure1_graph(), path)
    return str(path)


def _events(stdout: str) -> list[dict]:
    return [json.loads(line) for line in stdout.splitlines()]


class TestRunnerProtocol:
    def test_event_stream_and_receipt(self, graph_file, tmp_path):
        job_file = _write_job(
            tmp_path, {"graph_path": graph_file, "k": 2, "seed": 7}
        )
        proc = _run_runner(job_file)
        assert proc.returncode == 0, proc.stderr
        events = _events(proc.stdout)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "started"
        assert kinds[-1] == "result"
        assert "incumbent" in kinds
        result = events[-1]
        assert result["verified"] is True
        assert result["answer"]["solver"] == "qmkp"
        # The receipt on disk is the full ledger document.
        receipt = json.loads(Path(result["receipt"]).read_text())
        assert receipt["answer"] == result["answer"]
        assert receipt["ledger"]["verified"] is True

    def test_zero_length_checkpoint_is_a_fresh_start(self, graph_file, tmp_path):
        # A crash can leave a zero-length journal (open() happened, the
        # header fsync did not).  The runner must treat it as "nothing
        # to resume", not refuse the job.
        job_file = _write_job(
            tmp_path, {"graph_path": graph_file, "k": 2, "seed": 7}
        )
        (tmp_path / "job-0000.wal").touch()
        proc = _run_runner(job_file)
        assert proc.returncode == 0, proc.stderr
        events = _events(proc.stdout)
        assert events[0]["resuming"] is False
        assert events[-1]["event"] == "result"

    def test_bs_solver_streams_incumbents(self, graph_file, tmp_path):
        job_file = _write_job(
            tmp_path, {"graph_path": graph_file, "k": 2, "solver": "bs"}
        )
        proc = _run_runner(job_file)
        assert proc.returncode == 0, proc.stderr
        events = _events(proc.stdout)
        incumbents = [e for e in events if e["event"] == "incumbent"]
        assert incumbents
        result = events[-1]
        assert result["answer"]["solver"] == "bs"
        assert result["answer"]["size"] == incumbents[-1]["size"]

    def test_sigint_hook_suspends_with_exit_130(self, graph_file, tmp_path):
        job_file = _write_job(
            tmp_path, {"graph_path": graph_file, "k": 2, "seed": 7}
        )
        proc = _run_runner(
            job_file, extra_env={"QMKP_SIGINT_AFTER_PROBES": "1"}
        )
        assert proc.returncode == 130
        events = _events(proc.stdout)
        assert events[-1]["event"] == "suspended"
        # The journal holds the completed probe, ready to resume.
        wal = (tmp_path / "job-0000.wal").read_text().splitlines()
        assert len(wal) == 2  # header + one probe

    def test_missing_graph_is_a_usage_error(self, tmp_path):
        job_file = _write_job(
            tmp_path, {"graph_path": str(tmp_path / "nope.edges")}
        )
        proc = _run_runner(job_file)
        assert proc.returncode == 2
        assert "error" in proc.stderr

    def test_usage_without_job_file(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.service.runner"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 2
        assert "usage" in proc.stderr
