"""Unit tests for the SSE substrate: wire format + event journal.

The journal is the load-bearing piece of the gateway's reconnect
contract, so its invariants — monotone ids, content dedupe, torn-tail
reload, bounded fan-out — are pinned here without any HTTP in the
loop.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.sse import (
    EventJournal,
    encode_comment,
    encode_event,
    parse_sse_stream,
)


def _lines(payload: bytes):
    """Split raw SSE bytes the way an http response iterates: by line."""
    return payload.splitlines(keepends=True)


class TestWireFormat:
    def test_event_roundtrip(self):
        record = {"id": 3, "type": "incumbent", "data": {"size": 4, "k": 2}}
        frames = list(parse_sse_stream(_lines(encode_event(record))))
        assert frames == [
            {"id": 3, "event": "incumbent", "data": json.dumps(
                record["data"], sort_keys=True
            )}
        ]

    def test_comments_are_consumed_silently(self):
        payload = (
            encode_comment("hb")
            + encode_event({"id": 1, "type": "incumbent", "data": {"a": 1}})
            + encode_comment("hb")
        )
        frames = list(parse_sse_stream(_lines(payload)))
        assert [f["id"] for f in frames] == [1]

    def test_torn_trailing_frame_is_dropped(self):
        whole = encode_event({"id": 1, "type": "incumbent", "data": {"a": 1}})
        torn = encode_event({"id": 2, "type": "incumbent", "data": {"a": 2}})
        # Cut the terminating blank line off the second frame: a dying
        # connection tore it mid-write.
        payload = whole + torn[: len(torn) - 1]
        frames = list(parse_sse_stream(_lines(payload)))
        assert [f["id"] for f in frames] == [1]

    def test_crlf_and_padded_values(self):
        payload = b"id: 7\r\nevent: result\r\ndata: {}\r\n\r\n"
        frames = list(parse_sse_stream(_lines(payload)))
        assert frames == [{"id": 7, "event": "result", "data": "{}"}]


class TestEventJournal:
    def test_ids_are_monotone_from_one(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        ids = [journal.append("incumbent", {"n": i})["id"] for i in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        assert journal.last_id == 5

    def test_replayed_incumbent_is_deduplicated(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        original = {"size": 3, "vertices": [0, 1, 2], "replayed": False}
        assert journal.append("incumbent", original) is not None
        # A crash-resume re-announces the same incumbent, flagged.
        replay = dict(original, replayed=True)
        assert journal.append("incumbent", replay) is None
        assert journal.last_id == 1

    def test_second_terminal_is_dropped(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        assert journal.append("result", {"state": "done", "answer": 4})
        assert journal.append("result", {"state": "done", "answer": 4}) is None
        assert journal.terminal["id"] == 1

    def test_reload_continues_where_predecessor_stopped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = EventJournal(path)
        first.append("incumbent", {"n": 1})
        first.append("incumbent", {"n": 2})
        first.close()

        second = EventJournal(path)
        assert second.last_id == 2
        assert second.append("incumbent", {"n": 2}) is None  # still deduped
        record = second.append("incumbent", {"n": 3})
        assert record["id"] == 3
        assert len(second.replay(0)) == 3

    def test_torn_tail_is_discarded_on_reload(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)
        journal.append("incumbent", {"n": 1})
        journal.append("incumbent", {"n": 2})
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"id": 3, "type": "incumbent", "da')  # torn mid-append

        reloaded = EventJournal(path)
        assert reloaded.last_id == 2
        # The regenerated event gets the torn record's id, keeping the
        # client-visible sequence gap-free.
        assert reloaded.append("incumbent", {"n": 3})["id"] == 3

    def test_out_of_sequence_tail_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = [
            {"id": 1, "type": "incumbent", "data": {"n": 1}},
            {"id": 5, "type": "incumbent", "data": {"n": 5}},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
        journal = EventJournal(path)
        assert journal.last_id == 1

    def test_replay_after_id(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        for i in range(4):
            journal.append("incumbent", {"n": i})
        assert [r["id"] for r in journal.replay(2)] == [3, 4]
        assert [r["id"] for r in journal.replay(0)] == [1, 2, 3, 4]
        assert journal.replay(9) == []

    def test_slow_subscriber_is_evicted_not_buffered(self, tmp_path):
        async def scenario():
            journal = EventJournal(tmp_path / "j.jsonl")
            fast = journal.subscribe(maxsize=16)
            slow = journal.subscribe(maxsize=2)
            for i in range(5):
                journal.append("incumbent", {"n": i})
            return fast, slow

        fast, slow = asyncio.run(scenario())
        assert slow.evicted
        assert slow.queue.qsize() == 2  # bounded: nothing past maxsize
        assert not fast.evicted
        assert fast.queue.qsize() == 5

    def test_closed_subscription_stops_receiving(self, tmp_path):
        async def scenario():
            journal = EventJournal(tmp_path / "j.jsonl")
            sub = journal.subscribe(maxsize=4)
            journal.append("incumbent", {"n": 1})
            sub.close()
            journal.append("incumbent", {"n": 2})
            return sub

        sub = asyncio.run(scenario())
        assert sub.queue.qsize() == 1

    def test_dedupe_is_keyed_on_type_too(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        assert journal.append("incumbent", {"state": "done"}) is not None
        assert journal.append("result", {"state": "done"}) is not None
