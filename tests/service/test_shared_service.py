"""Fleet-shared cache through the full service stack.

Real worker subprocesses against a supervisor configured with
``shared_cache_dir``: the first qMKP job cold-builds and publishes the
marked-set segment, subsequent identical-graph jobs attach instead of
enumerating, answers stay byte-identical to a no-shared service, the
mid-publish SIGKILL chaos hook degrades cleanly, and per-worker cache
counters surface as fleet-level ``service_cache_*`` gauges.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import qmkp
from repro.graphs import gnm_random_graph, write_edge_list
from repro.perf import SharedTableStore
from repro.service import ChaosPlan, JobSpec, ServiceConfig, Supervisor


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "gnm.edges"
    write_edge_list(gnm_random_graph(9, 20, seed=3), path)
    return str(path)


def _config(tmp_path, shared: bool, **kwargs) -> ServiceConfig:
    kwargs.setdefault("workdir", str(tmp_path / ("work-shared" if shared else "work")))
    if shared:
        kwargs.setdefault("shared_cache_dir", str(tmp_path / "shared-cache"))
    return ServiceConfig(**kwargs)


async def _run_batch(config, specs, chaos=None):
    async with Supervisor(config, chaos=chaos) as sup:
        jobs = [sup.submit(spec) for spec in specs]
        results = await asyncio.gather(*(job.result_dict() for job in jobs))
    return sup, jobs, results


def _specs(graph_file, count):
    return [
        JobSpec(graph_file, k=2, seed=7, name=f"job-{i}") for i in range(count)
    ]


class TestSharedService:
    def test_identical_jobs_share_one_enumeration(self, graph_file, tmp_path):
        sup, jobs, results = asyncio.run(
            _run_batch(_config(tmp_path, shared=True, workers=2), _specs(graph_file, 4))
        )
        direct = qmkp(gnm_random_graph(9, 20, seed=3), 2, rng=np.random.default_rng(7))
        for res in results:
            assert res["verified"]
            assert res["answer"]["size"] == direct.size
            assert res["answer"]["vertices"] == sorted(direct.subset)
            assert res["answer"]["gate_units"] == direct.gate_units
            assert res["answer"]["oracle_calls"] == direct.oracle_calls
        # At most the two concurrently-starting jobs (one per worker
        # slot) cold-built — and since segment content is a pure
        # function of (fingerprint, k), a double publish just installs
        # identical bytes twice.  Everyone else attached.
        cache_stats = [res["cache"] for res in results]
        assert 1 <= sum(s["shared_publishes"] for s in cache_stats) <= 2
        assert sum(s["shared_hits"] for s in cache_stats) >= len(results) - 2
        assert all(s["misses"] == 1 for s in cache_stats)
        assert len(SharedTableStore(tmp_path / "shared-cache")) == 1

    def test_shared_answers_match_no_shared_service(self, graph_file, tmp_path):
        sup_off, _, plain = asyncio.run(
            _run_batch(_config(tmp_path, shared=False, workers=2), _specs(graph_file, 3))
        )
        sup_on, _, shared = asyncio.run(
            _run_batch(_config(tmp_path, shared=True, workers=2), _specs(graph_file, 3))
        )
        for off, on in zip(plain, shared):
            assert off["answer"] == on["answer"]
        # The no-shared result record is untouched by this feature.
        assert all("cache" not in res for res in plain)
        gauges = sup_off.tracer.registry.as_dict().get("gauges", {})
        assert not any(name.startswith("service_cache_") for name in gauges)

    def test_fleet_gauges_aggregate_worker_stats(self, graph_file, tmp_path):
        sup, _, results = asyncio.run(
            _run_batch(_config(tmp_path, shared=True, workers=2), _specs(graph_file, 4))
        )
        gauges = sup.tracer.registry.as_dict()["gauges"]
        assert 1 <= gauges["service_cache_shared_publishes"] <= 2
        assert gauges["service_cache_shared_hits"] >= len(results) - 2
        assert gauges["service_cache_misses"] == len(results)
        rendered = sup.render_metrics("prom")
        assert "service_cache_shared_hits" in rendered

    def test_mid_publish_sigkill_degrades_cleanly(self, graph_file, tmp_path):
        """The publishing worker dies between fsync and rename; the
        resumed attempt finds an empty store, falls back to local
        enumeration, and the batch's answers are byte-identical to an
        undisturbed run.  One worker slot keeps the schedule exact:
        job-0 is provably the publisher-victim, job-1/job-2 the readers.
        """
        chaos = ChaosPlan(publish_kills={"job-0": [1]})
        sup, jobs, results = asyncio.run(
            _run_batch(
                _config(tmp_path, shared=True, workers=1),
                _specs(graph_file, 3),
                chaos=chaos,
            )
        )
        direct = qmkp(gnm_random_graph(9, 20, seed=3), 2, rng=np.random.default_rng(7))
        for res in results:
            assert res["verified"]
            assert res["answer"]["size"] == direct.size
            assert res["answer"]["vertices"] == sorted(direct.subset)
            assert res["answer"]["gate_units"] == direct.gate_units
        counters = sup.tracer.registry.as_dict()["counters"]
        assert counters["service_worker_crashes"] == 1
        assert counters["service_jobs_resumed"] == 1
        assert counters["service_jobs_completed"] == 3
        # The kill left nothing visible; the resumed attempt re-swept
        # locally and published the one valid segment the others hit.
        cache_stats = [res["cache"] for res in results]
        assert sum(s["shared_publishes"] for s in cache_stats) == 1
        assert sum(s["shared_hits"] for s in cache_stats) == 2
        assert len(SharedTableStore(tmp_path / "shared-cache")) == 1

    def test_dynamic_jobs_republish_patched_tables(self, graph_file, tmp_path):
        base = gnm_random_graph(9, 20, seed=3)
        absent = [
            (u, v)
            for u in range(9)
            for v in range(u + 1, 9)
            if not base.has_edge(u, v)
        ]
        edits = tmp_path / "edits.txt"
        edits.write_text(
            "".join(f"add {u} {v}\n" for u, v in absent[:2])
        )
        spec = JobSpec(
            graph_file, k=2, seed=7, name="dyn", edits_path=str(edits)
        )
        sup, _, results = asyncio.run(
            _run_batch(_config(tmp_path, shared=True, workers=1), [spec])
        )
        stats = results[0]["cache"]
        # Initial sweep publishes, then each patched step republishes.
        assert stats["shared_publishes"] >= 2
        assert stats["patches"] >= 1
        assert len(SharedTableStore(tmp_path / "shared-cache")) >= 2
