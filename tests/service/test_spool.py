"""Spool front-end robustness: poison requests, request-id collisions.

The spool is the crash boundary between untrusted submitters and the
long-running server, so a malformed request file must become a typed
``rejected`` result record — never a server crash that repeats on every
restart — and two submissions reusing one ``--name`` must never
overwrite each other's artifacts.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.datasets import figure1_graph
from repro.graphs import write_edge_list
from repro.service import (
    JobSpec,
    ServiceConfig,
    Supervisor,
    serve_spool,
    submit_to_spool,
)


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.edges"
    write_edge_list(figure1_graph(), path)
    return str(path)


class TestPoisonRequests:
    def test_malformed_requests_are_rejected_not_fatal(
        self, graph_file, tmp_path
    ):
        spool = tmp_path / "spool"
        jobs = spool / "jobs"
        jobs.mkdir(parents=True)
        (jobs / "bad.json").write_text("{this is not json")
        (jobs / "worse.json").write_text('{"k": 2}')  # no graph_path
        submit_to_spool(spool, JobSpec(graph_file, k=2, seed=7, name="ok"))

        async def scenario():
            config = ServiceConfig(workers=1, workdir=str(tmp_path / "work"))
            async with Supervisor(config) as sup:
                return await serve_spool(sup, spool, max_jobs=3)

        served = asyncio.run(scenario())
        assert served == 3

        results = spool / "results"
        bad = json.loads((results / "bad.json").read_text())
        assert bad["state"] == "rejected"
        assert "JSONDecodeError" in bad["error"]
        worse = json.loads((results / "worse.json").read_text())
        assert worse["state"] == "rejected"
        assert "graph_path" in worse["error"]
        # The well-formed request still solves in the same batch.
        assert json.loads((results / "ok.json").read_text())["state"] == "done"
        # Poison files were claimed out of jobs/, so a restarted server
        # does not crash-loop on them.
        assert list(jobs.glob("*.json")) == []
        assert (jobs / "claimed" / "bad.json").exists()


class TestRequestIds:
    def test_duplicate_names_never_overwrite(self, graph_file, tmp_path):
        spool = tmp_path / "spool"
        first = submit_to_spool(spool, JobSpec(graph_file, k=2, name="demo"))
        second = submit_to_spool(spool, JobSpec(graph_file, k=3, name="demo"))
        assert first == "demo"
        assert second != first
        pending = {
            path.stem: json.loads(path.read_text())
            for path in (spool / "jobs").glob("*.json")
        }
        assert set(pending) == {first, second}
        assert pending[first]["k"] == 2
        assert pending[second]["k"] == 3

    def test_name_colliding_with_prior_artifacts_is_suffixed(
        self, graph_file, tmp_path
    ):
        # A finished (or suspended) job leaves result/event files under
        # its request id; a later same-name submission must not clobber
        # them.
        spool = tmp_path / "spool"
        results = spool / "results"
        results.mkdir(parents=True)
        (results / "demo.json").write_text('{"state": "done"}\n')
        request_id = submit_to_spool(spool, JobSpec(graph_file, name="demo"))
        assert request_id == "demo-2"
        assert (spool / "jobs" / "demo-2.json").exists()
        assert (results / "demo.json").read_text() == '{"state": "done"}\n'
