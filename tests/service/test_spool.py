"""Spool front-end robustness: poison requests, request-id collisions,
result waiting, heartbeats, and the retention sweep.

The spool is the crash boundary between untrusted submitters and the
long-running server, so a malformed request file must become a typed
``rejected`` result record — never a server crash that repeats on every
restart — and two submissions reusing one ``--name`` must never
overwrite each other's artifacts.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time

import pytest

from repro.datasets import figure1_graph
from repro.graphs import gnm_random_graph, write_edge_list
from repro.service import (
    ChaosPlan,
    JobSpec,
    NoServerError,
    ServiceConfig,
    SpoolTimeout,
    Supervisor,
    serve_spool,
    spool_server_alive,
    submit_to_spool,
    sweep_spool,
    wait_for_result,
)
from repro.service import spool as spool_mod


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.edges"
    write_edge_list(figure1_graph(), path)
    return str(path)


@pytest.fixture
def multi_probe_graph_file(tmp_path):
    """Needs three qMKP probes, so interrupts after probe 1 land mid-search."""
    path = tmp_path / "gnm.edges"
    write_edge_list(gnm_random_graph(7, 10, seed=1), path)
    return str(path)


class TestPoisonRequests:
    def test_malformed_requests_are_rejected_not_fatal(
        self, graph_file, tmp_path
    ):
        spool = tmp_path / "spool"
        jobs = spool / "jobs"
        jobs.mkdir(parents=True)
        (jobs / "bad.json").write_text("{this is not json")
        (jobs / "worse.json").write_text('{"k": 2}')  # no graph_path
        submit_to_spool(spool, JobSpec(graph_file, k=2, seed=7, name="ok"))

        async def scenario():
            config = ServiceConfig(workers=1, workdir=str(tmp_path / "work"))
            async with Supervisor(config) as sup:
                return await serve_spool(sup, spool, max_jobs=3)

        served = asyncio.run(scenario())
        assert served == 3

        results = spool / "results"
        bad = json.loads((results / "bad.json").read_text())
        assert bad["state"] == "rejected"
        assert "JSONDecodeError" in bad["error"]
        worse = json.loads((results / "worse.json").read_text())
        assert worse["state"] == "rejected"
        assert "graph_path" in worse["error"]
        # The well-formed request still solves in the same batch.
        assert json.loads((results / "ok.json").read_text())["state"] == "done"
        # Poison files were claimed out of jobs/, so a restarted server
        # does not crash-loop on them.
        assert list(jobs.glob("*.json")) == []
        assert (jobs / "claimed" / "bad.json").exists()


class TestRequestIds:
    def test_duplicate_names_never_overwrite(self, graph_file, tmp_path):
        spool = tmp_path / "spool"
        first = submit_to_spool(spool, JobSpec(graph_file, k=2, name="demo"))
        second = submit_to_spool(spool, JobSpec(graph_file, k=3, name="demo"))
        assert first == "demo"
        assert second != first
        pending = {
            path.stem: json.loads(path.read_text())
            for path in (spool / "jobs").glob("*.json")
        }
        assert set(pending) == {first, second}
        assert pending[first]["k"] == 2
        assert pending[second]["k"] == 3

    def test_name_colliding_with_prior_artifacts_is_suffixed(
        self, graph_file, tmp_path
    ):
        # A finished (or suspended) job leaves result/event files under
        # its request id; a later same-name submission must not clobber
        # them.
        spool = tmp_path / "spool"
        results = spool / "results"
        results.mkdir(parents=True)
        (results / "demo.json").write_text('{"state": "done"}\n')
        request_id = submit_to_spool(spool, JobSpec(graph_file, name="demo"))
        assert request_id == "demo-2"
        assert (spool / "jobs" / "demo-2.json").exists()
        assert (results / "demo.json").read_text() == '{"state": "done"}\n'


def _write_record(spool, request_id, record, age_s=0.0):
    results = spool / "results"
    results.mkdir(parents=True, exist_ok=True)
    path = results / f"{request_id}.json"
    path.write_text(json.dumps(record, sort_keys=True) + "\n")
    if age_s:
        stamp = time.time() - age_s
        os.utime(path, (stamp, stamp))
    return path


class TestWaitForResult:
    def test_returns_record_once_it_lands(self, tmp_path):
        spool = tmp_path / "spool"
        _write_record(spool, "req", {"state": "done", "answer": {"size": 3}})
        record = wait_for_result(spool, "req", timeout_s=5.0)
        assert record["answer"]["size"] == 3

    def test_typed_timeout(self, tmp_path):
        spool = tmp_path / "spool"
        (spool / "results").mkdir(parents=True)
        start = time.monotonic()
        with pytest.raises(SpoolTimeout, match="within 0.3s"):
            wait_for_result(spool, "missing", timeout_s=0.3)
        # SpoolTimeout is also a TimeoutError for generic callers.
        assert issubclass(SpoolTimeout, TimeoutError)
        assert time.monotonic() - start < 5.0

    def test_no_server_is_diagnosed_not_timed_out(self, tmp_path, monkeypatch):
        spool = tmp_path / "spool"
        (spool / "results").mkdir(parents=True)
        # Shrink the boot grace so the diagnosis fires fast in-test.
        monkeypatch.setattr(spool_mod, "HEARTBEAT_STALE_S", 0.2)
        with pytest.raises(NoServerError, match="no live server"):
            wait_for_result(spool, "missing", timeout_s=5.0, require_server=True)

    def test_fresh_heartbeat_keeps_waiting(self, tmp_path, monkeypatch):
        spool = tmp_path / "spool"
        (spool / "results").mkdir(parents=True)
        monkeypatch.setattr(spool_mod, "HEARTBEAT_STALE_S", 0.1)
        spool_mod._write_heartbeat(spool)
        # Live heartbeat: the wait runs to its own deadline instead of
        # misdiagnosing a slow solve as a dead server.
        with pytest.raises(SpoolTimeout):
            wait_for_result(spool, "slow", timeout_s=0.5, require_server=True)

    def test_backoff_is_jittered_and_capped(self, tmp_path):
        spool = tmp_path / "spool"
        _write_record(spool, "req", {"state": "done"})

        class Recorder(random.Random):
            def __init__(self):
                super().__init__(0)
                self.bounds = []

            def uniform(self, lo, hi):
                self.bounds.append((lo, hi))
                return lo

        rng = Recorder()
        wait_for_result(spool, "req", timeout_s=1.0, rng=rng)
        assert rng.bounds == []  # found immediately: no sleeps at all


class TestHeartbeat:
    def test_serve_writes_heartbeat(self, graph_file, tmp_path):
        spool = tmp_path / "spool"
        submit_to_spool(spool, JobSpec(graph_file, k=2, seed=7, name="hb"))

        async def scenario():
            config = ServiceConfig(workers=1, workdir=str(tmp_path / "work"))
            async with Supervisor(config) as sup:
                await serve_spool(sup, spool, max_jobs=1)

        asyncio.run(scenario())
        doc = json.loads((spool / "server.json").read_text())
        assert doc["pid"] == os.getpid()
        assert spool_server_alive(spool, stale_after_s=60.0)
        assert not spool_server_alive(spool, stale_after_s=0.0)


class TestRetentionSweep:
    def test_collects_only_stale_settled_records(self, tmp_path):
        spool = tmp_path / "spool"
        old_done = _write_record(spool, "old-done", {"state": "done"}, age_s=600)
        old_failed = _write_record(
            spool, "old-failed", {"state": "failed"}, age_s=600
        )
        fresh_done = _write_record(spool, "fresh-done", {"state": "done"})
        suspended = _write_record(
            spool, "parked", {"state": "suspended", "checkpoint": "x.wal"},
            age_s=600,
        )
        torn = (spool / "results" / "torn.json")
        torn.write_text('{"state": "do')  # mid-write crash artifact
        stamp = time.time() - 600
        os.utime(torn, (stamp, stamp))
        # Sibling artifacts for a collected and a kept record.
        events = spool / "events"
        claimed = spool / "jobs" / "claimed"
        events.mkdir(parents=True)
        claimed.mkdir(parents=True)
        for request_id in ("old-done", "parked"):
            (events / f"{request_id}.jsonl").write_text("{}\n")
            (claimed / f"{request_id}.json").write_text("{}\n")
        pending = spool / "jobs" / "pending.json"
        pending.write_text("{}\n")
        stamp = time.time() - 600
        os.utime(pending, (stamp, stamp))

        assert sweep_spool(spool, retention_s=60.0) == 2

        assert not old_done.exists() and not old_failed.exists()
        assert not (events / "old-done.jsonl").exists()
        assert not (claimed / "old-done.json").exists()
        # Live, resumable, pending, and torn artifacts all survive.
        assert fresh_done.exists()
        assert suspended.exists()
        assert (events / "parked.jsonl").exists()
        assert (claimed / "parked.json").exists()
        assert pending.exists()
        assert torn.exists()

    def test_mid_chaos_sweep_loses_nothing(
        self, multi_probe_graph_file, tmp_path
    ):
        """A sweep racing an active chaos scenario must not break resume.

        Server 1 suspends the victim job mid-search (scripted SIGINT
        after its first journaled probe).  An aggressive sweep then runs
        with everything older than the horizon — only the *settled*
        decoy may go; the suspended record and its artifacts must stay,
        and server 2 must still resume the victim to the reference
        answer.
        """
        import numpy as np

        from repro.core import qmkp
        from repro.graphs import read_edge_list

        spool = tmp_path / "spool"
        workdir = tmp_path / "work"
        chaos = ChaosPlan(interrupts={"victim": [1]})
        victim_spec = JobSpec(
            multi_probe_graph_file, k=2, seed=7, name="victim"
        )
        submit_to_spool(spool, victim_spec)

        async def server1():
            config = ServiceConfig(workers=1, workdir=str(workdir))
            async with Supervisor(config, chaos=chaos) as sup:
                await serve_spool(sup, spool, max_jobs=1)

        asyncio.run(server1())
        record = json.loads((spool / "results" / "victim.json").read_text())
        assert record["state"] == "suspended"

        # Make everything look ancient, then sweep hard: only the
        # settled decoy is eligible.
        _write_record(spool, "decoy", {"state": "done"}, age_s=600)
        for path in spool.rglob("*"):
            if path.is_file():
                stamp = time.time() - 600
                os.utime(path, (stamp, stamp))
        assert sweep_spool(spool, retention_s=1.0) == 1
        assert not (spool / "results" / "decoy.json").exists()
        assert (spool / "results" / "victim.json").exists()
        assert (spool / "events" / "victim.jsonl").exists()

        # Server 2: resubmit the identical spec; its content-keyed
        # checkpoint survived the sweep, so it resumes — never restarts.
        resumed_id = submit_to_spool(spool, victim_spec)

        async def server2():
            config = ServiceConfig(workers=1, workdir=str(workdir))
            async with Supervisor(config) as sup:
                await serve_spool(sup, spool, max_jobs=1)

        asyncio.run(server2())
        final = json.loads(
            (spool / "results" / f"{resumed_id}.json").read_text()
        )
        assert final["state"] == "done"
        assert final["resumed_probes"] == 1
        graph, _ = read_edge_list(multi_probe_graph_file)
        reference = qmkp(graph, 2, rng=np.random.default_rng(7))
        assert final["answer"]["size"] == reference.size
        assert final["answer"]["gate_units"] == reference.gate_units

    def test_serve_loop_sweeps_with_configured_retention(
        self, graph_file, tmp_path
    ):
        spool = tmp_path / "spool"
        _write_record(spool, "ancient", {"state": "done"}, age_s=600)
        submit_to_spool(spool, JobSpec(graph_file, k=2, seed=7, name="live"))

        async def scenario():
            config = ServiceConfig(
                workers=1,
                workdir=str(tmp_path / "work"),
                spool_retention_s=60.0,
            )
            async with Supervisor(config) as sup:
                # idle_timeout keeps the loop alive past the first
                # sweep interval (retention/4 >= 1s heartbeat floor).
                await serve_spool(sup, spool, max_jobs=1, idle_timeout_s=0.2)
                return sup.tracer.registry.as_dict()["counters"]

        counters = asyncio.run(scenario())
        assert not (spool / "results" / "ancient.json").exists()
        assert (spool / "results" / "live.json").exists()
        assert counters.get("service_spool_records_swept") == 1
