"""Gateway tests: HTTP/SSE front end over a real supervisor.

The asyncio server runs on the test's event loop; the blocking
stdlib client is pushed to threads with ``asyncio.to_thread``.  Solves
use the figure-1 graph so every job is sub-second.
"""

from __future__ import annotations

import asyncio
import json
import socket

import numpy as np
import pytest

from repro.core import qmkp
from repro.datasets import figure1_graph
from repro.graphs import write_edge_list
from repro.service import (
    AdmissionError,
    BackpressureError,
    Gateway,
    GatewayClient,
    GatewayError,
    JobSpec,
    ServiceConfig,
    Supervisor,
)
from repro.service.http import DropConnection
from repro.service.jobs import Job


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.edges"
    write_edge_list(figure1_graph(), path)
    return str(path)


def _config(tmp_path, **kwargs) -> ServiceConfig:
    kwargs.setdefault("workdir", str(tmp_path / "work"))
    return ServiceConfig(**kwargs)


def _counter(sup, name: str) -> float:
    return sup.tracer.registry.as_dict()["counters"].get(name, 0)


async def _serving(config, fn):
    """Run ``fn(supervisor, gateway, client)`` against a live gateway."""
    async with Supervisor(config) as sup:
        gateway = Gateway(sup)
        await gateway.start()
        client = GatewayClient(gateway.base_url, timeout_s=30.0)
        try:
            return await fn(sup, gateway, client)
        finally:
            await gateway.close()


class TestSubmission:
    def test_solve_end_to_end_matches_direct_answer(self, graph_file, tmp_path):
        async def scenario(sup, gateway, client):
            spec = JobSpec(graph_file, k=2, seed=7)
            incumbents, result = await asyncio.to_thread(client.solve, spec)
            return incumbents, result

        incumbents, result = asyncio.run(
            _serving(_config(tmp_path, workers=1), scenario)
        )
        direct = qmkp(figure1_graph(), 2, rng=np.random.default_rng(7))
        assert result["state"] == "done"
        assert result["answer"]["size"] == direct.size
        assert result["answer"]["gate_units"] == direct.gate_units
        assert result["verified"]
        # The stream's final incumbent is the answer.
        assert incumbents and incumbents[-1]["size"] == direct.size

    def test_duplicate_submission_replays_not_resolves(
        self, graph_file, tmp_path
    ):
        async def scenario(sup, gateway, client):
            spec = JobSpec(graph_file, k=2, seed=7)
            first = await asyncio.to_thread(client.submit, spec)
            _, result = await asyncio.to_thread(client.solve, spec)
            second = await asyncio.to_thread(client.submit, spec)
            return first, second, result, _counter(sup, "service_jobs_submitted")

        first, second, result, submitted = asyncio.run(
            _serving(_config(tmp_path, workers=1), scenario)
        )
        assert first["replayed"] is False
        assert second["replayed"] is True
        assert second["job_id"] == first["job_id"]
        assert submitted == 1  # the solver ran exactly once
        assert result["state"] == "done"

    def test_bad_body_is_400(self, tmp_path):
        async def scenario(sup, gateway, client):
            status, doc = await asyncio.to_thread(
                client._request_json, "POST", "/v1/jobs", {"nonsense": True}
            )
            return status, doc

        status, doc = asyncio.run(_serving(_config(tmp_path), scenario))
        assert status == 400
        assert doc["error_type"] == "BadSpec"

    def test_backpressure_maps_to_429_with_retry_after(
        self, graph_file, tmp_path, monkeypatch
    ):
        async def scenario(sup, gateway, client):
            def full(spec):
                raise BackpressureError(capacity=4, depth=4)

            monkeypatch.setattr(sup, "submit_idempotent", full)
            with pytest.raises(GatewayError) as err:
                await asyncio.to_thread(client.submit, JobSpec(graph_file, k=2))
            return err.value, _counter(sup, "gateway_rejected_backpressure")

        error, rejected = asyncio.run(_serving(_config(tmp_path), scenario))
        assert error.status == 429
        assert error.body["error_type"] == "BackpressureError"
        assert error.body["depth"] == 4
        assert error.retry_after_s == 1.0
        assert rejected == 1

    def test_admission_maps_to_429_with_tenant_detail(
        self, graph_file, tmp_path, monkeypatch
    ):
        async def scenario(sup, gateway, client):
            def broke(spec):
                raise AdmissionError(tenant="acme", budget=100, charged=99)

            monkeypatch.setattr(sup, "submit_idempotent", broke)
            with pytest.raises(GatewayError) as err:
                await asyncio.to_thread(client.submit, JobSpec(graph_file, k=2))
            return err.value

        error = asyncio.run(_serving(_config(tmp_path), scenario))
        assert error.status == 429
        assert error.body["error_type"] == "AdmissionError"
        assert error.body["tenant"] == "acme"
        assert error.body["budget"] == 100


class TestRouting:
    def test_unknown_job_is_404(self, tmp_path):
        async def scenario(sup, gateway, client):
            return await asyncio.to_thread(client.job, "feedfacefeedface")

        status, doc = asyncio.run(_serving(_config(tmp_path), scenario))
        assert status == 404
        assert doc["error_type"] == "NotFound"

    def test_unknown_route_is_404_and_bad_method_405(self, tmp_path):
        async def scenario(sup, gateway, client):
            missing = await asyncio.to_thread(
                client._request_json, "GET", "/v2/nope"
            )
            bad = await asyncio.to_thread(
                client._request_json, "POST", "/v1/healthz", {}
            )
            return missing, bad

        (missing_status, _), (bad_status, _) = asyncio.run(
            _serving(_config(tmp_path), scenario)
        )
        assert missing_status == 404
        assert bad_status == 404  # POST /v1/healthz: no such route

    def test_healthz_and_metrics(self, graph_file, tmp_path):
        async def scenario(sup, gateway, client):
            await asyncio.to_thread(client.solve, JobSpec(graph_file, k=2, seed=7))
            health = await asyncio.to_thread(
                client._request_json, "GET", "/v1/healthz"
            )
            prom = await asyncio.to_thread(client.metrics, "prom")
            as_json = await asyncio.to_thread(client.metrics, "json")
            return health, prom, as_json

        (status, doc), prom, as_json = asyncio.run(
            _serving(_config(tmp_path, workers=1), scenario)
        )
        assert status == 200 and doc["status"] == "ok"
        assert doc["jobs"].get("done") == 1
        assert "service_jobs_completed" in prom
        assert json.loads(as_json)["counters"]["service_jobs_completed"] == 1

    def test_job_status_document(self, graph_file, tmp_path):
        async def scenario(sup, gateway, client):
            spec = JobSpec(graph_file, k=2, seed=7)
            submitted = await asyncio.to_thread(client.solve, spec)
            return await asyncio.to_thread(client.job, spec.content_key())

        status, doc = asyncio.run(_serving(_config(tmp_path, workers=1), scenario))
        assert status == 200
        assert doc["state"] == "done"
        assert doc["last_event_id"] >= 1
        assert doc["events"].endswith("/events")


class TestStreams:
    def test_reconnect_resumes_without_gaps_or_duplicates(
        self, graph_file, tmp_path
    ):
        dropped = {"count": 0}

        def drop_once(record):
            # Chaos hook: tear the connection down right after the first
            # journaled event arrives, exactly once.
            if record["id"] == 1 and dropped["count"] == 0:
                dropped["count"] += 1
                raise DropConnection

        async def scenario(sup, gateway, client):
            spec = JobSpec(graph_file, k=2, seed=7)
            return await asyncio.to_thread(client.solve, spec, drop_once)

        incumbents, result = asyncio.run(
            _serving(_config(tmp_path, workers=1), scenario)
        )
        assert dropped["count"] == 1
        assert result["state"] == "done"
        # solve() asserts monotone gap-free ids internally; duplicates
        # would break the size progression here.
        sizes = [inc["size"] for inc in incumbents]
        assert sizes == sorted(set(sizes))

    def test_restarted_gateway_replays_from_disk(self, graph_file, tmp_path):
        config = _config(tmp_path, workers=1)

        async def scenario():
            async with Supervisor(config) as sup:
                first = Gateway(sup)
                await first.start()
                client = GatewayClient(first.base_url, timeout_s=30.0)
                spec = JobSpec(graph_file, k=2, seed=7)
                incumbents, result = await asyncio.to_thread(client.solve, spec)
                await first.close()

                # A fresh gateway over the same workdir: no live jobs,
                # only the journals its predecessor left behind.
                second = Gateway(sup)
                await second.start()
                replayer = GatewayClient(second.base_url, timeout_s=30.0)
                try:
                    records = await asyncio.to_thread(
                        lambda: list(
                            replayer.stream_once(spec.content_key(), 0)
                        )
                    )
                finally:
                    await second.close()
                return incumbents, result, records

        incumbents, result, records = asyncio.run(scenario())
        ids = [r["id"] for r in records]
        assert ids == list(range(1, len(records) + 1))
        assert records[-1]["event"] == "result"
        assert records[-1]["data"] == result
        assert [r["data"] for r in records[:-1]] == incumbents

    def test_last_event_id_skips_replayed_prefix(self, graph_file, tmp_path):
        async def scenario(sup, gateway, client):
            spec = JobSpec(graph_file, k=2, seed=7)
            _, result = await asyncio.to_thread(client.solve, spec)
            key = spec.content_key()
            total = gateway._journal(key).last_id
            tail = await asyncio.to_thread(
                lambda: list(client.stream_once(key, total - 1))
            )
            return total, tail

        total, tail = asyncio.run(_serving(_config(tmp_path, workers=1), scenario))
        assert [r["id"] for r in tail] == [total]
        assert tail[0]["event"] == "result"

    def test_events_for_unknown_job_is_404(self, tmp_path):
        async def scenario(sup, gateway, client):
            with pytest.raises(GatewayError) as err:
                await asyncio.to_thread(
                    lambda: list(client.stream_once("feedfacefeedface", 0))
                )
            return err.value

        error = asyncio.run(_serving(_config(tmp_path), scenario))
        assert error.status == 404


class TestDegradation:
    def test_stalled_reader_is_evicted(self, graph_file, tmp_path):
        """A reader that stops consuming is cut off, not buffered forever."""
        config = _config(
            tmp_path,
            http_send_queue=8,
            http_write_timeout_s=0.2,
            http_heartbeat_s=0.1,
        )

        async def scenario(sup, gateway, client):
            key = "feedfacecafebeef"
            journal = gateway._journal(key)
            # A fake live producer keeps the SSE handler in its live
            # loop instead of closing after replay.
            gateway._jobs[key] = Job("job-x", JobSpec(graph_file, k=2), sup.workdir)

            sock = socket.create_connection((gateway.host, gateway.port))
            sock.sendall(
                f"GET /v1/jobs/{key}/events HTTP/1.1\r\n"
                f"Host: x\r\nLast-Event-ID: 0\r\n\r\n".encode()
            )
            # Read nothing: the socket buffers fill, drain() stalls, and
            # either the write deadline or the send-queue bound trips.
            try:
                payload = "x" * 2048
                for round_ in range(400):
                    for i in range(8):
                        journal.append(
                            "incumbent", {"n": round_ * 8 + i, "pad": payload}
                        )
                    await asyncio.sleep(0.02)
                    if _counter(sup, "service_slow_client_evictions") >= 1:
                        break
            finally:
                sock.close()
            return _counter(sup, "service_slow_client_evictions")

        evictions = asyncio.run(_serving(config, scenario))
        assert evictions >= 1

    def test_drain_closes_streams_and_rejects_new_submissions(
        self, graph_file, tmp_path
    ):
        config = _config(tmp_path, http_heartbeat_s=0.1)

        async def scenario():
            async with Supervisor(config) as sup:
                gateway = Gateway(sup)
                await gateway.start()
                client = GatewayClient(gateway.base_url, timeout_s=30.0)
                key = "feedfacecafebeef"
                journal = gateway._journal(key)
                journal.append("incumbent", {"n": 1})
                gateway._jobs[key] = Job(
                    "job-x", JobSpec(graph_file, k=2), sup.workdir
                )

                stream_task = asyncio.ensure_future(
                    asyncio.to_thread(lambda: list(client.stream_once(key, 0)))
                )
                await asyncio.sleep(0.3)  # client is live, waiting for events
                await gateway.close()
                records = await stream_task

                with pytest.raises((GatewayError, OSError)) as err:
                    client.submit(JobSpec(graph_file, k=2))
                return records, err.value

        records, error = asyncio.run(scenario())
        # The stream ended cleanly with the replayed prefix and no
        # terminal — exactly the signal that tells a client to reconnect.
        assert [r["id"] for r in records] == [1]
        # After close() the socket is gone entirely OR answered 503 if
        # caught mid-drain; both read as "resubmit elsewhere".
        assert isinstance(error, (GatewayError, OSError))
