"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import figure1_graph
from repro.graphs import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.txt"
    write_edge_list(figure1_graph(), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self, graph_file):
        args = build_parser().parse_args(["solve", graph_file])
        assert args.k == 2
        assert args.solver == "bs"


class TestSolve:
    def test_bs(self, graph_file, capsys):
        assert main(["solve", graph_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "maximum 2-plex size: 4" in out

    def test_bruteforce(self, graph_file, capsys):
        assert main(["solve", graph_file, "--solver", "bruteforce"]) == 0
        assert "size: 4" in capsys.readouterr().out

    def test_qmkp(self, graph_file, capsys):
        assert main(["solve", graph_file, "--solver", "qmkp", "--seed", "3"]) == 0
        assert "size: 4" in capsys.readouterr().out

    def test_qmkp_no_cache_matches_cached(self, graph_file, capsys):
        assert main([
            "solve", graph_file, "--solver", "qmkp", "--seed", "3", "--no-cache",
        ]) == 0
        uncached = capsys.readouterr().out
        assert main(["solve", graph_file, "--solver", "qmkp", "--seed", "3"]) == 0
        assert capsys.readouterr().out == uncached

    def test_qmkp_workers(self, graph_file, capsys):
        assert main([
            "solve", graph_file, "--solver", "qmkp", "--seed", "3", "--workers", "2",
        ]) == 0
        assert "size: 4" in capsys.readouterr().out

    def test_workers_requires_qmkp(self, graph_file, capsys):
        assert main(["solve", graph_file, "--workers", "2"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_qamkp_sa(self, graph_file, capsys):
        code = main([
            "solve", graph_file, "--solver", "qamkp-sa",
            "--runtime-us", "500", "--seed", "0",
        ])
        assert code == 0
        assert "objective cost" in capsys.readouterr().out


class TestCheck:
    def test_valid_plex(self, graph_file, capsys):
        assert main(["check", graph_file, "-k", "2", "0", "1", "3", "4"]) == 0
        assert "is a 2-plex" in capsys.readouterr().out

    def test_invalid_plex(self, graph_file, capsys):
        assert main(["check", graph_file, "-k", "2", "0", "1", "2", "3", "4"]) == 1
        assert "NOT" in capsys.readouterr().out

    def test_unknown_vertex(self, graph_file, capsys):
        assert main(["check", graph_file, "99"]) == 2


class TestInfoCommands:
    def test_qubo(self, graph_file, capsys):
        assert main(["qubo", graph_file, "-k", "3"]) == 0
        assert "slack variables" in capsys.readouterr().out

    def test_oracle(self, graph_file, capsys):
        assert main(["oracle", graph_file, "-k", "2", "-T", "4"]) == 0
        out = capsys.readouterr().out
        assert "degree count gates" in out


class TestEnumerate:
    def test_lists_maximal_plexes(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "-k", "2", "--min-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "size 4" in out
        assert "1 maximal 2-plex(es)" in out

    def test_limit(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "-k", "2", "--limit", "1"]) == 0


class TestRelax:
    def test_club(self, graph_file, capsys):
        assert main(["relax", graph_file, "--model", "club", "-n", "3",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "maximum 3-club size: 6" in out

    def test_clan(self, graph_file, capsys):
        assert main(["relax", graph_file, "--model", "clan", "-n", "2",
                     "--seed", "1"]) == 0
        assert "maximum 2-clan size" in capsys.readouterr().out


class TestDraw:
    def test_small_circuit_drawn(self, tmp_path, capsys):
        from repro.graphs import Graph, write_edge_list

        path = tmp_path / "tiny.txt"
        write_edge_list(Graph(3, [(0, 1), (1, 2)]), path)
        assert main(["draw", str(path), "-k", "2", "-T", "2"]) == 0
        out = capsys.readouterr().out
        assert "|0>" in out
        assert "qubits" in out

    def test_too_large_refused(self, graph_file, capsys):
        # Fig. 1's oracle has 95 qubits: over the drawing limit.
        assert main(["draw", graph_file, "-k", "2", "-T", "4"]) == 2


class TestRobustness:
    def test_missing_file_exits_2(self, capsys):
        assert main(["solve", "/nonexistent/graph.txt"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nthis is not an edge\n")
        assert main(["solve", str(path)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err

    def test_non_integer_vertex_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("0 x\n")
        assert main(["solve", str(path)]) == 2
        assert "non-integer" in capsys.readouterr().err

    def test_runtime_exceeded_without_fallback_exits_2(self, graph_file, capsys):
        # 1e6 us of 1 us shots blows the default 2e4 us per-call cap.
        code = main([
            "solve", graph_file, "--solver", "qamkp-qpu",
            "--runtime-us", "1000000", "--seed", "0",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "--fallback" in err

    def test_inject_faults_requires_qpu_solver(self, graph_file, capsys):
        code = main([
            "solve", graph_file, "--solver", "qamkp-sa",
            "--inject-faults", "transient=1",
        ])
        assert code == 2
        assert "qamkp-qpu" in capsys.readouterr().err

    def test_bad_fault_spec_exits_2(self, graph_file, capsys):
        code = main([
            "solve", graph_file, "--solver", "qamkp-qpu",
            "--inject-faults", "gremlins=1",
        ])
        assert code == 2
        assert "unknown fault class" in capsys.readouterr().err


class TestTracedSolve:
    def test_trace_writes_verified_ledger(self, graph_file, tmp_path, capsys):
        import json

        ledger_path = tmp_path / "ledger.json"
        code = main([
            "solve", graph_file, "--solver", "qmkp", "--seed", "3",
            "--trace", str(ledger_path),
        ])
        assert code == 0
        doc = json.loads(ledger_path.read_text())
        assert doc["schema"] == "repro.obs/run-ledger/v1"
        assert doc["verified"] is True
        assert doc["drift"] == []
        assert doc["meta"]["solver"] == "qmkp"
        assert doc["spans"][0]["name"] == "qmkp"
        assert doc["totals"]["oracle_calls"] > 0

    def test_trace_does_not_change_the_answer(self, graph_file, tmp_path, capsys):
        assert main(["solve", graph_file, "--solver", "qmkp", "--seed", "3"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "solve", graph_file, "--solver", "qmkp", "--seed", "3",
            "--trace", str(tmp_path / "l.json"),
        ]) == 0
        assert capsys.readouterr().out == plain

    def test_metrics_json(self, graph_file, capsys):
        import json

        code = main([
            "solve", graph_file, "--solver", "qmkp", "--seed", "3",
            "--metrics", "json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["counters"]["qtkp_calls"] > 0

    def test_metrics_prometheus(self, graph_file, capsys):
        code = main([
            "solve", graph_file, "--solver", "qamkp-qpu",
            "--runtime-us", "500", "--seed", "0",
            "--retries", "2", "--inject-faults", "transient=1,seed=1",
            "--metrics", "prom",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_resilience_attempts counter" in out
        assert "repro_qamkp_solves_total 1" in out

    def test_traced_resilient_solve_reconciles(self, graph_file, tmp_path, capsys):
        import json

        ledger_path = tmp_path / "ledger.json"
        code = main([
            "solve", graph_file, "--solver", "qamkp-qpu",
            "--runtime-us", "500", "--seed", "0",
            "--retries", "3", "--fallback",
            "--inject-faults", "transient=2,seed=1",
            "--trace", str(ledger_path),
        ])
        assert code == 0
        doc = json.loads(ledger_path.read_text())
        assert doc["verified"] is True
        assert doc["totals"]["resilience_attempts"] >= 1


class TestResilientSolve:
    def test_retries_and_fallback_flags(self, graph_file, capsys):
        code = main([
            "solve", graph_file, "--solver", "qamkp-qpu",
            "--runtime-us", "500", "--seed", "0",
            "--retries", "3", "--fallback",
            "--inject-faults", "transient=2,seed=1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "objective cost" in out
        assert "backend:" in out
        assert "charged:" in out

    def test_fallback_answers_despite_embedding_failure(self, graph_file, capsys):
        code = main([
            "solve", graph_file, "--solver", "qamkp-qpu",
            "--runtime-us", "500", "--seed", "0", "--fallback",
            "--inject-faults", "embedding=1,seed=1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "maximum 2-plex size:" in out
