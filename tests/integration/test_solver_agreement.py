"""Cross-solver agreement: every MKP solver must find the same optimum.

This is the library's strongest integration invariant: the brute-force
enumerator, the branch-and-search baseline, the gate-based qMKP, the
QUBO+MILP path, and the annealing samplers with generous budgets all
attack the same instances and must agree on the optimum size.
"""

import numpy as np
import pytest

from repro.core import build_mkp_qubo, qamkp, qmkp
from repro.graphs import gnm_random_graph
from repro.kplex import is_kplex, maximum_kplex, maximum_kplex_bruteforce
from repro.milp import solve_qubo_milp


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("k", [1, 2, 3])
class TestAllSolversAgree:
    def test_five_way_agreement(self, seed, k):
        g = gnm_random_graph(7, 11, seed=seed)
        opt = len(maximum_kplex_bruteforce(g, k))

        assert maximum_kplex(g, k).size == opt

        quantum = qmkp(g, k, rng=np.random.default_rng(seed))
        assert quantum.size == opt
        assert is_kplex(g, quantum.subset, k)

        model = build_mkp_qubo(g, k)
        milp = solve_qubo_milp(model.bqm)
        assert milp.energy == pytest.approx(-opt)
        assert len(model.decode(milp.assignment)) == opt

        annealed = qamkp(g, k, runtime_us=3000, solver="sa", seed=seed, sa_shot_cost_us=1.0)
        assert annealed.repaired_size == opt


class TestHybridAgreement:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_hybrid_matches_bruteforce(self, seed):
        g = gnm_random_graph(8, 16, seed=seed)
        opt = len(maximum_kplex_bruteforce(g, 2))
        result = qamkp(g, 2, solver="hybrid", seed=seed)
        assert result.cost == pytest.approx(-opt)
