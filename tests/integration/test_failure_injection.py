"""Failure injection: the library's verifiers must catch corruption.

These tests deliberately break things — drop an oracle gate, overlap
two embedding chains, hand the annealer a hostile landscape — and
assert the corresponding safety net fires.  A reproduction whose
checks cannot fail is not checking anything.
"""

import numpy as np
import pytest

from repro.annealing import (
    BinaryQuadraticModel,
    Embedding,
    EmbeddingError,
    SimulatedQPUSampler,
    chimera_graph,
)
from repro.core.oracle import KCplexOracle
from repro.datasets import figure1_graph
from repro.graphs import Graph
from repro.kplex import is_kplex, repair_to_kplex
from repro.quantum import QuantumCircuit


class TestOracleCorruptionDetected:
    def _corrupt(self, circuit: QuantumCircuit, drop_index: int) -> QuantumCircuit:
        out = QuantumCircuit(circuit.num_qubits)
        for i, gate in enumerate(circuit):
            if i != drop_index:
                out.append(gate)
        return out

    def test_dropping_a_live_gate_breaks_equivalence(self):
        """Deleting any graph-encoding Toffoli must flip some output.

        (Some deep carry gates are legitimately dead — the counters have
        overflow headroom — so the probe targets the encode section,
        where every gate fires for some input.)
        """
        g = figure1_graph()
        oracle = KCplexOracle(g.complement(), 2, 4)
        from repro.quantum import classical_simulate

        baseline = [
            classical_simulate(oracle.u_check, mask) for mask in range(64)
        ]
        num_encode = g.complement().num_edges
        for drop in range(num_encode):
            corrupted = self._corrupt(oracle.u_check, drop)
            outputs = [classical_simulate(corrupted, mask) for mask in range(64)]
            assert outputs != baseline, f"dropping gate {drop} went unnoticed"

    def test_most_random_gate_drops_detected(self):
        """A random sample of gates is overwhelmingly live."""
        g = figure1_graph()
        oracle = KCplexOracle(g.complement(), 2, 4)
        from repro.quantum import classical_simulate

        baseline = [
            classical_simulate(oracle.u_check, mask) for mask in range(64)
        ]
        rng = np.random.default_rng(0)
        detected = 0
        sample = rng.choice(oracle.u_check.num_gates, size=12, replace=False)
        for drop in sample:
            corrupted = self._corrupt(oracle.u_check, int(drop))
            outputs = [classical_simulate(corrupted, mask) for mask in range(64)]
            detected += outputs != baseline
        assert detected >= len(sample) // 2

    def test_wrong_threshold_changes_marked_set(self):
        g = figure1_graph()
        right = KCplexOracle(g.complement(), 2, 4)
        wrong = KCplexOracle(g.complement(), 2, 3)
        marked_right = {m for m in range(64) if right.predicate(m)}
        marked_wrong = {m for m in range(64) if wrong.predicate(m)}
        assert marked_right != marked_wrong


class TestEmbeddingValidation:
    def test_overlapping_chains_rejected(self):
        hw = chimera_graph(2)
        emb = Embedding({0: (0, 4), 1: (4, 8)}, hw)
        with pytest.raises(EmbeddingError, match="overlap"):
            emb.validate([])

    def test_missing_coupler_rejected(self):
        hw = chimera_graph(2)
        # qubits 0 and 1 share a cell shore: not coupled in Chimera.
        emb = Embedding({0: (0,), 1: (1,)}, hw)
        with pytest.raises(EmbeddingError, match="coupler"):
            emb.validate([(0, 1)])

    def test_qpu_survives_extreme_noise(self):
        """Even absurd control noise must yield verifiable samples."""
        sampler = SimulatedQPUSampler(
            hardware=chimera_graph(3), noise_scale=2.0, max_call_time_us=None
        )
        bqm = BinaryQuadraticModel({"a": -1.0, "b": -1.0}, {("a", "b"): 1.0})
        ss = sampler.sample(bqm, annealing_time_us=2, num_reads=20, seed=0)
        for sample in ss:
            # energies are always recomputed against the clean model
            assert sample.energy == pytest.approx(bqm.energy(sample.assignment))


class TestDecodeRepairSafetyNet:
    def test_adversarial_sample_repaired(self):
        """Any assignment — even all-ones on a sparse graph — decodes to
        a feasible k-plex after repair."""
        g = Graph(8, [(0, 1), (2, 3), (4, 5), (6, 7)])
        repaired = repair_to_kplex(g, range(8), 2)
        assert is_kplex(g, repaired, 2)

    def test_repair_idempotent(self):
        g = figure1_graph()
        once = repair_to_kplex(g, range(6), 2)
        twice = repair_to_kplex(g, once, 2)
        assert once == twice


class TestRuntimeGuards:
    def test_qamkp_rejects_over_cap_qpu(self):
        from repro.annealing import QPURuntimeExceeded
        from repro.core import qamkp

        g = figure1_graph()
        capped = SimulatedQPUSampler(
            hardware=chimera_graph(4), max_call_time_us=100.0
        )
        with pytest.raises(QPURuntimeExceeded):
            qamkp(g, 2, runtime_us=10_000.0, solver="qpu", qpu=capped, seed=0)

    def test_brute_force_guards_protect_against_blowup(self):
        from repro.graphs import empty_graph
        from repro.kplex import maximum_kplex_bruteforce

        with pytest.raises(ValueError):
            maximum_kplex_bruteforce(empty_graph(40), 2)
