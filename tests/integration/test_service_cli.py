"""CLI integration: graceful SIGINT, checkpoint fresh-start, spool serve.

Covers the operator-facing robustness contracts:

* ``solve --checkpoint`` interrupted by SIGINT exits 130 with a
  one-line "resumable at PATH" notice, and the follow-up run resumes
  to the bit-identical answer;
* a zero-length / torn-header checkpoint file is a fresh start, not a
  refusal (exit 0, no resume);
* ``submit`` + ``serve`` round-trip a job through the file spool.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.graphs import gnm_random_graph, write_edge_list

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_cli(args, tmp_path, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    for hook in ("QMKP_CRASH_AFTER_PROBES", "QMKP_SIGINT_AFTER_PROBES"):
        env.pop(hook, None)
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=tmp_path, timeout=120,
    )


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "gnm.edges"
    write_edge_list(gnm_random_graph(7, 10, seed=1), path)
    return str(path)


ARGS = ["-k", "2", "--solver", "qmkp", "--seed", "7"]


class TestGracefulInterrupt:
    def test_sigint_prints_resume_hint_and_exits_130(
        self, graph_file, tmp_path
    ):
        reference = _run_cli(["solve", graph_file, *ARGS], tmp_path)
        assert reference.returncode == 0, reference.stderr

        checkpoint = tmp_path / "probe.wal"
        # The deterministic SIGINT hook delivers a real SIGINT to the
        # process after the first journaled probe.
        interrupted = _run_cli(
            ["solve", graph_file, *ARGS, "--checkpoint", str(checkpoint)],
            tmp_path,
            extra_env={"QMKP_SIGINT_AFTER_PROBES": "1"},
        )
        assert interrupted.returncode == 130
        assert f"resumable at {checkpoint}" in interrupted.stderr
        # header + exactly the probe that completed before the signal
        assert len(checkpoint.read_text().splitlines()) == 2

        resumed = _run_cli(
            ["solve", graph_file, *ARGS, "--checkpoint", str(checkpoint)],
            tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed 1 probe(s)" in resumed.stdout
        assert (
            resumed.stdout.splitlines()[-2:]
            == reference.stdout.splitlines()[-2:]
        )

    def test_sigint_hook_is_scoped_to_journaled_runs(
        self, graph_file, tmp_path
    ):
        # The deterministic hook fires from the journal's append path;
        # without --checkpoint there is no journal, so the run completes
        # normally and no misleading resume hint is printed.
        result = _run_cli(
            ["solve", graph_file, *ARGS],
            tmp_path,
            extra_env={"QMKP_SIGINT_AFTER_PROBES": "1"},
        )
        assert result.returncode == 0, result.stderr
        assert "resumable at" not in result.stderr


class TestFreshStartCheckpoints:
    def test_zero_length_checkpoint_starts_fresh(self, graph_file, tmp_path):
        reference = _run_cli(["solve", graph_file, *ARGS], tmp_path)
        checkpoint = tmp_path / "empty.wal"
        checkpoint.touch()  # crash before the header fsync completed
        result = _run_cli(
            ["solve", graph_file, *ARGS, "--checkpoint", str(checkpoint)],
            tmp_path,
        )
        assert result.returncode == 0, result.stderr
        assert "resumed" not in result.stdout
        assert result.stdout == reference.stdout

    def test_torn_header_checkpoint_starts_fresh(self, graph_file, tmp_path):
        reference = _run_cli(["solve", graph_file, *ARGS], tmp_path)
        checkpoint = tmp_path / "torn.wal"
        checkpoint.write_text('{"schema": 1, "graph": "abc')
        result = _run_cli(
            ["solve", graph_file, *ARGS, "--checkpoint", str(checkpoint)],
            tmp_path,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout == reference.stdout
        # And the journal was rewritten into a valid one.
        header = json.loads(checkpoint.read_text().splitlines()[0])
        assert "schema" in header


class TestSpool:
    def test_submit_then_serve_round_trip(self, graph_file, tmp_path):
        spool = tmp_path / "spool"
        submitted = _run_cli(
            [
                "submit", str(spool), graph_file,
                "-k", "2", "--solver", "qmkp", "--seed", "7",
                "--name", "demo",
            ],
            tmp_path,
        )
        assert submitted.returncode == 0, submitted.stderr
        assert "submitted demo" in submitted.stdout

        served = _run_cli(
            [
                "serve", str(spool),
                "--max-jobs", "1", "--workers", "1", "--metrics", "prom",
            ],
            tmp_path,
        )
        assert served.returncode == 0, served.stderr
        assert "served 1 request(s)" in served.stdout
        assert "repro_service_jobs_completed_total 1" in served.stdout

        record = json.loads((spool / "results" / "demo.json").read_text())
        assert record["state"] == "done"
        assert record["verified"] is True
        reference = _run_cli(["solve", graph_file, *ARGS], tmp_path)
        size_line = f"maximum 2-plex size: {record['answer']['size']}"
        assert size_line in reference.stdout
        # The anytime event log ends at the final answer.
        events = [
            json.loads(line)
            for line in (spool / "events" / "demo.jsonl").read_text().splitlines()
        ]
        assert events[-1]["size"] == record["answer"]["size"]
        # The per-job receipt carries a reconciled ledger.
        receipt = json.loads(Path(record["receipt"]).read_text())
        assert receipt["ledger"]["verified"] is True

    def test_submit_wait_prints_the_answer(self, graph_file, tmp_path):
        import threading

        spool = tmp_path / "spool"
        server = threading.Thread(
            target=_run_cli,
            args=(
                ["serve", str(spool), "--max-jobs", "1", "--workers", "1"],
                tmp_path,
            ),
        )
        server.start()
        try:
            waited = _run_cli(
                [
                    "submit", str(spool), graph_file,
                    "-k", "2", "--seed", "7", "--name", "waited", "--wait",
                ],
                tmp_path,
            )
        finally:
            server.join(timeout=120)
        assert waited.returncode == 0, waited.stderr
        assert "maximum 2-plex size:" in waited.stdout

    def test_wait_on_rejected_record_exits_nonzero_with_reason(
        self, graph_file, tmp_path
    ):
        # Regression: --wait used to exit 0 on *any* settled record,
        # reporting "size: None" for a rejected job instead of failing.
        import threading
        import time

        spool = tmp_path / "spool"
        ok = _run_cli(
            [
                "submit", str(spool), graph_file,
                "-k", "2", "--seed", "7", "--name", "a-first",
            ],
            tmp_path,
        )
        assert ok.returncode == 0, ok.stderr

        # The waiter's own request is the one that gets rejected: its
        # file is spooled before the server starts, so the server's
        # first claim pass admits "a-first" and — the one-slot queue
        # being full with no await in between — turns "b-burst" away.
        waited: list = []
        waiter = threading.Thread(
            target=lambda: waited.append(_run_cli(
                [
                    "submit", str(spool), graph_file,
                    "-k", "2", "--seed", "7", "--name", "b-burst", "--wait",
                    "--timeout", "60",
                ],
                tmp_path,
            ))
        )
        waiter.start()
        try:
            for _ in range(200):
                if (spool / "jobs" / "b-burst.json").exists():
                    break
                time.sleep(0.05)
            else:
                pytest.fail("waiter never spooled its request")
            served = _run_cli(
                [
                    "serve", str(spool),
                    "--queue-capacity", "1", "--workers", "1",
                    "--max-jobs", "2",
                ],
                tmp_path,
            )
        finally:
            waiter.join(timeout=120)
        assert served.returncode == 0, served.stderr
        record = json.loads((spool / "results" / "b-burst.json").read_text())
        assert record["state"] == "rejected"
        assert "BackpressureError" in record["error"]

        result = waited[0]
        assert result.returncode == 1
        assert "job settled rejected" in result.stderr
        assert "BackpressureError" in result.stderr
        assert "maximum" not in result.stdout

    def test_wait_with_no_server_diagnoses_not_timeouts(
        self, graph_file, tmp_path
    ):
        # A spool nobody serves must produce the "no live server" exit-2
        # diagnosis (after the boot grace), not a generic timeout that
        # sends the operator hunting for a slow solve.
        spool = tmp_path / "spool"
        result = _run_cli(
            [
                "submit", str(spool), graph_file,
                "-k", "2", "--seed", "7", "--name", "orphan", "--wait",
                "--timeout", "60",
            ],
            tmp_path,
        )
        assert result.returncode == 2
        assert "no live server" in result.stderr
        assert "orphan" in result.stderr


class TestGatewayCLI:
    def _start_server(self, spool, tmp_path, extra=()):
        """Launch ``serve --http`` and return (process, base_url)."""
        import threading

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(spool),
                "--http", "127.0.0.1:0", "--workers", "1", *extra,
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=tmp_path,
        )
        banner: list[str] = []
        reader = threading.Thread(
            target=lambda: banner.append(proc.stdout.readline())
        )
        reader.start()
        reader.join(timeout=60)
        if not banner or "gateway listening on " not in banner[0]:
            proc.kill()
            raise AssertionError(f"no gateway banner, got {banner!r}")
        return proc, banner[0].split("gateway listening on ")[1].strip()

    def test_submit_url_streams_and_replays(self, graph_file, tmp_path):
        import signal

        spool = tmp_path / "spool"
        proc, url = self._start_server(spool, tmp_path)
        try:
            waited = _run_cli(
                [
                    "submit", "--url", url, graph_file,
                    "-k", "2", "--seed", "7", "--wait",
                ],
                tmp_path,
            )
            assert waited.returncode == 0, waited.stderr
            assert "maximum 2-plex size:" in waited.stdout
            assert "incumbent: size" in waited.stdout

            # Identical spec again: attaches, never re-solves.
            again = _run_cli(
                ["submit", "--url", url, graph_file, "-k", "2", "--seed", "7"],
                tmp_path,
            )
            assert again.returncode == 0, again.stderr
            assert "(replayed)" in again.stdout
        finally:
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)
        # SIGINT is the graceful-drain path: exit 130 with the hint.
        assert proc.returncode == 130, err
        assert "resumable" in err

    def test_submit_needs_exactly_one_front_end(self, graph_file, tmp_path):
        both = _run_cli(
            [
                "submit", str(tmp_path / "spool"), graph_file,
                "--url", "http://127.0.0.1:1",
            ],
            tmp_path,
        )
        assert both.returncode == 2
        assert "not both" in both.stderr
        neither = _run_cli(["submit", graph_file], tmp_path)
        assert neither.returncode == 2
        assert "neither" in neither.stderr
