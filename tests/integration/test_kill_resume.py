"""Kill-and-resume integration tests.

A qMKP CLI run with ``--checkpoint`` is SIGKILLed mid-search (via the
``QMKP_CRASH_AFTER_PROBES`` hook, which fires *after* a probe record is
durably on disk) and then resumed from the same journal.  The resumed
run must print the bit-identical final answer of the never-killed run
and its traced ledger must reconcile (the CLI exits 3 on drift, so exit
0 doubles as the reconciliation assertion).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets import figure1_graph
from repro.graphs import gnm_random_graph, write_edge_list

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_cli(args, tmp_path, crash_after=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    if crash_after is not None:
        env["QMKP_CRASH_AFTER_PROBES"] = str(crash_after)
    else:
        env.pop("QMKP_CRASH_AFTER_PROBES", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
        timeout=120,
    )


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.txt"
    write_edge_list(figure1_graph(), path)
    return str(path)


@pytest.fixture
def multi_probe_graph_file(tmp_path):
    """A graph whose qMKP binary search needs three probes, so a crash
    after the first really lands mid-search."""
    path = tmp_path / "gnm.txt"
    write_edge_list(gnm_random_graph(7, 10, seed=1), path)
    return str(path)


class TestKillResume:
    ARGS = ["-k", "2", "--solver", "qmkp", "--seed", "7"]

    def test_sigkill_then_resume_bit_identical(
        self, multi_probe_graph_file, tmp_path
    ):
        graph_file = multi_probe_graph_file
        # Reference: the run that is never interrupted.
        reference = _run_cli(["solve", graph_file, *self.ARGS], tmp_path)
        assert reference.returncode == 0, reference.stderr

        checkpoint = tmp_path / "probe.wal"
        crashed = _run_cli(
            ["solve", graph_file, *self.ARGS, "--checkpoint", str(checkpoint)],
            tmp_path,
            crash_after=1,
        )
        assert crashed.returncode == -signal.SIGKILL
        assert checkpoint.exists()
        journal_lines = checkpoint.read_text().splitlines()
        assert len(journal_lines) == 2  # header + exactly one probe

        trace = tmp_path / "ledger.json"
        resumed = _run_cli(
            [
                "solve", graph_file, *self.ARGS,
                "--checkpoint", str(checkpoint),
                "--trace", str(trace),
            ],
            tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed 1 probe(s)" in resumed.stdout
        # Bit-identical final answer: same size + vertex lines.
        assert resumed.stdout.splitlines()[-2:] == reference.stdout.splitlines()[-2:]
        # Exit 0 with --trace already proves reconciliation; check the
        # document agrees.
        ledger = json.loads(trace.read_text())
        assert ledger["verified"] is True
        assert ledger["drift"] == []

    def test_crash_free_checkpoint_run_matches_reference(self, graph_file, tmp_path):
        reference = _run_cli(["solve", graph_file, *self.ARGS], tmp_path)
        checkpoint = tmp_path / "clean.wal"
        journaled = _run_cli(
            ["solve", graph_file, *self.ARGS, "--checkpoint", str(checkpoint)],
            tmp_path,
        )
        assert journaled.returncode == 0, journaled.stderr
        assert journaled.stdout == reference.stdout

    def test_gate_fault_flags_round_trip(self, graph_file, tmp_path):
        reference = _run_cli(["solve", graph_file, *self.ARGS], tmp_path)
        noisy = _run_cli(
            [
                "solve", graph_file, *self.ARGS,
                "--inject-gate-faults", "transient=1,readout=0.4,seed=5",
            ],
            tmp_path,
        )
        assert noisy.returncode == 0, noisy.stderr
        assert "gate faults injected" in noisy.stdout
        # Same verified answer despite the injected noise.
        assert noisy.stdout.splitlines()[-2:] == reference.stdout.splitlines()[-2:]

    def test_flags_require_qmkp_solver(self, graph_file, tmp_path):
        result = _run_cli(
            ["solve", graph_file, "--solver", "bs", "--deadline", "10"],
            tmp_path,
        )
        assert result.returncode == 2
        assert "--solver qmkp" in result.stderr

    def test_mismatched_checkpoint_is_refused(self, graph_file, tmp_path):
        checkpoint = tmp_path / "probe.wal"
        first = _run_cli(
            ["solve", graph_file, *self.ARGS, "--checkpoint", str(checkpoint)],
            tmp_path,
        )
        assert first.returncode == 0, first.stderr
        # Same journal, different k: must refuse, not silently replay.
        second = _run_cli(
            [
                "solve", graph_file, "-k", "3", "--solver", "qmkp",
                "--seed", "7", "--checkpoint", str(checkpoint),
            ],
            tmp_path,
        )
        assert second.returncode == 2
        assert "checkpoint" in second.stderr
