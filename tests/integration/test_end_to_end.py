"""End-to-end scenarios exercising the full public API."""

import numpy as np
import pytest

from repro import (
    Graph,
    build_mkp_qubo,
    is_kplex,
    maximum_kplex,
    qamkp,
    qmkp,
    qtkp,
)
from repro.annealing import SimulatedQPUSampler, chimera_graph
from repro.datasets import figure1_graph, load_instance
from repro.graphs import co_prune, write_edge_list, read_edge_list
from repro.kplex import grasp_kplex


class TestGatePipeline:
    def test_paper_walkthrough(self):
        """The full Section III story on the running example."""
        g = figure1_graph()
        rng = np.random.default_rng(0)
        # decision problem first ...
        decision = qtkp(g, 2, 4, rng=rng)
        assert decision.found
        # ... then the full optimisation ...
        full = qmkp(g, 2, rng=rng)
        assert full.size == 4
        # ... progressive answers surfaced along the way.
        assert full.first_result is not None

    def test_reduction_then_search_on_g10(self):
        g = load_instance("G_10_23")
        reduced = co_prune(g, 2, lower_bound=2)
        rng = np.random.default_rng(1)
        result = qmkp(reduced.graph, 2, rng=rng)
        back = reduced.translate_back(result.subset)
        assert is_kplex(g, back, 2)
        assert len(back) == maximum_kplex(g, 2).size


class TestAnnealingPipeline:
    def test_qubo_qpu_roundtrip(self):
        g = load_instance("D_10_40")
        qpu = SimulatedQPUSampler(hardware=chimera_graph(8), max_call_time_us=None)
        result = qamkp(g, 3, runtime_us=400, solver="qpu", qpu=qpu, seed=0)
        assert is_kplex(g, result.repaired, 3)
        assert result.info["num_physical_qubits"] >= build_mkp_qubo(g, 3).num_variables

    def test_budget_sweep_improves(self):
        g = load_instance("D_15_70")
        cheap = qamkp(g, 3, runtime_us=4, solver="sa", seed=2, sa_shot_cost_us=1.0)
        rich = qamkp(g, 3, runtime_us=4000, solver="sa", seed=2, sa_shot_cost_us=1.0)
        assert rich.cost <= cheap.cost


class TestFileWorkflow:
    def test_save_solve_verify(self, tmp_path):
        g = figure1_graph()
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        loaded, labels = read_edge_list(path)
        result = maximum_kplex(loaded, 2)
        original_ids = {labels[v] for v in result.subset}
        assert is_kplex(g, original_ids, 2)


class TestHeuristicVsExact:
    def test_grasp_within_optimum(self):
        g = load_instance("G_9_15")
        exact = maximum_kplex(g, 2).size
        heuristic = len(grasp_kplex(g, 2, iterations=15, seed=0))
        assert heuristic <= exact
        assert heuristic >= exact - 1  # near-optimal on small instances


class TestPublicApiSurface:
    def test_star_imports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_graph_reexport_identity(self):
        from repro import Graph as g1
        from repro.graphs import Graph as g2

        assert g1 is g2
