"""Unit tests for graph IO."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    from_adjacency_matrix,
    from_networkx,
    parse_edge_list,
    read_edge_list,
    to_adjacency_matrix,
    to_networkx,
    write_edge_list,
)


class TestParseEdgeList:
    def test_basic(self):
        g, labels = parse_edge_list("0 1\n1 2\n")
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert labels == {0: 0, 1: 1, 2: 2}

    def test_comments_and_blanks_ignored(self):
        g, _ = parse_edge_list("# header\n% alt comment\n\n0 1\n")
        assert g.num_edges == 1

    def test_noncontiguous_labels_compacted(self):
        g, labels = parse_edge_list("10 30\n30 20\n")
        assert g.num_vertices == 3
        assert labels == {0: 10, 1: 20, 2: 30}
        assert g.has_edge(0, 2)  # 10-30
        assert g.has_edge(1, 2)  # 20-30

    def test_self_loops_dropped(self):
        g, _ = parse_edge_list("0 0\n0 1\n")
        assert g.num_edges == 1

    def test_malformed_line(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_edge_list("0 1 2\n")

    def test_non_integer(self):
        with pytest.raises(ValueError, match="non-integer"):
            parse_edge_list("a b\n")


class TestFileRoundtrip:
    def test_write_then_read(self, tmp_path, fig1):
        path = tmp_path / "g.txt"
        write_edge_list(fig1, path)
        g, labels = read_edge_list(path)
        assert g == fig1
        assert labels == {v: v for v in range(6)}

    def test_header_written(self, tmp_path, fig1):
        path = tmp_path / "g.txt"
        write_edge_list(fig1, path, header=True)
        assert path.read_text().startswith("# n=6 m=7")


class TestAdjacencyMatrix:
    def test_roundtrip(self, fig1):
        assert from_adjacency_matrix(to_adjacency_matrix(fig1)) == fig1

    def test_matrix_symmetric(self, fig1):
        mat = to_adjacency_matrix(fig1)
        assert np.array_equal(mat, mat.T)
        assert mat.sum() == 2 * fig1.num_edges

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            from_adjacency_matrix(np.zeros((2, 3)))

    def test_rejects_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            from_adjacency_matrix(np.eye(3))

    def test_rejects_asymmetric(self):
        mat = np.zeros((3, 3))
        mat[0, 1] = 1
        with pytest.raises(ValueError, match="symmetric"):
            from_adjacency_matrix(mat)


class TestNetworkx:
    def test_roundtrip(self, fig1):
        nx_g = to_networkx(fig1)
        g, labels = from_networkx(nx_g)
        assert g == fig1

    def test_node_and_edge_counts(self, fig1):
        nx_g = to_networkx(fig1)
        assert nx_g.number_of_nodes() == 6
        assert nx_g.number_of_edges() == 7

    def test_from_networkx_string_labels(self):
        import networkx as nx

        nx_g = nx.Graph([("a", "b"), ("b", "c")])
        g, labels = from_networkx(nx_g)
        assert g.num_vertices == 3
        assert set(labels.values()) == {"a", "b", "c"}
