"""Unit tests for graph generators."""

import pytest

from repro.graphs import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnm_random_graph,
    gnp_random_graph,
    path_graph,
    planted_kplex_graph,
    star_graph,
)
from repro.kplex import is_kplex


class TestGnm:
    def test_exact_counts(self):
        g = gnm_random_graph(10, 23, seed=1)
        assert g.num_vertices == 10
        assert g.num_edges == 23

    def test_deterministic_given_seed(self):
        assert gnm_random_graph(8, 12, seed=5) == gnm_random_graph(8, 12, seed=5)

    def test_different_seeds_differ(self):
        graphs = {gnm_random_graph(10, 20, seed=s) for s in range(10)}
        assert len(graphs) > 1

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError, match="impossible"):
            gnm_random_graph(4, 7)

    def test_max_edges_is_complete(self):
        assert gnm_random_graph(5, 10, seed=0) == complete_graph(5)


class TestGnp:
    def test_p_zero_empty(self):
        assert gnp_random_graph(6, 0.0, seed=1).num_edges == 0

    def test_p_one_complete(self):
        assert gnp_random_graph(6, 1.0, seed=1) == complete_graph(6)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5)


class TestStructured:
    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices)

    def test_empty(self):
        assert empty_graph(4).num_edges == 0

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.vertices)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_star_needs_vertex(self):
        with pytest.raises(ValueError):
            star_graph(0)


class TestPlantedKplex:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_planted_set_is_kplex(self, k):
        g = planted_kplex_graph(12, 6, k, seed=7)
        assert is_kplex(g, range(6), k)

    def test_plex_size_bounds(self):
        with pytest.raises(ValueError):
            planted_kplex_graph(5, 6, 2)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            planted_kplex_graph(5, 3, 0)

    def test_deterministic(self):
        a = planted_kplex_graph(10, 5, 2, seed=3)
        b = planted_kplex_graph(10, 5, 2, seed=3)
        assert a == b


class TestBarabasiAlbert:
    def test_sizes(self):
        g = barabasi_albert_graph(20, 2, seed=1)
        assert g.num_vertices == 20
        # each of the n - m new vertices adds m edges
        assert g.num_edges <= 2 * 20

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 5)

    def test_deterministic(self):
        assert barabasi_albert_graph(15, 2, seed=4) == barabasi_albert_graph(15, 2, seed=4)

    def test_hub_emerges(self):
        g = barabasi_albert_graph(50, 2, seed=2)
        assert g.max_degree() >= 8  # preferential attachment grows hubs


class TestStochasticBlockModel:
    def test_sizes(self):
        from repro.graphs import stochastic_block_model

        g = stochastic_block_model([4, 5, 3], 0.9, 0.1, seed=1)
        assert g.num_vertices == 12

    def test_extreme_probabilities(self):
        from repro.graphs import stochastic_block_model

        g = stochastic_block_model([3, 3], 1.0, 0.0, seed=0)
        # two disjoint triangles
        assert g.num_edges == 6
        assert not g.has_edge(0, 3)
        assert g.has_edge(0, 1)

    def test_blocks_denser_than_background(self):
        from repro.graphs import stochastic_block_model

        g = stochastic_block_model([10, 10], 0.8, 0.05, seed=2)
        within = sum(
            1 for (u, v) in g.edges if (u < 10) == (v < 10)
        )
        between = g.num_edges - within
        assert within > between

    def test_validation(self):
        from repro.graphs import stochastic_block_model
        import pytest as _pytest

        with _pytest.raises(ValueError):
            stochastic_block_model([], 0.5, 0.5)
        with _pytest.raises(ValueError):
            stochastic_block_model([3], 1.5, 0.5)

    def test_deterministic(self):
        from repro.graphs import stochastic_block_model

        a = stochastic_block_model([4, 4], 0.7, 0.1, seed=9)
        b = stochastic_block_model([4, 4], 0.7, 0.1, seed=9)
        assert a == b
