"""Unit tests for the core-truss co-pruning reductions."""

import pytest

from repro.graphs import (
    Graph,
    co_prune,
    complete_graph,
    core_reduction,
    gnm_random_graph,
    star_graph,
    truss_reduction,
)
from repro.kplex import maximum_kplex_bruteforce


class TestCoreReduction:
    def test_no_removal_without_lower_bound(self, fig1):
        res = core_reduction(fig1, k=2, lower_bound=0)
        assert res.graph == fig1
        assert res.removed_vertices == []

    def test_removes_low_degree_vertices(self, fig1):
        # Looking for 2-plexes of size >= 5 requires degree >= 3; after
        # the cascade every surviving vertex meets the threshold.
        res = core_reduction(fig1, k=2, lower_bound=4)
        assert res.removed_vertices  # fig1 has degree-1 vertices
        assert all(res.graph.degree(v) >= 3 for v in res.graph.vertices)

    def test_cascade(self):
        # A path: peeling one endpoint cascades down the whole path.
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        res = core_reduction(g, k=1, lower_bound=2)  # need degree >= 2
        assert res.graph.num_vertices == 0

    def test_preserves_optimum_when_bound_below_opt(self, fig1):
        opt = maximum_kplex_bruteforce(fig1, 2)
        res = core_reduction(fig1, k=2, lower_bound=len(opt) - 1)
        reduced_opt = maximum_kplex_bruteforce(res.graph, 2)
        assert len(reduced_opt) == len(opt)

    def test_translate_back(self, fig1):
        res = core_reduction(fig1, k=2, lower_bound=3)
        sub = frozenset(range(res.graph.num_vertices))
        original = res.translate_back(sub)
        assert original == frozenset(res.kept_vertices)

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            core_reduction(fig1, k=0, lower_bound=1)


class TestTrussReduction:
    def test_star_edges_removed_for_large_bound(self):
        # Star edges have no common neighbours; demanding size >= 2k + 1
        # kills them all.
        g = star_graph(6)
        res = truss_reduction(g, k=1, lower_bound=3)
        assert res.graph.num_edges == 0

    def test_complete_graph_untouched(self):
        g = complete_graph(6)
        res = truss_reduction(g, k=1, lower_bound=4)
        # every edge of K6 has 4 common neighbours >= 5 - 2 = 3
        assert res.graph.num_edges == 15

    def test_safe_for_optimum(self):
        g = gnm_random_graph(9, 16, seed=3)
        opt = maximum_kplex_bruteforce(g, 2)
        res = truss_reduction(g, k=2, lower_bound=len(opt) - 1)
        assert len(maximum_kplex_bruteforce(res.graph, 2)) == len(opt)

    def test_invalid_k(self, fig1):
        with pytest.raises(ValueError):
            truss_reduction(fig1, k=0, lower_bound=1)


class TestCoPrune:
    def test_fixed_point_reached(self, fig1):
        res = co_prune(fig1, k=2, lower_bound=3)
        # Re-running on the result changes nothing.
        again = co_prune(res.graph, k=2, lower_bound=3)
        assert again.graph == res.graph

    def test_mapping_composes_correctly(self):
        g = gnm_random_graph(10, 14, seed=1)
        res = co_prune(g, k=2, lower_bound=3)
        # every kept vertex must map back to a vertex with the same
        # neighbourhood structure: spot-check edges.
        for (u, v) in res.graph.edges:
            assert g.has_edge(res.kept_vertices[u], res.kept_vertices[v])

    def test_preserves_optimum(self):
        for seed in range(4):
            g = gnm_random_graph(9, 14, seed=seed)
            opt = len(maximum_kplex_bruteforce(g, 2))
            res = co_prune(g, k=2, lower_bound=opt - 1)
            assert len(maximum_kplex_bruteforce(res.graph, 2)) == opt

    def test_removed_plus_kept_partition(self, fig1):
        res = co_prune(fig1, k=2, lower_bound=4)
        assert sorted(res.kept_vertices + res.removed_vertices) == list(range(6))
