"""Unit tests for connectivity and distance helpers."""

import pytest

from repro.graphs import (
    Graph,
    bfs_distances,
    connected_components,
    cycle_graph,
    diameter,
    is_connected,
    pairwise_distances,
    path_graph,
    subset_diameter,
)


class TestComponents:
    def test_single_component(self, fig1):
        comps = connected_components(fig1)
        assert len(comps) == 1
        assert comps[0] == frozenset(range(6))

    def test_two_components_sorted_by_size(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        comps = connected_components(g)
        assert [len(c) for c in comps] == [3, 2]

    def test_isolated_vertices(self):
        g = Graph(3)
        assert len(connected_components(g)) == 3

    def test_is_connected(self, fig1):
        assert is_connected(fig1)
        assert not is_connected(Graph(2))
        assert is_connected(Graph(0))


class TestDistances:
    def test_bfs_distances_path(self):
        g = path_graph(4)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_unreachable_absent(self):
        g = Graph(3, [(0, 1)])
        assert 2 not in bfs_distances(g, 0)

    def test_pairwise_symmetric_keys(self, fig1):
        dist = pairwise_distances(fig1)
        assert dist[(0, 5)] == 2  # v1 - v5 - v6
        assert all(u <= v for (u, v) in dist)

    def test_diameter_cycle(self):
        assert diameter(cycle_graph(6)) == 3

    def test_diameter_disconnected_raises(self):
        with pytest.raises(ValueError, match="disconnected"):
            diameter(Graph(3, [(0, 1)]))

    def test_diameter_empty_raises(self):
        with pytest.raises(ValueError):
            diameter(Graph(0))


class TestSubsetDiameter:
    def test_connected_subset(self, fig1):
        # {v1, v2, v4} induces a triangle: diameter 1.
        assert subset_diameter(fig1, {0, 1, 3}) == 1

    def test_disconnected_subset_none(self, fig1):
        # {v3, v6} are non-adjacent with no internal path.
        assert subset_diameter(fig1, {2, 5}) is None

    def test_distances_internal_only(self):
        # 0-1-2 path plus shortcut 0-3-2 outside the subset: within the
        # subset {0, 1, 2} the 0-2 distance must be 2 (not through 3).
        g = Graph(4, [(0, 1), (1, 2), (0, 3), (3, 2)])
        assert subset_diameter(g, {0, 1, 2}) == 2

    def test_empty_subset(self, fig1):
        assert subset_diameter(fig1, []) is None
