"""Unit tests for the core Graph type."""

import pytest

from repro.graphs import Graph, complete_graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices) == []

    def test_basic_counts(self):
        g = Graph(4, [(0, 1), (1, 2)])
        assert g.num_vertices == 4
        assert g.num_edges == 2

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(3, [(0, 3)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_edges_are_canonical_pairs(self):
        g = Graph(3, [(2, 0)])
        assert g.edges == frozenset({(0, 2)})


class TestAccessors:
    def test_degree(self, fig1):
        # v1 (index 0) is adjacent to v2..v5 in the paper's example.
        assert fig1.degree(0) == 4

    def test_degrees_list(self, fig1):
        assert fig1.degrees() == [4, 2, 1, 3, 3, 1]

    def test_max_degree(self, fig1):
        assert fig1.max_degree() == 4

    def test_max_degree_empty(self):
        assert Graph(0).max_degree() == 0

    def test_neighbors(self, fig1):
        assert fig1.neighbors(5) == frozenset({4})

    def test_has_edge_both_orientations(self, fig1):
        assert fig1.has_edge(0, 1)
        assert fig1.has_edge(1, 0)
        assert not fig1.has_edge(0, 5)

    def test_has_edge_self(self, fig1):
        assert not fig1.has_edge(2, 2)

    def test_contains_protocol(self, fig1):
        assert (0, 1) in fig1
        assert (0, 5) not in fig1

    def test_density_complete(self):
        assert complete_graph(5).density() == pytest.approx(1.0)

    def test_density_tiny(self):
        assert Graph(1).density() == 0.0

    def test_len_and_iter(self, fig1):
        assert len(fig1) == 6
        assert list(fig1) == [0, 1, 2, 3, 4, 5]


class TestDerivedGraphs:
    def test_complement_edge_count(self, fig1):
        comp = fig1.complement()
        assert comp.num_edges == 15 - fig1.num_edges

    def test_complement_involution(self, fig1):
        assert fig1.complement().complement() == fig1

    def test_complement_matches_paper_fig6(self, fig1):
        # The paper's Fig. 6 encodes complement edges e1..e8.
        expected = {(0, 5), (1, 5), (2, 5), (3, 5), (1, 4), (1, 2), (2, 4), (2, 3)}
        assert fig1.complement().edges == frozenset(expected)

    def test_induced_subgraph(self, fig1):
        sub = fig1.induced_subgraph([0, 1, 3])
        assert sub.num_vertices == 3
        # edges (0,1), (0,3), (1,3) all exist among v1, v2, v4
        assert sub.num_edges == 3

    def test_induced_subgraph_relabels_in_order(self, fig1):
        sub = fig1.induced_subgraph([5, 4])  # sorted -> [4, 5]
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)

    def test_induced_subgraph_out_of_range(self, fig1):
        with pytest.raises(ValueError):
            fig1.induced_subgraph([0, 99])

    def test_degree_in_subset(self, fig1):
        assert fig1.degree_in(0, {1, 3, 5}) == 2

    def test_remove_vertices_mapping(self, fig1):
        sub, kept = fig1.remove_vertices([0])
        assert kept == [1, 2, 3, 4, 5]
        assert sub.num_vertices == 5
        # edge (3,4) survives as (kept.index(3), kept.index(4)) = (2, 3)
        assert sub.has_edge(2, 3)


class TestBitmaskEncoding:
    def test_roundtrip(self, fig1):
        for mask in range(64):
            assert fig1.subset_to_bitmask(fig1.bitmask_to_subset(mask)) == mask

    def test_paper_example_state_36(self, fig1):
        # The paper encodes {v1, v4} as |100100> = 36 reading v1 as the
        # most significant position; our little-endian convention maps
        # {v1, v4} = {0, 3} to bitmask 0b001001 = 9.
        assert fig1.subset_to_bitmask({0, 3}) == 9

    def test_out_of_range_subset(self, fig1):
        with pytest.raises(ValueError):
            fig1.subset_to_bitmask({6})

    def test_out_of_range_mask(self, fig1):
        with pytest.raises(ValueError):
            fig1.bitmask_to_subset(64)


class TestEquality:
    def test_equal_graphs(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])

    def test_unequal_vertex_counts(self):
        assert Graph(3, [(0, 1)]) != Graph(4, [(0, 1)])

    def test_hashable(self):
        s = {Graph(3, [(0, 1)]), Graph(3, [(0, 1)])}
        assert len(s) == 1

    def test_repr(self, fig1):
        assert repr(fig1) == "Graph(n=6, m=7)"
