"""Memoized Graph derivations: fingerprint and complement caches.

Both are identity-keyed on the live ``_edges`` frozenset (plus ``_n``),
so a structurally identical graph built twice still agrees, while any
internal mutation — rebinding the edge set behind the public API's back
— invalidates the cached value instead of serving a stale one.  The
stale-after-mutation cases are regression tests for exactly that
failure mode.
"""

import hashlib

from repro.graphs import Graph


def _reference_fingerprint(graph: Graph) -> str:
    h = hashlib.sha256()
    h.update(f"n={graph.num_vertices};".encode())
    for u, v in sorted(graph.edges):
        h.update(f"{u},{v};".encode())
    return h.hexdigest()


def test_fingerprint_is_memoized():
    g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    first = g.fingerprint()
    # The second call must be served from the cache, not recomputed:
    # same value, and the cache tuple holds the live edge set.
    assert g.fingerprint() == first
    assert g._fingerprint_cache is not None
    assert g._fingerprint_cache[0] is g._edges
    assert g._fingerprint_cache[2] == first


def test_fingerprint_structural_equality_across_builds():
    edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
    a = Graph(5, edges)
    b = Graph(5, list(reversed(edges)))
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_stale_after_mutation():
    g = Graph(5, [(0, 1), (1, 2), (2, 3)])
    before = g.fingerprint()
    # Simulate an internal mutation (no public mutator exists; this is
    # the failure mode the identity key guards against).
    g._edges = frozenset({(0, 1), (1, 2)})
    after = g.fingerprint()
    assert after != before
    assert after == Graph(5, [(0, 1), (1, 2)]).fingerprint()
    assert after == _reference_fingerprint(g)


def test_complement_is_memoized_and_linked_back():
    g = Graph(5, [(0, 1), (1, 2), (3, 4)])
    comp = g.complement()
    # Cached: repeated calls return the same object, and the complement
    # pair is linked both ways without recomputation.
    assert g.complement() is comp
    assert comp.complement() is g


def test_complement_stale_after_mutation():
    g = Graph(4, [(0, 1), (2, 3)])
    first = g.complement()
    g._edges = frozenset({(0, 1)})
    second = g.complement()
    assert second is not first
    assert second == Graph(4, [(0, 1)]).complement()
    # And the fresh complement is itself correct: edge iff missing in g.
    for u in range(4):
        for v in range(u + 1, 4):
            assert second.has_edge(u, v) == (not g.has_edge(u, v))


def test_complement_cache_survives_hash_and_equality():
    g = Graph(4, [(0, 1)])
    comp = g.complement()
    same = Graph(4, [(0, 1)])
    assert g == same and hash(g) == hash(same)
    # A structurally equal graph built separately computes its own
    # complement (identity-keyed, not equality-keyed) but agrees on it.
    assert same.complement() == comp
