"""Fleet-shared marked-set store: crash-safe publish, zero-copy attach.

The contracts under test, in the order the tentpole states them:

* **Byte identity** — an attached table is indistinguishable from the
  table the publisher built (``_by_size`` bytes, dtype, ``_offsets``),
  and a qMKP solve off a shared hit matches a cold solve bit for bit
  (hypothesis-driven).
* **Never a torn read** — truncated, corrupted, foreign, or mid-publish
  leftover files are rejected and the reader falls back to local
  enumeration; a SIGKILL during publish (before the atomic rename)
  leaves the old segment or nothing.
* **Structural keying** — segments key on ``Graph.fingerprint()``, so
  structurally identical graphs share one segment while different
  structures (or a different ``k``) never collide.
* **Bounded attachments** — long-lived readers keep at most
  ``max_attached`` mappings alive (LRU), correctness unaffected.
* **Concurrency** — threaded and multiprocess attach/publish races
  converge on one valid segment with every reader byte-identical.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import qmkp
from repro.graphs import Graph, gnm_random_graph
from repro.obs import RunLedger, Tracer
from repro.perf import (
    PUBLISH_KILL_ENV,
    MarkedSetCache,
    MarkedSetTable,
    SharedTableStore,
)


def tables_identical(a: MarkedSetTable, b: MarkedSetTable) -> bool:
    return (
        a.num_vertices == b.num_vertices
        and np.array_equal(a._by_size, b._by_size)
        and a._by_size.dtype == b._by_size.dtype
        and np.array_equal(a._offsets, b._offsets)
        and a._offsets.dtype == b._offsets.dtype
    )


@pytest.fixture()
def store(tmp_path: Path) -> SharedTableStore:
    return SharedTableStore(tmp_path / "store")


class TestRoundTrip:
    def test_publish_then_attach_is_byte_identical(self, store):
        graph = gnm_random_graph(10, 24, seed=3)
        table = MarkedSetCache().table(graph, 2)
        assert store.publish(graph.fingerprint(), 2, table)
        attached = store.attach(graph.fingerprint(), 2)
        assert attached is not None
        assert tables_identical(attached, table)

    def test_attach_is_zero_copy_memmap(self, store):
        graph = gnm_random_graph(9, 16, seed=1)
        table = MarkedSetCache().table(graph, 2)
        store.publish(graph.fingerprint(), 2, table)
        attached = store.attach(graph.fingerprint(), 2)
        assert isinstance(attached._by_size, np.memmap)

    def test_attach_missing_key_returns_none(self, store):
        assert store.attach("0" * 64, 2) is None
        assert store.torn_rejected == 0  # absence is not a torn read

    def test_second_publish_skips(self, store):
        graph = gnm_random_graph(8, 12, seed=2)
        table = MarkedSetCache().table(graph, 2)
        assert store.publish(graph.fingerprint(), 2, table)
        assert not store.publish(graph.fingerprint(), 2, table)
        assert store.publishes == 1

    def test_empty_table_roundtrip(self, store):
        empty = MarkedSetTable(
            6, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert store.publish("f" * 64, 3, empty)
        attached = store.attach("f" * 64, 3)
        assert attached is not None
        assert attached.num_marked == 0
        assert tables_identical(attached, empty)

    def test_generation_bumps_on_publish(self, store, tmp_path):
        graph = gnm_random_graph(8, 12, seed=2)
        table = MarkedSetCache().table(graph, 2)
        fp = graph.fingerprint()
        assert store.generation(fp, 2) == 0
        store.publish(fp, 2, table)
        assert store.generation(fp, 2) == 1


class TestCacheTier:
    def test_miss_attach_hit_order(self, tmp_path):
        graph = gnm_random_graph(10, 30, seed=4)
        first = MarkedSetCache(shared=SharedTableStore(tmp_path))
        t1 = first.table(graph, 2)
        assert first.stats()["shared_publishes"] == 1
        assert first.stats()["shared_misses"] == 1

        second = MarkedSetCache(shared=SharedTableStore(tmp_path))
        t2 = second.table(graph, 2)
        stats = second.stats()
        assert stats["misses"] == 1  # local miss, as ever
        assert stats["shared_hits"] == 1  # ...served by the fleet
        assert stats["shared_publishes"] == 0
        assert tables_identical(t1, t2)

        # Third call inside the same process is a plain local hit.
        second.table(graph, 2)
        assert second.stats()["hits"] == 1

    def test_stats_keys_absent_without_shared(self):
        cache = MarkedSetCache()
        assert "shared_hits" not in cache.stats()

    def test_reader_falls_back_when_store_empty(self, tmp_path):
        graph = gnm_random_graph(9, 20, seed=5)
        cache = MarkedSetCache(shared=SharedTableStore(tmp_path))
        table = cache.table(graph, 2)
        fresh = MarkedSetCache().table(graph, 2)
        assert tables_identical(table, fresh)

    def test_patch_republishes(self, tmp_path):
        from repro.dynamic import DynamicGraph

        graph = gnm_random_graph(9, 14, seed=6)
        dg = DynamicGraph(graph)
        cache = MarkedSetCache(shared=SharedTableStore(tmp_path))
        cache.table(dg.snapshot(), 2)
        old = dg.snapshot()
        dg.add_edge(0, 1) if not graph.has_edge(0, 1) else dg.remove_edge(0, 1)
        new = dg.snapshot()
        op = "add_edge" if not graph.has_edge(0, 1) else "remove_edge"
        cache.patch(old, new, 2, op, 0, 1)
        assert cache.stats()["shared_publishes"] == 2

        # A sibling worker attaches the patched table instead of sweeping.
        sibling = MarkedSetCache(shared=SharedTableStore(tmp_path))
        attached = sibling.table(new, 2)
        assert sibling.stats()["shared_hits"] == 1
        assert tables_identical(attached, MarkedSetCache().table(new, 2))

    def test_patch_attaches_old_table_from_fleet(self, tmp_path):
        """A worker that never built the pre-edit table still patches."""
        from repro.dynamic import DynamicGraph

        graph = gnm_random_graph(9, 14, seed=7)
        publisher = MarkedSetCache(shared=SharedTableStore(tmp_path))
        publisher.table(graph, 2)

        dg = DynamicGraph(graph)
        old = dg.snapshot()
        u, v = next(
            (u, v)
            for u in range(9)
            for v in range(u + 1, 9)
            if not graph.has_edge(u, v)
        )
        dg.add_edge(u, v)
        new = dg.snapshot()
        cold_cache = MarkedSetCache(shared=SharedTableStore(tmp_path))
        patched = cold_cache.patch(old, new, 2, "add_edge", u, v)
        assert patched is not None
        assert cold_cache.stats()["shared_hits"] == 1
        assert tables_identical(patched, MarkedSetCache().table(new, 2))


class TestTornSegments:
    def _published(self, store):
        graph = gnm_random_graph(10, 22, seed=8)
        table = MarkedSetCache().table(graph, 2)
        fp = graph.fingerprint()
        store.publish(fp, 2, table)
        return graph, table, fp, store.segment_path(fp, 2)

    def test_truncated_segment_rejected(self, store):
        _, _, fp, path = self._published(store)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.attach(fp, 2) is None
        assert store.torn_rejected == 1

    def test_bad_magic_rejected(self, store):
        _, _, fp, path = self._published(store)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"XXXX"
        path.write_bytes(bytes(raw))
        assert store.attach(fp, 2) is None
        assert store.torn_rejected == 1

    def test_missing_trailer_rejected(self, store):
        _, _, fp, path = self._published(store)
        raw = bytearray(path.read_bytes())
        raw[-8:] = b"\0" * 8
        path.write_bytes(bytes(raw))
        assert store.attach(fp, 2) is None

    def test_garbage_file_rejected_and_reader_falls_back(self, store):
        graph = gnm_random_graph(9, 18, seed=9)
        fp = graph.fingerprint()
        store.segment_path(fp, 2).write_bytes(os.urandom(256))
        cache = MarkedSetCache(shared=store)
        table = cache.table(graph, 2)  # degrades to a local sweep
        assert cache.stats()["shared_misses"] == 1
        assert tables_identical(table, MarkedSetCache().table(graph, 2))

    def test_publish_overwrites_torn_leftover(self, store):
        graph, table, fp, path = self._published(store)
        path.write_bytes(b"torn")
        assert store.publish(fp, 2, table)  # validity check fails -> rewrite
        attached = store.attach(fp, 2)
        assert attached is not None and tables_identical(attached, table)

    def test_foreign_fingerprint_rejected(self, store):
        graph, table, fp, path = self._published(store)
        other = "0" * 64
        path.rename(store.segment_path(other, 2))
        assert store.attach(other, 2) is None
        assert store.torn_rejected == 1

    def test_wrong_k_never_served(self, store):
        graph, table, fp, path = self._published(store)
        assert store.attach(fp, 3) is None


class TestStructuralKeying:
    def test_structurally_equal_graphs_share_a_segment(self, tmp_path):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        a = Graph(5, edges)
        b = Graph(5, [(v, u) for u, v in reversed(edges)])
        first = MarkedSetCache(shared=SharedTableStore(tmp_path))
        first.table(a, 2)
        second = MarkedSetCache(shared=SharedTableStore(tmp_path))
        second.table(b, 2)
        assert second.stats()["shared_hits"] == 1
        assert len(SharedTableStore(tmp_path)) == 1

    def test_different_structures_get_distinct_segments(self, tmp_path):
        a = gnm_random_graph(8, 10, seed=1)
        b = gnm_random_graph(8, 10, seed=2)
        cache = MarkedSetCache(shared=SharedTableStore(tmp_path))
        cache.table(a, 2)
        cache.table(b, 2)
        assert cache.stats()["shared_publishes"] == 2
        assert len(SharedTableStore(tmp_path)) == 2

    def test_same_graph_different_k_distinct(self, tmp_path):
        g = gnm_random_graph(8, 14, seed=3)
        cache = MarkedSetCache(shared=SharedTableStore(tmp_path))
        t2 = cache.table(g, 2)
        t3 = cache.table(g, 3)
        assert cache.stats()["shared_publishes"] == 2
        assert not tables_identical(t2, t3)


class TestAttachmentLRU:
    def test_eviction_keeps_store_usable(self, tmp_path):
        store = SharedTableStore(tmp_path, max_attached=2)
        graphs = [gnm_random_graph(8, 12, seed=s) for s in range(4)]
        tables = {}
        for g in graphs:
            t = MarkedSetCache().table(g, 2)
            tables[g.fingerprint()] = t
            store.publish(g.fingerprint(), 2, t)
        for g in graphs:
            attached = store.attach(g.fingerprint(), 2)
            assert tables_identical(attached, tables[g.fingerprint()])
            assert store.stats()["attached_entries"] <= 2
        # Re-attaching an evicted key re-maps it, still byte-identical.
        first = graphs[0]
        attached = store.attach(first.fingerprint(), 2)
        assert tables_identical(attached, tables[first.fingerprint()])

    def test_cached_attachment_is_reused(self, store):
        g = gnm_random_graph(8, 12, seed=5)
        store.publish(g.fingerprint(), 2, MarkedSetCache().table(g, 2))
        a = store.attach(g.fingerprint(), 2)
        b = store.attach(g.fingerprint(), 2)
        assert a is b  # same generation -> same mapping, no re-open


class TestMidPublishKill:
    def test_sigkilled_publisher_leaves_nothing_torn(self, tmp_path):
        """A writer killed between fsync and rename publishes nothing."""
        script = f"""
import os
os.environ[{PUBLISH_KILL_ENV!r}] = "1"
from repro.graphs import gnm_random_graph
from repro.perf import MarkedSetCache, SharedTableStore
cache = MarkedSetCache(shared=SharedTableStore({str(tmp_path)!r}))
cache.table(gnm_random_graph(9, 20, seed=11), 2)
print("unreachable")
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        ) + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == -signal.SIGKILL
        store = SharedTableStore(tmp_path)
        assert len(store) == 0  # no visible segment, torn or otherwise
        graph = gnm_random_graph(9, 20, seed=11)
        assert store.attach(graph.fingerprint(), 2) is None

        # Readers degrade to a local sweep; the next publisher succeeds.
        cache = MarkedSetCache(shared=store)
        table = cache.table(graph, 2)
        assert cache.stats() == {
            "hits": 0, "misses": 1, "patches": 0, "reused_partitions": 0,
            "entries": 1, "shared_hits": 0, "shared_misses": 1,
            "shared_publishes": 1,
        }
        assert tables_identical(table, MarkedSetCache().table(graph, 2))


class TestConcurrency:
    def test_threaded_attach_publish_race(self, tmp_path):
        graph = gnm_random_graph(10, 26, seed=12)
        reference = MarkedSetCache().table(graph, 2)
        results, errors = [], []

        def worker():
            try:
                cache = MarkedSetCache(shared=SharedTableStore(tmp_path))
                results.append(cache.table(graph, 2))
            except Exception as exc:  # noqa: BLE001 — fail the test below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8
        for table in results:
            assert tables_identical(table, reference)
        assert len(SharedTableStore(tmp_path)) == 1

    def test_multiprocess_publish_then_attach(self, tmp_path):
        """A segment published by another OS process attaches cleanly."""
        script = f"""
from repro.graphs import gnm_random_graph
from repro.perf import MarkedSetCache, SharedTableStore
cache = MarkedSetCache(shared=SharedTableStore({str(tmp_path)!r}))
cache.table(gnm_random_graph(10, 26, seed=13), 2)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        ) + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == 0, proc.stderr.decode()
        graph = gnm_random_graph(10, 26, seed=13)
        cache = MarkedSetCache(shared=SharedTableStore(tmp_path))
        table = cache.table(graph, 2)
        assert cache.stats()["shared_hits"] == 1
        assert tables_identical(table, MarkedSetCache().table(graph, 2))


class TestSolveByteIdentity:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=10),
        k=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_shared_hit_solve_matches_cold_solve(self, tmp_path_factory, n, k, seed):
        root = tmp_path_factory.mktemp("shared")
        rng = np.random.default_rng(seed)
        m = int(rng.integers(0, n * (n - 1) // 2 + 1))
        graph = gnm_random_graph(n, m, seed=seed % 997)

        cold = qmkp(graph, k, rng=np.random.default_rng(seed))

        publisher = MarkedSetCache(shared=SharedTableStore(root))
        publisher.table(graph, k)

        tracer = Tracer()
        warm_cache = MarkedSetCache(shared=SharedTableStore(root))
        warm = qmkp(
            graph, k, rng=np.random.default_rng(seed),
            cache=warm_cache, tracer=tracer,
        )
        assert warm.subset == cold.subset
        assert warm.oracle_calls == cold.oracle_calls
        assert warm.gate_units == cold.gate_units
        assert warm.progression == cold.progression
        assert warm_cache.stats()["shared_hits"] >= 1
        assert not RunLedger.from_tracer(tracer).verify(raise_on_drift=False)
