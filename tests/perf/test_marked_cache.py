"""Cross-threshold caching: bit-identical results, one sweep.

The contract the whole perf subsystem rests on: a
:class:`MarkedSetCache`-backed pipeline returns byte-identical subsets,
oracle-call counts, and gate units to the per-probe predicate-scan
path, while evaluating the k-cplex property exactly once per
``(graph, k)``.
"""

import numpy as np
import pytest

from repro.core import qmkp, qtkp
from repro.core.subset_search import grover_maximum_subset, maximum_clique_quantum
from repro.graphs import Graph, gnm_random_graph
from repro.grover import PhaseOracleGrover
from repro.perf import MarkedSetCache, MarkedSetTable, PredicateMaskCache, kplex_masks


class TestMarkedSetTable:
    def setup_method(self):
        self.graph = gnm_random_graph(8, 15, seed=1)
        masks, sizes = kplex_masks(self.graph, 2)
        self.masks, self.sizes = masks, sizes
        self.table = MarkedSetTable(8, masks, sizes)

    def test_suffix_counts(self):
        for t in range(10):
            assert self.table.count_at_least(t) == int(np.sum(self.sizes >= t))
        assert self.table.count_at_least(0) == self.table.num_marked
        assert self.table.count_at_least(99) == 0

    def test_masks_at_least_matches_filter(self):
        for t in range(10):
            want = sorted(int(m) for m, s in zip(self.masks, self.sizes) if s >= t)
            assert sorted(int(m) for m in self.table.masks_at_least(t)) == want

    def test_histogram_and_max_size(self):
        hist = self.table.size_histogram()
        assert int(hist.sum()) == self.table.num_marked
        assert self.table.max_marked_size() == int(np.max(self.sizes))

    def test_empty_table(self):
        table = MarkedSetTable(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert table.num_marked == 0
        assert table.max_marked_size() == -1
        assert table.masks_at_least(0).size == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MarkedSetTable(3, np.array([1, 2]), np.array([1]))


class TestMarkedSetCache:
    def test_one_sweep_per_graph_k(self):
        cache = MarkedSetCache()
        graph = gnm_random_graph(7, 12, seed=2)
        for threshold in range(5):
            cache.marked(graph, 2, threshold)
        assert cache.stats() == {
            "hits": 4, "misses": 1, "patches": 0,
            "reused_partitions": 0, "entries": 1,
        }
        cache.marked(graph, 3, 1)
        assert cache.stats()["misses"] == 2

    def test_lru_eviction(self):
        cache = MarkedSetCache(max_entries=2)
        graphs = [gnm_random_graph(5, 6, seed=s) for s in range(3)]
        for g in graphs:
            cache.table(g, 2)
        assert len(cache) == 2
        cache.table(graphs[0], 2)  # evicted -> recomputed
        assert cache.misses == 4

    def test_peek_bumps_recency_without_charging(self):
        # Regression: peek() used to read the entry without touching
        # LRU order, so the adaptive ladder's hottest table — consulted
        # exclusively through peeks — was evicted by unrelated table()
        # inserts.  A peek-hit must refresh recency yet stay invisible
        # to the hit/miss counters (it answers for free by contract).
        cache = MarkedSetCache(max_entries=2)
        hot = gnm_random_graph(5, 6, seed=20)
        cold = gnm_random_graph(5, 6, seed=21)
        cache.table(hot, 2)
        cache.table(cold, 2)  # `hot` is now the LRU entry
        before = cache.stats()
        assert cache.peek(hot, 2, 0) is not None
        assert cache.stats() == before  # no hit, no miss, no sweep
        cache.table(gnm_random_graph(5, 6, seed=22), 2)
        # The peeked-at table survived; the unpeeked one was evicted.
        assert cache.peek(hot, 2, 0) is not None
        assert cache.peek(cold, 2, 0) is None
        assert cache.misses == 3

    def test_peek_miss_is_free_and_triggers_nothing(self):
        cache = MarkedSetCache()
        assert cache.peek(gnm_random_graph(4, 3, seed=23), 2, 0) is None
        assert cache.stats()["entries"] == 0
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MarkedSetCache(max_entries=0)

    def test_structurally_equal_graphs_share_one_table(self):
        # Keying on the structural fingerprint (not the object) means a
        # graph rebuilt from the same edge list — or round-tripped
        # through IO — hits the first graph's table.
        cache = MarkedSetCache()
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        first = Graph(5, edges)
        rebuilt = Graph(5, list(reversed(edges)))
        a = cache.table(first, 2)
        b = cache.table(rebuilt, 2)
        assert b is a
        assert cache.stats() == {
            "hits": 1, "misses": 1, "patches": 0,
            "reused_partitions": 0, "entries": 1,
        }

    def test_mutated_graph_does_not_serve_stale_table(self):
        # Regression: keying on the graph object let a graph whose
        # internals changed after insertion keep serving the marked set
        # of its *old* structure.  The fingerprint is recomputed from
        # the live edge set at every lookup, so mutation forces a fresh
        # sweep.
        cache = MarkedSetCache()
        graph = gnm_random_graph(6, 8, seed=11)
        stale = cache.table(graph, 2)
        # Simulate in-place structural mutation (the class is immutable
        # by convention only): overwrite every slot with the state of a
        # graph missing two edges.
        mutated = Graph(6, sorted(graph.edges)[:-2])
        for slot in ("_n", "_adj", "_edges", "_hash", "_adj_masks"):
            object.__setattr__(graph, slot, getattr(mutated, slot))
        fresh = cache.table(graph, 2)
        assert fresh is not stale
        assert cache.misses == 2
        # And the fresh table really reflects the mutated edge set.
        want_masks, _ = kplex_masks(mutated, 2)
        assert np.array_equal(
            np.sort(fresh.masks_at_least(0)), np.sort(want_masks)
        )


class TestQmkpEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_cached_byte_identical(self, seed, k):
        graph = gnm_random_graph(9, 20, seed=seed)
        base = qmkp(graph, k, rng=np.random.default_rng(42), use_cache=False)
        fast = qmkp(graph, k, rng=np.random.default_rng(42), use_cache=True)
        assert fast.subset == base.subset
        assert fast.oracle_calls == base.oracle_calls
        assert fast.gate_units == base.gate_units
        assert fast.qtkp_calls == base.qtkp_calls
        assert fast.progression == base.progression
        assert fast.oracle_costs_total == base.oracle_costs_total

    def test_shared_cache_across_runs(self):
        graph = gnm_random_graph(8, 16, seed=3)
        cache = MarkedSetCache()
        first = qmkp(graph, 2, rng=np.random.default_rng(7), cache=cache)
        misses = cache.misses
        second = qmkp(graph, 2, rng=np.random.default_rng(7), cache=cache)
        assert cache.misses == misses  # table reused across runs
        assert second.subset == first.subset

    def test_reduce_first_still_identical(self):
        graph = gnm_random_graph(10, 18, seed=4)
        base = qmkp(graph, 2, reduce_first=True,
                    rng=np.random.default_rng(9), use_cache=False)
        fast = qmkp(graph, 2, reduce_first=True,
                    rng=np.random.default_rng(9), use_cache=True)
        assert fast.subset == base.subset
        assert fast.oracle_calls == base.oracle_calls

    def test_bbht_counting_identical(self):
        graph = gnm_random_graph(8, 14, seed=5)
        base = qtkp(graph, 2, 3, counting="bbht", rng=np.random.default_rng(3))
        fast = qtkp(graph, 2, 3, counting="bbht",
                    rng=np.random.default_rng(3), cache=MarkedSetCache())
        assert fast.subset == base.subset
        assert fast.oracle_calls == base.oracle_calls


class TestSubsetSearchCache:
    def test_predicate_cache_matches_scan(self):
        graph = gnm_random_graph(7, 13, seed=6)

        def sparse(subset):
            members = sorted(subset)
            internal = sum(
                1 for i, u in enumerate(members) for v in members[i + 1:]
                if graph.has_edge(u, v)
            )
            return internal <= len(members)

        cache = PredicateMaskCache(graph, sparse)
        for t in range(1, 8):
            want = [
                m for m in range(1 << 7)
                if m.bit_count() >= t and sparse(graph.bitmask_to_subset(m))
            ]
            assert sorted(int(x) for x in cache.marked(t)) == want

    def test_maximum_subset_identical(self):
        graph = gnm_random_graph(8, 18, seed=7)

        def is_clique(subset):
            members = sorted(subset)
            return all(
                graph.has_edge(u, v)
                for i, u in enumerate(members) for v in members[i + 1:]
            )

        base = grover_maximum_subset(
            graph, is_clique, rng=np.random.default_rng(11), use_cache=False
        )
        fast = grover_maximum_subset(
            graph, is_clique, rng=np.random.default_rng(11), use_cache=True
        )
        assert fast.subset == base.subset
        assert fast.oracle_calls == base.oracle_calls
        assert [p.num_marked for p in fast.probes] == [p.num_marked for p in base.probes]

    def test_wrapper_uses_cache_by_default(self):
        graph = gnm_random_graph(7, 14, seed=8)
        result = maximum_clique_quantum(graph, rng=np.random.default_rng(2))
        assert result.size >= 2


class TestMarkedArrayOracleForm:
    def test_ndarray_equals_predicate_engine(self):
        graph = gnm_random_graph(8, 16, seed=9)
        masks, sizes = kplex_masks(graph, 2)
        marked = masks[sizes >= 3]
        from repro.core.oracle import KCplexOracle

        oracle = KCplexOracle(graph.complement(), 2, 3)
        slow = PhaseOracleGrover(8, oracle.predicate)
        fast = PhaseOracleGrover(8, marked)
        assert fast.marked == slow.marked
        iters = slow.optimal_iterations()
        assert np.array_equal(fast.run(iters).amplitudes, slow.run(iters).amplitudes)

    def test_ndarray_validation(self):
        with pytest.raises(ValueError):
            PhaseOracleGrover(3, np.array([9]))
        with pytest.raises(ValueError):
            PhaseOracleGrover(3, np.array([-1]))
        with pytest.raises(ValueError):
            PhaseOracleGrover(3, np.array([0.5]))

    def test_ndarray_deduplicated(self):
        engine = PhaseOracleGrover(3, np.array([1, 1, 5]))
        assert engine.marked == frozenset({1, 5})
