"""The bit-parallel enumerator IS the oracle predicate, vectorized.

Property tests tying :mod:`repro.perf.bitparallel` to the library's two
classical ground truths: ``KCplexOracle.predicate`` (direct graph
evaluation) and ``KCplexOracle.classical_eval`` (bit-level execution of
the constructed circuit) — on arbitrary small graphs, for every
``(k, T)``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import KCplexOracle
from repro.graphs import Graph, gnm_random_graph
from repro.perf import MAX_VERTICES, kcplex_masks, kplex_masks, popcount_u64


@st.composite
def graphs_with_k(draw, max_n=6):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    k = draw(st.integers(min_value=1, max_value=3))
    return Graph(n, edges), k


class TestPopcount:
    def test_matches_bit_count(self, rng):
        values = rng.integers(0, 1 << 63, size=500, dtype=np.uint64)
        expected = [int(v).bit_count() for v in values]
        assert popcount_u64(values).tolist() == expected

    def test_swar_fallback_matches(self, rng, monkeypatch):
        values = rng.integers(0, 1 << 63, size=500, dtype=np.uint64)
        native = popcount_u64(values)
        if hasattr(np, "bitwise_count"):
            monkeypatch.delattr(np, "bitwise_count")
        assert popcount_u64(values).tolist() == native.tolist()

    def test_boundary_words(self):
        values = np.array([0, 1, (1 << 64) - 1, 0xAAAAAAAAAAAAAAAA], dtype=np.uint64)
        assert popcount_u64(values).tolist() == [0, 1, 64, 32]


class TestEnumeratorAgreement:
    @given(graphs_with_k())
    @settings(max_examples=40, deadline=None)
    def test_kplex_masks_match_predicate_for_all_k_t(self, instance):
        graph, k = instance
        n = graph.num_vertices
        oracle = KCplexOracle(graph.complement(), k, 0)
        expected = [m for m in range(1 << n) if oracle.predicate(m)]
        masks, sizes = kplex_masks(graph, k)
        assert masks.tolist() == expected
        assert sizes.tolist() == [m.bit_count() for m in expected]
        for threshold in range(n + 1):
            thresholded = KCplexOracle(graph.complement(), k, threshold)
            want = [m for m in range(1 << n) if thresholded.predicate(m)]
            assert [m for m, s in zip(masks.tolist(), sizes.tolist()) if s >= threshold] == want

    @given(graphs_with_k(max_n=4))
    @settings(max_examples=15, deadline=None)
    def test_kplex_masks_match_circuit_eval(self, instance):
        graph, k = instance
        n = graph.num_vertices
        oracle = KCplexOracle(graph.complement(), k, 0)
        expected = [m for m in range(1 << n) if oracle.classical_eval(m)]
        assert kplex_masks(graph, k)[0].tolist() == expected

    def test_kcplex_is_kplex_of_complement(self):
        graph = gnm_random_graph(7, 12, seed=2)
        for k in (1, 2, 3):
            direct, _ = kcplex_masks(graph, k)
            via_complement, _ = kplex_masks(graph.complement(), k)
            assert np.array_equal(direct, via_complement)


class TestChunkingAndWorkers:
    def test_chunk_size_invariance(self):
        graph = gnm_random_graph(8, 14, seed=5)
        reference, ref_sizes = kplex_masks(graph, 2)
        for chunk in (1, 7, 64, 1 << 8):
            masks, sizes = kplex_masks(graph, 2, chunk_masks=chunk)
            assert np.array_equal(masks, reference)
            assert np.array_equal(sizes, ref_sizes)

    def test_workers_invariance(self):
        graph = gnm_random_graph(9, 18, seed=6)
        reference, _ = kplex_masks(graph, 2)
        masks, _ = kplex_masks(graph, 2, chunk_masks=1 << 6, workers=2)
        assert np.array_equal(masks, reference)

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            kplex_masks(gnm_random_graph(4, 3, seed=0), 2, chunk_masks=0)


class TestGuards:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            kplex_masks(gnm_random_graph(4, 3, seed=0), 0)

    def test_width_ceiling(self):
        with pytest.raises(ValueError):
            kplex_masks(Graph(MAX_VERTICES + 1), 2)


class TestDegreeInMask:
    def test_matches_degree_in(self, rng):
        graph = gnm_random_graph(9, 17, seed=11)
        for _ in range(50):
            mask = int(rng.integers(0, 1 << 9))
            subset = graph.bitmask_to_subset(mask)
            for v in graph.vertices:
                assert graph.degree_in_mask(v, mask) == graph.degree_in(v, subset)

    def test_complement_adjacency_masks(self):
        graph = gnm_random_graph(8, 13, seed=4)
        comp = graph.complement()
        assert graph.complement_adjacency_masks() == comp.adjacency_masks()
