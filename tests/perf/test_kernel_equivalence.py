"""Byte-identity of the compiled kernel tier against the NumPy reference.

The contract that makes ``--kernel`` safe to flip in production: every
backend — NumPy reference, numba JIT, C extension — produces the *same
bytes* for the three hot loops (bit-parallel mask enumeration, CSR
Metropolis sweep, batched tabu descent), for any input, any chunking,
and any replica batch shape.  Hypothesis draws half-integer
coefficients, for which every float64 field/energy is exact regardless
of summation order, so "byte-identical" is deterministic here, not
probabilistic.

Backends that cannot construct in this environment (no numba package,
no C compiler) are skip-marked, never failed: the tier is an
accelerator, not a dependency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import BinaryQuadraticModel, SimulatedAnnealingSampler
from repro.graphs import Graph
from repro.perf.anneal import SweepPlan, build_sweep_plan, sa_sweep, tabu_descend
from repro.perf.bitparallel import kplex_masks
from repro.perf.kernels import (
    KERNEL_NAMES,
    NumpyKernels,
    available_backends,
    pack_sweep_plan,
    resolve,
)

AVAILABLE = available_backends()

#: Every known tier, skip-marked when the environment can't build it.
ALL_BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in AVAILABLE
        else pytest.mark.skip(reason=f"kernel backend {name!r} unavailable"),
    )
    for name in KERNEL_NAMES
]
#: The compiled tiers only (equivalence against the reference).
COMPILED = [p for p in ALL_BACKENDS if p.values[0] != "numpy"]


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def graphs(draw, max_n=9):
    n = draw(st.integers(min_value=2, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    return Graph(n, edges)


@st.composite
def bqms(draw, max_n=14):
    n = draw(st.integers(min_value=2, max_value=max_n))
    bqm = BinaryQuadraticModel()
    for v in range(n):
        bqm.add_linear(v, draw(st.integers(-6, 6)) / 2)
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for u, v in draw(st.lists(st.sampled_from(pairs), unique=True)):
        bqm.add_quadratic(u, v, draw(st.integers(-6, 6)) / 2)
    return bqm


def _sweep_inputs(bqm, reads, seed):
    csr = bqm.to_csr()
    rng = np.random.default_rng(seed)
    n = csr.h.size
    spins = np.ascontiguousarray(rng.choice([-1.0, 1.0], size=(n, reads)))
    uniforms = np.ascontiguousarray(rng.random((n, reads)))
    return csr, spins, uniforms


# ----------------------------------------------------------------------
# Enumeration kernel
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", COMPILED)
@settings(max_examples=40, deadline=None)
@given(graph=graphs(), k=st.integers(1, 3))
def test_kplex_masks_byte_identical(backend, graph, k):
    ref_masks, ref_sizes = kplex_masks(graph, k, kernel="numpy")
    got_masks, got_sizes = kplex_masks(graph, k, kernel=backend)
    assert got_masks.tobytes() == ref_masks.tobytes()
    assert got_sizes.tobytes() == ref_sizes.tobytes()


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_kplex_masks_chunk_size_invariant(backend):
    rng = np.random.default_rng(11)
    n = 10
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.5
    ]
    graph = Graph(n, edges)
    reference = None
    for chunk in (8, 64, 256, 1 << n):
        masks, sizes = kplex_masks(
            graph, 2, chunk_masks=chunk, kernel=backend
        )
        outcome = (masks.tobytes(), sizes.tobytes())
        if reference is None:
            reference = outcome
        else:
            assert outcome == reference


# ----------------------------------------------------------------------
# SA sweep kernel
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", COMPILED)
@settings(max_examples=30, deadline=None)
@given(bqm=bqms(), reads=st.integers(1, 7), seed=st.integers(0, 99))
def test_sa_sweep_byte_identical(backend, bqm, reads, seed):
    csr, spins, uniforms = _sweep_inputs(bqm, reads, seed)
    plan = build_sweep_plan(
        csr.h, csr.indptr, csr.indices, csr.data, csr.row_sums, 5
    )
    ref = spins.copy()
    ref_flips = sa_sweep(plan, ref, 0.7, uniforms, kernel="numpy")
    got = spins.copy()
    got_flips = sa_sweep(plan, got, 0.7, uniforms, kernel=backend)
    assert got_flips == ref_flips
    assert got.tobytes() == ref.tobytes()


@pytest.mark.parametrize("backend", COMPILED)
def test_sa_sweep_chunk_size_invariant(backend):
    rng = np.random.default_rng(3)
    bqm = BinaryQuadraticModel()
    for v in range(17):
        bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
    for _ in range(40):
        u, v = rng.choice(17, size=2, replace=False)
        bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
    csr, spins0, uniforms = _sweep_inputs(bqm, 5, 7)
    reference = None
    for chunk in (1, 3, 8, 17, 64):
        plan = build_sweep_plan(
            csr.h, csr.indptr, csr.indices, csr.data, csr.row_sums, chunk
        )
        spins = spins0.copy()
        flips = sa_sweep(plan, spins, 0.9, uniforms, kernel=backend)
        outcome = (flips, spins.tobytes())
        if reference is None:
            reference = outcome
        else:
            assert outcome == reference


@pytest.mark.parametrize("backend", COMPILED)
def test_packed_and_per_chunk_dispatch_agree(backend):
    # SweepPlan carries a memoized whole-plan pack (one native call per
    # sweep); a plain-list plan takes the per-chunk path.  Same bytes.
    rng = np.random.default_rng(5)
    bqm = BinaryQuadraticModel()
    for v in range(13):
        bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
    for _ in range(30):
        u, v = rng.choice(13, size=2, replace=False)
        bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
    csr, spins0, uniforms = _sweep_inputs(bqm, 4, 9)
    plan = build_sweep_plan(
        csr.h, csr.indptr, csr.indices, csr.data, csr.row_sums, 4
    )
    assert isinstance(plan, SweepPlan)
    packed = spins0.copy()
    packed_flips = sa_sweep(plan, packed, 1.1, uniforms, kernel=backend)
    unpacked = spins0.copy()
    unpacked_flips = sa_sweep(list(plan), unpacked, 1.1, uniforms, kernel=backend)
    assert packed_flips == unpacked_flips
    assert packed.tobytes() == unpacked.tobytes()


def test_pack_is_memoized_on_the_plan():
    rng = np.random.default_rng(6)
    bqm = BinaryQuadraticModel()
    for v in range(9):
        bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
    for _ in range(12):
        u, v = rng.choice(9, size=2, replace=False)
        bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
    csr = bqm.to_csr()
    plan = build_sweep_plan(
        csr.h, csr.indptr, csr.indices, csr.data, csr.row_sums, 4
    )
    pack = pack_sweep_plan(plan)
    assert pack is not None
    assert pack_sweep_plan(plan) is pack  # cached on the SweepPlan
    assert pack_sweep_plan(list(plan)) is not pack  # plain list: rebuilt


# ----------------------------------------------------------------------
# Tabu kernel
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", COMPILED)
@settings(max_examples=25, deadline=None)
@given(bqm=bqms(max_n=11), replicas=st.integers(1, 4), seed=st.integers(0, 99))
def test_tabu_descend_byte_identical(backend, bqm, replicas, seed):
    csr = bqm.to_csr()
    n = csr.h.size
    rng = np.random.default_rng(seed)
    x0 = rng.integers(0, 2, size=(replicas, n)).astype(np.int8)
    e0 = np.asarray(
        bqm.energies(x0.astype(float), list(range(n))), dtype=np.float64
    )
    # x and energies advance in place: every call needs fresh copies.
    ref_flips: list = []
    ref_x, ref_e = tabu_descend(
        csr.h, csr.indptr, csr.indices, csr.data, x0.copy(), e0.copy(),
        25, 5, record_flips=ref_flips, kernel="numpy",
    )
    got_flips: list = []
    got_x, got_e = tabu_descend(
        csr.h, csr.indptr, csr.indices, csr.data, x0.copy(), e0.copy(),
        25, 5, record_flips=got_flips, kernel=backend,
    )
    assert np.array_equal(np.asarray(got_flips), np.asarray(ref_flips))
    assert got_x.tobytes() == ref_x.tobytes()
    assert got_e.tobytes() == ref_e.tobytes()


# ----------------------------------------------------------------------
# Sampleset-level equivalence and selection plumbing
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", COMPILED)
def test_sa_sampleset_identical_across_backends(backend):
    rng = np.random.default_rng(8)
    bqm = BinaryQuadraticModel()
    for v in range(12):
        bqm.add_linear(v, float(rng.integers(-6, 7)) / 2)
    for _ in range(28):
        u, v = rng.choice(12, size=2, replace=False)
        bqm.add_quadratic(int(u), int(v), float(rng.integers(-6, 7)) / 2)
    sampler = SimulatedAnnealingSampler()

    def flatten(ss):
        return [
            (dict(s.assignment), s.energy, s.num_occurrences) for s in ss
        ]

    ref = sampler.sample(bqm, num_reads=9, num_sweeps=6, seed=42, kernel="numpy")
    got = sampler.sample(bqm, num_reads=9, num_sweeps=6, seed=42, kernel=backend)
    assert flatten(got) == flatten(ref)


def test_resolve_env_and_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    assert resolve(None).name == "numpy"
    assert isinstance(resolve("numpy"), NumpyKernels)
    # Explicit names win over the environment.
    monkeypatch.setenv("REPRO_KERNEL", "auto")
    for name in AVAILABLE:
        assert resolve(name).name == name
    with pytest.raises(ValueError):
        resolve("vectorized-fortran")


def test_unavailable_backend_falls_back_to_numpy():
    for name in KERNEL_NAMES:
        if name not in AVAILABLE:
            assert resolve(name).name == "numpy"
    if all(name in AVAILABLE for name in KERNEL_NAMES):
        pytest.skip("every backend is available in this environment")
