"""Unit tests for simulated quantum counting."""

import numpy as np
import pytest

from repro.quantum import phase_distribution, quantum_count


class TestPhaseDistribution:
    def test_normalised(self):
        probs = phase_distribution(6, 4, 7)
        assert probs.sum() == pytest.approx(1.0)

    def test_zero_marked_peaks_at_zero_phase(self):
        probs = phase_distribution(5, 0, 6)
        assert int(np.argmax(probs)) == 0

    def test_all_marked_peaks_at_half_turn(self):
        # theta = pi/2, eigenphase pi: readout m = 2^t / 2.
        probs = phase_distribution(3, 8, 5)
        assert int(np.argmax(probs)) == 16

    def test_invalid_marked(self):
        with pytest.raises(ValueError):
            phase_distribution(3, 9, 4)

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            phase_distribution(3, 1, 0)

    def test_peak_tracks_theta(self):
        # More marked states -> larger theta -> peak further from 0.
        peak_small = np.argmax(phase_distribution(8, 1, 8))
        peak_large = np.argmax(phase_distribution(8, 64, 8))
        t = 1 << 8
        fold = lambda m: min(m, t - m)  # noqa: E731
        assert fold(int(peak_large)) > fold(int(peak_small))


class TestQuantumCount:
    @pytest.mark.parametrize("true_m", [1, 2, 4, 8, 16])
    def test_estimates_close(self, true_m, rng):
        result = quantum_count(8, true_m, precision_qubits=10, shots=128, rng=rng)
        assert result.estimate == pytest.approx(true_m, rel=0.5, abs=1.0)

    def test_rounded_exact_for_easy_cases(self, rng):
        # M = N/4 gives theta = pi/6... use M = N/2: theta = pi/4,
        # phase = pi/2, exactly representable.
        result = quantum_count(4, 8, precision_qubits=8, shots=64, rng=rng)
        assert result.rounded == 8

    def test_metadata(self, rng):
        result = quantum_count(5, 3, precision_qubits=6, shots=32, rng=rng)
        assert result.precision_qubits == 6
        assert result.shots == 32
        assert 0 <= result.measured_phase < 64
