"""Unit tests for the circuit IR."""

import pytest

from repro.quantum import QuantumCircuit, classical_simulate, simulate


class TestStructure:
    def test_empty_circuit(self):
        qc = QuantumCircuit(3)
        assert qc.num_qubits == 3
        assert qc.num_gates == 0

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(-1)

    def test_add_register(self):
        qc = QuantumCircuit(2)
        reg = qc.add_register("anc", 3)
        assert reg.offset == 2
        assert qc.num_qubits == 5
        assert qc.register("anc") is reg

    def test_duplicate_register_name(self):
        qc = QuantumCircuit(0)
        qc.add_register("a", 1)
        with pytest.raises(ValueError, match="already exists"):
            qc.add_register("a", 2)

    def test_gate_out_of_bounds(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError, match="touches qubit"):
            qc.x(2)


class TestAppends:
    def test_gate_counts(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        qc.x(1)
        qc.cx(0, 1)
        qc.ccx(0, 1, 2)
        qc.mcx([0, 1, 2], 3)
        qc.cz(0, 1)
        qc.mcz([0, 1], 2)
        counts = qc.gate_counts()
        assert counts == {
            "h": 1, "x": 1, "cx": 1, "ccx": 1, "mcx": 1, "cz": 1, "mcz": 1,
        }

    def test_mcx_control_values_length(self):
        qc = QuantumCircuit(3)
        with pytest.raises(ValueError, match="length"):
            qc.mcx([0, 1], 2, control_values=[1])

    def test_count_ops(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.x(1)
        assert qc.count_ops() == 2
        assert len(qc) == 2


class TestLabels:
    def test_labelled_counts(self):
        qc = QuantumCircuit(2)
        qc.set_label("a")
        qc.x(0)
        qc.x(1)
        qc.set_label("b")
        qc.x(0)
        qc.set_label(None)
        qc.x(1)
        assert qc.labelled_gate_counts() == {"a": 2, "b": 1, "": 1}


class TestInverse:
    def test_inverse_reverses_classical_circuit(self):
        qc = QuantumCircuit(3)
        qc.x(0)
        qc.cx(0, 1)
        qc.ccx(0, 1, 2)
        inv = qc.inverse()
        for bits in range(8):
            assert classical_simulate(inv, classical_simulate(qc, bits)) == bits

    def test_inverse_of_statevector_circuit(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.z(1)
        combined = QuantumCircuit(2)
        combined.extend(qc)
        combined.extend(qc.inverse())
        sv = simulate(combined)
        assert sv.probability_of(0) == pytest.approx(1.0)

    def test_inverse_preserves_labels(self):
        qc = QuantumCircuit(1)
        qc.set_label("body")
        qc.x(0)
        assert qc.inverse().labelled_gate_counts() == {"body": 1}


class TestExtendAndDepth:
    def test_extend_requires_fit(self):
        small = QuantumCircuit(2)
        big = QuantumCircuit(3)
        big.x(2)
        with pytest.raises(ValueError, match="cannot extend"):
            small.extend(big)

    def test_extend_copies_gates(self):
        a = QuantumCircuit(2)
        a.x(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        a.extend(b)
        assert a.num_gates == 2

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.x(0)
        qc.x(1)
        qc.x(2)
        assert qc.depth() == 1

    def test_depth_serial_chain(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(0, 1)
        assert qc.depth() == 2

    def test_depth_empty(self):
        assert QuantumCircuit(3).depth() == 0


class TestMirrorRegisters:
    def test_mirrors_register_map(self):
        src = QuantumCircuit()
        reg = src.add_register("v", 3)
        wide = QuantumCircuit(5)
        wide.mirror_registers(src)
        assert wide.register("v") == reg

    def test_same_register_twice_is_idempotent(self):
        src = QuantumCircuit()
        src.add_register("v", 2)
        dst = QuantumCircuit(2)
        dst.mirror_registers(src)
        dst.mirror_registers(src)
        assert dst.register("v").size == 2

    def test_conflicting_layout_rejected(self):
        a = QuantumCircuit()
        a.add_register("v", 2)
        b = QuantumCircuit(4)
        b.add_register("v", 3)
        with pytest.raises(ValueError, match="different layout"):
            b.mirror_registers(a)

    def test_register_must_fit(self):
        src = QuantumCircuit()
        src.add_register("v", 4)
        narrow = QuantumCircuit(2)
        with pytest.raises(ValueError, match="spans qubits"):
            narrow.mirror_registers(src)

    def test_inverse_keeps_registers(self):
        qc = QuantumCircuit()
        qc.add_register("v", 2)
        qc.x(0)
        assert qc.inverse().register("v") == qc.register("v")
