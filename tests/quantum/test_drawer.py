"""Unit tests for the ASCII circuit drawer."""

import pytest

from repro.quantum import QuantumCircuit
from repro.quantum.drawer import draw_circuit


class TestDrawCircuit:
    def test_single_gate(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        art = draw_circuit(qc)
        assert "q0 |0>" in art
        assert "-X-" in art

    def test_cnot_shows_control_and_target(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        art = draw_circuit(qc)
        lines = art.splitlines()
        assert "-*-" in lines[0]
        assert "-X-" in lines[-1]
        assert "|" in art  # the vertical connector

    def test_control_on_zero_is_hollow(self):
        qc = QuantumCircuit(2)
        qc.mcx([0], 1, control_values=[0])
        assert "-o-" in draw_circuit(qc).splitlines()[0]

    def test_gate_order_is_left_to_right(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.x(0)
        top = draw_circuit(qc).splitlines()[0]
        assert top.index("H") < top.index("X")

    def test_pass_through_wire_marked(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)  # passes through qubit 1
        middle = draw_circuit(qc).splitlines()[2]
        assert "-|-" in middle

    def test_register_labels_used(self):
        qc = QuantumCircuit(0)
        v = qc.add_register("v", 2)
        qc.cx(v[0], v[1])
        art = draw_circuit(qc)
        assert "v0 |0>" in art
        assert "v1 |0>" in art

    def test_custom_labels(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        assert "anc |0>" in draw_circuit(qc, labels={0: "anc"})

    def test_size_guards(self):
        with pytest.raises(ValueError, match="qubits"):
            draw_circuit(QuantumCircuit(40))
        qc = QuantumCircuit(1)
        for _ in range(500):
            qc.x(0)
        with pytest.raises(ValueError, match="gates"):
            draw_circuit(qc)

    def test_mcz_target(self):
        qc = QuantumCircuit(3)
        qc.mcz([0, 1], 2)
        art = draw_circuit(qc)
        assert "-Z-" in art
        assert art.count("-*-") == 2

    def test_all_rows_same_length(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.ccx(0, 1, 2)
        qc.z(1)
        wire_lines = [
            line for line in draw_circuit(qc).splitlines() if "|0>" in line
        ]
        assert len({len(line) for line in wire_lines}) == 1
