"""Unit tests for the reversible arithmetic circuits (paper Figs. 7-9)."""

import pytest

from repro.quantum import (
    QuantumCircuit,
    QubitAllocator,
    add_bit_into_counter,
    classical_simulate,
    compare_geq_const,
    compare_leq,
    compare_leq_const,
    counter_width,
    full_adder,
    popcount,
    ripple_add,
)


def _encode(pairs):
    """Build an input bitmask from (qubit, value) pairs."""
    mask = 0
    for qubit, value in pairs:
        if value:
            mask |= 1 << qubit
    return mask


class TestCounterWidth:
    @pytest.mark.parametrize(
        ("value", "width"), [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)]
    )
    def test_widths(self, value, width):
        assert counter_width(value) == width

    def test_negative(self):
        with pytest.raises(ValueError):
            counter_width(-1)


class TestFullAdder:
    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_truth_table(self, x, y, cin):
        """Fig. 7: sum and carry for all eight input combinations."""
        qc = QuantumCircuit(5)
        s_q, c_q = full_adder(qc, 0, 1, 2, 3, 4)
        out = classical_simulate(qc, _encode([(0, x), (1, y), (2, cin)]))
        total = x + y + cin
        assert (out >> s_q) & 1 == total & 1
        assert (out >> c_q) & 1 == total >> 1

    def test_gate_budget_is_five(self):
        qc = QuantumCircuit(5)
        full_adder(qc, 0, 1, 2, 3, 4)
        assert qc.num_gates == 5


class TestRippleAdd:
    @pytest.mark.parametrize("x", range(8))
    @pytest.mark.parametrize("y", range(8))
    def test_three_bit_addition(self, x, y):
        """Fig. 8: x + y for all pairs of 3-bit operands."""
        qc = QuantumCircuit(6)
        alloc = QubitAllocator(qc)
        sum_bits = ripple_add(qc, [0, 1, 2], [3, 4, 5], alloc)
        input_mask = x | (y << 3)
        out = classical_simulate(qc, input_mask)
        result = sum(((out >> q) & 1) << i for i, q in enumerate(sum_bits))
        assert result == x + y

    def test_width_mismatch(self):
        qc = QuantumCircuit(3)
        with pytest.raises(ValueError):
            ripple_add(qc, [0], [1, 2], QubitAllocator(qc))


class TestAddBitIntoCounter:
    def test_increment_sequence(self):
        """Adding 1-bits repeatedly counts up correctly."""
        qc = QuantumCircuit(3 + 5)  # 5 one-bits, 3-bit counter
        alloc = QubitAllocator(qc)
        counter = [0, 1, 2]
        for bit in range(3, 8):
            add_bit_into_counter(qc, bit, counter, alloc)
        out = classical_simulate(qc, 0b11111 << 3)
        value = sum(((out >> q) & 1) << i for i, q in enumerate(counter))
        assert value == 5

    def test_zero_bits_do_nothing(self):
        qc = QuantumCircuit(4)
        alloc = QubitAllocator(qc)
        add_bit_into_counter(qc, 3, [0, 1, 2], alloc)
        assert classical_simulate(qc, 0) == 0


class TestPopcount:
    @pytest.mark.parametrize("pattern", range(16))
    def test_counts_ones(self, pattern):
        qc = QuantumCircuit(4)
        alloc = QubitAllocator(qc)
        counter = popcount(qc, [0, 1, 2, 3], alloc)
        out = classical_simulate(qc, pattern)
        value = sum(((out >> q) & 1) << i for i, q in enumerate(counter))
        assert value == bin(pattern).count("1")

    def test_counter_width_sized_for_input(self):
        qc = QuantumCircuit(5)
        counter = popcount(qc, [0, 1, 2, 3, 4], QubitAllocator(qc))
        assert len(counter) == counter_width(5) == 3


class TestCompareLeqRegisters:
    @pytest.mark.parametrize("x", range(4))
    @pytest.mark.parametrize("y", range(4))
    def test_two_bit_comparison(self, x, y):
        """Fig. 9: x <= y over all 2-bit operand pairs."""
        qc = QuantumCircuit(4)
        alloc = QubitAllocator(qc)
        out_q = compare_leq(qc, [0, 1], [2, 3], alloc)
        out = classical_simulate(qc, x | (y << 2))
        assert (out >> out_q) & 1 == int(x <= y)

    def test_width_mismatch(self):
        qc = QuantumCircuit(3)
        with pytest.raises(ValueError):
            compare_leq(qc, [0], [1, 2], QubitAllocator(qc))


class TestCompareConst:
    @pytest.mark.parametrize("const", range(8))
    @pytest.mark.parametrize("x", range(8))
    def test_leq_const(self, const, x):
        qc = QuantumCircuit(3)
        alloc = QubitAllocator(qc)
        out_q = compare_leq_const(qc, [0, 1, 2], const, alloc)
        out = classical_simulate(qc, x)
        assert (out >> out_q) & 1 == int(x <= const)

    @pytest.mark.parametrize("const", range(8))
    @pytest.mark.parametrize("x", range(8))
    def test_geq_const(self, const, x):
        qc = QuantumCircuit(3)
        alloc = QubitAllocator(qc)
        out_q = compare_geq_const(qc, [0, 1, 2], const, alloc)
        out = classical_simulate(qc, x)
        assert (out >> out_q) & 1 == int(x >= const)

    def test_constant_too_wide(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError, match="fit"):
            compare_leq_const(qc, [0, 1], 4, QubitAllocator(qc))

    def test_negative_constant(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            compare_geq_const(qc, [0, 1], -1, QubitAllocator(qc))

    def test_no_ancillas_beyond_output(self):
        qc = QuantumCircuit(3)
        alloc = QubitAllocator(qc)
        compare_leq_const(qc, [0, 1, 2], 5, alloc)
        assert qc.num_qubits == 4  # inputs + single output qubit


class TestUncompute:
    def test_arithmetic_uncomputes_cleanly(self):
        """forward + inverse restores every ancilla (oracle requirement)."""
        qc = QuantumCircuit(6)
        alloc = QubitAllocator(qc)
        counter = popcount(qc, [0, 1, 2, 3, 4, 5], alloc)
        compare_leq_const(qc, counter, 3, alloc)
        round_trip = QuantumCircuit(qc.num_qubits)
        round_trip.extend(qc)
        round_trip.extend(qc.inverse())
        for pattern in range(64):
            assert classical_simulate(round_trip, pattern) == pattern


class TestFullAdderAccumulation:
    """The paper-faithful Fig. 7 accumulation chain."""

    @pytest.mark.parametrize("pattern", range(16))
    def test_popcount_full_adder_mode(self, pattern):
        qc = QuantumCircuit(4)
        alloc = QubitAllocator(qc)
        counter = popcount(qc, [0, 1, 2, 3], alloc, adder="full_adder")
        out = classical_simulate(qc, pattern)
        value = sum(((out >> q) & 1) << i for i, q in enumerate(counter))
        assert value == bin(pattern).count("1")

    def test_gate_budget_five_per_stage(self):
        qc = QuantumCircuit(1)
        alloc = QubitAllocator(qc)
        counter = alloc.take(3, "c")
        add_bit_into_counter(qc, 0, counter, alloc, adder="full_adder")
        assert qc.num_gates == 5 * 3

    def test_compact_budget_two_per_stage(self):
        qc = QuantumCircuit(1)
        alloc = QubitAllocator(qc)
        counter = alloc.take(3, "c")
        add_bit_into_counter(qc, 0, counter, alloc, adder="compact")
        assert qc.num_gates == 2 * 3

    def test_unknown_adder_rejected(self):
        qc = QuantumCircuit(1)
        alloc = QubitAllocator(qc)
        with pytest.raises(ValueError, match="adder"):
            add_bit_into_counter(qc, 0, alloc.take(2, "c"), alloc, adder="ripple")

    def test_uncompute_clean_in_full_adder_mode(self):
        qc = QuantumCircuit(5)
        alloc = QubitAllocator(qc)
        popcount(qc, [0, 1, 2, 3, 4], alloc, adder="full_adder")
        round_trip = QuantumCircuit(qc.num_qubits)
        round_trip.extend(qc)
        round_trip.extend(qc.inverse())
        for pattern in range(32):
            assert classical_simulate(round_trip, pattern) == pattern
