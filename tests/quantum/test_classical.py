"""Unit tests for the bit-level classical-reversible simulator."""

import pytest

from repro.quantum import (
    QuantumCircuit,
    assert_classical,
    classical_output_bit,
    classical_simulate,
    simulate,
)


class TestClassicalSimulate:
    def test_x(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        assert classical_simulate(qc, 0) == 1
        assert classical_simulate(qc, 1) == 0

    def test_cx_truth_table(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        assert [classical_simulate(qc, b) for b in range(4)] == [0, 1 | 2, 2, 1]

    def test_control_on_zero(self):
        qc = QuantumCircuit(2)
        qc.mcx([0], 1, control_values=[0])
        assert classical_simulate(qc, 0) == 2
        assert classical_simulate(qc, 1) == 1

    def test_mcx_all_controls(self):
        qc = QuantumCircuit(4)
        qc.mcx([0, 1, 2], 3)
        assert classical_simulate(qc, 0b0111) == 0b1111
        assert classical_simulate(qc, 0b0011) == 0b0011

    def test_rejects_h(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(ValueError, match="not classical"):
            classical_simulate(qc, 0)

    def test_rejects_out_of_range_input(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError, match="out of range"):
            classical_simulate(qc, 4)

    def test_output_bit_helper(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        assert classical_output_bit(qc, 1, 1) == 1
        assert classical_output_bit(qc, 0, 1) == 0


class TestAssertClassical:
    def test_accepts_x_family(self):
        qc = QuantumCircuit(3)
        qc.x(0)
        qc.cx(0, 1)
        qc.ccx(0, 1, 2)
        assert_classical(qc)  # no raise

    def test_rejects_z(self):
        qc = QuantumCircuit(1)
        qc.z(0)
        with pytest.raises(ValueError):
            assert_classical(qc)


class TestAgreementWithStatevector:
    def test_matches_dense_simulation_on_basis_states(self):
        """The bit simulator and the dense simulator must agree exactly."""
        qc = QuantumCircuit(4)
        qc.x(0)
        qc.cx(0, 1)
        qc.ccx(1, 2, 3)
        qc.mcx([0, 3], 2, control_values=[1, 0])
        qc.cx(3, 0)
        for bits in range(16):
            expected = classical_simulate(qc, bits)
            sv = simulate(qc, initial=bits)
            assert sv.probability_of(expected) == pytest.approx(1.0)
