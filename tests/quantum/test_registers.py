"""Unit tests for named registers."""

import pytest

from repro.quantum import QuantumRegister


class TestRegister:
    def test_indexing(self):
        reg = QuantumRegister("v", 4, offset=3)
        assert reg[0] == 3
        assert reg[3] == 6

    def test_negative_index(self):
        reg = QuantumRegister("v", 4, offset=3)
        assert reg[-1] == 6

    def test_slice(self):
        reg = QuantumRegister("v", 4, offset=2)
        assert reg[1:3] == [3, 4]

    def test_out_of_range(self):
        reg = QuantumRegister("v", 2, offset=0)
        with pytest.raises(IndexError):
            reg[2]

    def test_iteration_and_len(self):
        reg = QuantumRegister("e", 3, offset=5)
        assert list(reg) == [5, 6, 7]
        assert len(reg) == 3
        assert reg.qubits == [5, 6, 7]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            QuantumRegister("x", -1, 0)

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            QuantumRegister("x", 1, -2)
