"""Unit tests for the dense statevector simulator."""

import numpy as np
import pytest

from repro.quantum import QuantumCircuit, Statevector, simulate


class TestStatevector:
    def test_initial_state(self):
        sv = Statevector(2)
        assert sv.probability_of(0) == pytest.approx(1.0)

    def test_basis_state(self):
        sv = Statevector.from_basis_state(3, 5)
        assert sv.probability_of(5) == pytest.approx(1.0)

    def test_width_limit(self):
        with pytest.raises(ValueError, match="refuses"):
            Statevector(30)

    def test_bad_data_shape(self):
        with pytest.raises(ValueError, match="shape"):
            Statevector(2, np.zeros(3))

    def test_probabilities_sum_to_one(self):
        qc = QuantumCircuit(3)
        for q in range(3):
            qc.h(q)
        sv = simulate(qc)
        assert sv.probabilities().sum() == pytest.approx(1.0)


class TestSingleGates:
    def test_x_flips(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        assert simulate(qc).probability_of(1) == pytest.approx(1.0)

    def test_h_uniform(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        sv = simulate(qc)
        assert sv.probability_of(0) == pytest.approx(0.5)
        assert sv.probability_of(1) == pytest.approx(0.5)

    def test_hzh_is_x(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.z(0)
        qc.h(0)
        assert simulate(qc).probability_of(1) == pytest.approx(1.0)

    def test_z_phase(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.z(0)
        sv = simulate(qc)
        assert sv.data[1] == pytest.approx(-1.0)


class TestControlledGates:
    def test_cx_control_off(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        assert simulate(qc).probability_of(0) == pytest.approx(1.0)

    def test_cx_control_on(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.cx(0, 1)
        assert simulate(qc).probability_of(3) == pytest.approx(1.0)

    def test_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        sv = simulate(qc)
        assert sv.probability_of(0) == pytest.approx(0.5)
        assert sv.probability_of(3) == pytest.approx(0.5)

    def test_control_on_zero(self):
        qc = QuantumCircuit(2)
        qc.mcx([0], 1, control_values=[0])
        assert simulate(qc).probability_of(2) == pytest.approx(1.0)

    def test_toffoli_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                qc = QuantumCircuit(3)
                if a:
                    qc.x(0)
                if b:
                    qc.x(1)
                qc.ccx(0, 1, 2)
                expected = a | (b << 1) | ((a & b) << 2)
                assert simulate(qc).probability_of(expected) == pytest.approx(1.0)


class TestMeasurement:
    def test_sample_deterministic_state(self, rng):
        sv = Statevector.from_basis_state(2, 3)
        assert sv.sample(100, rng) == {3: 100}

    def test_sample_distribution(self, rng):
        qc = QuantumCircuit(1)
        qc.h(0)
        counts = simulate(qc).sample(10_000, rng)
        assert abs(counts[0] - 5000) < 300

    def test_marginal_probabilities(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 2)
        sv = simulate(qc)
        marg = sv.marginal_probabilities([0, 2])
        assert marg[0b00] == pytest.approx(0.5)
        assert marg[0b11] == pytest.approx(0.5)

    def test_fidelity(self):
        a = Statevector.from_basis_state(2, 1)
        b = Statevector.from_basis_state(2, 1)
        c = Statevector.from_basis_state(2, 2)
        assert a.fidelity_with(b) == pytest.approx(1.0)
        assert a.fidelity_with(c) == pytest.approx(0.0)


class TestInitialStates:
    def test_simulate_from_int(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        sv = simulate(qc, initial=2)
        assert sv.probability_of(3) == pytest.approx(1.0)

    def test_simulate_from_statevector(self):
        start = Statevector.from_basis_state(1, 1)
        qc = QuantumCircuit(1)
        qc.x(0)
        assert simulate(qc, initial=start).probability_of(0) == pytest.approx(1.0)
