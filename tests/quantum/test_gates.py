"""Unit tests for the gate vocabulary."""

import numpy as np
import pytest

from repro.quantum import Control, Gate, is_classical_gate


class TestControl:
    def test_default_value_one(self):
        assert Control(3).value == 1

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            Control(0, 2)

    def test_negative_qubit(self):
        with pytest.raises(ValueError):
            Control(-1)


class TestGate:
    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unsupported"):
            Gate("y", 0)

    def test_phase_needs_param(self):
        with pytest.raises(ValueError, match="param"):
            Gate("p", 0)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gate("x", 0, (Control(0),))

    def test_qubits_property(self):
        g = Gate("x", 2, (Control(0), Control(1, 0)))
        assert g.qubits == (0, 1, 2)
        assert g.num_controls == 2

    def test_matrix_x(self):
        assert np.array_equal(Gate("x", 0).matrix(), [[0, 1], [1, 0]])

    def test_matrix_h_unitary(self):
        u = Gate("h", 0).matrix()
        assert np.allclose(u @ u.conj().T, np.eye(2))

    def test_matrix_phase(self):
        u = Gate("p", 0, param=np.pi).matrix()
        assert np.allclose(u, [[1, 0], [0, -1]])

    def test_shifted(self):
        g = Gate("x", 1, (Control(0),)).shifted(5)
        assert g.target == 6
        assert g.controls[0].qubit == 5


class TestInverse:
    @pytest.mark.parametrize("name", ["x", "h", "z"])
    def test_self_inverse(self, name):
        g = Gate(name, 0)
        assert g.inverse() == g

    def test_s_sdg_pair(self):
        assert Gate("s", 0).inverse().name == "sdg"
        assert Gate("sdg", 0).inverse().name == "s"

    def test_phase_negates(self):
        g = Gate("p", 0, param=0.5)
        assert g.inverse().param == -0.5

    def test_inverse_preserves_controls(self):
        g = Gate("x", 1, (Control(0, 0),))
        assert g.inverse().controls == g.controls

    def test_inverse_matrix_is_adjoint(self):
        for name in ("x", "h", "z", "s", "sdg"):
            g = Gate(name, 0)
            assert np.allclose(g.inverse().matrix(), g.matrix().conj().T)


class TestClassicality:
    def test_x_family_classical(self):
        assert is_classical_gate(Gate("x", 0))
        assert is_classical_gate(Gate("x", 1, (Control(0),)))

    def test_h_not_classical(self):
        assert not is_classical_gate(Gate("h", 0))

    def test_z_not_classical(self):
        assert not is_classical_gate(Gate("z", 0))
