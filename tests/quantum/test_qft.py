"""Unit tests for the QFT and phase estimation circuits."""

import numpy as np
import pytest

from repro.quantum import simulate
from repro.quantum.counting import phase_distribution
from repro.quantum.qft import (
    estimate_phase_distribution,
    inverse_qft_circuit,
    phase_estimation_circuit,
    qft_circuit,
    qft_matrix,
)


def _circuit_matrix(qc):
    dim = 1 << qc.num_qubits
    return np.column_stack(
        [simulate(qc, initial=basis).data for basis in range(dim)]
    )


class TestQft:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        built = _circuit_matrix(qft_circuit(n))
        assert np.allclose(built, qft_matrix(n), atol=1e-10)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_unitary(self, n):
        u = _circuit_matrix(qft_circuit(n))
        assert np.allclose(u @ u.conj().T, np.eye(1 << n), atol=1e-10)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_inverse_composes_to_identity(self, n):
        forward = qft_circuit(n)
        backward = inverse_qft_circuit(n)
        combined = _circuit_matrix(forward) @ _circuit_matrix(backward)
        assert np.allclose(combined, np.eye(1 << n), atol=1e-10)

    def test_uniform_from_zero(self):
        # QFT|0> is the uniform superposition.
        sv = simulate(qft_circuit(3))
        assert np.allclose(sv.probabilities(), 1 / 8)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            qft_circuit(0)


class TestPhaseEstimation:
    @pytest.mark.parametrize("k", [0, 1, 3, 5])
    def test_exact_phases_read_out_deterministically(self, k):
        """phase = 2 pi k / 2^t collapses to readout k with certainty."""
        t = 3
        phase = 2 * np.pi * k / (1 << t)
        probs = estimate_phase_distribution(t, phase)
        assert probs[k] == pytest.approx(1.0, abs=1e-9)

    def test_inexact_phase_peaks_at_nearest(self):
        t = 4
        phase = 2 * np.pi * (5.2 / 16)
        probs = estimate_phase_distribution(t, phase)
        assert int(np.argmax(probs)) == 5

    def test_distribution_normalised(self):
        probs = estimate_phase_distribution(3, 1.234)
        assert probs.sum() == pytest.approx(1.0)

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            phase_estimation_circuit(0, 1.0)


class TestCountingModelValidation:
    """The analytic counting kernel must match circuit-level QPE."""

    @pytest.mark.parametrize(("n", "m"), [(3, 1), (3, 2), (4, 4)])
    def test_analytic_matches_circuit(self, n, m):
        t = 4
        theta = float(np.arcsin(np.sqrt(m / (1 << n))))
        # The Grover operator's two eigenphases are +/- 2 theta; the
        # analytic model averages both branches.
        plus = estimate_phase_distribution(t, 2 * theta)
        minus = estimate_phase_distribution(t, -2 * theta)
        circuit_level = 0.5 * (plus + minus)
        analytic = phase_distribution(n, m, t)
        assert np.allclose(circuit_level, analytic, atol=1e-8)
