"""Unit tests for the MPS simulator."""

import numpy as np
import pytest

from repro.quantum import QuantumCircuit, simulate
from repro.quantum.mps import MatrixProductState, simulate_mps


def _dense_probabilities(circuit, initial=0):
    return simulate(circuit, initial=initial).probabilities()


def _mps_probabilities(circuit, initial=0, max_bond=None):
    mps = simulate_mps(circuit, max_bond=max_bond, initial_bits=initial)
    dim = 1 << circuit.num_qubits
    return np.array([abs(mps.amplitude(b)) ** 2 for b in range(dim)])


class TestBasics:
    def test_initial_state(self):
        mps = MatrixProductState(4)
        assert mps.amplitude(0) == pytest.approx(1.0)
        assert mps.amplitude(5) == pytest.approx(0.0)
        assert mps.norm() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MatrixProductState(0)
        with pytest.raises(ValueError):
            MatrixProductState(3, max_bond=0)
        with pytest.raises(ValueError):
            MatrixProductState(2).amplitude(4)

    def test_initial_bits(self):
        qc = QuantumCircuit(3)
        mps = simulate_mps(qc, initial_bits=0b101)
        assert abs(mps.amplitude(0b101)) == pytest.approx(1.0)


class TestGateApplication:
    def test_single_qubit_gates(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.x(1)
        qc.z(0)
        assert np.allclose(
            _mps_probabilities(qc), _dense_probabilities(qc), atol=1e-10
        )

    def test_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        probs = _mps_probabilities(qc)
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    def test_nonadjacent_cnot(self):
        qc = QuantumCircuit(5)
        qc.h(0)
        qc.cx(0, 4)  # far apart: exercises the swap network
        assert np.allclose(
            _mps_probabilities(qc), _dense_probabilities(qc), atol=1e-10
        )

    def test_toffoli(self):
        qc = QuantumCircuit(3)
        qc.x(0)
        qc.x(2)
        qc.ccx(0, 2, 1)
        probs = _mps_probabilities(qc)
        assert probs[0b111] == pytest.approx(1.0)

    def test_multi_controlled_x_scattered(self):
        qc = QuantumCircuit(6)
        for q in (0, 2, 5):
            qc.x(q)
        qc.mcx([0, 2, 5], 3)
        probs = _mps_probabilities(qc)
        assert probs[0b101101] == pytest.approx(1.0)

    def test_control_on_zero(self):
        qc = QuantumCircuit(3)
        qc.mcx([1], 2, control_values=[0])
        probs = _mps_probabilities(qc)
        assert probs[0b100] == pytest.approx(1.0)

    def test_mcz_phase(self):
        qc = QuantumCircuit(3)
        for q in range(3):
            qc.h(q)
        qc.mcz([0, 1], 2)
        mps = simulate_mps(qc)
        sv = simulate(qc)
        for b in range(8):
            assert mps.amplitude(b) == pytest.approx(sv.data[b], abs=1e-10)


class TestAgreementWithDense:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        n = 6
        qc = QuantumCircuit(n)
        for _ in range(25):
            kind = rng.integers(0, 4)
            if kind == 0:
                qc.h(int(rng.integers(n)))
            elif kind == 1:
                qc.x(int(rng.integers(n)))
            elif kind == 2:
                a, b = rng.choice(n, size=2, replace=False)
                qc.cx(int(a), int(b))
            else:
                a, b, c = rng.choice(n, size=3, replace=False)
                qc.ccx(int(a), int(b), int(c))
        mps = simulate_mps(qc)
        sv = simulate(qc)
        for b in range(1 << n):
            assert mps.amplitude(b) == pytest.approx(sv.data[b], abs=1e-9)

    def test_norm_preserved(self):
        qc = QuantumCircuit(5)
        for q in range(5):
            qc.h(q)
        qc.mcx([0, 1, 2, 3], 4)
        mps = simulate_mps(qc)
        assert mps.norm() == pytest.approx(1.0)
        assert mps.truncation_error == pytest.approx(0.0)


class TestMarginals:
    def test_marginal_matches_dense(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        qc.cx(0, 2)
        qc.h(3)
        mps = simulate_mps(qc)
        sv = simulate(qc)
        ours = mps.marginal_probabilities([0, 2])
        theirs = sv.marginal_probabilities([0, 2])
        for key in set(ours) | set(theirs):
            assert ours.get(key, 0.0) == pytest.approx(theirs.get(key, 0.0), abs=1e-10)


class TestTruncation:
    def test_exact_for_product_states(self):
        qc = QuantumCircuit(6)
        for q in range(6):
            qc.h(q)
        mps = simulate_mps(qc, max_bond=1)  # product state: chi = 1 exact
        assert mps.truncation_error == pytest.approx(0.0)

    def test_truncation_error_recorded(self):
        # A 4-qubit GHZ-like cascade needs chi = 2; capping at 1 truncates.
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        mps = simulate_mps(qc, max_bond=1)
        assert mps.truncation_error > 0.0

    def test_bond_dimension_reported(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        mps = simulate_mps(qc)
        assert mps.max_bond_reached >= 2


class TestFullOracleValidation:
    """The MPS run of the complete qTKP circuit — every ancilla
    simulated — must agree with the phase-oracle reduction."""

    def test_full_qtkp_oracle_n3(self):
        from repro.core.oracle import KCplexOracle
        from repro.graphs import Graph
        from repro.grover import PhaseOracleGrover, grover_circuit

        g = Graph(3, [(0, 1), (1, 2)])
        oracle = KCplexOracle(g.complement(), 2, 2)
        engine = PhaseOracleGrover(3, oracle.predicate)
        iterations = max(engine.optimal_iterations(), 1)

        circuit = grover_circuit(3, oracle.phase_oracle_circuit(), iterations)
        # Oracle qubit must start in H|1> for the phase-kickback trick.
        full = QuantumCircuit(circuit.num_qubits)
        oracle_qubit = oracle.num_qubits  # last qubit of the phase oracle
        full.x(oracle_qubit)
        full.h(oracle_qubit)
        full.extend(circuit)

        mps = simulate_mps(full)
        marginal = mps.marginal_probabilities([0, 1, 2])
        reduced = engine.run(iterations)
        expected = reduced.amplitudes ** 2
        for mask in range(8):
            assert marginal.get(mask, 0.0) == pytest.approx(
                float(expected[mask]), abs=1e-8
            )
        # The entanglement stays within the 2^n bound the MPS method
        # relies on.
        assert mps.max_bond_reached <= 8


class TestNormGuard:
    """Truncation accounting and the typed norm-drift error."""

    def _ghz_cascade(self, n=4):
        qc = QuantumCircuit(n)
        qc.h(0)
        for i in range(n - 1):
            qc.cx(i, i + 1)
        return qc

    def test_discarded_weight_matches_truncation_error(self):
        mps = simulate_mps(self._ghz_cascade(), max_bond=1, norm_tolerance=None)
        assert mps.discarded_weight == mps.truncation_error
        assert mps.discarded_weight > 0.0

    def test_exact_simulation_has_no_discarded_weight(self):
        mps = simulate_mps(self._ghz_cascade())
        assert mps.discarded_weight == pytest.approx(0.0)
        assert mps.check_norm() == pytest.approx(1.0)

    def test_tiny_bond_raises_typed_error(self):
        from repro.quantum import MPSNormError

        mps = simulate_mps(self._ghz_cascade(), max_bond=1, norm_tolerance=None)
        mps.norm_tolerance = 1e-6
        with pytest.raises(MPSNormError) as excinfo:
            mps.marginal_probabilities([0, 1])
        err = excinfo.value
        assert err.norm < 1.0
        assert err.truncation_error > 0.0
        assert "max_bond" in str(err)

    def test_simulate_mps_guard_fires_on_first_query(self):
        from repro.quantum import MPSNormError

        mps = simulate_mps(self._ghz_cascade(), max_bond=1)
        with pytest.raises(MPSNormError):
            mps.marginal_probabilities([0])

    def test_opt_out_returns_unnormalized(self):
        mps = simulate_mps(self._ghz_cascade(), max_bond=1, norm_tolerance=None)
        marginal = mps.marginal_probabilities([0, 1, 2, 3])
        assert sum(marginal.values()) < 1.0 - 1e-6

    def test_guard_does_not_fire_within_tolerance(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        mps = simulate_mps(qc, max_bond=4)  # exact: chi never exceeds 2
        marginal = mps.marginal_probabilities([0, 1])
        assert sum(marginal.values()) == pytest.approx(1.0)

    def test_norm_tolerance_validation(self):
        with pytest.raises(ValueError):
            MatrixProductState(2, norm_tolerance=0.0)

    def test_injector_forced_truncation_composes(self):
        from repro.quantum import MPSNormError
        from repro.resilience import GateFaultInjector, GateFaultPlan

        injector = GateFaultInjector(GateFaultPlan(truncate_bond=1))
        mps = simulate_mps(
            self._ghz_cascade(), max_bond=injector.mps_bond_cap(None)
        )
        with pytest.raises(MPSNormError):
            mps.marginal_probabilities([0])
        assert ("truncate" in [name for _, name in injector.fault_log])
