"""IncrementalSolver: exact byte-identity, warm reuse, crash-resume.

The exact profile's contract — every step equals a cold solve of the
post-edit graph with the step's own seed, byte for byte — is what the
CI ``dynamic-smoke`` job gates on; these are the in-process versions.
"""

import os
import subprocess
import sys

import pytest

from repro.core import qmkp
from repro.dynamic import (
    Edit,
    IncrementalSolver,
    apply_labelled_edit,
    format_edits,
    parse_edits,
    read_edits,
)
from repro.graphs import gnm_random_graph
from repro.kplex import is_kplex, maximum_kplex
from repro.obs import Tracer


def cold_qmkp(session, step):
    return qmkp(
        session.graph.snapshot(), session.k,
        rng=session.step_rng(step), ladder=session.ladder,
    )


def assert_step_matches_cold(step_result, cold):
    assert step_result.subset == cold.subset
    assert step_result.result.oracle_calls == cold.oracle_calls
    assert step_result.result.gate_units == cold.gate_units
    assert step_result.result.qtkp_calls == cold.qtkp_calls
    assert step_result.result.progression == cold.progression


class TestExactProfile:
    def test_byte_identity_over_mixed_edits(self):
        tracer = Tracer()
        session = IncrementalSolver(
            gnm_random_graph(9, 18, seed=1), 2, seed=5, tracer=tracer
        )
        assert_step_matches_cold(session.resolve(), cold_qmkp(session, 0))
        script = parse_edits("del 0 1\nadd 0 2\naddv\nadd 9 3\ndel 2 3\n")
        # Adapt the script to the instance: only apply legal edits.
        for edit in script:
            if edit.op == "add_vertex":
                session.add_vertex()
            elif edit.op == "add_edge":
                if not session.graph.has_edge(edit.u, edit.v):
                    session.add_edge(edit.u, edit.v)
                else:
                    session.remove_edge(edit.u, edit.v)
            elif session.graph.has_edge(edit.u, edit.v):
                session.remove_edge(edit.u, edit.v)
            else:
                session.add_edge(edit.u, edit.v)
            step = session.resolve()
            assert_step_matches_cold(step, cold_qmkp(session, step.step))
        assert session.cache.stats()["misses"] == 1  # one sweep, ever
        assert sum(s.reused_partitions for s in session.history) > 0
        session.ledger().verify()  # reuse claims reconcile exactly

    def test_batched_edits_single_step(self):
        g = gnm_random_graph(8, 16, seed=2)
        session = IncrementalSolver(g, 2, seed=3)
        session.resolve()
        edges = sorted(g.edges)
        session.remove_edge(*edges[0])
        session.remove_edge(*edges[1])
        assert len(session.pending_edits) == 2
        step = session.resolve()
        assert step.step == 1 and len(step.edits) == 2
        assert_step_matches_cold(step, cold_qmkp(session, 1))
        assert session.pending_edits == ()

    def test_adaptive_ladder_supported(self):
        session = IncrementalSolver(
            gnm_random_graph(8, 15, seed=3), 2, seed=4, ladder="adaptive"
        )
        session.resolve()
        session.remove_edge(*sorted(session.graph.snapshot().edges)[0])
        step = session.resolve()
        assert_step_matches_cold(step, cold_qmkp(session, 1))

    def test_resolve_without_edits_is_cheap_and_identical(self):
        session = IncrementalSolver(gnm_random_graph(7, 12, seed=4), 2, seed=1)
        session.resolve()
        misses = session.cache.stats()["misses"]
        step = session.resolve()
        assert session.cache.stats()["misses"] == misses
        assert_step_matches_cold(step, cold_qmkp(session, 1))


class TestWarmProfile:
    @pytest.mark.parametrize("solver", ["qmkp", "bs"])
    def test_same_optimum_size_as_exact(self, solver):
        g = gnm_random_graph(9, 20, seed=5)
        session = IncrementalSolver(g, 2, solver=solver, profile="warm", seed=2)
        session.resolve()
        for u, v in sorted(g.edges)[:3]:
            session.remove_edge(u, v)
            step = session.resolve()
            reference = maximum_kplex(session.graph.snapshot(), 2)
            assert step.size == reference.size
            assert is_kplex(session.graph.snapshot(), step.subset, 2)
            assert step.warm_start_hits == 1

    def test_qamkp_sa_warm_start_recorded(self):
        session = IncrementalSolver(
            gnm_random_graph(8, 16, seed=6), 2,
            solver="qamkp-sa", profile="warm", seed=9, runtime_us=500.0,
        )
        first = session.resolve()
        assert first.warm_start_hits == 0  # nothing to carry yet
        session.add_edge(*next(
            (u, v) for u in range(8) for v in range(u + 1, 8)
            if not session.graph.has_edge(u, v)
        ))
        second = session.resolve()
        assert second.warm_start_hits == 1
        assert second.result.info.get("warm_start") is True
        assert is_kplex(session.graph.snapshot(), second.subset, 2)

    def test_warm_claims_reconcile(self):
        tracer = Tracer()
        session = IncrementalSolver(
            gnm_random_graph(8, 14, seed=7), 2, profile="warm", seed=3,
            tracer=tracer,
        )
        session.resolve()
        session.remove_edge(*sorted(session.graph.snapshot().edges)[0])
        session.resolve()
        session.ledger().verify()


class TestValidation:
    def test_provided_empty_cache_is_adopted(self):
        # Regression: ``MarkedSetCache`` is falsy while empty, so a
        # ``cache or MarkedSetCache()`` default silently replaced the
        # caller's cache — breaking any external observer of its stats
        # (e.g. the service's fleet-shared tier).
        from repro.perf import MarkedSetCache

        cache = MarkedSetCache()
        session = IncrementalSolver(
            gnm_random_graph(6, 9, seed=8), 2, seed=1, cache=cache
        )
        assert session.cache is cache
        session.resolve()
        assert cache.stats()["misses"] == 1

    def test_bad_solver_and_profile(self):
        g = gnm_random_graph(5, 5, seed=8)
        with pytest.raises(ValueError):
            IncrementalSolver(g, 2, solver="milp")
        with pytest.raises(ValueError):
            IncrementalSolver(g, 2, profile="hot")

    def test_warm_rejects_reduce_first_in_qmkp(self):
        g = gnm_random_graph(6, 9, seed=9)
        with pytest.raises(ValueError):
            qmkp(g, 2, reduce_first=True, warm=frozenset({0}))

    def test_qmkp_warm_seed_verified(self):
        # A 1-plex is a clique; 6 vertices with only 5 edges cannot be
        # one, so the full vertex set is always an invalid warm seed.
        g = gnm_random_graph(6, 5, seed=10)
        bad = frozenset(range(6))
        assert not is_kplex(g, bad, 1)
        with pytest.raises(ValueError):
            qmkp(g, 1, warm=bad)


class TestEditScripts:
    def test_roundtrip(self):
        edits = [Edit("add_edge", 1, 2), Edit("remove_edge", 0, 3),
                 Edit("add_vertex"), Edit("add_vertex", 17)]
        assert parse_edits(format_edits(edits)) == edits

    def test_comments_and_errors(self, tmp_path):
        assert parse_edits("# c\n% c\n\nadd 1 2\n") == [Edit("add_edge", 1, 2)]
        with pytest.raises(ValueError, match="line 1"):
            parse_edits("frobnicate 1 2\n")
        with pytest.raises(ValueError, match="line 2"):
            parse_edits("add 1 2\nadd 1\n")
        path = tmp_path / "edits.txt"
        path.write_text("del 4 5\n")
        assert read_edits(path) == [Edit("remove_edge", 4, 5)]

    def test_apply_labelled_edit_translates_and_grows(self):
        from repro.dynamic import DynamicGraph

        dg = DynamicGraph(3, [(0, 1)])
        labels = {0: 10, 1: 20, 2: 30}
        applied = apply_labelled_edit(dg, Edit("add_edge", 30, 10), labels)
        assert applied == Edit("add_edge", 0, 2)  # endpoints normalised
        assert dg.has_edge(0, 2)
        apply_labelled_edit(dg, Edit("add_vertex"), labels)
        assert labels[3] == 31  # one past the largest numeric label
        with pytest.raises(ValueError, match="unknown vertex label"):
            apply_labelled_edit(dg, Edit("add_edge", 10, 99), labels)
        with pytest.raises(ValueError, match="already names"):
            apply_labelled_edit(dg, Edit("add_vertex", 20), labels)


CRASH_SCRIPT = r"""
import sys
import numpy as np
from repro.dynamic import IncrementalSolver
from repro.graphs import gnm_random_graph

g0 = gnm_random_graph(9, 18, seed=6)
session = IncrementalSolver(g0, 2, seed=11, checkpoint_dir=sys.argv[1])
r0 = session.resolve()
session.remove_edge(*sorted(g0.edges)[2])
r1 = session.resolve()
print(sorted(r0.subset), r0.result.oracle_calls, "|",
      sorted(r1.subset), r1.result.oracle_calls, "|",
      r0.resumed_probes + r1.resumed_probes)
"""


class TestCheckpointResume:
    def test_sigkill_resume_is_byte_identical(self, tmp_path):
        repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(repo_src))
        env.pop("QMKP_SIGINT_AFTER_PROBES", None)
        workdir = tmp_path / "wals"

        def run(extra_env):
            return subprocess.run(
                [sys.executable, "-c", CRASH_SCRIPT, str(workdir)],
                env={**env, **extra_env}, capture_output=True, text=True,
            )

        crashes = 0
        for _ in range(25):
            proc = run({"QMKP_CRASH_AFTER_PROBES": "2"})
            if proc.returncode == 0:
                break
            assert proc.returncode == -9, proc.stderr
            crashes += 1
        else:
            pytest.fail("crash loop never completed")
        assert crashes >= 1
        resumed = proc.stdout.strip().rsplit("|", 1)
        # Cold reference needs a pristine workdir (the crash one holds
        # completed WALs a fresh run would itself resume from).
        proc_cold = subprocess.run(
            [sys.executable, "-c", CRASH_SCRIPT, str(tmp_path / "cold")],
            env=env, capture_output=True, text=True,
        )
        assert proc_cold.returncode == 0, proc_cold.stderr
        cold = proc_cold.stdout.strip().rsplit("|", 1)
        assert resumed[0] == cold[0]      # answers + costs byte-identical
        assert int(resumed[1]) > 0        # and probes really were replayed
        assert int(cold[1]) == 0

    def test_corrupt_step_journal_falls_back_to_fresh(self, tmp_path):
        g = gnm_random_graph(7, 12, seed=7)
        workdir = tmp_path / "wals"
        session = IncrementalSolver(g, 2, seed=4, checkpoint_dir=workdir)
        session.resolve()
        # Re-run the same step in a new session against a WAL written
        # for a *different* instance: resume must be refused and the
        # step solved fresh, still byte-identical to cold.
        other = IncrementalSolver(
            gnm_random_graph(7, 11, seed=8), 2, seed=4, checkpoint_dir=workdir
        )
        step = other.resolve()
        assert_step_matches_cold(step, cold_qmkp(other, 0))
