"""DynamicGraph semantics: journalling, snapshots, memo freshness.

The second half mirrors ``tests/graphs/test_graph_caches.py`` from the
mutation side: the whole library keys caches on ``Graph`` identity or
structural fingerprints, so the one component that *does* mutate
structure must never leak a stale memo — every post-edit snapshot is a
brand-new ``Graph`` and previously returned snapshots stay frozen.
"""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph, Edit, parse_edits
from repro.graphs import Graph, gnm_random_graph
from repro.perf import MarkedSetCache, kplex_masks


class TestMutations:
    def test_add_remove_roundtrip(self):
        dg = DynamicGraph(4, [(0, 1), (1, 2)])
        assert dg.num_edges == 2 and dg.version == 0
        dg.add_edge(2, 3)
        assert dg.has_edge(3, 2)
        dg.remove_edge(0, 1)
        assert not dg.has_edge(0, 1)
        assert dg.version == 2
        assert [e.op for e in dg.journal] == ["add_edge", "remove_edge"]

    def test_from_graph_copies_not_aliases(self):
        base = gnm_random_graph(6, 7, seed=0)
        dg = DynamicGraph(base)
        dg.add_edge(*next(
            (u, v) for u in range(6) for v in range(u + 1, 6)
            if not base.has_edge(u, v)
        ))
        assert dg.num_edges == base.num_edges + 1
        assert base.num_edges == 7  # the source Graph is untouched

    def test_add_vertex_appends_isolated(self):
        dg = DynamicGraph(3, [(0, 1)])
        new_id = dg.add_vertex()
        assert new_id == 3
        assert dg.num_vertices == 4
        snap = dg.snapshot()
        assert snap.degree(3) == 0

    def test_validation(self):
        dg = DynamicGraph(3, [(0, 1)])
        with pytest.raises(ValueError):
            dg.add_edge(0, 0)
        with pytest.raises(ValueError):
            dg.add_edge(0, 1)  # already present
        with pytest.raises(ValueError):
            dg.remove_edge(1, 2)  # absent
        with pytest.raises(ValueError):
            dg.add_edge(0, 7)  # out of range

    def test_apply_edit_script(self):
        dg = DynamicGraph(3, [(0, 1)])
        for edit in parse_edits("del 0 1\nadd 1 2\naddv\n"):
            dg.apply(edit)
        assert dg.num_vertices == 4
        assert sorted(dg.snapshot().edges) == [(1, 2)]
        assert dg.journal == [
            Edit("remove_edge", 0, 1), Edit("add_edge", 1, 2),
            Edit("add_vertex"),
        ]


class TestSnapshotFreshness:
    """The memo-guard audit: DynamicGraph must interact safely with
    every identity- and fingerprint-keyed cache in the library."""

    def test_snapshot_memoized_per_version(self):
        dg = DynamicGraph(5, [(0, 1), (2, 3)])
        assert dg.snapshot() is dg.snapshot()
        dg.add_edge(0, 2)
        assert dg.snapshot() is dg.snapshot()

    def test_mutation_yields_structurally_fresh_graph(self):
        # A new snapshot object per version: identity-keyed memos
        # (fingerprint, complement) can never carry across an edit.
        dg = DynamicGraph(5, [(0, 1), (2, 3)])
        before = dg.snapshot()
        fp_before = before.fingerprint()
        comp_before = before.complement()
        dg.add_edge(1, 2)
        after = dg.snapshot()
        assert after is not before
        assert after.fingerprint() != fp_before
        assert after.complement().has_edge(1, 2) is False
        # The old snapshot is frozen: same memos, same structure.
        assert before.fingerprint() == fp_before
        assert before.complement() is comp_before
        assert not before.has_edge(1, 2)

    def test_old_snapshots_survive_vertex_growth(self):
        dg = DynamicGraph(4, [(0, 1)])
        old = dg.snapshot()
        dg.add_vertex()
        assert old.num_vertices == 4
        assert dg.snapshot().num_vertices == 5

    def test_marked_cache_never_serves_stale_across_mutations(self):
        # The fingerprint-keyed MarkedSetCache sees each version as a
        # distinct key; mutating the DynamicGraph can't poison lookups
        # the way in-place Graph mutation would (the regression pinned
        # in tests/graphs/test_graph_caches.py).
        cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(6, 9, seed=2))
        t0 = cache.table(dg.snapshot(), 2)
        dg.remove_edge(*sorted(dg.snapshot().edges)[0])
        t1 = cache.table(dg.snapshot(), 2)
        assert t1 is not t0
        assert cache.misses == 2
        want, _ = kplex_masks(dg.snapshot(), 2)
        assert np.array_equal(np.sort(t1.masks_at_least(0)), np.sort(want))

    def test_snapshot_equals_fresh_graph(self):
        dg = DynamicGraph(6, [(0, 1), (1, 2), (3, 4)])
        dg.add_edge(4, 5)
        dg.remove_edge(0, 1)
        rebuilt = Graph(6, [(1, 2), (3, 4), (4, 5)])
        assert dg.snapshot().fingerprint() == rebuilt.fingerprint()
        assert dg.fingerprint() == rebuilt.fingerprint()
