"""Marked-set table patching: byte-identity with fresh sweeps.

The incremental solver's exact profile rests on one invariant: a table
patched through an edit is **byte-identical** (``_by_size`` order,
offsets, dtypes) to a table swept fresh on the post-edit graph.  These
tests pin that invariant for every edit kind, plus the cache-level
bookkeeping around it.
"""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph
from repro.graphs import Graph, gnm_random_graph
from repro.perf import (
    MarkedSetCache,
    MarkedSetTable,
    kplex_mask_status,
    kplex_masks,
    kplex_masks_containing,
)
from repro.perf.cache import _masks_containing


def assert_tables_identical(patched: MarkedSetTable, fresh: MarkedSetTable):
    assert patched.num_vertices == fresh.num_vertices
    assert np.array_equal(patched._by_size, fresh._by_size)
    assert patched._by_size.dtype == fresh._by_size.dtype
    assert np.array_equal(patched._offsets, fresh._offsets)
    assert np.array_equal(patched.size_histogram(), fresh.size_histogram())


class TestMaskStatus:
    def test_matches_full_sweep(self):
        graph = gnm_random_graph(8, 14, seed=1)
        masks = np.arange(1 << 8, dtype=np.uint64)
        status = kplex_mask_status(graph, 2, masks)
        marked, _ = kplex_masks(graph, 2)
        assert np.array_equal(masks[status].astype(np.int64), marked)

    def test_subset_of_masks(self):
        graph = gnm_random_graph(7, 10, seed=4)
        some = np.array([0, 3, 5, 97, 127], dtype=np.uint64)
        status = kplex_mask_status(graph, 3, some)
        full, _ = kplex_masks(graph, 3)
        full_set = set(int(m) for m in full)
        assert [bool(s) for s in status] == [int(m) in full_set for m in some]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kplex_mask_status(Graph(3, []), 0, np.array([1], dtype=np.uint64))


class TestMasksContaining:
    @pytest.mark.parametrize("n,u,v", [(4, 0, 1), (6, 2, 5), (8, 0, 7)])
    def test_exact_candidate_set(self, n, u, v):
        got = _masks_containing(n, u, v)
        want = np.array(
            [m for m in range(1 << n) if (m >> u) & 1 and (m >> v) & 1],
            dtype=np.uint64,
        )
        assert np.array_equal(got, want)  # ascending, complete
        assert got.size == 1 << (n - 2)


class TestMarkedMasksContaining:
    """The kernel-tiered subspace enumerator behind edge/vertex patches."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("pinned", [(0, 1), (2, 6), (0, 7), (7,), (3,)])
    def test_equals_filtered_full_sweep(self, k, pinned):
        graph = gnm_random_graph(8, 14, seed=3)
        got = kplex_masks_containing(graph, k, *pinned)
        full, _ = kplex_masks(graph, k)
        want = np.uint64(sum(1 << w for w in pinned))
        expected = full[(full.astype(np.uint64) & want) == want]
        assert np.array_equal(got, expected)  # ascending, byte-identical
        assert got.dtype == expected.dtype

    def test_kernel_tiers_agree(self):
        from repro.perf import available_backends

        graph = gnm_random_graph(9, 20, seed=4)
        reference = kplex_masks_containing(graph, 2, 1, 5, kernel="numpy")
        for name in available_backends():
            assert np.array_equal(
                kplex_masks_containing(graph, 2, 1, 5, kernel=name), reference
            ), name

    def test_validation(self):
        graph = gnm_random_graph(5, 5, seed=5)
        with pytest.raises(ValueError):
            kplex_masks_containing(graph, 0, 1)
        with pytest.raises(ValueError):
            kplex_masks_containing(graph, 2)  # no pinned vertices
        with pytest.raises(ValueError):
            kplex_masks_containing(graph, 2, 1, 1)  # duplicate
        with pytest.raises(ValueError):
            kplex_masks_containing(graph, 2, 9)  # out of range


class TestTablePatch:
    def _table(self, graph, k):
        return MarkedSetTable(graph.num_vertices, *kplex_masks(graph, k))

    def test_ascending_roundtrip(self):
        graph = gnm_random_graph(7, 12, seed=5)
        masks, sizes = kplex_masks(graph, 2)
        table = MarkedSetTable(7, masks, sizes)
        got_masks, got_sizes = table.ascending()
        assert np.array_equal(got_masks, masks)
        assert np.array_equal(got_sizes, sizes)

    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_edge_patch_byte_identical(self, k, seed):
        rng = np.random.default_rng(seed)
        dg = DynamicGraph(gnm_random_graph(8, 14, seed=seed))
        old_graph = dg.snapshot()
        u, v = 0, 0
        while u == v:
            u, v = map(int, rng.integers(0, 8, 2))
        op = "remove_edge" if dg.has_edge(u, v) else "add_edge"
        getattr(dg, op)(u, v)
        new_graph = dg.snapshot()

        old = self._table(old_graph, k)
        both = np.uint64((1 << u) | (1 << v))
        old_masks, _ = old.ascending()
        touched = (old_masks.astype(np.uint64) & both) == both
        if op == "add_edge":
            candidates = _masks_containing(8, u, v)
        else:
            candidates = old_masks[touched].astype(np.uint64)
        status = kplex_mask_status(new_graph, k, candidates)
        patched = old.patch(~touched, candidates[status].astype(np.int64))
        assert_tables_identical(patched, self._table(new_graph, k))

    def test_vertex_patch_byte_identical(self):
        dg = DynamicGraph(gnm_random_graph(7, 11, seed=6))
        old = self._table(dg.snapshot(), 2)
        dg.add_vertex()
        new_graph = dg.snapshot()
        n = new_graph.num_vertices
        candidates = (
            np.arange(1 << (n - 1), dtype=np.uint64) | np.uint64(1 << (n - 1))
        )
        status = kplex_mask_status(new_graph, 2, candidates)
        patched = old.patch(
            np.ones(old.num_marked, dtype=bool),
            candidates[status].astype(np.int64),
            num_vertices=n,
        )
        assert_tables_identical(patched, self._table(new_graph, 2))

    def test_retain_is_patch_with_no_additions(self):
        table = self._table(gnm_random_graph(6, 8, seed=7), 2)
        keep = np.zeros(table.num_marked, dtype=bool)
        keep[::2] = True
        kept = table.retain(keep)
        masks, _ = table.ascending()
        want, _ = kept.ascending()
        assert np.array_equal(want, masks[keep])

    def test_keep_shape_mismatch_rejected(self):
        table = self._table(gnm_random_graph(5, 6, seed=8), 2)
        with pytest.raises(ValueError):
            table.retain(np.ones(table.num_marked + 1, dtype=bool))


class TestCachePatch:
    def test_patch_equals_fresh_sweep(self):
        cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(8, 15, seed=9))
        cache.table(dg.snapshot(), 2)
        old_graph = dg.snapshot()
        dg.add_edge(*next(
            (u, v) for u in range(8) for v in range(u + 1, 8)
            if not dg.has_edge(u, v)
        ))
        edit = dg.journal[-1]
        patched = cache.patch(old_graph, dg.snapshot(), 2, edit.op, edit.u, edit.v)
        fresh = MarkedSetCache().table(dg.snapshot(), 2)
        assert_tables_identical(patched, fresh)
        stats = cache.stats()
        assert stats["patches"] == 1
        assert stats["misses"] == 1  # no second sweep
        assert stats["reused_partitions"] == patched.num_marked - int(
            kplex_mask_status(
                dg.snapshot(), 2, _masks_containing(8, edit.u, edit.v)
            ).sum()
        )

    def test_patch_without_old_table_returns_none(self):
        cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(6, 8, seed=10))
        old_graph = dg.snapshot()
        dg.remove_edge(*sorted(old_graph.edges)[0])
        edit = dg.journal[-1]
        assert cache.patch(old_graph, dg.snapshot(), 2, edit.op, edit.u, edit.v) is None
        assert cache.stats()["patches"] == 0

    def test_patch_to_known_graph_reuses_entry(self):
        # Toggling an edge back lands on an already-cached key: the
        # existing table is returned, no work is re-done.
        cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(6, 8, seed=11))
        g0 = dg.snapshot()
        t0 = cache.table(g0, 2)
        u, v = sorted(g0.edges)[0]
        dg.remove_edge(u, v)
        g1 = dg.snapshot()
        cache.patch(g0, g1, 2, "remove_edge", u, v)
        dg.add_edge(u, v)
        back = cache.patch(g1, dg.snapshot(), 2, "add_edge", u, v)
        assert back is t0
        assert cache.stats()["patches"] == 1

    def test_patch_validates_op_and_endpoints(self):
        cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(5, 5, seed=12))
        g = dg.snapshot()
        with pytest.raises(ValueError):
            cache.patch(g, g, 2, "recolor")
        cache.table(g, 2)
        dg.add_edge(*next(
            (u, v) for u in range(5) for v in range(u + 1, 5)
            if not dg.has_edge(u, v)
        ))
        # Endpoint validation fires once past the cached-target shortcut.
        with pytest.raises(ValueError):
            cache.patch(g, dg.snapshot(), 2, "add_edge", 1, 1)

    def test_vertex_patch_requires_growth_by_one(self):
        cache = MarkedSetCache()
        g = gnm_random_graph(5, 5, seed=13)
        cache.table(g, 2)
        bigger = Graph(7, list(g.edges))
        with pytest.raises(ValueError):
            cache.patch(g, bigger, 2, "add_vertex")


class TestBatchPatch:
    """Fused multi-edge patching: one re-sweep, byte-identical."""

    def _absent_edges(self, graph):
        n = graph.num_vertices
        return [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if not graph.has_edge(u, v)
        ]

    def test_fused_equals_sequential_and_fresh(self):
        fused_cache = MarkedSetCache()
        seq_cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(8, 12, seed=21))
        g0 = dg.snapshot()
        fused_cache.table(g0, 2)
        seq_cache.table(g0, 2)
        edges = self._absent_edges(g0)[:3]
        snapshots = [g0]
        for u, v in edges:
            dg.add_edge(u, v)
            snapshots.append(dg.snapshot())
        fused = fused_cache.patch_batch(g0, snapshots[-1], 2, edges)
        for i, (u, v) in enumerate(edges):
            seq = seq_cache.patch(
                snapshots[i], snapshots[i + 1], 2, "add_edge", u, v
            )
        fresh = MarkedSetCache().table(snapshots[-1], 2)
        assert_tables_identical(fused, fresh)
        assert_tables_identical(seq, fresh)
        # The whole batch charges exactly one patch, vs one per edit.
        assert fused_cache.stats()["patches"] == 1
        assert seq_cache.stats()["patches"] == len(edges)

    @pytest.mark.parametrize("k,seed,batch", [(1, 31, 2), (2, 32, 4), (3, 33, 3)])
    def test_fused_byte_identical_across_params(self, k, seed, batch):
        cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(7, 9, seed=seed))
        g0 = dg.snapshot()
        cache.table(g0, k)
        edges = self._absent_edges(g0)[:batch]
        for u, v in edges:
            dg.add_edge(u, v)
        fused = cache.patch_batch(g0, dg.snapshot(), k, edges)
        assert_tables_identical(fused, MarkedSetCache().table(dg.snapshot(), k))

    def test_overlapping_subspaces_deduplicated(self):
        # Edges sharing an endpoint pin overlapping 2^(n-2) subspaces;
        # the union sweep must not double-count the intersection.
        cache = MarkedSetCache()
        dg = DynamicGraph(Graph(6, [(0, 1), (2, 3)]))
        g0 = dg.snapshot()
        cache.table(g0, 2)
        edges = [(0, 4), (0, 5), (4, 5)]
        for u, v in edges:
            dg.add_edge(u, v)
        fused = cache.patch_batch(g0, dg.snapshot(), 2, edges)
        assert_tables_identical(fused, MarkedSetCache().table(dg.snapshot(), 2))

    def test_validation(self):
        cache = MarkedSetCache()
        g = gnm_random_graph(6, 8, seed=34)
        cache.table(g, 2)
        with pytest.raises(ValueError):
            cache.patch_batch(g, g, 2, [])
        with pytest.raises(ValueError):
            cache.patch_batch(g, g, 2, [(1, 1)])
        bigger = Graph(7, list(g.edges))
        with pytest.raises(ValueError):
            cache.patch_batch(g, bigger, 2, [(0, 1)])

    def test_without_old_table_returns_none(self):
        cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(6, 8, seed=35))
        g0 = dg.snapshot()
        u, v = self._absent_edges(g0)[0]
        dg.add_edge(u, v)
        assert cache.patch_batch(g0, dg.snapshot(), 2, [(u, v)]) is None
        assert cache.stats()["patches"] == 0

    def test_cached_target_shortcut(self):
        cache = MarkedSetCache()
        dg = DynamicGraph(gnm_random_graph(6, 8, seed=36))
        g0 = dg.snapshot()
        u, v = self._absent_edges(g0)[0]
        dg.add_edge(u, v)
        g1 = dg.snapshot()
        target = cache.table(g1, 2)
        cache.table(g0, 2)
        assert cache.patch_batch(g0, g1, 2, [(u, v)]) is target
        assert cache.stats()["patches"] == 0
