"""Property-based tests: incremental re-solves equal cold solves.

Hypothesis drives random graphs through random edit streams and pins
the exact profile's contract at every step: the incremental result is
byte-identical (subset, oracle calls, gate units, probe progression) to
a cold :func:`repro.core.qmkp` solve of the post-edit graph with the
step's own seed, and the session ledger's reuse claims reconcile.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core import qmkp
from repro.dynamic import DynamicGraph, Edit, IncrementalSolver, surviving_kplex
from repro.graphs import Graph
from repro.kplex import is_kplex, maximum_kplex
from repro.obs import Tracer
from repro.perf import kplex_masks


@st.composite
def graphs(draw, min_n=3, max_n=7):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    return Graph(n, edges)


@st.composite
def edit_streams(draw, graph, max_edits=4, allow_addv=True):
    """A legal edit sequence for ``graph`` (toggles tracked statefully)."""
    n = graph.num_vertices
    present = {tuple(sorted(e)) for e in graph.edges}
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_edits))):
        choices = ["toggle"]
        if allow_addv and n < 8:
            choices.append("addv")
        kind = draw(st.sampled_from(choices))
        if kind == "addv":
            ops.append(Edit("add_vertex"))
            n += 1
            continue
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        u, v = draw(st.sampled_from(pairs))
        if (u, v) in present:
            present.discard((u, v))
            ops.append(Edit("remove_edge", u, v))
        else:
            present.add((u, v))
            ops.append(Edit("add_edge", u, v))
    return ops


class TestExactEquivalence:
    @given(data=st.data(), k=st.integers(1, 3), seed=st.integers(0, 999))
    @settings(max_examples=25, deadline=None)
    def test_every_step_matches_cold_solve(self, data, k, seed):
        graph = data.draw(graphs())
        edits = data.draw(edit_streams(graph))
        tracer = Tracer()
        session = IncrementalSolver(graph, k, seed=seed, tracer=tracer)
        session.resolve()
        for edit in edits:
            session.apply(edit)
            step = session.resolve()
            cold = qmkp(
                session.graph.snapshot(), k, rng=session.step_rng(step.step)
            )
            assert step.subset == cold.subset
            assert step.result.oracle_calls == cold.oracle_calls
            assert step.result.gate_units == cold.gate_units
            assert step.result.progression == cold.progression
        assert session.cache.stats()["misses"] == 1
        session.ledger().verify()

    @given(data=st.data(), k=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_patched_tables_match_fresh_sweeps(self, data, k):
        graph = data.draw(graphs())
        edits = data.draw(edit_streams(graph))
        session = IncrementalSolver(graph, k, seed=0)
        session.resolve()
        session.apply_edits(edits)
        session.resolve()
        table = session.cache.table(session.graph.snapshot(), k)
        want, _ = kplex_masks(session.graph.snapshot(), k)
        got, _ = table.ascending()
        assert np.array_equal(got, want)
        assert session.cache.stats()["misses"] == 1


class TestWarmEquivalence:
    @given(data=st.data(), k=st.integers(1, 3), seed=st.integers(0, 99))
    @settings(max_examples=15, deadline=None)
    def test_warm_profile_finds_same_optimum_size(self, data, k, seed):
        graph = data.draw(graphs(min_n=4))
        edits = data.draw(edit_streams(graph, max_edits=3, allow_addv=False))
        session = IncrementalSolver(graph, k, profile="warm", seed=seed)
        session.resolve()
        for edit in edits:
            session.apply(edit)
            step = session.resolve()
            reference = maximum_kplex(session.graph.snapshot(), k)
            assert step.size == reference.size
            assert is_kplex(session.graph.snapshot(), step.subset, k)


class TestSurvivingKplex:
    @given(data=st.data(), k=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_survivor_is_feasible_subset(self, data, k):
        graph = data.draw(graphs(min_n=4))
        optimum = maximum_kplex(graph, k).subset
        dg = DynamicGraph(graph)
        for edit in data.draw(edit_streams(graph, allow_addv=False)):
            dg.apply(edit)
        survivor = surviving_kplex(dg.snapshot(), optimum, k)
        if survivor is not None:
            assert survivor <= optimum
            assert is_kplex(dg.snapshot(), survivor, k)

    @given(data=st.data(), k=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_still_valid_subset_is_returned_verbatim(self, data, k):
        graph = data.draw(graphs(min_n=4))
        optimum = maximum_kplex(graph, k).subset
        assert surviving_kplex(graph, optimum, k) == optimum


class TestBatchFusion:
    """Fused all-insertion batches keep every exact-profile guarantee."""

    @st.composite
    @staticmethod
    def _insert_batches(draw, graph, min_edits=2, max_edits=4):
        n = graph.num_vertices
        absent = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if not graph.has_edge(u, v)
        ]
        count = draw(st.integers(min_edits, min(max_edits, len(absent))))
        return draw(
            st.lists(
                st.sampled_from(absent),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )

    @given(data=st.data(), k=st.integers(1, 3), seed=st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_fused_step_matches_cold_solve(self, data, k, seed):
        graph = data.draw(graphs(min_n=4))
        n = graph.num_vertices
        if len(graph.edges) > n * (n - 1) // 2 - 2:
            return  # not enough absent edges to form a batch
        batch = data.draw(self._insert_batches(graph))
        tracer = Tracer()
        session = IncrementalSolver(graph, k, seed=seed, tracer=tracer)
        session.resolve()
        for u, v in batch:
            session.add_edge(u, v)
        step = session.resolve()
        cold = qmkp(
            session.graph.snapshot(), k, rng=session.step_rng(step.step)
        )
        assert step.subset == cold.subset
        assert step.result.oracle_calls == cold.oracle_calls
        assert step.result.gate_units == cold.gate_units
        assert step.result.progression == cold.progression
        stats = session.cache.stats()
        assert stats["misses"] == 1  # the batch never re-swept from cold
        assert stats["patches"] == 1  # ...and fused into a single patch
        session.ledger().verify()

    @given(data=st.data(), k=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_fused_equals_sequential_patching(self, data, k):
        from repro.perf import MarkedSetCache

        graph = data.draw(graphs(min_n=4))
        n = graph.num_vertices
        if len(graph.edges) > n * (n - 1) // 2 - 2:
            return
        batch = data.draw(self._insert_batches(graph))
        fused_cache = MarkedSetCache()
        seq_cache = MarkedSetCache()
        fused_cache.table(graph, k)
        seq_cache.table(graph, k)
        dg = DynamicGraph(graph)
        snapshots = [graph]
        for u, v in batch:
            dg.add_edge(u, v)
            snapshots.append(dg.snapshot())
        fused = fused_cache.patch_batch(graph, snapshots[-1], k, batch)
        for i, (u, v) in enumerate(batch):
            seq = seq_cache.patch(
                snapshots[i], snapshots[i + 1], k, "add_edge", u, v
            )
        assert np.array_equal(fused._by_size, seq._by_size)
        assert np.array_equal(fused._offsets, seq._offsets)
        assert fused._by_size.dtype == seq._by_size.dtype
        assert fused_cache.stats()["patches"] == 1
        assert seq_cache.stats()["patches"] == len(batch)
