"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import figure1_graph
from repro.graphs import Graph, gnm_random_graph


@pytest.fixture
def fig1() -> Graph:
    """The paper's 6-vertex running example."""
    return figure1_graph()


@pytest.fixture
def petersen_like() -> Graph:
    """A small structured graph: the 5-cycle with chords."""
    return Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=[0, 1, 2])
def small_random_graph(request) -> Graph:
    """Three seeded 7-vertex random graphs."""
    return gnm_random_graph(7, 10, seed=request.param)
