"""Pure-Python 0/1 branch-and-bound for QUBO minimisation.

A dependency-free fallback (and cross-check) for the HiGHS backend.
Works directly on the quadratic model: depth-first search over variable
assignments with a term-wise optimistic bound — every not-yet-decided
term contributes its most favourable value independently, which is a
valid lower bound and cheap to maintain incrementally.

Practical to a few dozen variables; the test suite uses it to certify
optima that the samplers and HiGHS should agree with.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..annealing import BinaryQuadraticModel

__all__ = ["BnBResult", "solve_branch_bound"]

_VARIABLE_LIMIT = 64


@dataclass(frozen=True)
class BnBResult:
    """Optimal assignment with search statistics."""

    assignment: dict[object, int]
    energy: float
    nodes: int
    proven_optimal: bool


def solve_branch_bound(
    bqm: BinaryQuadraticModel,
    time_limit_s: float | None = None,
) -> BnBResult:
    """Minimise ``bqm`` exactly (or best-found within the time limit)."""
    order = sorted(
        bqm.variables,
        key=lambda v: abs(bqm.linear.get(v, 0.0)),
        reverse=True,
    )
    n = len(order)
    if n > _VARIABLE_LIMIT:
        raise ValueError(
            f"branch and bound refuses {n} > {_VARIABLE_LIMIT} variables; "
            "use solve_with_highs instead"
        )
    index = {v: i for i, v in enumerate(order)}
    linear = [bqm.linear.get(v, 0.0) for v in order]
    pair_terms: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for (u, v), bias in bqm.quadratic.items():
        if bias == 0.0:
            continue
        iu, iv = index[u], index[v]
        lo, hi = min(iu, iv), max(iu, iv)
        pair_terms[hi].append((lo, bias))  # resolved when `hi` is assigned

    # Optimistic slack: sum of every negative coefficient not yet decided.
    neg_total = sum(b for b in linear if b < 0.0) + sum(
        bias for terms in pair_terms for (_i, bias) in terms if bias < 0.0
    )

    best_energy = float("inf")
    best_x: list[int] = [0] * n
    x = [0] * n
    nodes = 0
    deadline = None if time_limit_s is None else time.monotonic() + time_limit_s
    timed_out = False

    def dfs(depth: int, partial: float, remaining_neg: float) -> None:
        nonlocal best_energy, best_x, nodes, timed_out
        nodes += 1
        if timed_out or (deadline is not None and time.monotonic() > deadline):
            timed_out = True
            return
        if partial + remaining_neg >= best_energy:
            return
        if depth == n:
            if partial < best_energy:
                best_energy = partial
                best_x = x[:]
            return
        # Negative coefficients becoming decided at this depth.
        dropped = min(linear[depth], 0.0) + sum(
            min(b, 0.0) for _i, b in pair_terms[depth]
        )
        for value in (1, 0):
            x[depth] = value
            delta = 0.0
            if value:
                delta += linear[depth]
                delta += sum(b for i, b in pair_terms[depth] if x[i])
            dfs(depth + 1, partial + delta, remaining_neg - dropped)
        x[depth] = 0

    dfs(0, bqm.offset, neg_total)
    assignment = {v: best_x[index[v]] for v in order}
    return BnBResult(assignment, best_energy, nodes, proven_optimal=not timed_out)
