"""QUBO -> MILP linearisation (the paper's Gurobi baseline formulation).

Each product ``X_u * X_v`` in the QUBO objective is replaced by a fresh
continuous variable ``y_uv`` constrained by the standard McCormick
envelope for binaries (exactly the constraints quoted in the paper):

    y_uv <= X_u,    y_uv <= X_v,    y_uv >= X_u + X_v - 1,    y_uv >= 0

Diagonal terms use ``X_u^2 = X_u``.  The resulting model is
``min  offset + sum_u h_u X_u + sum_{u<v} Q_uv y_uv`` — Eq. (MILP) of
the paper — solvable by any LP/MILP engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..annealing import BinaryQuadraticModel

__all__ = ["LinearizedProblem", "linearize_qubo"]


@dataclass(frozen=True)
class LinearizedProblem:
    """Matrix form of the linearised QUBO.

    Attributes
    ----------
    c:
        Objective coefficients over ``[X variables..., y variables...]``.
    a_ub, b_ub:
        Inequality rows ``a_ub @ z <= b_ub`` (the McCormick envelope).
    integrality:
        1 for integer (the X block), 0 for continuous (the y block).
    offset:
        Constant added to the MILP optimum to recover the QUBO energy.
    x_variables:
        The original QUBO variables, in column order.
    y_pairs:
        The quadratic pair realised by each y column, in column order.
    """

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    integrality: np.ndarray
    offset: float
    x_variables: list[object]
    y_pairs: list[tuple[object, object]]

    @property
    def num_x(self) -> int:
        return len(self.x_variables)

    @property
    def num_y(self) -> int:
        return len(self.y_pairs)

    def decode(self, z: np.ndarray) -> dict[object, int]:
        """Round the X block of a solution vector into an assignment."""
        return {
            v: int(round(float(z[i]))) for i, v in enumerate(self.x_variables)
        }


def linearize_qubo(bqm: BinaryQuadraticModel) -> LinearizedProblem:
    """Build the MILP matrices for a binary quadratic model."""
    x_vars = bqm.variables
    x_index = {v: i for i, v in enumerate(x_vars)}
    pairs = [(u, v) for (u, v), bias in bqm.quadratic.items() if bias != 0.0]
    num_x, num_y = len(x_vars), len(pairs)
    total = num_x + num_y

    c = np.zeros(total)
    for v, bias in bqm.linear.items():
        c[x_index[v]] = bias
    for col, pair in enumerate(pairs):
        c[num_x + col] = bqm.quadratic[pair]

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    for col, (u, v) in enumerate(pairs):
        iu, iv = x_index[u], x_index[v]
        y_col = num_x + col
        row = np.zeros(total)  # y - X_u <= 0
        row[y_col], row[iu] = 1.0, -1.0
        rows.append(row)
        rhs.append(0.0)
        row = np.zeros(total)  # y - X_v <= 0
        row[y_col], row[iv] = 1.0, -1.0
        rows.append(row)
        rhs.append(0.0)
        row = np.zeros(total)  # X_u + X_v - y <= 1
        row[iu], row[iv], row[y_col] = 1.0, 1.0, -1.0
        rows.append(row)
        rhs.append(1.0)

    a_ub = np.vstack(rows) if rows else np.zeros((0, total))
    b_ub = np.asarray(rhs)
    integrality = np.concatenate([np.ones(num_x), np.zeros(num_y)])
    return LinearizedProblem(
        c=c,
        a_ub=a_ub,
        b_ub=b_ub,
        integrality=integrality,
        offset=bqm.offset,
        x_variables=x_vars,
        y_pairs=pairs,
    )
