"""HiGHS backend: solving the linearised QUBO with ``scipy.optimize.milp``.

HiGHS is the state-of-the-art open MILP engine bundled with SciPy; it
plays the role the Gurobi Optimizer plays in the paper, including the
runtime-limit knob the cost-vs-runtime curves sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..annealing import BinaryQuadraticModel
from .linearize import LinearizedProblem, linearize_qubo

__all__ = ["MilpResult", "solve_with_highs"]


@dataclass(frozen=True)
class MilpResult:
    """Outcome of a MILP solve.

    ``status`` is ``"optimal"``, ``"time_limit"`` (feasible incumbent
    returned at the deadline), or ``"no_solution"``.
    """

    assignment: dict[object, int] | None
    energy: float | None
    status: str
    backend: str
    runtime_limit_us: float | None = None

    @property
    def found(self) -> bool:
        return self.assignment is not None


def solve_with_highs(
    bqm: BinaryQuadraticModel,
    time_limit_us: float | None = None,
    problem: LinearizedProblem | None = None,
) -> MilpResult:
    """Minimise the QUBO via its linearisation with HiGHS.

    Parameters
    ----------
    bqm:
        The model to minimise.
    time_limit_us:
        Wall-clock budget in microseconds (matching the annealers'
        runtime unit); ``None`` means solve to optimality.
    problem:
        A pre-computed linearisation (rebuilt when omitted).
    """
    lin = problem or linearize_qubo(bqm)
    total = lin.num_x + lin.num_y
    constraints = []
    if lin.a_ub.shape[0]:
        constraints.append(
            LinearConstraint(lin.a_ub, -np.inf, lin.b_ub)
        )
    options: dict[str, object] = {}
    if time_limit_us is not None:
        options["time_limit"] = max(time_limit_us / 1e6, 1e-3)
    result = milp(
        c=lin.c,
        constraints=constraints,
        integrality=lin.integrality,
        bounds=Bounds(np.zeros(total), np.ones(total)),
        options=options,
    )
    if result.x is None:
        return MilpResult(None, None, "no_solution", "highs", time_limit_us)
    assignment = lin.decode(result.x)
    energy = bqm.energy(assignment)
    status = "optimal" if result.status == 0 else "time_limit"
    return MilpResult(assignment, energy, status, "highs", time_limit_us)
