"""MILP substrate: QUBO linearisation and exact solvers."""

from .branch_bound import BnBResult, solve_branch_bound
from .highs import MilpResult, solve_with_highs
from .linearize import LinearizedProblem, linearize_qubo
from .solve import solve_qubo_milp

__all__ = [
    "BnBResult",
    "LinearizedProblem",
    "MilpResult",
    "linearize_qubo",
    "solve_branch_bound",
    "solve_qubo_milp",
    "solve_with_highs",
]
