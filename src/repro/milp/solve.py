"""Facade: pick a MILP backend for QUBO minimisation."""

from __future__ import annotations

from ..annealing import BinaryQuadraticModel
from .branch_bound import solve_branch_bound
from .highs import MilpResult, solve_with_highs
from .linearize import linearize_qubo

__all__ = ["solve_qubo_milp"]


def solve_qubo_milp(
    bqm: BinaryQuadraticModel,
    time_limit_us: float | None = None,
    backend: str = "auto",
) -> MilpResult:
    """Minimise a QUBO through its MILP linearisation.

    Parameters
    ----------
    backend:
        ``"highs"`` (scipy's HiGHS engine, the Gurobi stand-in),
        ``"branch_bound"`` (pure-Python exact, small models only), or
        ``"auto"`` (HiGHS, falling back to branch and bound if scipy's
        engine is unavailable).
    """
    if backend not in ("auto", "highs", "branch_bound"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend in ("auto", "highs"):
        try:
            return solve_with_highs(bqm, time_limit_us, linearize_qubo(bqm))
        except Exception:
            if backend == "highs":
                raise
    limit_s = None if time_limit_us is None else time_limit_us / 1e6
    res = solve_branch_bound(bqm, time_limit_s=limit_s)
    status = "optimal" if res.proven_optimal else "time_limit"
    return MilpResult(res.assignment, res.energy, status, "branch_bound", time_limit_us)
