"""Command-line interface: ``qmkp`` (or ``python -m repro``).

Subcommands:

* ``solve``   — find a maximum k-plex with any of the implemented
  solvers (gate-based qmkp, annealing qamkp variants, classical exact
  branch-and-search, brute force);
* ``check``   — verify whether a vertex set is a k-plex of a graph;
* ``qubo``    — print statistics of the MKP QUBO formulation;
* ``oracle``  — print the qTKP oracle's qubit/gate budget per component;
* ``enumerate`` — list the maximal k-plexes (community detection);
* ``relax``   — maximum n-clan / n-club via the quantum subset search;
* ``draw``    — render the qTKP checking circuit as ASCII art;
* ``serve``   — run the supervised solver service against a file spool;
* ``submit``  — drop a solve request into a spool (and optionally wait);
* ``watch``   — stream an edit script through an incremental re-solve
  session (dynamic graphs).

Graphs are read as edge-list files (``u v`` per line, ``#`` comments);
edit scripts as ``add U V`` / ``del U V`` / ``addv [LABEL]`` lines in
the graph file's label space (see :mod:`repro.dynamic.edits`).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import format_table
from .core import build_mkp_qubo, qamkp, qmkp
from .core.oracle import KCplexOracle
from .graphs import read_edge_list
from .kplex import is_kplex, maximum_kplex, maximum_kplex_bruteforce

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qmkp",
        description="Quantum algorithms for the Maximum k-Plex Problem",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="find a maximum k-plex")
    solve.add_argument("graph", help="edge-list file")
    solve.add_argument("-k", type=int, default=2, help="plex parameter (default 2)")
    solve.add_argument(
        "--solver",
        choices=["qmkp", "qamkp-qpu", "qamkp-sa", "qamkp-hybrid", "bs", "bruteforce"],
        default="bs",
        help="algorithm (default: classical branch-and-search)",
    )
    solve.add_argument(
        "--runtime-us", type=float, default=1000.0,
        help="runtime budget for annealing solvers (default 1000)",
    )
    solve.add_argument("--seed", type=int, default=None, help="random seed")
    solve.add_argument(
        "--workers", type=int, default=None,
        help="qmkp: process-pool width for the bit-parallel marked-set "
        "sweep (worthwhile on large n)",
    )
    solve.add_argument(
        "--no-cache", action="store_true",
        help="qmkp: disable the cross-threshold marked-set cache "
        "(forces the per-probe predicate scan)",
    )
    solve.add_argument(
        "--anneal-workers", type=int, default=None,
        help="qamkp-sa: process-pool width for sharding SA reads "
        "(byte-identical to the single-process run)",
    )
    solve.add_argument(
        "--retries", type=int, default=0,
        help="qamkp-qpu: retries with backoff, debited from --runtime-us",
    )
    solve.add_argument(
        "--fallback", action="store_true",
        help="qamkp-qpu: degrade through sa -> tabu -> greedy on failure",
    )
    solve.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="qamkp-qpu: inject faults, e.g. 'transient=2,storm=0.5,seed=7'",
    )
    solve.add_argument(
        "--deadline", type=float, default=None, metavar="GATE_UNITS",
        help="qmkp: gate-unit budget shared across all threshold probes; "
        "on expiry the search degrades to the classical branch search",
    )
    solve.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="qmkp: write-ahead probe journal; if PATH already exists the "
        "run resumes from it (bit-identical to the uninterrupted run)",
    )
    solve.add_argument(
        "--inject-gate-faults", metavar="SPEC", default=None,
        help="qmkp: inject gate-stack faults, e.g. "
        "'transient=2,readout=0.5,depolarize=0.05,seed=7'; corrupted "
        "samples are rejected by the self-verifying measurement loop",
    )
    solve.add_argument(
        "--kernel", choices=["auto", "numpy", "numba", "cext"], default=None,
        help="compiled-kernel backend for the bit-parallel sweep and SA "
        "inner loops (default: the REPRO_KERNEL env var, else auto = "
        "fastest available; all backends are byte-identical)",
    )
    solve.add_argument(
        "--ladder", choices=["binary", "adaptive"], default="binary",
        help="qmkp: threshold-ladder strategy — 'binary' is the paper's "
        "Algorithm 3; 'adaptive' tracks incumbents from every measured "
        "feasible k-plex, carries the BBHT schedule across probes, and "
        "skips cache-proven-empty thresholds (same optimum, fewer "
        "probes)",
    )
    solve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="trace the solve and write the run-ledger JSON (span tree, "
        "metrics, reconciled totals) to PATH; exits 3 on ledger drift",
    )
    solve.add_argument(
        "--metrics", choices=["json", "prom"], default=None,
        help="print the metric registry to stdout after the solve "
        "(json, or Prometheus text exposition)",
    )

    check = sub.add_parser("check", help="verify a k-plex")
    check.add_argument("graph", help="edge-list file")
    check.add_argument("-k", type=int, default=2)
    check.add_argument("vertices", nargs="+", type=int, help="vertex ids (file labels)")

    qubo = sub.add_parser("qubo", help="QUBO formulation statistics")
    qubo.add_argument("graph", help="edge-list file")
    qubo.add_argument("-k", type=int, default=3)
    qubo.add_argument("-R", "--penalty", type=float, default=2.0)

    oracle = sub.add_parser("oracle", help="qTKP oracle resource budget")
    oracle.add_argument("graph", help="edge-list file")
    oracle.add_argument("-k", type=int, default=2)
    oracle.add_argument("-T", "--threshold", type=int, default=1)

    enum = sub.add_parser("enumerate", help="list maximal k-plexes")
    enum.add_argument("graph", help="edge-list file")
    enum.add_argument("-k", type=int, default=2)
    enum.add_argument("--min-size", type=int, default=2)
    enum.add_argument("--limit", type=int, default=50, help="max results")

    relax = sub.add_parser("relax", help="maximum n-clan / n-club")
    relax.add_argument("graph", help="edge-list file")
    relax.add_argument("--model", choices=["clan", "club"], default="club")
    relax.add_argument("-n", type=int, default=2, help="distance bound")
    relax.add_argument("--seed", type=int, default=None)

    draw = sub.add_parser("draw", help="draw the qTKP checking circuit")
    draw.add_argument("graph", help="edge-list file")
    draw.add_argument("-k", type=int, default=2)
    draw.add_argument("-T", "--threshold", type=int, default=1)

    serve = sub.add_parser(
        "serve", help="run the supervised solver service on a file spool"
    )
    serve.add_argument("spool", help="spool directory (created if missing)")
    serve.add_argument(
        "--workers", type=int, default=2, help="worker pool width (default 2)"
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=8,
        help="bounded fresh-job queue depth (default 8); submissions "
        "beyond it are rejected with a typed backpressure error",
    )
    serve.add_argument(
        "--max-resumes", type=int, default=3,
        help="crash-resume budget per job before it settles failed",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=None,
        help="serve this many requests then drain and exit (for tests/CI)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="exit after this long with an empty spool and no running jobs",
    )
    serve.add_argument(
        "--workdir", default=None,
        help="service workdir for checkpoints/receipts (default: under "
        "the spool, so suspended jobs resume across server restarts)",
    )
    serve.add_argument(
        "--tenant-budget", action="append", default=None,
        metavar="TENANT=GATE_UNITS",
        help="per-tenant admission pool, repeatable "
        "(e.g. --tenant-budget acme=50000)",
    )
    serve.add_argument(
        "--shared-cache", action="store_true",
        help="share one marked-set table store across all workers "
        "(identical graphs enumerate once per fleet, not once per job); "
        "stored under the workdir unless --shared-cache-dir is given",
    )
    serve.add_argument(
        "--shared-cache-dir", default=None, metavar="DIR",
        help="directory for the fleet-shared table store "
        "(implies --shared-cache)",
    )
    serve.add_argument(
        "--metrics", choices=["json", "prom"], default=None,
        help="print the service metric registry on exit",
    )
    serve.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="also serve the HTTP/SSE gateway on this address (PORT 0 "
        "picks a free port; the bound address is printed on startup)",
    )
    serve.add_argument(
        "--spool-retention", type=float, default=None, metavar="SECONDS",
        help="garbage-collect settled spool records older than this "
        "(default: keep forever); live and resumable artifacts are "
        "never touched",
    )

    submit = sub.add_parser(
        "submit", help="submit a solve request to a service spool"
    )
    submit.add_argument(
        "spool", nargs="?", default=None,
        help="spool directory of a running server (omit with --url)",
    )
    submit.add_argument("graph", help="edge-list file")
    submit.add_argument("-k", type=int, default=2)
    submit.add_argument(
        "--solver",
        choices=["qmkp", "qamkp-qpu", "qamkp-sa", "qamkp-hybrid", "bs"],
        default="qmkp",
    )
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--tenant", default="default")
    submit.add_argument(
        "--name", default=None,
        help="request name (also the spool artifact basename)",
    )
    submit.add_argument(
        "--deadline", type=float, default=None, metavar="GATE_UNITS",
        help="qmkp: per-job gate-unit deadline budget",
    )
    submit.add_argument(
        "--runtime-us", type=float, default=1000.0,
        help="annealing backends' runtime budget",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the result file appears and print the answer",
    )
    submit.add_argument(
        "--timeout", type=float, default=120.0,
        help="--wait timeout in seconds (default 120)",
    )
    submit.add_argument(
        "--edits", metavar="PATH", default=None,
        help="edit-script file: submit a dynamic mutation job (qmkp "
        "only) that re-solves incrementally after every edit",
    )
    submit.add_argument(
        "--url", default=None, metavar="http://HOST:PORT",
        help="submit over the HTTP gateway instead of a spool; "
        "idempotent and reconnect-resumable (implies streaming "
        "incumbents when combined with --wait)",
    )

    watch = sub.add_parser(
        "watch", help="incremental re-solves over a graph edit stream"
    )
    watch.add_argument("graph", help="edge-list file (the initial graph)")
    watch.add_argument(
        "edits",
        help="edit-script file: 'add U V' / 'del U V' / 'addv [LABEL]' "
        "per line, in the graph file's vertex labels",
    )
    watch.add_argument("-k", type=int, default=2, help="plex parameter (default 2)")
    watch.add_argument(
        "--solver", choices=["qmkp", "bs", "qamkp-sa"], default="qmkp",
        help="per-step solver (default qmkp)",
    )
    watch.add_argument(
        "--profile", choices=["exact", "warm"], default="exact",
        help="reuse profile: 'exact' patches marked-set tables only "
        "(every step byte-identical to a cold solve); 'warm' adds "
        "incumbent/sampleset carry-over (same optimum size, different "
        "randomness)",
    )
    watch.add_argument(
        "--seed", type=int, default=0,
        help="session seed; step i solves with default_rng([seed, i])",
    )
    watch.add_argument(
        "--every", type=int, default=1, metavar="N",
        help="re-solve after every N edits (default 1)",
    )
    watch.add_argument(
        "--check", action="store_true",
        help="cold-solve every step and compare against the incremental "
        "result; exits 4 on any disagreement",
    )
    watch.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="qmkp: per-step write-ahead journals (stepNNNN.wal) under "
        "DIR; an interrupted stream resumes bit-identically",
    )
    watch.add_argument(
        "--ladder", choices=["binary", "adaptive"], default="binary",
        help="qmkp: threshold-ladder strategy (see 'solve --ladder')",
    )
    watch.add_argument(
        "--runtime-us", type=float, default=1000.0,
        help="qamkp-sa: per-step runtime budget (default 1000)",
    )
    watch.add_argument(
        "--kernel", choices=["auto", "numpy", "numba", "cext"], default=None,
        help="kernel backend for sweeps/patches/anneals",
    )
    watch.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the per-step results as JSON to PATH",
    )
    watch.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the session run-ledger JSON to PATH; exits 3 on "
        "ledger drift (reuse claims are reconciled per step)",
    )
    watch.add_argument(
        "--metrics", choices=["json", "prom"], default=None,
        help="print the metric registry after the stream",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # The service commands manage their own graph I/O (the worker child
    # reads the graph; the parent never needs it in memory).
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    try:
        graph, labels = read_edge_list(args.graph)
    except OSError as exc:
        print(f"error: cannot read {args.graph}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {args.graph}: {exc}", file=sys.stderr)
        return 2
    if args.command == "solve":
        return _cmd_solve(args, graph, labels)
    if args.command == "check":
        return _cmd_check(args, graph, labels)
    if args.command == "qubo":
        return _cmd_qubo(args, graph)
    if args.command == "oracle":
        return _cmd_oracle(args, graph)
    if args.command == "enumerate":
        return _cmd_enumerate(args, graph, labels)
    if args.command == "relax":
        return _cmd_relax(args, graph, labels)
    if args.command == "watch":
        return _cmd_watch(args, graph, labels)
    return _cmd_draw(args, graph)


def _translate(subset, labels) -> list[object]:
    return sorted(labels[v] for v in subset)


def _cmd_solve(args, graph, labels) -> int:
    import numpy as np

    if args.solver != "qmkp" and (args.workers is not None or args.no_cache):
        print(
            "error: --workers/--no-cache require --solver qmkp",
            file=sys.stderr,
        )
        return 2
    if args.solver != "qmkp" and (
        args.deadline is not None
        or args.checkpoint is not None
        or args.inject_gate_faults is not None
    ):
        print(
            "error: --deadline/--checkpoint/--inject-gate-faults require "
            "--solver qmkp",
            file=sys.stderr,
        )
        return 2
    if args.anneal_workers is not None and args.solver != "qamkp-sa":
        print(
            "error: --anneal-workers requires --solver qamkp-sa",
            file=sys.stderr,
        )
        return 2
    tracer = None
    if args.trace or args.metrics:
        from .obs import Tracer

        tracer = Tracer()
    if args.solver == "bruteforce":
        subset = maximum_kplex_bruteforce(graph, args.k)
    elif args.solver == "bs":
        subset = maximum_kplex(graph, args.k).subset
    elif args.solver == "qmkp":
        from .resilience import CheckpointError, CheckpointJournal, GateFaultPlan

        rng = np.random.default_rng(args.seed)
        # resumable() treats a zero-length or torn-header journal — a
        # crash before the first fsync completed — as "nothing to
        # resume", so the run starts fresh instead of exiting 2.
        resume = (
            args.checkpoint
            if args.checkpoint is not None
            and CheckpointJournal.resumable(args.checkpoint)
            else None
        )
        try:
            gate_plan = (
                GateFaultPlan.parse(args.inject_gate_faults)
                if args.inject_gate_faults
                else None
            )
        except ValueError as exc:
            print(f"error: --inject-gate-faults: {exc}", file=sys.stderr)
            return 2
        try:
            result = qmkp(
                graph, args.k, rng=rng,
                use_cache=not args.no_cache, workers=args.workers,
                ladder=args.ladder, kernel=args.kernel,
                tracer=tracer,
                deadline=args.deadline,
                checkpoint=args.checkpoint,
                resume=resume,
                gate_faults=gate_plan,
            )
        except CheckpointError as exc:
            print(f"error: checkpoint: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            if args.checkpoint is None:
                raise
            # Every completed probe is already fsynced in the journal;
            # nothing to flush — just tell the operator how to pick the
            # run back up and exit with the conventional SIGINT code.
            print(
                f"interrupted; resumable at {args.checkpoint}",
                file=sys.stderr,
            )
            return 130
        subset = result.subset
        if result.resumed_probes:
            print(
                f"resumed {result.resumed_probes} probe(s) from "
                f"{args.checkpoint}"
            )
        if result.skipped_thresholds:
            print(
                f"adaptive ladder skipped {result.skipped_thresholds} "
                "cache-proven-empty threshold(s)"
            )
        if result.degraded_to:
            print(
                f"deadline expired after {result.gate_units} gate units; "
                f"degraded to {result.degraded_to}"
            )
        if result.verification is not None:
            v = result.verification
            print(
                f"gate faults injected: {len(v['faults'])} | "
                f"measurements verified: {v['verified']}/{v['measurements']} | "
                f"false positives rejected: {v['false_positives']} | "
                f"transient retries: {v['transient_retries']}"
            )
    else:
        from .annealing import EmbeddingError, QPURuntimeExceeded
        from .resilience import BudgetExhausted, CircuitOpenError

        backend = args.solver.split("-", 1)[1]
        if args.inject_faults and backend != "qpu":
            print(
                "error: --inject-faults requires --solver qamkp-qpu",
                file=sys.stderr,
            )
            return 2
        try:
            result = qamkp(
                graph, args.k, runtime_us=args.runtime_us,
                solver=backend, seed=args.seed,
                retries=args.retries, fallback=args.fallback,
                fault_plan=args.inject_faults,
                sa_workers=args.anneal_workers,
                kernel=args.kernel,
                tracer=tracer,
            )
        except (
            EmbeddingError, QPURuntimeExceeded, BudgetExhausted, CircuitOpenError,
        ) as exc:
            print(
                f"error: {backend} solve failed ({exc}); "
                "re-run with --fallback to degrade to a classical backend",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        subset = result.repaired
        print(f"objective cost: {result.cost}")
        if not is_kplex(graph, subset, args.k):
            print(
                f"warning: repair produced an infeasible set of size "
                f"{len(subset)}; result is not a valid {args.k}-plex",
                file=sys.stderr,
            )
        resilience = result.info.get("resilience")
        if resilience:
            print(
                f"backend: {result.info.get('backend_used', backend)} | "
                f"attempts: {len(resilience['attempts'])} | "
                f"faults: {len(resilience['faults'])} | "
                f"charged: {resilience['charged_us']:.0f}/"
                f"{resilience['budget_us']:.0f} us"
            )
    print(f"maximum {args.k}-plex size: {len(subset)}")
    print(f"vertices: {_translate(subset, labels)}")
    if tracer is not None:
        return _emit_observability(args, tracer)
    return 0


def _emit_observability(args, tracer) -> int:
    """Write the ledger / print metrics for a traced solve; 3 on drift.

    The drift check is intentionally not best-effort: a traced CLI run
    that fails to reconcile exits nonzero so CI catches accounting bugs.
    """
    import json

    from .obs import RunLedger

    ledger = RunLedger.from_tracer(
        tracer,
        meta={
            "command": args.command,
            "solver": args.solver,
            "graph": args.graph,
            "k": args.k,
        },
    )
    drift = ledger.verify(raise_on_drift=False)
    if args.trace:
        ledger.to_json(args.trace)
    if args.metrics == "json":
        print(json.dumps(tracer.registry.as_dict(), indent=2, sort_keys=True))
    elif args.metrics == "prom":
        print(tracer.registry.render_prometheus(), end="")
    if drift:
        for record in drift:
            print(f"error: ledger drift: {record}", file=sys.stderr)
        return 3
    return 0


def _cmd_check(args, graph, labels) -> int:
    inverse = {label: v for v, label in labels.items()}
    try:
        subset = {inverse[v] for v in args.vertices}
    except KeyError as exc:
        print(f"unknown vertex {exc}", file=sys.stderr)
        return 2
    verdict = is_kplex(graph, subset, args.k)
    print(f"{sorted(args.vertices)} is{'' if verdict else ' NOT'} a {args.k}-plex")
    return 0 if verdict else 1


def _cmd_qubo(args, graph) -> int:
    model = build_mkp_qubo(graph, args.k, args.penalty)
    rows = [
        ("vertices", graph.num_vertices),
        ("edges", graph.num_edges),
        ("vertex variables", graph.num_vertices),
        ("slack variables", model.num_slack_variables),
        ("total variables", model.num_variables),
        ("quadratic terms", model.bqm.num_interactions),
        ("penalty R", args.penalty),
    ]
    print(format_table(["quantity", "value"], rows, title="MKP QUBO statistics"))
    return 0


def _cmd_oracle(args, graph) -> int:
    oracle = KCplexOracle(graph.complement(), args.k, args.threshold)
    costs = oracle.component_costs()
    rows = [
        ("qubits (U_check)", oracle.num_qubits),
        ("encode gates", costs.encode),
        ("degree count gates", costs.degree_count),
        ("degree compare gates", costs.degree_compare),
        ("size check gates", costs.size_check),
        ("total per oracle call", costs.total),
    ]
    print(format_table(["quantity", "value"], rows, title="qTKP oracle budget"))
    return 0


def _cmd_enumerate(args, graph, labels) -> int:
    from .kplex import enumerate_maximal_kplexes

    count = 0
    for plex in enumerate_maximal_kplexes(
        graph, args.k, min_size=args.min_size, max_results=args.limit
    ):
        count += 1
        print(f"size {len(plex)}: {_translate(plex, labels)}")
    print(f"{count} maximal {args.k}-plex(es) of size >= {args.min_size}")
    return 0


def _cmd_relax(args, graph, labels) -> int:
    import numpy as np

    from .core import maximum_nclan_quantum, maximum_nclub_quantum

    rng = np.random.default_rng(args.seed)
    search = maximum_nclan_quantum if args.model == "clan" else maximum_nclub_quantum
    result = search(graph, args.n, rng=rng)
    print(f"maximum {args.n}-{args.model} size: {result.size}")
    print(f"vertices: {_translate(result.subset, labels)}")
    print(f"oracle calls: {result.oracle_calls}")
    return 0


def _cmd_watch(args, graph, labels) -> int:
    import json

    import numpy as np

    from .dynamic import IncrementalSolver, apply_labelled_edit, read_edits

    if args.every < 1:
        print(f"error: --every must be >= 1, got {args.every}", file=sys.stderr)
        return 2
    if args.check and args.solver == "qamkp-sa" and args.profile == "warm":
        print(
            "error: --check cannot cold-verify warm-started SA (the warm "
            "start legitimately changes the sampleset); use --profile "
            "exact or drop --check",
            file=sys.stderr,
        )
        return 2
    try:
        edits = read_edits(args.edits)
    except OSError as exc:
        print(f"error: cannot read {args.edits}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {args.edits}: {exc}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace or args.metrics:
        from .obs import Tracer

        tracer = Tracer()
    labels = dict(labels)
    session = IncrementalSolver(
        graph, args.k, solver=args.solver, profile=args.profile,
        seed=args.seed, ladder=args.ladder, runtime_us=args.runtime_us,
        kernel=args.kernel, tracer=tracer, checkpoint_dir=args.checkpoint_dir,
    )
    steps: list[dict[str, object]] = []
    mismatches = 0

    def cold_check(step) -> tuple[bool, str]:
        """Re-solve the step's graph cold and compare; True = agreement."""
        snapshot = session.graph.snapshot()
        if args.solver == "qmkp":
            cold = qmkp(
                snapshot, args.k, rng=np.random.default_rng([args.seed, step.step]),
                ladder=args.ladder, kernel=args.kernel,
            )
            if args.profile == "exact":
                same = (
                    cold.subset == step.subset
                    and cold.oracle_calls == step.result.oracle_calls
                    and cold.gate_units == step.result.gate_units
                    and cold.progression == step.result.progression
                )
                return same, (
                    f"cold size={len(cold.subset)} calls={cold.oracle_calls}"
                )
            return len(cold.subset) == step.size, f"cold size={len(cold.subset)}"
        if args.solver == "bs":
            cold = maximum_kplex(snapshot, args.k)
            return len(cold.subset) == step.size, f"cold size={len(cold.subset)}"
        cold = qamkp(
            snapshot, args.k, solver="sa", runtime_us=args.runtime_us,
            seed=session.step_sa_seed(step.step), kernel=args.kernel,
        )
        return cold.repaired == step.subset, f"cold size={len(cold.repaired)}"

    def run_step() -> None:
        nonlocal mismatches
        step = session.resolve()
        line = (
            f"step {step.step}"
            + (f" [{'; '.join(e.as_line() for e in step.edits)}]" if step.edits else "")
            + f": size={step.size} vertices={_translate(step.subset, labels)}"
        )
        if step.reused_partitions:
            line += f" reused={step.reused_partitions}"
        if step.warm_start_hits:
            line += " warm"
        if step.resumed_probes:
            line += f" resumed={step.resumed_probes}"
        record: dict[str, object] = {
            "step": step.step,
            "edits": [e.as_line() for e in step.edits],
            "fingerprint": step.fingerprint,
            "size": step.size,
            "vertices": _translate(step.subset, labels),
            "reused_partitions": step.reused_partitions,
            "warm_start_hits": step.warm_start_hits,
            "resumed_probes": step.resumed_probes,
        }
        if args.solver == "qmkp":
            record["oracle_calls"] = step.result.oracle_calls
            record["gate_units"] = step.result.gate_units
        if args.check:
            same, detail = cold_check(step)
            record["check"] = "ok" if same else "MISMATCH"
            if not same:
                mismatches += 1
                line += f"  << MISMATCH vs cold solve ({detail})"
            else:
                line += "  (check ok)"
        print(line)
        steps.append(record)

    try:
        run_step()  # step 0: the unedited graph, before any mutation
        for start in range(0, len(edits), args.every):
            for edit in edits[start:start + args.every]:
                apply_labelled_edit(session, edit, labels)
            run_step()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        doc = {
            "graph": args.graph,
            "edits": args.edits,
            "k": args.k,
            "solver": args.solver,
            "profile": args.profile,
            "seed": args.seed,
            "steps": steps,
        }
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    stats = session.cache.stats()
    print(
        f"{len(steps)} step(s); cache: {stats['misses']} sweep(s), "
        f"{stats['patches']} patch(es), {stats['reused_partitions']} "
        "mask(s) reused without re-evaluation"
    )
    if tracer is not None:
        rc = _emit_observability(args, tracer)
        if rc:
            return rc
    if mismatches:
        print(
            f"error: {mismatches} step(s) disagreed with the cold solve",
            file=sys.stderr,
        )
        return 4
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    from pathlib import Path

    from .service import ServiceConfig, Supervisor, serve_spool

    budgets: dict[str, float] = {}
    for item in args.tenant_budget or []:
        tenant, sep, amount = item.partition("=")
        if not sep or not tenant:
            print(
                f"error: --tenant-budget expects TENANT=GATE_UNITS, got {item!r}",
                file=sys.stderr,
            )
            return 2
        try:
            budgets[tenant] = float(amount)
        except ValueError:
            print(
                f"error: --tenant-budget {item!r}: not a number", file=sys.stderr
            )
            return 2
    workdir = args.workdir or str(Path(args.spool) / "work")
    shared_cache_dir = None
    if args.shared_cache_dir is not None:
        shared_cache_dir = args.shared_cache_dir
    elif args.shared_cache:
        # Default under the workdir: shared segments then survive server
        # restarts exactly as long as the checkpoints they sit next to.
        shared_cache_dir = str(Path(workdir) / "shared-cache")
    try:
        config = ServiceConfig(
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            max_resumes=args.max_resumes,
            tenant_budgets=budgets,
            workdir=workdir,
            shared_cache_dir=shared_cache_dir,
            spool_retention_s=args.spool_retention,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    http_host = http_port = None
    if args.http is not None:
        http_host, sep, port_text = args.http.rpartition(":")
        try:
            http_port = int(port_text)
        except ValueError:
            sep = ""
        if not sep or not http_host:
            print(
                f"error: --http expects HOST:PORT, got {args.http!r}",
                file=sys.stderr,
            )
            return 2

    async def run() -> int:
        import signal as _signal

        loop = asyncio.get_running_loop()
        interrupted = asyncio.Event()
        # A plain KeyboardInterrupt tears the event loop down before any
        # coroutine can catch it; a loop signal handler lets us suspend
        # gracefully instead.  SIGTERM gets the same graceful-drain
        # path so a supervised gateway process (systemd, the chaos
        # harness) suspends rather than drops its jobs.
        loop.add_signal_handler(_signal.SIGINT, interrupted.set)
        loop.add_signal_handler(_signal.SIGTERM, interrupted.set)
        supervisor = Supervisor(config)
        await supervisor.start()
        gateway = None
        if http_host is not None:
            from .service import Gateway

            gateway = Gateway(supervisor, http_host, http_port)
            host, port = await gateway.start()
            print(f"gateway listening on http://{host}:{port}", flush=True)
        serve_task = asyncio.ensure_future(serve_spool(
            supervisor,
            args.spool,
            max_jobs=args.max_jobs,
            idle_timeout_s=args.idle_timeout,
        ))
        stop_task = asyncio.ensure_future(interrupted.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if interrupted.is_set():
                # Graceful suspend: drain the gateway's in-flight
                # responses, SIGINT in-flight children so they flush
                # their journals; queued jobs settle suspended.  The
                # workdir keeps their checkpoints — the next serve
                # against the same spool resumes them.
                serve_task.cancel()
                try:
                    await serve_task
                except asyncio.CancelledError:
                    pass
                if gateway is not None:
                    await gateway.stop_accepting()
                await supervisor.shutdown(drain=False)
                if gateway is not None:
                    await gateway.close()
                print(
                    "interrupted; suspended in-flight jobs are resumable "
                    f"under {supervisor.workdir}",
                    file=sys.stderr,
                )
                return 130
            stop_task.cancel()
            served = serve_task.result()
            await supervisor.drain()
            if gateway is not None:
                await gateway.close()
        finally:
            loop.remove_signal_handler(_signal.SIGINT)
            loop.remove_signal_handler(_signal.SIGTERM)
        print(f"served {served} request(s)")
        if args.metrics:
            out = supervisor.render_metrics(args.metrics)
            print(out, end="" if out.endswith("\n") else "\n")
        return 0

    return asyncio.run(run())


def _print_answer(args, record: dict) -> int:
    state = record.get("state")
    if state == "done":
        answer = record.get("answer", {})
        print(f"maximum {args.k}-plex size: {answer.get('size')}")
        print(f"vertices: {answer.get('vertices')}")
        if record.get("degraded_from"):
            print(f"degraded from: {record['degraded_from']}")
        return 0
    print(f"error: job settled {state}: {record.get('error')}", file=sys.stderr)
    return 1


def _submit_http(args, spec) -> int:
    """Gateway submission: idempotent POST, reconnect-resumable stream."""
    from .service import GatewayClient, GatewayError

    client = GatewayClient(args.url, timeout_s=max(args.timeout, 10.0))
    try:
        doc = client.submit_with_retries(spec)
    except (GatewayError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    marker = " (replayed)" if doc.get("replayed") else ""
    print(f"submitted {doc['job']}{marker}")
    if not args.wait:
        return 0

    def progress(record):
        if record["event"] == "incumbent":
            data = record["data"]
            replayed = " (replayed)" if data.get("replayed") else ""
            print(f"incumbent: size {data.get('size')}{replayed}")

    try:
        _, result = client.solve(spec, on_event=progress)
    except GatewayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _print_answer(args, result)


def _cmd_submit(args) -> int:
    from .service import (
        JobSpec,
        NoServerError,
        SpoolTimeout,
        submit_to_spool,
        wait_for_result,
    )

    if (args.spool is None) == (args.url is None):
        print(
            "error: provide either a SPOOL directory or --url, not "
            + ("both" if args.spool else "neither"),
            file=sys.stderr,
        )
        return 2
    try:
        spec = JobSpec(
            graph_path=args.graph,
            k=args.k,
            solver=args.solver,
            seed=args.seed,
            tenant=args.tenant,
            name=args.name,
            gate_deadline=args.deadline,
            runtime_us=args.runtime_us,
            edits_path=args.edits,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.url is not None:
        return _submit_http(args, spec)
    request_id = submit_to_spool(args.spool, spec)
    print(f"submitted {request_id}")
    if not args.wait:
        return 0
    try:
        record = wait_for_result(
            args.spool, request_id, timeout_s=args.timeout, require_server=True
        )
    except NoServerError:
        # Distinguish "nobody is serving this spool" from "the result
        # is merely still pending" — they need different operator
        # action, and only one of them heals by waiting longer.
        print(
            f"error: no live server on spool {args.spool} (missing or "
            "stale heartbeat); request "
            f"{request_id!r} is parked — start 'repro serve "
            f"{args.spool}' to pick it up",
            file=sys.stderr,
        )
        return 2
    except SpoolTimeout as exc:
        print(
            f"error: {exc} (a live server is working the spool; the "
            "result is still pending — re-run with a longer --timeout)",
            file=sys.stderr,
        )
        return 2
    return _print_answer(args, record)


def _cmd_draw(args, graph) -> int:
    from .quantum import draw_circuit

    oracle = KCplexOracle(graph.complement(), args.k, args.threshold)
    try:
        print(draw_circuit(oracle.u_check))
    except ValueError as exc:
        print(f"circuit too large to draw: {exc}", file=sys.stderr)
        return 2
    costs = oracle.component_costs()
    print(
        f"\n{oracle.num_qubits} qubits; per-oracle-call gates: "
        f"encode={costs.encode} count={costs.degree_count} "
        f"compare={costs.degree_compare} size={costs.size_check}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
