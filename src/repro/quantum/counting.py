"""Quantum counting: estimating the number of marked states ``M``.

qTKP's iteration count ``floor(pi/4 * sqrt(2^n / M))`` needs ``M``, the
number of k-plexes at the current size threshold.  The paper follows
Brassard et al. (1998): phase estimation on the Grover operator ``G``,
whose eigenphases ``±2θ`` satisfy ``sin^2 θ = M / N``.

Simulating full phase estimation over the oracle's many qubits is
unnecessary: ``G`` acts inside the 2-dimensional subspace spanned by the
uniform superpositions of marked and unmarked states, so the measured
phase distribution over a ``t``-qubit readout register has the exact
closed form implemented here (the standard QPE kernel
``|sin(2^t Δ/2) / (2^t sin(Δ/2))|^2`` applied to both eigenphases with
weight 1/2 each).  We sample from that exact distribution — the same
statistics ideal hardware would produce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CountingResult", "phase_distribution", "quantum_count"]


@dataclass(frozen=True)
class CountingResult:
    """Outcome of a quantum counting run.

    Attributes
    ----------
    estimate:
        Estimated number of marked states (float; round as needed).
    measured_phase:
        The readout value ``m`` that was measured (mode of the shots).
    precision_qubits:
        Width ``t`` of the phase readout register.
    shots:
        Number of simulated measurement repetitions.
    """

    estimate: float
    measured_phase: int
    precision_qubits: int
    shots: int

    @property
    def rounded(self) -> int:
        """The estimate rounded to the nearest integer count."""
        return int(round(self.estimate))


def phase_distribution(num_search_qubits: int, num_marked: int, precision_qubits: int) -> np.ndarray:
    """Exact QPE readout distribution for the Grover operator.

    Returns ``P[m]`` for ``m = 0 .. 2^t - 1`` where the true eigenphases
    are ``±2θ`` with ``sin^2 θ = M / N``.
    """
    n, m_marked, t = num_search_qubits, num_marked, precision_qubits
    big_n = 1 << n
    if not (0 <= m_marked <= big_n):
        raise ValueError(f"num_marked {m_marked} out of range for N={big_n}")
    if t < 1:
        raise ValueError(f"precision_qubits must be >= 1, got {t}")
    theta = float(np.arcsin(np.sqrt(m_marked / big_n)))
    dim = 1 << t
    ms = np.arange(dim)
    probs = np.zeros(dim)
    for sign in (+1, -1):
        phase = sign * 2.0 * theta  # eigenphase of G, in radians
        delta = phase - 2.0 * np.pi * ms / dim
        # |(1/2^t) sum_j e^{i j delta}|^2 via the Dirichlet kernel.
        with np.errstate(divide="ignore", invalid="ignore"):
            kernel = np.where(
                np.isclose(np.mod(delta, 2 * np.pi), 0.0)
                | np.isclose(np.mod(delta, 2 * np.pi), 2 * np.pi),
                1.0,
                (np.sin(dim * delta / 2.0) / (dim * np.sin(delta / 2.0))) ** 2,
            )
        probs += 0.5 * kernel
    total = probs.sum()
    if total > 0:
        probs = probs / total
    return probs


def quantum_count(
    num_search_qubits: int,
    num_marked: int,
    precision_qubits: int = 8,
    shots: int = 64,
    rng: np.random.Generator | None = None,
) -> CountingResult:
    """Estimate the marked-state count via simulated quantum counting.

    ``num_marked`` parameterises the simulated hardware (it fixes the
    Grover eigenphases); the *estimate* comes only from the sampled
    phase readout, so its error statistics match real quantum counting.
    """
    rng = rng or np.random.default_rng()
    probs = phase_distribution(num_search_qubits, num_marked, precision_qubits)
    draws = rng.choice(len(probs), size=shots, p=probs)
    values, counts = np.unique(draws, return_counts=True)
    mode = int(values[np.argmax(counts)])
    dim = 1 << precision_qubits
    big_n = 1 << num_search_qubits
    # m and 2^t - m encode the +/- eigenphase of the same theta.
    theta_est = np.pi * min(mode, dim - mode) / dim
    estimate = float(big_n * np.sin(theta_est) ** 2)
    return CountingResult(estimate, mode, precision_qubits, shots)
