"""Dense statevector simulation (the "Qiskit simulator" stand-in).

Exact simulation of any circuit in the IR, practical to ~22 qubits.
Qubit ``i`` maps to bit ``i`` of the basis index (little-endian), the
same convention :meth:`repro.graphs.Graph.subset_to_bitmask` uses, so a
measured bitmask *is* a vertex subset.

The simulator applies each gate in O(2^n): it selects the amplitudes
whose control bits match, pairs them across the target bit, and mixes
them with the gate's 2x2 matrix.
"""

from __future__ import annotations

import numpy as np

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["Statevector", "simulate", "apply_gate"]

_MAX_DENSE_QUBITS = 24


class Statevector:
    """A normalised complex amplitude vector over ``2^n`` basis states."""

    def __init__(self, num_qubits: int, data: np.ndarray | None = None) -> None:
        if num_qubits > _MAX_DENSE_QUBITS:
            raise ValueError(
                f"dense simulation refuses {num_qubits} qubits "
                f"(limit {_MAX_DENSE_QUBITS}); use the classical or "
                "phase-oracle simulators for wide circuits"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros(dim, dtype=complex)
            self.data[0] = 1.0
        else:
            arr = np.asarray(data, dtype=complex)
            if arr.shape != (dim,):
                raise ValueError(f"expected shape ({dim},), got {arr.shape}")
            self.data = arr.copy()

    @classmethod
    def from_basis_state(cls, num_qubits: int, index: int) -> "Statevector":
        """|index> as a computational basis state."""
        sv = cls(num_qubits)
        sv.data[0] = 0.0
        sv.data[index] = 1.0
        return sv

    def probabilities(self) -> np.ndarray:
        """|amplitude|^2 for every basis state."""
        return np.abs(self.data) ** 2

    def probability_of(self, index: int) -> float:
        """Probability of collapsing to basis state ``index``."""
        return float(abs(self.data[index]) ** 2)

    def marginal_probabilities(self, qubits: list[int]) -> dict[int, float]:
        """Distribution over the named qubits (others traced out).

        Keys are little-endian bitmasks over the *given qubit order*:
        bit ``j`` of the key is the value of ``qubits[j]``.
        """
        probs = self.probabilities()
        out: dict[int, float] = {}
        for index, p in enumerate(probs):
            if p == 0.0:
                continue
            key = 0
            for j, q in enumerate(qubits):
                if index >> q & 1:
                    key |= 1 << j
            out[key] = out.get(key, 0.0) + float(p)
        return out

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> dict[int, int]:
        """Measure all qubits ``shots`` times; returns index -> count."""
        rng = rng or np.random.default_rng()
        probs = self.probabilities()
        probs = probs / probs.sum()
        draws = rng.choice(len(probs), size=shots, p=probs)
        values, counts = np.unique(draws, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def fidelity_with(self, other: "Statevector") -> float:
        """|<self|other>|^2."""
        return float(abs(np.vdot(self.data, other.data)) ** 2)


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> None:
    """Apply ``gate`` to ``state`` in place."""
    dim = state.shape[0]
    indices = np.arange(dim)
    mask = np.ones(dim, dtype=bool)
    for control in gate.controls:
        bit = (indices >> control.qubit) & 1
        mask &= bit == control.value
    t = gate.target
    target_zero = mask & (((indices >> t) & 1) == 0)
    i0 = indices[target_zero]
    i1 = i0 | (1 << t)
    u = gate.matrix()
    a0 = state[i0].copy()
    a1 = state[i1].copy()
    state[i0] = u[0, 0] * a0 + u[0, 1] * a1
    state[i1] = u[1, 0] * a0 + u[1, 1] * a1


def simulate(
    circuit: QuantumCircuit,
    initial: Statevector | int | None = None,
) -> Statevector:
    """Run ``circuit`` and return the final statevector.

    ``initial`` may be a :class:`Statevector`, a basis-state index, or
    ``None`` for |0...0>.
    """
    n = circuit.num_qubits
    if isinstance(initial, Statevector):
        sv = Statevector(n, initial.data)
    elif isinstance(initial, int):
        sv = Statevector.from_basis_state(n, initial)
    else:
        sv = Statevector(n)
    for gate in circuit:
        apply_gate(sv.data, gate, n)
    return sv
