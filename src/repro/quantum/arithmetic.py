"""Reversible arithmetic circuit builders (paper Figures 7-9).

The qTKP oracle needs three arithmetic capabilities:

* **one-qubit full addition** (Fig. 7) — five X-family gates and two
  ancillas computing ``sum = x XOR y XOR c_in`` and
  ``c_out = (x AND y) XOR (c_in AND (x XOR y))``;
* **multi-bit accumulation** — summing edge indicator bits into a
  counter register (degree counting, Fig. 6 box B) and vertex bits into
  a size register (Fig. 10 box A).  We provide both the paper-faithful
  full-adder chain and a compact carry-ripple incrementer
  (:func:`add_bit_into_counter`, 2 gates and 1 fresh ancilla per counter
  bit) that the assembled oracle uses;
* **integer comparison** (Fig. 9) — ``x <= y`` for two registers, plus
  specialised constant comparators (``x <= const``, ``x >= const``)
  that fold the classical constant into control polarities, needing no
  ancillas at all.  The oracle compares degrees against the constant
  ``k - 1`` and the size against the constant ``T``, so the constant
  versions are the ones on the hot path.

Every builder appends X-family gates only, keeping the oracle body
classically simulable (see :mod:`repro.quantum.classical`) and making
``U^dag`` the same gates in reverse order.

Bit order convention: register qubit lists are **LSB first** (qubit
``[0]`` is the 1s place).
"""

from __future__ import annotations

from .circuit import QuantumCircuit
from .registers import QuantumRegister

__all__ = [
    "QubitAllocator",
    "counter_width",
    "full_adder",
    "ripple_add",
    "add_bit_into_counter",
    "popcount",
    "compare_leq",
    "compare_leq_const",
    "compare_geq_const",
]


class QubitAllocator:
    """Hands out fresh ancilla qubits on a circuit, in named batches."""

    def __init__(self, circuit: QuantumCircuit, prefix: str = "anc") -> None:
        self._circuit = circuit
        self._prefix = prefix
        self._counter = 0

    def take(self, count: int, tag: str = "") -> list[int]:
        """Allocate ``count`` fresh |0> qubits; returns their indices."""
        name = f"{self._prefix}{self._counter}" + (f"_{tag}" if tag else "")
        self._counter += 1
        reg = self._circuit.add_register(name, count)
        return reg.qubits

    def take_register(self, count: int, tag: str = "") -> QuantumRegister:
        """Allocate and return the whole register object."""
        name = f"{self._prefix}{self._counter}" + (f"_{tag}" if tag else "")
        self._counter += 1
        return self._circuit.add_register(name, count)


def counter_width(max_value: int) -> int:
    """Bits needed to hold any integer in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError(f"max_value must be >= 0, got {max_value}")
    return max(1, max_value.bit_length())


def full_adder(
    circuit: QuantumCircuit,
    x: int,
    y: int,
    c_in: int,
    anc_and: int,
    anc_carry: int,
) -> tuple[int, int]:
    """Paper Fig. 7: one-bit full adder.

    After the five gates:

    * the ``c_in`` wire holds ``sum = x XOR y XOR c_in``;
    * ``anc_carry`` holds ``c_out``;
    * the ``y`` wire is left dirty holding ``x XOR y`` and ``anc_and``
      holds ``x AND y`` (both are undone by the oracle's global
      uncompute).

    Returns ``(sum_qubit, carry_qubit)``.
    """
    circuit.ccx(x, y, anc_and)        # A: anc_and = x AND y
    circuit.cx(x, y)                  # B: y = x XOR y
    circuit.ccx(y, c_in, anc_carry)   # C: anc_carry = c_in AND (x XOR y)
    circuit.cx(y, c_in)               # D: c_in = sum
    circuit.cx(anc_and, anc_carry)    # E: anc_carry = c_out
    return c_in, anc_carry


def ripple_add(
    circuit: QuantumCircuit,
    x_qubits: list[int],
    y_qubits: list[int],
    alloc: QubitAllocator,
) -> list[int]:
    """Paper Fig. 8: multi-bit addition via chained full adders.

    Adds the values of registers ``x`` and ``y`` (equal width, LSB
    first).  Returns the qubits holding the sum, LSB first, width
    ``len(x) + 1`` (final carry included).  Operand wires are left
    dirty, as in the paper; the oracle uncomputes globally.
    """
    if len(x_qubits) != len(y_qubits):
        raise ValueError("ripple_add needs equal-width operands")
    width = len(x_qubits)
    carry = alloc.take(1, "cin")[0]  # starts at |0>
    sum_bits: list[int] = []
    for j in range(width):
        anc_and, anc_carry = alloc.take(2, f"fa{j}")
        s, carry = full_adder(circuit, x_qubits[j], y_qubits[j], carry, anc_and, anc_carry)
        sum_bits.append(s)
    sum_bits.append(carry)
    return sum_bits


def add_bit_into_counter(
    circuit: QuantumCircuit,
    bit: int,
    counter: list[int],
    alloc: QubitAllocator,
    adder: str = "compact",
) -> None:
    """Add the value of qubit ``bit`` into ``counter`` (LSB first).

    Two constructions:

    * ``"compact"`` (default) — a carry-ripple incrementer: at each
      position a fresh ancilla takes the outgoing carry (Toffoli)
      before the position is updated (CNOT).  2 gates + 1 ancilla per
      counter bit.
    * ``"full_adder"`` — the paper-faithful chain of Fig. 7 one-qubit
      full adders: each stage runs ``full_adder(carry, |0>, c_j)`` so
      the sum lands on the counter wire in place.  5 gates + 3 ancillas
      per counter bit, exactly the budget the paper's complexity
      analysis charges.

    The counter must be wide enough that the final carry out is always
    zero (guaranteed when ``counter_width`` was sized for the maximum
    accumulated value).
    """
    if adder not in ("compact", "full_adder"):
        raise ValueError(f"adder must be 'compact' or 'full_adder', got {adder!r}")
    carry = bit
    if adder == "compact":
        carries = alloc.take(len(counter), "carry")
        for j, c_bit in enumerate(counter):
            circuit.ccx(c_bit, carry, carries[j])  # next carry = c_j AND carry
            circuit.cx(carry, c_bit)               # c_j = c_j XOR carry
            carry = carries[j]
    else:
        for j, c_bit in enumerate(counter):
            zero, anc_and, anc_carry = alloc.take(3, f"fa{j}")
            # sum = carry XOR 0 XOR c_j lands on the c_j wire;
            # carry out = c_j AND carry lands on anc_carry.
            _sum_q, carry = full_adder(circuit, carry, zero, c_bit, anc_and, anc_carry)


def popcount(
    circuit: QuantumCircuit,
    bits: list[int],
    alloc: QubitAllocator,
    adder: str = "compact",
) -> list[int]:
    """Count the 1s among ``bits`` into a fresh counter register.

    Returns the counter qubits (LSB first), width
    ``counter_width(len(bits))``.  This is the degree-count primitive
    (Fig. 6 box B: sum a vertex's activated edge qubits) and the size
    primitive (Fig. 10 box A: sum the vertex qubits).  ``adder``
    selects the accumulation circuit, see :func:`add_bit_into_counter`.
    """
    width = counter_width(len(bits))
    counter = alloc.take(width, "count")
    for bit in bits:
        add_bit_into_counter(circuit, bit, counter, alloc, adder=adder)
    return counter


def compare_leq(
    circuit: QuantumCircuit,
    x_qubits: list[int],
    y_qubits: list[int],
    alloc: QubitAllocator,
) -> int:
    """Paper Fig. 9: register-register comparison ``x <= y``.

    Walks from the most significant bit: the first differing position
    decides.  Ancillas ``lt_i`` (x_i < y_i) and ``eq_i`` (x_i == y_i)
    feed mutually exclusive product terms, which are XOR-accumulated
    into the fresh output qubit (exclusive terms make OR = XOR).
    Returns the output qubit index.
    """
    if len(x_qubits) != len(y_qubits):
        raise ValueError("compare_leq needs equal-width operands")
    width = len(x_qubits)
    # MSB first, as in Eq. (8) of the paper.
    xs = list(reversed(x_qubits))
    ys = list(reversed(y_qubits))
    lt = alloc.take(width, "lt")
    eq = alloc.take(width, "eq")
    out = alloc.take(1, "leq")[0]
    for i in range(width):
        # lt_i = (NOT x_i) AND y_i   (box A)
        circuit.mcx([xs[i], ys[i]], lt[i], control_values=[0, 1])
        # eq_i = NOT (x_i XOR y_i)   (box B)
        circuit.cx(xs[i], eq[i])
        circuit.cx(ys[i], eq[i])
        circuit.x(eq[i])
    for i in range(width):
        # term_i = eq_0 .. eq_{i-1} AND lt_i  (box C/D)
        circuit.mcx(eq[:i] + [lt[i]], out)
    # Final all-equal term makes the comparison non-strict.
    circuit.mcx(eq, out)
    return out


def _const_bits_msb_first(const: int, width: int) -> list[int]:
    if const < 0:
        raise ValueError(f"constant must be >= 0, got {const}")
    if const >= (1 << width):
        raise ValueError(f"constant {const} does not fit in {width} bits")
    return [(const >> (width - 1 - i)) & 1 for i in range(width)]


def compare_leq_const(
    circuit: QuantumCircuit,
    x_qubits: list[int],
    const: int,
    alloc: QubitAllocator,
) -> int:
    """Output qubit = ``[x <= const]`` with the constant folded in.

    ``x > const`` holds iff at some position ``j`` (scanning from the
    MSB) ``x_j = 1`` while ``const_j = 0`` and all higher positions
    agree with the constant.  Those product terms are disjoint, so they
    XOR onto the output; a final X turns ``[x > const]`` into
    ``[x <= const]``.  No ancillas beyond the output.

    This is the oracle's "control-c" gate specialised to the constants
    ``k - 1`` (degree check) and ``T`` (size check swaps operands via
    :func:`compare_geq_const`).
    """
    xs = list(reversed(x_qubits))  # MSB first
    bits = _const_bits_msb_first(const, len(xs))
    out = alloc.take(1, "leqc")[0]
    for j, cj in enumerate(bits):
        if cj == 0:
            controls = xs[: j + 1]
            values = bits[:j] + [1]
            circuit.mcx(controls, out, control_values=values)
    circuit.x(out)  # out = NOT (x > const)
    return out


def compare_geq_const(
    circuit: QuantumCircuit,
    x_qubits: list[int],
    const: int,
    alloc: QubitAllocator,
) -> int:
    """Output qubit = ``[x >= const]`` (size-threshold check, Fig. 10 box B)."""
    xs = list(reversed(x_qubits))  # MSB first
    bits = _const_bits_msb_first(const, len(xs))
    out = alloc.take(1, "geqc")[0]
    for j, cj in enumerate(bits):
        if cj == 1:
            # x < const at position j: x_j = 0 where const_j = 1, equal above.
            controls = xs[: j + 1]
            values = bits[:j] + [0]
            circuit.mcx(controls, out, control_values=values)
    circuit.x(out)  # out = NOT (x < const)
    return out
