"""Gate vocabulary for the circuit IR.

The paper's oracle needs only a small gate set: X (NOT), H (Hadamard),
Z, and multi-controlled X / Z with controls on either |0> or |1> (the
hollow/filled dots of its circuit figures).  A :class:`Gate` records the
operation symbolically — name, target qubits, and control terms — so
circuits with hundreds of qubits stay cheap to build, invert, and count.
Matrices are materialised only by the simulators that need them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Control", "Gate", "SINGLE_QUBIT_MATRICES", "is_classical_gate"]

_SQRT2 = float(np.sqrt(2.0))

#: Unitary matrices for the supported single-qubit primitives.
SINGLE_QUBIT_MATRICES: dict[str, np.ndarray] = {
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2,
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
}

#: Gates that permute (or only re-phase) computational basis states.
_CLASSICAL_NAMES = frozenset({"x"})
_PHASE_NAMES = frozenset({"z", "s", "sdg", "p"})


@dataclass(frozen=True)
class Control:
    """A control term: ``qubit`` must be in state ``value`` (0 or 1).

    ``value=1`` is the filled dot of circuit notation, ``value=0`` the
    hollow dot (control-on-zero).
    """

    qubit: int
    value: int = 1

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"control value must be 0 or 1, got {self.value}")
        if self.qubit < 0:
            raise ValueError(f"qubit index must be >= 0, got {self.qubit}")


@dataclass(frozen=True)
class Gate:
    """One circuit operation.

    Attributes
    ----------
    name:
        One of ``x``, ``h``, ``z``, ``s``, ``sdg``, ``p`` (phase, uses
        ``param`` as the angle).
    target:
        Target qubit index.
    controls:
        Control terms; the gate acts only when all are satisfied.
    param:
        Angle for parametrised gates (``p``).
    """

    name: str
    target: int
    controls: tuple[Control, ...] = field(default=())
    param: float | None = None

    def __post_init__(self) -> None:
        if self.name not in SINGLE_QUBIT_MATRICES and self.name != "p":
            raise ValueError(f"unsupported gate name {self.name!r}")
        if self.name == "p" and self.param is None:
            raise ValueError("phase gate 'p' requires a param angle")
        if self.target < 0:
            raise ValueError(f"target index must be >= 0, got {self.target}")
        qubits = [c.qubit for c in self.controls] + [self.target]
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubit in gate {self.name}: {qubits}")

    @property
    def qubits(self) -> tuple[int, ...]:
        """All qubits the gate touches (controls then target)."""
        return tuple(c.qubit for c in self.controls) + (self.target,)

    @property
    def num_controls(self) -> int:
        return len(self.controls)

    def matrix(self) -> np.ndarray:
        """The 2x2 matrix applied to the target when controls fire."""
        if self.name == "p":
            return np.array([[1, 0], [0, np.exp(1j * float(self.param))]], dtype=complex)
        return SINGLE_QUBIT_MATRICES[self.name]

    def inverse(self) -> "Gate":
        """The inverse gate (self-inverse for x/h/z)."""
        if self.name in ("x", "h", "z"):
            return self
        if self.name == "s":
            return Gate("sdg", self.target, self.controls)
        if self.name == "sdg":
            return Gate("s", self.target, self.controls)
        return Gate("p", self.target, self.controls, param=-float(self.param))

    def shifted(self, offset: int) -> "Gate":
        """The same gate with every qubit index moved up by ``offset``."""
        return Gate(
            self.name,
            self.target + offset,
            tuple(Control(c.qubit + offset, c.value) for c in self.controls),
            self.param,
        )


def is_classical_gate(gate: Gate) -> bool:
    """True if the gate maps basis states to basis states (X family).

    The oracle's compute/uncompute body consists solely of such gates,
    which is what makes exact classical (bit-level) simulation of the
    full circuit possible at any width.
    """
    return gate.name in _CLASSICAL_NAMES
