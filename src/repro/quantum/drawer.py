"""ASCII rendering of circuits, in the style of the paper's figures.

Produces text diagrams like::

    q0 |0> --H--*--------*--
                |        |
    q1 |0> -----X--*-----o--
                   |     |
    q2 |0> --------X-----X--

Conventions match the paper: ``*`` is a control on |1> (filled dot),
``o`` a control on |0> (hollow dot), ``X`` the NOT target, boxed
letters for other single-qubit gates, ``Z`` for phase-flip targets.
Intended for small circuits in examples, docstrings, and debugging;
wide oracles are better inspected through their gate counts.
"""

from __future__ import annotations

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["draw_circuit"]

_MAX_DRAW_QUBITS = 30
_MAX_DRAW_GATES = 400


def _symbol(gate: Gate) -> str:
    if gate.name == "x":
        return "X"
    if gate.name == "z":
        return "Z"
    if gate.name == "p":
        return "P"
    return gate.name.upper()[:1]


def draw_circuit(
    circuit: QuantumCircuit,
    labels: dict[int, str] | None = None,
) -> str:
    """Render a circuit as ASCII art.

    Parameters
    ----------
    circuit:
        The circuit to draw (refused above 30 qubits / 400 gates —
        diagrams that size are unreadable anyway).
    labels:
        Optional display names per qubit index (defaults to ``q<i>``;
        register names are used when the circuit has registers).
    """
    n = circuit.num_qubits
    if n > _MAX_DRAW_QUBITS:
        raise ValueError(
            f"refusing to draw {n} qubits (limit {_MAX_DRAW_QUBITS})"
        )
    if circuit.num_gates > _MAX_DRAW_GATES:
        raise ValueError(
            f"refusing to draw {circuit.num_gates} gates (limit {_MAX_DRAW_GATES})"
        )
    if labels is None:
        labels = {}
        for name, reg in circuit.registers.items():
            for j, q in enumerate(reg.qubits):
                labels[q] = f"{name}{j}" if reg.size > 1 else name
    names = [labels.get(q, f"q{q}") for q in range(n)]
    name_width = max((len(s) for s in names), default=2)

    # One column of width 3 per gate; wire rows and gap rows interleave.
    wire_rows = [[] for _ in range(n)]
    gap_rows = [[] for _ in range(n - 1)] if n > 1 else []

    for gate in circuit:
        column = ["---"] * n
        gaps = ["   "] * max(n - 1, 0)
        involved = sorted(gate.qubits)
        lo, hi = involved[0], involved[-1]
        for control in gate.controls:
            column[control.qubit] = "-*-" if control.value else "-o-"
        column[gate.target] = f"-{_symbol(gate)}-"
        for q in range(lo, hi):
            if column[q] == "---":
                column[q] = "-|-"
            gaps[q] = " | "
        for q in range(n):
            wire_rows[q].append(column[q])
        for q in range(len(gaps)):
            gap_rows[q].append(gaps[q])

    lines: list[str] = []
    for q in range(n):
        prefix = f"{names[q]:>{name_width}} |0> "
        lines.append(prefix + "-" + "".join(wire_rows[q]) + "-")
        if q < n - 1:
            pad = " " * (name_width + 5)
            gap_line = pad + " " + "".join(gap_rows[q])
            if gap_line.strip():
                lines.append(gap_line)
    return "\n".join(lines)
