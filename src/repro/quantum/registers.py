"""Named qubit registers.

The oracle circuits juggle many qubit groups (vertex qubits, edge
qubits, per-vertex counters, comparator ancillas, the oracle qubit).  A
:class:`QuantumRegister` is a contiguous, named slice of the circuit's
qubit index space so builder code reads like the paper's figures.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["QuantumRegister"]


@dataclass(frozen=True)
class QuantumRegister:
    """A contiguous block of ``size`` qubits starting at ``offset``."""

    name: str
    size: int
    offset: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"register size must be >= 0, got {self.size}")
        if self.offset < 0:
            raise ValueError(f"register offset must be >= 0, got {self.offset}")

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int | slice) -> int | list[int]:
        """Absolute qubit index (or indices) for a register-local index."""
        if isinstance(index, slice):
            return list(range(self.offset, self.offset + self.size))[index]
        if index < 0:
            index += self.size
        if not (0 <= index < self.size):
            raise IndexError(f"register {self.name} has {self.size} qubits, asked {index}")
        return self.offset + index

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.offset, self.offset + self.size))

    @property
    def qubits(self) -> list[int]:
        """All absolute qubit indices in the register, LSB first."""
        return list(self)
