"""Gate-model substrate: circuit IR, simulators, arithmetic, counting."""

from .arithmetic import (
    QubitAllocator,
    add_bit_into_counter,
    compare_geq_const,
    compare_leq,
    compare_leq_const,
    counter_width,
    full_adder,
    popcount,
    ripple_add,
)
from .circuit import QuantumCircuit, circuit_from_gates
from .classical import assert_classical, classical_output_bit, classical_simulate
from .counting import CountingResult, phase_distribution, quantum_count
from .drawer import draw_circuit
from .gates import Control, Gate, is_classical_gate
from .qft import (
    estimate_phase_distribution,
    inverse_qft_circuit,
    phase_estimation_circuit,
    qft_circuit,
    qft_matrix,
)
from .mps import MatrixProductState, MPSNormError, simulate_mps
from .registers import QuantumRegister
from .statevector import Statevector, apply_gate, simulate

__all__ = [
    "Control",
    "CountingResult",
    "Gate",
    "MPSNormError",
    "MatrixProductState",
    "QuantumCircuit",
    "QuantumRegister",
    "QubitAllocator",
    "Statevector",
    "add_bit_into_counter",
    "apply_gate",
    "assert_classical",
    "circuit_from_gates",
    "classical_output_bit",
    "classical_simulate",
    "compare_geq_const",
    "compare_leq",
    "compare_leq_const",
    "counter_width",
    "draw_circuit",
    "estimate_phase_distribution",
    "inverse_qft_circuit",
    "full_adder",
    "is_classical_gate",
    "phase_distribution",
    "phase_estimation_circuit",
    "qft_circuit",
    "qft_matrix",
    "popcount",
    "quantum_count",
    "ripple_add",
    "simulate",
    "simulate_mps",
]
