"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an append-only gate list over a growable
qubit index space, with named registers, labelled sections (so gate
counts can be attributed to oracle components, as Table IV of the paper
requires), inversion (``U_check^dag`` reuses the same gates in reverse,
CNOT-family gates being self-inverse), and composition.

The IR stays symbolic: circuits with hundreds of qubits — the full
qTKP oracle easily uses them — cost only their gate list.  Simulation
lives in :mod:`repro.quantum.statevector` (dense, small circuits) and
:mod:`repro.quantum.classical` (bit-level, any width, X-family gates).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from .gates import Control, Gate
from .registers import QuantumRegister

__all__ = ["QuantumCircuit", "circuit_from_gates"]


class QuantumCircuit:
    """A gate list over qubits ``0 .. num_qubits - 1``.

    Parameters
    ----------
    num_qubits:
        Initial number of qubits; more can be added via
        :meth:`add_register`.

    Examples
    --------
    >>> qc = QuantumCircuit(2)
    >>> qc.h(0)
    >>> qc.cx(0, 1)
    >>> qc.gate_counts()["h"], qc.gate_counts()["cx"]
    (1, 1)
    """

    def __init__(self, num_qubits: int = 0) -> None:
        if num_qubits < 0:
            raise ValueError(f"num_qubits must be >= 0, got {num_qubits}")
        self._num_qubits = num_qubits
        self._gates: list[Gate] = []
        self._registers: dict[str, QuantumRegister] = {}
        self._labels: list[str | None] = []
        self._current_label: str | None = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def gates(self) -> tuple[Gate, ...]:
        return tuple(self._gates)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    @property
    def registers(self) -> dict[str, QuantumRegister]:
        return dict(self._registers)

    def add_register(self, name: str, size: int) -> QuantumRegister:
        """Append a named register of ``size`` fresh qubits."""
        if name in self._registers:
            raise ValueError(f"register {name!r} already exists")
        reg = QuantumRegister(name, size, self._num_qubits)
        self._registers[name] = reg
        self._num_qubits += size
        return reg

    def register(self, name: str) -> QuantumRegister:
        """Look up a register by name."""
        return self._registers[name]

    def mirror_registers(self, source: "QuantumCircuit") -> None:
        """Adopt ``source``'s register map without allocating qubits.

        Used when a wider circuit (a phase oracle with its |O> qubit, a
        full Grover layout) embeds an existing circuit verbatim and
        downstream code must still locate the named registers.  Every
        mirrored register must fit inside this circuit's qubit space;
        a name collision is only allowed when it maps to the identical
        register block.
        """
        for name, reg in source.registers.items():
            existing = self._registers.get(name)
            if existing is not None and existing != reg:
                raise ValueError(
                    f"register {name!r} already exists with a different layout"
                )
            if reg.offset + reg.size > self._num_qubits:
                raise ValueError(
                    f"register {name!r} spans qubits "
                    f"[{reg.offset}, {reg.offset + reg.size}) but circuit has "
                    f"{self._num_qubits} qubits"
                )
            self._registers[name] = reg

    # ------------------------------------------------------------------
    # Labelled sections (for component-wise gate accounting)
    # ------------------------------------------------------------------
    def set_label(self, label: str | None) -> None:
        """Gates appended from now on are attributed to ``label``."""
        self._current_label = label

    def labelled_gate_counts(self) -> dict[str, int]:
        """Number of gates per section label (unlabelled under '')."""
        counts: Counter[str] = Counter()
        for label in self._labels:
            counts[label or ""] += 1
        return dict(counts)

    # ------------------------------------------------------------------
    # Gate appends
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> None:
        """Append a raw :class:`Gate` (bounds-checked)."""
        for q in gate.qubits:
            if q >= self._num_qubits:
                raise ValueError(
                    f"gate {gate.name} touches qubit {q} but circuit has "
                    f"{self._num_qubits} qubits"
                )
        self._gates.append(gate)
        self._labels.append(self._current_label)

    def x(self, target: int) -> None:
        """Pauli X (NOT)."""
        self.append(Gate("x", target))

    def h(self, target: int) -> None:
        """Hadamard."""
        self.append(Gate("h", target))

    def z(self, target: int) -> None:
        """Pauli Z."""
        self.append(Gate("z", target))

    def p(self, angle: float, target: int) -> None:
        """Phase gate diag(1, e^{i*angle})."""
        self.append(Gate("p", target, param=angle))

    def cx(self, control: int, target: int) -> None:
        """CNOT."""
        self.append(Gate("x", target, (Control(control),)))

    def ccx(self, control1: int, control2: int, target: int) -> None:
        """Toffoli (C^2 NOT)."""
        self.append(Gate("x", target, (Control(control1), Control(control2))))

    def mcx(
        self,
        controls: Sequence[int],
        target: int,
        control_values: Sequence[int] | None = None,
    ) -> None:
        """Multi-controlled X; ``control_values`` selects 0/1 controls."""
        values = control_values if control_values is not None else [1] * len(controls)
        if len(values) != len(controls):
            raise ValueError("control_values length must match controls")
        terms = tuple(Control(q, v) for q, v in zip(controls, values))
        self.append(Gate("x", target, terms))

    def cz(self, control: int, target: int) -> None:
        """Controlled Z."""
        self.append(Gate("z", target, (Control(control),)))

    def mcz(self, controls: Sequence[int], target: int) -> None:
        """Multi-controlled Z."""
        self.append(Gate("z", target, tuple(Control(q) for q in controls)))

    # ------------------------------------------------------------------
    # Whole-circuit operations
    # ------------------------------------------------------------------
    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (same registers, gates inverted, reversed)."""
        inv = QuantumCircuit(self._num_qubits)
        inv.mirror_registers(self)
        for gate, label in zip(reversed(self._gates), reversed(self._labels)):
            inv._current_label = label
            inv.append(gate.inverse())
        inv._current_label = None
        return inv

    def extend(self, other: "QuantumCircuit") -> None:
        """Append all of ``other``'s gates (indices must already fit)."""
        if other.num_qubits > self._num_qubits:
            raise ValueError(
                f"cannot extend: other uses {other.num_qubits} qubits, "
                f"self has {self._num_qubits}"
            )
        for gate, label in zip(other._gates, other._labels):
            saved = self._current_label
            if label is not None:
                self._current_label = label
            self.append(gate)
            self._current_label = saved

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate kinds: x, cx, ccx, mcx, h, z, cz, mcz, p."""
        counts: Counter[str] = Counter()
        for gate in self._gates:
            counts[_kind(gate)] += 1
        return dict(counts)

    def count_ops(self) -> int:
        """Total gate count (the paper's time-complexity unit)."""
        return len(self._gates)

    def depth(self) -> int:
        """Circuit depth under full qubit-disjoint parallelism."""
        level: dict[int, int] = {}
        depth = 0
        for gate in self._gates:
            start = max((level.get(q, 0) for q in gate.qubits), default=0)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __repr__(self) -> str:
        return f"QuantumCircuit(qubits={self._num_qubits}, gates={len(self._gates)})"


def _kind(gate: Gate) -> str:
    """Display kind: cx/ccx/mcx for controlled X, cz/mcz for controlled Z."""
    n = gate.num_controls
    if gate.name == "x" and n:
        return {1: "cx", 2: "ccx"}.get(n, "mcx")
    if gate.name == "z" and n:
        return {1: "cz"}.get(n, "mcz")
    return gate.name


def circuit_from_gates(num_qubits: int, gates: Iterable[Gate]) -> QuantumCircuit:
    """Convenience constructor used by tests."""
    qc = QuantumCircuit(num_qubits)
    for gate in gates:
        qc.append(gate)
    return qc
