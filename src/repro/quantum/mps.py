"""Matrix product state (MPS) simulation of wide circuits.

The paper ran qTKP on "IBM simulators MPS": tensor-network simulators
that handle circuits far wider than dense statevectors whenever the
entanglement stays bounded.  The qTKP oracle is exactly that regime —
its hundreds of ancilla qubits are classical functions of the ``n``
vertex qubits, so across any cut the Schmidt rank never exceeds
``2^n`` — which is why the authors could simulate 90+ qubit circuits
for n = 10 graphs.

This module implements that methodology for real:

* :class:`MatrixProductState` — a train of site tensors
  ``(chi_left, 2, chi_right)`` with exact or truncated SVD splitting;
* arbitrary gates from the circuit IR: single-qubit gates contract
  locally; multi-qubit gates (CNOT, C^kNOT, MCZ, ...) are applied by
  swapping their operands adjacent, contracting the dense
  ``2^k``-dimensional block, and re-splitting site by site;
* :func:`simulate_mps` — run any :class:`~repro.quantum.circuit.QuantumCircuit`;
* amplitude queries and register marginals for cross-checking against
  the dense simulator and the phase-oracle Grover backend.

It is a faithful, slow reference implementation (clarity over speed):
the test suite uses it to validate the full qTKP circuit — including
every ancilla — on small graphs, closing the loop on DESIGN.md's MPS
substitution claim.
"""

from __future__ import annotations

import numpy as np

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["MPSNormError", "MatrixProductState", "simulate_mps"]

#: A truncated MPS whose norm has drifted further than this below 1 no
#: longer represents the circuit's state faithfully enough to read
#: probabilities from; see :class:`MPSNormError`.
DEFAULT_NORM_TOLERANCE = 1e-6


class MPSNormError(RuntimeError):
    """The MPS norm drifted below tolerance (bond truncation ate weight).

    Raised by probability queries instead of silently returning an
    unnormalized distribution: a capped ``max_bond`` that is too small
    for the circuit's entanglement discards Schmidt weight on every
    split, and the resulting marginals under-count every outcome.  The
    message carries the measured norm and the accumulated discarded
    weight so the caller can tell how far gone the state is; raise the
    bond cap (or pass ``norm_tolerance=None`` to opt into the
    unnormalized numbers knowingly).
    """

    def __init__(self, norm: float, truncation_error: float, tolerance: float) -> None:
        super().__init__(
            f"MPS norm {norm:.6g} drifted below 1 - {tolerance:g} "
            f"(cumulative discarded Schmidt weight {truncation_error:.6g}); "
            "probabilities would be unnormalized — raise max_bond or pass "
            "norm_tolerance=None to accept them"
        )
        self.norm = norm
        self.truncation_error = truncation_error
        self.tolerance = tolerance

_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


class MatrixProductState:
    """A pure state of ``num_qubits`` qubits in MPS form.

    Site ``i`` holds a tensor of shape ``(chi_{i}, 2, chi_{i+1})``;
    ``chi_0 = chi_n = 1``.  Qubit ``i`` is bit ``i`` of basis indices
    (little endian), matching the dense simulator's convention.

    Parameters
    ----------
    num_qubits:
        Width of the register; initialised to |0...0>.
    max_bond:
        Truncation threshold for the bond dimension (``None`` = exact).
    norm_tolerance:
        Probability queries raise :class:`MPSNormError` when the state's
        norm has drifted more than this below 1 (truncation discarded
        real Schmidt weight).  ``None`` disables the guard and returns
        the unnormalized numbers, matching the old silent behaviour.
    """

    def __init__(
        self,
        num_qubits: int,
        max_bond: int | None = None,
        norm_tolerance: float | None = DEFAULT_NORM_TOLERANCE,
    ) -> None:
        if num_qubits < 1:
            raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
        if max_bond is not None and max_bond < 1:
            raise ValueError(f"max_bond must be >= 1, got {max_bond}")
        if norm_tolerance is not None and norm_tolerance <= 0:
            raise ValueError(f"norm_tolerance must be > 0, got {norm_tolerance}")
        self.num_qubits = num_qubits
        self.max_bond = max_bond
        self.norm_tolerance = norm_tolerance
        self.truncation_error = 0.0
        zero = np.zeros((1, 2, 1), dtype=complex)
        zero[0, 0, 0] = 1.0
        self._sites: list[np.ndarray] = [zero.copy() for _ in range(num_qubits)]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def bond_dimensions(self) -> list[int]:
        """Current bond dimensions (length ``num_qubits - 1``)."""
        return [self._sites[i].shape[2] for i in range(self.num_qubits - 1)]

    @property
    def max_bond_reached(self) -> int:
        return max(self.bond_dimensions, default=1)

    @property
    def discarded_weight(self) -> float:
        """Cumulative squared Schmidt weight dropped by bond truncation.

        Zero for an exact simulation; each truncated SVD adds the sum of
        the squared singular values it threw away (the standard
        discarded-weight error measure for MPS).
        """
        return self.truncation_error

    def check_norm(self) -> float:
        """The norm, raising :class:`MPSNormError` when out of tolerance."""
        norm = self.norm()
        if (
            self.norm_tolerance is not None
            and norm < 1.0 - self.norm_tolerance
        ):
            raise MPSNormError(norm, self.truncation_error, self.norm_tolerance)
        return norm

    def amplitude(self, bits: int) -> complex:
        """<bits|psi> for a basis state given as a little-endian mask."""
        if bits < 0 or bits >= (1 << self.num_qubits):
            raise ValueError(f"basis index {bits} out of range")
        vec = np.ones((1,), dtype=complex)
        for i, site in enumerate(self._sites):
            b = (bits >> i) & 1
            vec = vec @ site[:, b, :]
        return complex(vec[0])

    def norm(self) -> float:
        """The state's 2-norm (1.0 up to truncation error)."""
        # Contract <psi|psi> left to right.
        env = np.ones((1, 1), dtype=complex)
        for site in self._sites:
            env = np.einsum("ab,aic,bid->cd", env, site.conj(), site)
        return float(np.sqrt(abs(env[0, 0])))

    def marginal_probabilities(self, qubits: list[int]) -> dict[int, float]:
        """Distribution over the listed qubits (others traced out).

        Exponential in ``len(qubits)`` — meant for small registers
        (e.g. the vertex register of an oracle circuit).

        Raises
        ------
        MPSNormError
            When bond truncation has eaten enough Schmidt weight that
            the distribution would be unnormalized (guarded by
            ``norm_tolerance``; pass ``None`` at construction to opt
            out).
        """
        self.check_norm()
        keep = list(qubits)
        out: dict[int, float] = {}
        for pattern in range(1 << len(keep)):
            probs = self._pattern_probability(
                {q: (pattern >> j) & 1 for j, q in enumerate(keep)}
            )
            if probs > 1e-14:
                out[pattern] = probs
        return out

    def _pattern_probability(self, fixed: dict[int, int]) -> float:
        env = np.ones((1, 1), dtype=complex)
        for i, site in enumerate(self._sites):
            if i in fixed:
                piece = site[:, fixed[i]:fixed[i] + 1, :]
            else:
                piece = site
            env = np.einsum("ab,aic,bid->cd", env, piece.conj(), piece)
        return float(abs(env[0, 0]))

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_gate(self, gate: Gate) -> None:
        """Apply one IR gate (any number of controls)."""
        qubits = sorted(gate.qubits)
        if len(qubits) == 1:
            self._apply_single(gate.matrix(), qubits[0])
            return
        matrix = _dense_operator(gate)
        self._apply_block(gate, qubits, matrix)

    def _apply_single(self, u: np.ndarray, qubit: int) -> None:
        self._sites[qubit] = np.einsum("ps,asb->apb", u, self._sites[qubit])

    def _apply_block(self, gate: Gate, qubits: list[int], matrix: np.ndarray) -> None:
        """Swap operands adjacent, contract the dense block, re-split."""
        # Move every operand next to the first one, preserving their
        # relative order; record the moves so they can be undone.
        positions = list(qubits)
        moves: list[tuple[int, int]] = []
        anchor = positions[0]
        for idx in range(1, len(positions)):
            target = anchor + idx
            current = positions[idx]
            while current > target:
                self._swap_adjacent(current - 1)
                moves.append((current - 1, current))
                current -= 1
            positions[idx] = target
        block = list(range(anchor, anchor + len(qubits)))

        # The gate's qubit-order within the block: operands were sorted
        # ascending and kept in relative order, so block position j
        # corresponds to sorted qubit j.  Build the permuted matrix so
        # its index order matches (little endian inside the block).
        self._contract_block(block, matrix)

        for left, _right in reversed(moves):
            self._swap_adjacent(left)

    def _swap_adjacent(self, left: int) -> None:
        """Swap qubits ``left`` and ``left + 1``."""
        self._contract_block([left, left + 1], _SWAP)

    def _contract_block(self, block: list[int], matrix: np.ndarray) -> None:
        """Apply a dense operator to contiguous sites ``block``."""
        k = len(block)
        first = block[0]
        # Merge the k site tensors into one (chi_L, 2^k, chi_R) tensor.
        theta = self._sites[first]
        for offset in range(1, k):
            nxt = self._sites[first + offset]
            theta = np.einsum("apb,bqc->apqc", theta, nxt).reshape(
                theta.shape[0], -1, nxt.shape[2]
            )
        chi_l, dim, chi_r = theta.shape
        # Reorder physical index to little-endian *within the block*:
        # merging produced (site0, site1, ...) as the slowest-to-fastest
        # axes order (site0 major).  Express as big-endian digits and
        # convert to the operator's little-endian convention.
        theta = theta.reshape((chi_l,) + (2,) * k + (chi_r,))
        # axes currently: site0, site1, ... siteK-1 with site0 slowest.
        # Little-endian operator indexing wants site0 as bit 0 (fastest).
        perm = (0,) + tuple(range(k, 0, -1)) + (k + 1,)
        theta = theta.transpose(perm).reshape(chi_l, dim, chi_r)
        theta = np.einsum("pq,aqb->apb", matrix, theta)
        # Undo the ordering back to site-major for re-splitting.
        theta = theta.reshape((chi_l,) + (2,) * k + (chi_r,))
        theta = theta.transpose(perm).reshape(chi_l, dim, chi_r)
        # Split back into k sites by sequential SVD.
        tensors: list[np.ndarray] = []
        remainder = theta
        for _ in range(k - 1):
            chi_left = remainder.shape[0]
            rest_dim = remainder.shape[1] // 2
            m = remainder.reshape(chi_left * 2, rest_dim * remainder.shape[2])
            u, s, vh = np.linalg.svd(m, full_matrices=False)
            keep, discarded = _truncation_rank(s, self.max_bond)
            self.truncation_error += discarded
            u, s, vh = u[:, :keep], s[:keep], vh[:keep]
            tensors.append(u.reshape(chi_left, 2, keep))
            remainder = (np.diag(s) @ vh).reshape(keep, rest_dim, remainder.shape[2])
        tensors.append(remainder)
        for offset, tensor in enumerate(tensors):
            self._sites[block[0] + offset] = tensor


def _truncation_rank(
    singular_values: np.ndarray, max_bond: int | None
) -> tuple[int, float]:
    """``(keep, discarded_weight)`` for one SVD split.

    ``keep`` is the retained rank (numerically nonzero singular values,
    capped at ``max_bond``); ``discarded_weight`` is the squared Schmidt
    weight of everything dropped — the quantity
    :attr:`MatrixProductState.discarded_weight` accumulates.
    """
    keep = int(np.sum(singular_values > 1e-12))
    keep = max(keep, 1)
    if max_bond is not None:
        keep = min(keep, max_bond)
    discarded = float(np.sum(singular_values[keep:] ** 2))
    return keep, discarded


def _dense_operator(gate: Gate) -> np.ndarray:
    """The gate as a dense matrix over its sorted operand qubits.

    Little-endian within the operand list: sorted operand ``j`` is bit
    ``j`` of the operator's index.
    """
    qubits = sorted(gate.qubits)
    k = len(qubits)
    dim = 1 << k
    index_of = {q: j for j, q in enumerate(qubits)}
    u2 = gate.matrix()
    target_bit = index_of[gate.target]
    op = np.zeros((dim, dim), dtype=complex)
    for basis in range(dim):
        fire = all(
            (basis >> index_of[c.qubit]) & 1 == c.value for c in gate.controls
        )
        if not fire:
            op[basis, basis] = 1.0
            continue
        b = (basis >> target_bit) & 1
        partner = basis ^ (1 << target_bit)
        # column `basis` maps |basis> -> u[.,b] combinations
        if b == 0:
            op[basis, basis] += u2[0, 0]
            op[partner, basis] += u2[1, 0]
        else:
            op[partner, basis] += u2[0, 1]
            op[basis, basis] += u2[1, 1]
    return op


def simulate_mps(
    circuit: QuantumCircuit,
    max_bond: int | None = None,
    initial_bits: int = 0,
    norm_tolerance: float | None = DEFAULT_NORM_TOLERANCE,
) -> MatrixProductState:
    """Run a circuit on the MPS simulator.

    Parameters
    ----------
    circuit:
        Any circuit from the IR (all gate kinds supported).
    max_bond:
        Optional bond-dimension cap (exact when ``None``; the qTKP
        oracle needs at most ``2^n`` for an n-vertex graph).  A
        gate-fault injector's forced-truncation fault composes here via
        :meth:`repro.resilience.GateFaultInjector.mps_bond_cap`.
    initial_bits:
        Basis-state input as a little-endian mask.
    norm_tolerance:
        Forwarded to :class:`MatrixProductState`; probability queries on
        the returned state raise :class:`MPSNormError` when truncation
        has discarded more norm than this.
    """
    mps = MatrixProductState(
        circuit.num_qubits, max_bond=max_bond, norm_tolerance=norm_tolerance
    )
    for i in range(circuit.num_qubits):
        if (initial_bits >> i) & 1:
            mps._apply_single(np.array([[0, 1], [1, 0]], dtype=complex), i)
    for gate in circuit:
        mps.apply_gate(gate)
    return mps
