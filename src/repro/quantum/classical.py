"""Bit-level simulation of classical-reversible circuits at any width.

The qTKP oracle body (``U_check``) is built entirely from X-family
gates — X, CNOT, Toffoli, C^kNOT — which permute computational basis
states.  On a basis-state input such a circuit behaves like classical
reversible logic, so it can be evaluated exactly with one bit array in
O(gates), no matter how many qubits it uses.  This is how the library
verifies the *full* paper circuits (hundreds of qubits for n = 10
graphs) without a maxed-out statevector: the MPS simulator the authors
used exploits the same near-classical structure.
"""

from __future__ import annotations

from .circuit import QuantumCircuit
from .gates import is_classical_gate

__all__ = ["classical_simulate", "classical_output_bit", "assert_classical"]


def assert_classical(circuit: QuantumCircuit) -> None:
    """Raise ``ValueError`` if the circuit has any non-X-family gate."""
    for i, gate in enumerate(circuit):
        if not is_classical_gate(gate):
            raise ValueError(
                f"gate {i} ({gate.name}) is not classical-reversible; "
                "classical simulation only supports the X family"
            )


def classical_simulate(circuit: QuantumCircuit, input_bits: int) -> int:
    """Evaluate a classical-reversible circuit on a basis state.

    Parameters
    ----------
    circuit:
        Circuit containing only X-family gates.
    input_bits:
        Basis state as a little-endian bitmask (qubit ``i`` = bit ``i``).

    Returns
    -------
    int
        The output basis state as a bitmask.
    """
    state = input_bits
    if state < 0 or state >= (1 << circuit.num_qubits):
        raise ValueError(
            f"input {input_bits:#x} out of range for {circuit.num_qubits} qubits"
        )
    for gate in circuit:
        if not is_classical_gate(gate):
            raise ValueError(
                f"gate {gate.name} is not classical-reversible; "
                "use the statevector simulator instead"
            )
        fire = all((state >> c.qubit & 1) == c.value for c in gate.controls)
        if fire:
            state ^= 1 << gate.target
    return state


def classical_output_bit(circuit: QuantumCircuit, input_bits: int, qubit: int) -> int:
    """Evaluate the circuit and read one output qubit (0 or 1)."""
    return classical_simulate(circuit, input_bits) >> qubit & 1
