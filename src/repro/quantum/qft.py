"""Quantum Fourier transform and phase estimation circuits.

Quantum counting (Brassard et al.) — the subroutine qTKP uses to learn
the solution count ``M`` — is phase estimation applied to the Grover
operator.  :mod:`repro.quantum.counting` evaluates its readout
distribution analytically in the operator's 2-D invariant subspace;
this module supplies the *circuit-level* machinery so the analytic
model can be validated end to end on small registers:

* :func:`qft_circuit` — the textbook QFT out of Hadamards and
  controlled phase gates (plus the final swap reversal);
* :func:`phase_estimation_circuit` — ``t`` readout qubits controlling
  powers of an arbitrary single-qubit phase unitary, inverse QFT,
  ready for measurement;
* :func:`estimate_phase_distribution` — dense-simulate the circuit and
  return the readout distribution.

Controlled-U powers for general multi-qubit U are outside the IR's
gate set, so the circuit-level validation targets phase gates (which
is exactly what the Grover operator looks like on each eigenvector).
"""

from __future__ import annotations

import math

import numpy as np

from .circuit import QuantumCircuit
from .gates import Control, Gate
from .statevector import simulate

__all__ = [
    "qft_circuit",
    "inverse_qft_circuit",
    "qft_matrix",
    "phase_estimation_circuit",
    "estimate_phase_distribution",
]


def _swap(qc: QuantumCircuit, a: int, b: int) -> None:
    """SWAP from three CNOTs."""
    qc.cx(a, b)
    qc.cx(b, a)
    qc.cx(a, b)


def qft_circuit(num_qubits: int, offset: int = 0) -> QuantumCircuit:
    """The quantum Fourier transform on ``num_qubits`` qubits.

    Maps |j> to ``(1/sqrt(2^n)) sum_k exp(2 pi i j k / 2^n) |k>`` in the
    little-endian convention (qubit ``offset`` is the least significant
    bit of ``j``).  ``offset`` places the transform on a sub-register of
    a wider circuit.
    """
    if num_qubits < 1:
        raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
    qc = QuantumCircuit(offset + num_qubits)
    # Standard construction on the most-significant-first ordering.
    for i in reversed(range(num_qubits)):
        qc.h(offset + i)
        for jdx in range(i):
            angle = math.pi / (1 << (i - jdx))
            qc.append(
                Gate("p", offset + i, (Control(offset + jdx),), param=angle)
            )
    for i in range(num_qubits // 2):
        _swap(qc, offset + i, offset + num_qubits - 1 - i)
    return qc


def inverse_qft_circuit(num_qubits: int, offset: int = 0) -> QuantumCircuit:
    """The adjoint of :func:`qft_circuit`."""
    return qft_circuit(num_qubits, offset).inverse()


def qft_matrix(num_qubits: int) -> np.ndarray:
    """The ideal QFT as a dense matrix, for cross-checking."""
    dim = 1 << num_qubits
    omega = np.exp(2j * np.pi / dim)
    j, k = np.meshgrid(np.arange(dim), np.arange(dim), indexing="ij")
    return omega ** (j * k) / np.sqrt(dim)


def phase_estimation_circuit(
    precision_qubits: int, phase: float
) -> QuantumCircuit:
    """QPE measuring the eigenphase of ``diag(1, e^{i phase})`` on |1>.

    Layout: qubits ``0 .. t-1`` form the readout register (little
    endian), qubit ``t`` holds the eigenstate |1>.  The circuit applies
    H on the readout, controlled ``U^(2^j)`` (phase gates with doubled
    angles), and the inverse QFT; measuring the readout register then
    samples the canonical QPE distribution for ``phase``.
    """
    if precision_qubits < 1:
        raise ValueError(f"precision_qubits must be >= 1, got {precision_qubits}")
    t = precision_qubits
    qc = QuantumCircuit(t + 1)
    qc.x(t)  # prepare the eigenstate |1>
    for j in range(t):
        qc.h(j)
    for j in range(t):
        qc.append(
            Gate("p", t, (Control(j),), param=float(phase) * (1 << j))
        )
    qc.extend(_shift_into(inverse_qft_circuit(t), t + 1))
    return qc


def _shift_into(circuit: QuantumCircuit, width: int) -> QuantumCircuit:
    """Re-host a circuit inside a wider qubit space (indices unchanged)."""
    out = QuantumCircuit(width)
    for gate in circuit:
        out.append(gate)
    return out


def estimate_phase_distribution(
    precision_qubits: int, phase: float
) -> np.ndarray:
    """Dense-simulate QPE and return P[m] over the readout register."""
    qc = phase_estimation_circuit(precision_qubits, phase)
    sv = simulate(qc)
    t = precision_qubits
    marginal = sv.marginal_probabilities(list(range(t)))
    out = np.zeros(1 << t)
    for value, prob in marginal.items():
        out[value] = prob
    return out
