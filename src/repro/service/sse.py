"""Server-Sent Events substrate: wire format + the per-job event journal.

The gateway's reconnect contract rests on one structure, the
:class:`EventJournal` — an append-only JSON-lines file of everything a
job ever streamed, with **monotone 1-based event ids**:

* every SSE frame a client receives carries its journal id, so a
  client that reconnects with ``Last-Event-ID: n`` is replayed ids
  ``n+1..`` from disk and then switched live — no gaps, no duplicates;
* the journal is keyed by the job's **content key** (the same key the
  checkpoint journal uses), so it survives gateway restarts: a killed
  gateway's successor reopens the file and continues appending where
  the old one stopped;
* appends are **deduplicated by content** — a crash-resumed job replays
  its incumbents (bit-identically, per the checkpoint contract) with
  ``replayed=True``; the journal recognises the re-announcement and
  does not re-journal it, which is what makes the client's stream
  duplicate-free across worker crashes and gateway kills;
* the file is written line-by-line with a flush per record and loaded
  with torn-tail tolerance (same discipline as the checkpoint WAL): a
  gateway SIGKILLed mid-append costs at most the final line, and a
  bit-identical resume regenerates it with the same id.

Fan-out to live connections goes through bounded
:class:`Subscription` queues.  A subscriber that falls
``maxsize`` events behind is **evicted** (flagged; the connection
handler closes it) instead of growing an unbounded buffer or blocking
the append path — the slow client can reconnect with ``Last-Event-ID``
and catch up from the journal at its own pace.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from pathlib import Path

__all__ = [
    "EventJournal",
    "Subscription",
    "encode_comment",
    "encode_event",
    "parse_sse_stream",
]

#: Record types that settle a journal; at most one is ever appended.
TERMINAL_TYPES = ("result",)


def encode_event(record: dict) -> bytes:
    """One SSE frame: ``id:`` + ``event:`` + single-line ``data:``."""
    data = json.dumps(record["data"], sort_keys=True)
    return (
        f"id: {record['id']}\nevent: {record['type']}\ndata: {data}\n\n"
    ).encode("utf-8")


def encode_comment(text: str = "") -> bytes:
    """An SSE comment frame (ignored by ``Last-Event-ID`` tracking)."""
    return f": {text}\n\n".encode("utf-8")


def _digest(type_: str, data: dict) -> str:
    """Content identity of one event, invariant under replay.

    ``replayed`` is excluded: a checkpoint-resumed job re-announces its
    incumbents bit-identically except for that flag, and those
    re-announcements must collapse onto the original journal entries.
    """
    payload = {k: v for k, v in data.items() if k != "replayed"}
    canonical = json.dumps({"type": type_, "data": payload}, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class Subscription:
    """One live listener's bounded event queue."""

    def __init__(self, journal: "EventJournal", maxsize: int) -> None:
        self._journal = journal
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self.evicted = False

    def close(self) -> None:
        self._journal._subscribers.discard(self)


class EventJournal:
    """Persistent, deduplicating, monotone-id event log for one job."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.records: list[dict] = []
        self._digests: set[str] = set()
        self.terminal: dict | None = None
        self._subscribers: set[Subscription] = set()
        self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        """Reopen an existing journal (gateway restart), torn-tail safe."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            try:
                record = json.loads(line)
                record_id = int(record["id"])
                type_ = str(record["type"])
                data = dict(record["data"])
            except (ValueError, KeyError, TypeError):
                break  # torn tail: the predecessor died mid-append
            if record_id != len(self.records) + 1:
                break  # out-of-sequence tail — treat like torn
            self.records.append({"id": record_id, "type": type_, "data": data})
            self._digests.add(_digest(type_, data))
            if type_ in TERMINAL_TYPES:
                self.terminal = self.records[-1]

    # ------------------------------------------------------------------
    @property
    def last_id(self) -> int:
        return len(self.records)

    def append(self, type_: str, data: dict) -> dict | None:
        """Journal one event; returns the record, or None if deduplicated.

        Duplicate content (a crash-resume's ``replayed`` re-announcement
        of an already-journaled incumbent) is dropped.  A second
        terminal record is likewise dropped — the first final answer
        stands (any later one is bit-identical by the resume contract).
        """
        if type_ in TERMINAL_TYPES and self.terminal is not None:
            return None
        digest = _digest(type_, data)
        if digest in self._digests:
            return None
        record = {"id": len(self.records) + 1, "type": type_, "data": data}
        self.records.append(record)
        self._digests.add(digest)
        if type_ in TERMINAL_TYPES:
            self.terminal = record
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        for sub in list(self._subscribers):
            if sub.evicted:
                continue
            try:
                sub.queue.put_nowait(record)
            except asyncio.QueueFull:
                # The reader fell a full queue behind: evict instead of
                # buffering without bound.  Its handler closes the
                # connection; the journal keeps the truth for replay.
                sub.evicted = True
        return record

    def replay(self, after_id: int = 0) -> list[dict]:
        """Records with id > ``after_id`` (the Last-Event-ID contract)."""
        if after_id <= 0:
            return list(self.records)
        return [r for r in self.records if r["id"] > after_id]

    def subscribe(self, maxsize: int) -> Subscription:
        sub = Subscription(self, maxsize)
        self._subscribers.add(sub)
        return sub

    def close(self) -> None:
        self._fh.close()
        self._subscribers.clear()


def parse_sse_stream(lines):
    """Incremental client-side SSE parser.

    ``lines`` is any iterable of ``bytes`` (e.g. an ``http.client``
    response object).  Yields ``{"id": int | None, "event": str,
    "data": str}`` per dispatched event; comment frames (heartbeats)
    are consumed silently, per the SSE spec.  Returns when the stream
    ends.
    """
    event_type = "message"
    event_id: int | None = None
    data_lines: list[str] = []
    for raw in lines:
        line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
        if line == "":
            if data_lines:
                yield {
                    "id": event_id,
                    "event": event_type,
                    "data": "\n".join(data_lines),
                }
            event_type = "message"
            event_id = None
            data_lines = []
            continue
        if line.startswith(":"):
            continue  # comment / heartbeat
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event_type = value
        elif field == "data":
            data_lines.append(value)
        elif field == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = None
    # A frame without its terminating blank line was torn mid-write by a
    # dying connection — drop it; the reconnect replays it whole.
