"""Worker child process: execute one job spec, stream JSON events.

This is what a service "worker" actually runs: ``python -m
repro.service.runner JOB.json``.  Isolating each job in its own
process is the crash boundary the supervisor's resume logic is built
on — a SIGKILL here loses at most the probe in flight, because every
completed qMKP probe is already fsynced in the job's write-ahead
checkpoint journal.

Protocol (one JSON object per stdout line, flushed immediately):

* ``{"event": "started", ...}``   — the job is running (pid, whether a
  journal is being resumed);
* ``{"event": "incumbent", ...}`` — one verified feasible k-plex, the
  anytime stream (qMKP threshold probes and branch-search incumbents);
* ``{"event": "suspended", ...}`` — a SIGINT landed; the journal is
  flushed and the job is resumable at its checkpoint path (exit 130);
* ``{"event": "result", ...}``    — the final answer plus the receipt
  path (exit 0, or 3 when the traced run ledger failed to reconcile).

The ``answer`` sub-object of the result event contains only fields
that are bit-identical between an undisturbed run and any
kill/resume sequence — the chaos harness compares it byte-for-byte.
Volatile fields (``resumed_probes``, pid, paths) live outside it.

Every run is traced: the :class:`~repro.obs.RunLedger` receipt —
span tree, metrics, reconciliation verdict — is written next to the
checkpoint and returned to the caller by the service.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from ..core import qamkp, qmkp
from ..graphs import read_edge_list
from ..kplex import maximum_kplex
from ..obs import RunLedger, Tracer
from ..perf import MarkedSetCache
from ..perf.shared import SHARED_CACHE_ENV, SharedTableStore
from ..resilience import CheckpointError, CheckpointJournal
from .chaos import HOLD_ENV
from .jobs import JobSpec

__all__ = ["execute", "main"]


def _emit(payload: dict[str, object]) -> None:
    sys.stdout.write(json.dumps(payload, sort_keys=True) + "\n")
    sys.stdout.flush()


def _job_cache() -> MarkedSetCache:
    """The job's marked-set cache, fleet-shared when the supervisor says so.

    With ``REPRO_SHARED_CACHE_DIR`` unset this is exactly the run-local
    cache ``qmkp``/``IncrementalSolver`` would have created themselves
    (same defaults, same spans, same ledger) — building it here just
    makes its counters observable in the result event either way.
    """
    shared_dir = os.environ.get(SHARED_CACHE_ENV)
    shared = SharedTableStore(shared_dir) if shared_dir else None
    return MarkedSetCache(shared=shared)


def _translate(subset, labels) -> list[object]:
    return sorted(labels[v] for v in subset)


def _solve_qmkp(spec: JobSpec, graph, labels, job_id, checkpoint, tracer, cache):
    resume = checkpoint if CheckpointJournal.resumable(checkpoint) else None

    def on_progress(event, subset, replayed) -> None:
        _emit({
            "event": "incumbent",
            "job_id": job_id,
            "size": event.size,
            "threshold": event.threshold,
            "cumulative_gate_units": event.cumulative_gate_units,
            "cumulative_oracle_calls": event.cumulative_oracle_calls,
            "vertices": _translate(subset, labels),
            "replayed": replayed,
        })

    result = qmkp(
        graph,
        spec.k,
        rng=np.random.default_rng(spec.seed),
        cache=cache,
        tracer=tracer,
        deadline=spec.gate_deadline,
        checkpoint=checkpoint,
        resume=resume,
        on_progress=on_progress,
    )
    answer = {
        "solver": "qmkp",
        "k": spec.k,
        "size": result.size,
        "vertices": _translate(result.subset, labels),
        "gate_units": result.gate_units,
        "oracle_calls": result.oracle_calls,
        "qtkp_calls": result.qtkp_calls,
        "degraded_to": result.degraded_to,
    }
    extra = {"resumed_probes": result.resumed_probes}
    return answer, extra


def _solve_qmkp_dynamic(
    spec: JobSpec, graph, labels, job_id, checkpoint, tracer, cache
):
    """Mutation job: an incremental session over the spec's edit script.

    Each step re-solves after one edit, journalling its probes into a
    per-step WAL under ``<checkpoint>.d/`` — a SIGKILL mid-stream loses
    at most the probe in flight of the step it landed in, and the
    resumed run replays the finished steps bit-identically.  The
    ``answer`` carries only crash-stable fields (sizes, vertices, cost
    totals); volatile resume/reuse counters ride in ``extra``.
    """
    from ..dynamic import IncrementalSolver, apply_labelled_edit, read_edits

    edits = read_edits(spec.edits_path)
    labels = dict(labels)
    session = IncrementalSolver(
        graph,
        spec.k,
        seed=spec.seed if spec.seed is not None else 0,
        cache=cache,
        tracer=tracer,
        checkpoint_dir=checkpoint.parent / (checkpoint.name + ".d"),
    )

    steps: list[dict[str, object]] = []
    totals = {"gate_units": 0, "oracle_calls": 0, "qtkp_calls": 0}
    resumed = 0
    reused = 0

    def run_step() -> None:
        nonlocal resumed, reused
        step = session.resolve()
        result = step.result
        totals["gate_units"] += result.gate_units
        totals["oracle_calls"] += result.oracle_calls
        totals["qtkp_calls"] += result.qtkp_calls
        resumed += step.resumed_probes
        reused += step.reused_partitions
        vertices = _translate(step.subset, labels)
        _emit({
            "event": "incumbent",
            "job_id": job_id,
            "size": step.size,
            "threshold": step.step,
            "cumulative_gate_units": totals["gate_units"],
            "cumulative_oracle_calls": totals["oracle_calls"],
            "vertices": vertices,
            "replayed": step.resumed_probes > 0,
        })
        steps.append({
            "step": step.step,
            "edits": [edit.as_line() for edit in step.edits],
            "size": step.size,
            "vertices": vertices,
            "gate_units": result.gate_units,
            "oracle_calls": result.oracle_calls,
        })

    run_step()  # step 0: the unedited graph
    for edit in edits:
        apply_labelled_edit(session, edit, labels)
        run_step()
    final = steps[-1]
    answer = {
        "solver": "qmkp",
        "mode": "dynamic",
        "k": spec.k,
        "size": final["size"],
        "vertices": final["vertices"],
        "gate_units": totals["gate_units"],
        "oracle_calls": totals["oracle_calls"],
        "qtkp_calls": totals["qtkp_calls"],
        "steps": steps,
        "degraded_to": None,
    }
    extra = {"resumed_probes": resumed, "reused_partitions": reused}
    return answer, extra


def _solve_bs(spec: JobSpec, graph, labels, job_id, tracer):
    def on_incumbent(subset, nodes) -> None:
        _emit({
            "event": "incumbent",
            "job_id": job_id,
            "size": len(subset),
            "threshold": -1,
            "cumulative_gate_units": 0,
            "cumulative_oracle_calls": nodes,
            "vertices": _translate(subset, labels),
            "replayed": False,
        })

    with tracer.span("branch_search", n=graph.num_vertices, k=spec.k) as span:
        result = maximum_kplex(graph, spec.k, on_incumbent=on_incumbent)
        span.set("size", result.size)
        span.set("nodes", result.stats.nodes)
    answer = {
        "solver": "bs",
        "k": spec.k,
        "size": result.size,
        "vertices": _translate(result.subset, labels),
        "gate_units": 0,
        "nodes": result.stats.nodes,
    }
    return answer, {}


def _solve_qamkp(spec: JobSpec, graph, labels, tracer):
    backend = spec.solver.split("-", 1)[1]
    result = qamkp(
        graph,
        spec.k,
        runtime_us=spec.runtime_us,
        solver=backend,
        seed=spec.seed,
        fallback=backend == "qpu",
        tracer=tracer,
    )
    answer = {
        "solver": spec.solver,
        "k": spec.k,
        "size": len(result.repaired),
        "vertices": _translate(result.repaired, labels),
        "gate_units": 0,
        "cost": result.cost,
        "feasible": result.feasible,
    }
    return answer, {"backend_used": result.info.get("backend_used", backend)}


def execute(job: dict[str, object]) -> int:
    """Run one job payload (see :func:`main` for the file format)."""
    job_id = str(job["job_id"])
    spec = JobSpec.from_dict(dict(job["spec"]))
    checkpoint = Path(str(job["checkpoint"]))
    receipt = Path(str(job["receipt"]))

    tracer = Tracer()
    try:
        # "started" goes out before the hold: once the supervisor sees
        # it, this process is guaranteed to translate SIGINT into the
        # graceful suspend path below (the handler is installed).
        _emit({
            "event": "started",
            "job_id": job_id,
            "pid": os.getpid(),
            "solver": spec.solver,
            "resuming": CheckpointJournal.resumable(checkpoint),
        })
        hold_s = float(os.environ.get(HOLD_ENV, 0) or 0)
        if hold_s:  # chaos/test hook: pin the job in the running state
            time.sleep(hold_s)
        graph, labels = read_edge_list(spec.graph_path)
        cache = None
        if spec.solver == "qmkp" and spec.edits_path is not None:
            cache = _job_cache()
            answer, extra = _solve_qmkp_dynamic(
                spec, graph, labels, job_id, checkpoint, tracer, cache
            )
        elif spec.solver == "qmkp":
            cache = _job_cache()
            answer, extra = _solve_qmkp(
                spec, graph, labels, job_id, checkpoint, tracer, cache
            )
        elif spec.solver == "bs":
            answer, extra = _solve_bs(spec, graph, labels, job_id, tracer)
        else:
            answer, extra = _solve_qamkp(spec, graph, labels, tracer)
    except KeyboardInterrupt:
        # Graceful suspension: every completed probe is already fsynced
        # in the journal, so the job is resumable exactly where it was.
        _emit({
            "event": "suspended",
            "job_id": job_id,
            "checkpoint": str(checkpoint),
        })
        return 130

    # Cache counters ride along only when the fleet tier is on: with it
    # off, result events, spool records, and receipts stay byte-identical
    # to a service that predates the shared store.
    if cache is not None and cache.shared is not None:
        extra = {**extra, "cache": cache.stats()}
    ledger = RunLedger.from_tracer(
        tracer,
        meta={"job_id": job_id, "spec": spec.as_dict()},
    )
    drift = ledger.verify(raise_on_drift=False)
    receipt_doc = {
        "job_id": job_id,
        "spec": spec.as_dict(),
        "answer": answer,
        **extra,
        "ledger": ledger.as_dict(),
    }
    receipt.parent.mkdir(parents=True, exist_ok=True)
    receipt.write_text(json.dumps(receipt_doc, indent=2, sort_keys=True) + "\n")
    _emit({
        "event": "result",
        "job_id": job_id,
        "answer": answer,
        **extra,
        "verified": not drift,
        "receipt": str(receipt),
    })
    if drift:
        for record in drift:
            print(f"ledger drift: {record}", file=sys.stderr)
        return 3
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.service.runner JOB.json", file=sys.stderr)
        return 2
    try:
        job = json.loads(Path(argv[0]).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read job file {argv[0]}: {exc}", file=sys.stderr)
        return 2
    try:
        return execute(job)
    except CheckpointError as exc:
        print(f"error: checkpoint: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
