"""Worker slot: run one job subprocess at a time, relay its events.

A :class:`Worker` is an asyncio task owned by the supervisor.  It pulls
jobs off the shared :class:`~repro.service.queue.JobQueue`, spawns the
:mod:`repro.service.runner` child process for each, relays the child's
JSON event stream (incumbents to the caller's handle, the result onto
the job), and hands the exit code to the supervisor's crash policy.

The *child* is the crash domain: a SIGKILL there is detected here as a
negative returncode and never takes the service down.  The worker task
itself does no solving, so the only state lost with a killed child is
the probe in flight — everything else is in the job's checkpoint
journal.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from pathlib import Path

import repro

from ..perf.shared import PUBLISH_KILL_ENV, SHARED_CACHE_ENV
from .jobs import IncumbentEvent, Job

__all__ = ["Worker"]

#: Limit for one protocol line from the child (vertices lists are small;
#: this is just a guard against a runaway child flooding the parent).
_LINE_LIMIT = 1 << 20


class Worker:
    """One worker slot of the supervisor's pool."""

    def __init__(self, name: str, supervisor) -> None:
        self.name = name
        self.supervisor = supervisor
        self.current: Job | None = None
        self.proc: asyncio.subprocess.Process | None = None

    async def run(self) -> None:
        """Main loop: drain the queue until it closes.

        The loop itself must survive anything one job can throw at it —
        a missing interpreter, an over-limit protocol line, a bug in the
        relay — so :meth:`_execute` runs under a guard that settles the
        job as failed (callers awaiting it never hang) and keeps this
        worker slot serving.
        """
        while True:
            job = await self.supervisor.queue.get()
            if job is None:
                return
            self.current = job
            try:
                await self._execute(job)
            except Exception as exc:  # noqa: BLE001 — the slot must live
                await self._abort(job, exc)
            finally:
                self.current = None
                self.proc = None

    async def _abort(self, job: Job, exc: Exception) -> None:
        """Settle a job whose *relay* (not the solver) blew up."""
        sup = self.supervisor
        proc = self.proc
        if proc is not None and proc.returncode is None:
            proc.kill()
            await proc.wait()
        sup.tracer.add("service_worker_errors", 1)
        if not job.done:
            sup.tracer.add("service_jobs_failed", 1)
            job.settle(
                "failed",
                f"worker {self.name} internal error: "
                f"{type(exc).__name__}: {exc}",
            )

    # ------------------------------------------------------------------
    def _job_file(self, job: Job) -> Path:
        path = job.jobfile_path
        # Attempt 1 (re)writes the file so a stale one from a previous
        # service run can never smuggle in another job's spec; resumes
        # reuse it — resolve_backend pins the solver, so the content
        # could only be identical anyway.
        if job.resumes == 0 or not path.exists():
            path.write_text(json.dumps({
                "job_id": job.job_id,
                "spec": {**job.spec.as_dict(), "solver": job.solver},
                "checkpoint": str(job.checkpoint_path),
                "receipt": str(job.receipt_path),
            }, indent=2, sort_keys=True) + "\n")
        return path

    def _child_env(self, job: Job) -> dict[str, str]:
        env = dict(os.environ)
        # The child must import the same repro package as the parent,
        # regardless of how the parent found it.
        src = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        # A fresh attempt must not inherit a stale chaos hook from the
        # service environment; the plan below re-adds what it scripts.
        env.pop("QMKP_CRASH_AFTER_PROBES", None)
        env.pop("QMKP_SIGINT_AFTER_PROBES", None)
        env.pop(PUBLISH_KILL_ENV, None)
        # The shared tier is supervisor policy, not ambient environment:
        # the child sees it exactly when the config enables it.
        env.pop(SHARED_CACHE_ENV, None)
        shared_dir = self.supervisor.shared_cache_dir
        if shared_dir is not None:
            env[SHARED_CACHE_ENV] = str(shared_dir)
        chaos = self.supervisor.chaos
        if chaos is not None:
            env.update(chaos.env_for(job.spec.name, job.resumes))
        return env

    async def _execute(self, job: Job) -> None:
        sup = self.supervisor
        if sup.suspending:
            # The shutdown sweep only SIGINTs children that already
            # exist; a job dequeued around the sweep must not start a
            # fresh solve that would block the suspend.
            sup.tracer.add("service_jobs_suspended", 1)
            job.settle("suspended", "service shut down before the job started")
            return
        sup.resolve_backend(job)
        if job.state == "failed":
            return  # every degradation rung was breaker-rejected
        job.state = "running"
        job.worker = self.name
        sup.mark_busy(+1)
        try:
            # The job file is written after backend resolution so the
            # child sees the effective (possibly degraded) solver.
            job_file = self._job_file(job)
            proc = await asyncio.create_subprocess_exec(
                sup.config.python,
                "-m",
                "repro.service.runner",
                str(job_file),
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.PIPE,
                env=self._child_env(job),
                limit=_LINE_LIMIT,
            )
            self.proc = proc
            stderr_task = asyncio.ensure_future(proc.stderr.read())
            while True:
                line = await proc.stdout.readline()
                if not line:
                    break
                self._handle_line(job, line)
            returncode = await proc.wait()
            stderr = (await stderr_task).decode(errors="replace")
        finally:
            sup.mark_busy(-1)
        await sup.on_exit(job, returncode, stderr)

    def _handle_line(self, job: Job, line: bytes) -> None:
        sup = self.supervisor
        try:
            payload = json.loads(line)
            event = payload.get("event")
            if event == "incumbent":
                incumbent = IncumbentEvent(
                    job_id=job.job_id,
                    size=int(payload["size"]),
                    threshold=int(payload["threshold"]),
                    cumulative_gate_units=int(
                        payload["cumulative_gate_units"]
                    ),
                    cumulative_oracle_calls=int(
                        payload["cumulative_oracle_calls"]
                    ),
                    vertices=tuple(payload["vertices"]),
                    replayed=bool(payload.get("replayed", False)),
                )
                job.push_incumbent(incumbent)
                sup.tracer.add("service_incumbents_streamed", 1)
            elif event == "result":
                job.result = {
                    "answer": payload["answer"],
                    "verified": bool(payload.get("verified", False)),
                    "receipt": payload.get("receipt"),
                    "resumed_probes": payload.get("resumed_probes", 0),
                }
                if "cache" in payload:
                    job.result["cache"] = payload["cache"]
            elif event == "started":
                # Once this is seen the child's SIGINT handler is
                # installed: a suspend signal from here on is graceful.
                job.child_pid = int(payload["pid"])
                if sup.suspending and self.proc is not None \
                        and self.proc.returncode is None:
                    # The child spawned after the shutdown sweep, so the
                    # sweep's SIGINT missed it — deliver it now, at the
                    # first moment it is guaranteed to land gracefully.
                    self.proc.send_signal(signal.SIGINT)
            # "suspended" is informational; the exit code is the
            # authoritative signal for the supervisor's policy.
        except (KeyError, TypeError, ValueError):
            # A crashing child can tear its final line mid-write (bad
            # JSON, same as the WAL) or emit a field the relay cannot
            # coerce — count it, never kill the worker over it.
            sup.tracer.add("service_protocol_errors", 1)
