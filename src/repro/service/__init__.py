"""Solver-as-a-service: a supervised async job engine for qMKP/qaMKP.

This package turns the single-shot solver stack into a long-running
service with the robustness properties the rest of the repo already
provides per-run, lifted to the fleet level:

* **Admission control** — per-tenant gate-unit budget pools
  (:class:`~repro.service.queue.TenantPools`) and a bounded queue with
  a typed :class:`BackpressureError` instead of unbounded growth;
* **Crash-resume workers** — each job runs in its own subprocess over
  a write-ahead :class:`~repro.resilience.CheckpointJournal`; a
  SIGKILLed worker's job resumes bit-identically on another worker;
* **Graceful degradation** — per-backend
  :class:`~repro.resilience.CircuitBreaker`\\ s route fresh jobs down
  the :data:`~repro.service.config.DEGRADATION` ladder when a backend
  is unhealthy;
* **Anytime streaming** — callers consume verified incumbents while
  the job runs (:meth:`Job.stream`);
* **Deterministic chaos** — :class:`ChaosPlan` scripts SIGKILL/SIGINT
  faults per job attempt, and the harness asserts resumed answers are
  byte-identical to undisturbed runs.

Quick start (in-process)::

    from repro.service import JobSpec, ServiceConfig, Supervisor

    async def main():
        async with Supervisor(ServiceConfig(workers=2)) as sup:
            job = sup.submit(JobSpec("graph.edges", k=2, seed=7))
            async for inc in job.stream():
                print("incumbent", inc.size)
            print(await job.result_dict())

Across processes, use the file spool: ``repro serve SPOOL`` in one
terminal, ``repro submit SPOOL GRAPH --wait`` in another.
"""

from .chaos import HOLD_ENV, ChaosPlan
from .config import DEGRADATION, ServiceConfig
from .jobs import (
    JOB_STATES,
    SOLVERS,
    AdmissionError,
    BackpressureError,
    IncumbentEvent,
    Job,
    JobSpec,
    ServiceError,
)
from .http import Gateway, GatewayClient, GatewayError
from .queue import JobQueue, TenantPools
from .spool import (
    NoServerError,
    SpoolTimeout,
    serve_spool,
    spool_server_alive,
    submit_to_spool,
    sweep_spool,
    wait_for_result,
)
from .sse import EventJournal
from .supervisor import Supervisor
from .worker import Worker

__all__ = [
    "AdmissionError",
    "BackpressureError",
    "ChaosPlan",
    "DEGRADATION",
    "EventJournal",
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "HOLD_ENV",
    "IncumbentEvent",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "JobSpec",
    "NoServerError",
    "SOLVERS",
    "ServiceConfig",
    "ServiceError",
    "SpoolTimeout",
    "Supervisor",
    "TenantPools",
    "Worker",
    "serve_spool",
    "spool_server_alive",
    "submit_to_spool",
    "sweep_spool",
    "wait_for_result",
]
