"""Bounded job queue with a resume fast lane, plus tenant admission.

Two pieces of admission control sit in front of the worker pool:

* :class:`JobQueue` — a bounded two-lane queue.  Fresh submissions go
  through the bounded lane and are rejected with a typed
  :class:`~repro.service.jobs.BackpressureError` when it is full —
  the queue can never grow unboundedly and never drops an accepted
  job.  Crash-resume requeues go through an *unbounded* priority lane:
  a job that already holds admission (and journaled work on disk) must
  never be bounced by later arrivals, and workers drain resumes first
  so recovery latency stays low.

* :class:`TenantPools` — one shared
  :class:`~repro.resilience.DeadlineBudget` of gate units per tenant.
  Admission checks the pool *before* enqueueing; completed jobs charge
  their actual gate-unit spend.  Per the deadline-budget semantics,
  concurrently running jobs of one tenant may overdraw the pool by
  their in-flight work, but once it reads expired every later
  submission is rejected with :class:`~repro.service.jobs.AdmissionError`.
"""

from __future__ import annotations

import asyncio
from collections import deque

from ..resilience import DeadlineBudget
from .jobs import AdmissionError, BackpressureError, Job, ServiceError

__all__ = ["JobQueue", "TenantPools"]


class JobQueue:
    """Bounded FIFO with an unbounded resume fast lane.

    ``submit`` is the admission-controlled entry (typed backpressure);
    ``requeue`` is the supervisor-only crash-recovery entry; ``get``
    is the worker entry, returning ``None`` once the queue is closed
    and drained (the worker's shutdown signal).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._fresh: deque[Job] = deque()
        self._resume: deque[Job] = deque()
        self._available = asyncio.Event()
        self.closed = False

    @property
    def depth(self) -> int:
        return len(self._fresh) + len(self._resume)

    def submit(self, job: Job) -> None:
        """Enqueue a fresh job or raise :class:`BackpressureError`."""
        if self.closed:
            raise ServiceError("job queue is closed (service draining)")
        if len(self._fresh) >= self.capacity:
            raise BackpressureError(self.capacity, self.depth)
        self._fresh.append(job)
        self._available.set()

    def requeue(self, job: Job) -> None:
        """Re-admit a crashed-but-resumable job at the front of the line.

        Deliberately unbounded: the job was already admitted once and
        its journaled probes are on disk — bouncing it now would strand
        that work, which is exactly what the resume lane exists to
        prevent.
        """
        job.state = "queued"
        self._resume.append(job)
        self._available.set()

    def drain_pending(self) -> list[Job]:
        """Remove and return everything still queued (shutdown path)."""
        pending = list(self._resume) + list(self._fresh)
        self._resume.clear()
        self._fresh.clear()
        return pending

    def close(self) -> None:
        """Stop intake; blocked ``get`` calls return once drained."""
        self.closed = True
        self._available.set()

    async def get(self) -> Job | None:
        """Next job (resume lane first), or ``None`` on closed+empty."""
        while True:
            if self._resume:
                return self._resume.popleft()
            if self._fresh:
                return self._fresh.popleft()
            if self.closed:
                return None
            self._available.clear()
            await self._available.wait()


class TenantPools:
    """Per-tenant gate-unit budgets backing service admission control.

    ``budgets`` maps tenant name to a total gate-unit allowance; a
    tenant with no entry is unlimited (admission always passes, charges
    are counted but never rejected).
    """

    def __init__(self, budgets: dict[str, float] | None = None) -> None:
        self._pools: dict[str, DeadlineBudget] = {}
        self._unlimited_charged: dict[str, float] = {}
        for tenant, units in (budgets or {}).items():
            self._pools[tenant] = DeadlineBudget(units)

    def pool(self, tenant: str) -> DeadlineBudget | None:
        return self._pools.get(tenant)

    def admit(self, tenant: str) -> None:
        """Raise :class:`AdmissionError` if the tenant's pool is dry."""
        pool = self._pools.get(tenant)
        if pool is not None and pool.expired:
            raise AdmissionError(tenant, pool.budget, pool.charged)

    def charge(self, tenant: str, gate_units: float) -> None:
        """Debit a completed job's actual spend against its tenant."""
        pool = self._pools.get(tenant)
        if pool is not None:
            pool.charge(gate_units)
        else:
            self._unlimited_charged[tenant] = (
                self._unlimited_charged.get(tenant, 0.0)
                + max(0.0, float(gate_units))
            )

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {}
        for tenant, pool in sorted(self._pools.items()):
            out[tenant] = pool.as_dict()
        for tenant, charged in sorted(self._unlimited_charged.items()):
            out.setdefault(tenant, {"budget": None, "charged": charged})
        return out
