"""Fault-tolerant HTTP/1.1 + SSE gateway over the solver service.

This is the network front end the ROADMAP's service line has been
building toward: a **dependency-free** asyncio HTTP server in front of
:class:`~repro.service.supervisor.Supervisor`, written on the premise
that the network is a fault domain with explicit semantics — not a
transparent pipe:

* **Idempotent submission** — ``POST /v1/jobs`` keys on
  :meth:`JobSpec.content_key`.  A client retrying a timed-out submit
  attaches to the live (or settled) job instead of double-solving; the
  response carries a ``replayed`` marker and the original job id.
* **Reconnect-resumable streams** — ``GET /v1/jobs/{key}/events``
  serves :class:`IncumbentEvent`\\ s as SSE with monotone event ids
  from the job's persistent :class:`~repro.service.sse.EventJournal`.
  ``Last-Event-ID`` replays everything the client missed — across
  dropped connections, worker crashes, *and gateway restarts* — with
  no duplicates and no gaps, ending in a terminal ``result`` event.
* **Typed degradation** — :class:`BackpressureError` maps to ``429`` +
  ``Retry-After``; :class:`AdmissionError` to ``429`` with the tenant
  budget detail; a ledger-drift failure to ``500`` with the receipt
  quarantined; malformed requests to ``400``; a draining gateway to
  ``503``.  Slow readers are **evicted** (bounded send queues + a
  write deadline) instead of backing the supervisor up.
* **Graceful drain** — :meth:`Gateway.close` stops accepting, lets
  in-flight responses finish, and closes SSE streams with a shutdown
  comment; the CLI pairs it with ``Supervisor.shutdown(drain=False)``
  so workers suspend to resumable journals.

The failure-mode -> status-code mapping is deliberately small and
total: every path out of a request ends in exactly one of
``200/201/400/404/405/429/500/503``.

:class:`GatewayClient` is the matching stdlib-only client: submission
retries and stream reconnects both back off through a
:class:`~repro.resilience.RetryPolicy`, and the event loop enforces the
monotone-id contract as it consumes.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from urllib.parse import urlsplit

from .jobs import AdmissionError, BackpressureError, Job, JobSpec, ServiceError
from .sse import EventJournal, encode_comment, encode_event, parse_sse_stream

__all__ = [
    "DropConnection",
    "Gateway",
    "GatewayClient",
    "GatewayError",
]

#: Upper bounds on one request; beyond them the request is a 400.
_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 100
_MAX_BODY = 1 << 20
#: Seconds a keep-alive-less client gets to deliver its request.
_REQUEST_TIMEOUT_S = 10.0

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class GatewayError(ServiceError):
    """Client-side: the gateway answered with a failure status."""

    def __init__(self, status: int, body: dict | None = None) -> None:
        self.status = status
        self.body = body or {}
        detail = self.body.get("error") or _REASONS.get(status, "")
        super().__init__(f"gateway returned {status}: {detail}")

    @property
    def retry_after_s(self) -> float | None:
        value = self.body.get("retry_after_s")
        return float(value) if value is not None else None


class DropConnection(Exception):
    """Raised by an ``on_event`` hook to script a mid-stream drop
    (chaos harness); the client treats it exactly like a lost socket."""


class _BadRequest(Exception):
    """Internal: request parsing failed; message is client-safe."""


class Gateway:
    """Asyncio HTTP/1.1 + SSE front end for one :class:`Supervisor`."""

    def __init__(self, supervisor, host: str = "127.0.0.1", port: int = 0) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.journal_dir = supervisor.workdir / "gateway-events"
        self.quarantine_dir = supervisor.workdir / "quarantine"
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self._journals: dict[str, EventJournal] = {}
        self._jobs: dict[str, Job] = {}
        self._pumps: dict[str, asyncio.Task] = {}
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop_accepting(self) -> None:
        """First half of the drain: no new requests, finish in-flight.

        SSE streams observe the shutdown event, write a final comment,
        and close — their clients reconnect (to this gateway's
        successor) with ``Last-Event-ID`` and lose nothing, because the
        journal on disk is the source of truth.
        """
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def close(self) -> None:
        """Full drain: stop accepting, let pumps settle, close journals.

        The pumps finish only once their jobs settle, so when shutdown
        is what settles them (``Supervisor.shutdown(drain=False)``
        suspending workers), call :meth:`stop_accepting` first, shut the
        supervisor down, and *then* call this.
        """
        await self.stop_accepting()
        for pump in self._pumps.values():
            if not pump.done():
                # The pump drains the job's event queue; jobs themselves
                # are settled by the supervisor's own completion or
                # shutdown path.
                await pump
        for journal in self._journals.values():
            journal.close()
        self._journals.clear()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _count(self, metric: str, amount: float = 1) -> None:
        self.supervisor.tracer.add(metric, amount)

    def _journal(self, key: str) -> EventJournal:
        journal = self._journals.get(key)
        if journal is None:
            journal = EventJournal(self.journal_dir / f"{key}.events.jsonl")
            self._journals[key] = journal
        return journal

    def _journal_exists(self, key: str) -> bool:
        return key in self._journals or (
            self.journal_dir / f"{key}.events.jsonl"
        ).exists()

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        self._count("gateway_requests")
        try:
            try:
                method, path, query, headers, body = await asyncio.wait_for(
                    self._read_request(reader), _REQUEST_TIMEOUT_S
                )
            except (_BadRequest, asyncio.TimeoutError, ValueError) as exc:
                self._count("gateway_bad_requests")
                await self._respond(writer, 400, {
                    "error": f"malformed request: {exc}",
                    "error_type": "BadRequest",
                })
                return
            await self._route(method, path, query, headers, body, writer)
        except (ConnectionError, asyncio.TimeoutError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 — one request, not the server
            self._count("gateway_internal_errors")
            try:
                await self._respond(writer, 500, {
                    "error": f"{type(exc).__name__}: {exc}",
                    "error_type": "Internal",
                })
            except (ConnectionError, OSError):
                pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # aborted transports never settle their close waiter

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if len(request_line) > _MAX_REQUEST_LINE:
            raise _BadRequest("request line too long")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _BadRequest(f"bad request line {request_line!r}")
        method, target, _version = parts
        split = urlsplit(target)
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > _MAX_REQUEST_LINE:
                raise _BadRequest("header line too long")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"bad header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _BadRequest(f"body too large ({length} bytes)")
        if length:
            body = await reader.readexactly(length)
        query = dict(
            pair.split("=", 1) if "=" in pair else (pair, "")
            for pair in split.query.split("&")
            if pair
        )
        return method.upper(), split.path, query, headers, body

    async def _respond(
        self,
        writer,
        status: int,
        body: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            "Connection": "close",
            **(extra_headers or {}),
        }
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode("latin-1") + b"\r\n" + payload)
        await writer.drain()

    async def _respond_text(
        self, writer, status: int, text: str, content_type: str
    ) -> None:
        payload = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method, path, query, headers, body, writer) -> None:
        parts = [p for p in path.split("/") if p]
        if parts == ["v1", "jobs"] and method == "POST":
            await self._post_job(body, writer)
            return
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"] and method == "GET":
            await self._get_job(parts[2], writer)
            return
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "events"
            and method == "GET"
        ):
            await self._get_events(parts[2], query, headers, writer)
            return
        if parts == ["v1", "metrics"] and method == "GET":
            await self._get_metrics(query, writer)
            return
        if parts == ["v1", "healthz"] and method == "GET":
            await self._respond(writer, 200, {
                "status": "draining" if self._shutdown.is_set() else "ok",
                **self.supervisor.stats(),
            })
            return
        if method not in ("GET", "POST"):
            await self._respond(writer, 405, {
                "error": f"method {method} not allowed",
                "error_type": "MethodNotAllowed",
            })
            return
        await self._respond(writer, 404, {
            "error": f"no route for {method} {path}",
            "error_type": "NotFound",
        })

    # ------------------------------------------------------------------
    # POST /v1/jobs — idempotent submission
    # ------------------------------------------------------------------
    async def _post_job(self, body: bytes, writer) -> None:
        if self._shutdown.is_set():
            await self._respond(writer, 503, {
                "error": "gateway is draining; resubmit to its successor",
                "error_type": "Draining",
            }, {"Retry-After": "1"})
            return
        try:
            spec = JobSpec.from_dict(json.loads(body.decode("utf-8")))
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            self._count("gateway_bad_requests")
            await self._respond(writer, 400, {
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": "BadSpec",
            })
            return
        key = spec.content_key()
        try:
            job, replayed = self.supervisor.submit_idempotent(spec)
        except BackpressureError as exc:
            self._count("gateway_rejected_backpressure")
            await self._respond(writer, 429, {
                "error": str(exc),
                "error_type": "BackpressureError",
                "capacity": exc.capacity,
                "depth": exc.depth,
                "retry_after_s": 1.0,
            }, {"Retry-After": "1"})
            return
        except AdmissionError as exc:
            self._count("gateway_rejected_admission")
            await self._respond(writer, 429, {
                "error": str(exc),
                "error_type": "AdmissionError",
                "tenant": exc.tenant,
                "budget": exc.budget,
                "charged": exc.charged,
            })
            return
        journal = self._journal(key)
        self._jobs[key] = job
        if not replayed:
            self._count("gateway_submissions")
            self._pumps[key] = asyncio.ensure_future(self._pump(key, job))
        await self._respond(writer, 200 if replayed else 201, {
            "job": key,
            "job_id": job.job_id,
            "state": job.state,
            "replayed": replayed,
            "events": f"/v1/jobs/{key}/events",
            "last_event_id": journal.last_id,
        })

    async def _pump(self, key: str, job: Job) -> None:
        """Relay one job's anytime stream into its persistent journal.

        The journal deduplicates replayed incumbents, so a job that
        crash-resumed any number of times still produces one monotone,
        gap-free, duplicate-free event sequence.  A terminal record is
        appended only for final states — a ``suspended`` job's journal
        stays open, because the job itself will resume and continue it.
        """
        journal = self._journal(key)
        async for event in job.stream():
            record = journal.append("incumbent", event.as_dict())
            if record is not None:
                self._count("gateway_events_journaled")
        if job.state == "suspended":
            return
        terminal: dict[str, object] = {
            "job_id": job.job_id,
            "key": key,
            "state": job.state,
            "error": job.error,
        }
        if job.result is not None:
            terminal.update(job.result)
        if job.degraded_from:
            terminal["degraded_from"] = list(job.degraded_from)
        if self._is_drift_failure(job):
            terminal["receipt_quarantined"] = self._quarantine_receipt(job)
        journal.append("result", terminal)

    @staticmethod
    def _is_drift_failure(job: Job) -> bool:
        """A worker exit 3 is the runner's ledger-drift verdict."""
        return job.state == "failed" and bool(job.error) and (
            "worker exited 3" in job.error or "ledger drift" in job.error
        )

    def _quarantine_receipt(self, job: Job) -> str | None:
        """Move a drift-failed job's receipt out of the serving path.

        A receipt whose ledger did not reconcile must never be handed
        out as an audit document; it is preserved under ``quarantine/``
        for inspection instead of deleted.
        """
        try:
            if not job.receipt_path.exists():
                return None
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / job.receipt_path.name
            job.receipt_path.replace(target)
        except OSError:
            return None
        self._count("gateway_receipts_quarantined")
        return str(target)

    # ------------------------------------------------------------------
    # GET /v1/jobs/{key}
    # ------------------------------------------------------------------
    async def _get_job(self, key: str, writer) -> None:
        job = self._jobs.get(key)
        if job is None and not self._journal_exists(key):
            await self._respond(writer, 404, {
                "error": f"unknown job {key!r}",
                "error_type": "NotFound",
            })
            return
        journal = self._journal(key)
        doc: dict[str, object] = {
            "job": key,
            "events": f"/v1/jobs/{key}/events",
            "last_event_id": journal.last_id,
        }
        status = 200
        if job is not None:
            doc.update({
                "job_id": job.job_id,
                "state": job.state,
                "solver": job.solver,
                "resumes": job.resumes,
                "error": job.error,
            })
            if self._is_drift_failure(job):
                # The answer exists but its audit trail does not
                # reconcile: that is an internal integrity failure, not
                # a client error.
                status = 500
                doc["error_type"] = "LedgerDrift"
        elif journal.terminal is not None:
            doc["state"] = journal.terminal["data"].get("state")
            doc["error"] = journal.terminal["data"].get("error")
        else:
            # Journal on disk, no live job: a predecessor gateway was
            # serving this; a POST of the same spec resumes it.
            doc["state"] = "detached"
        await self._respond(writer, status, doc)

    # ------------------------------------------------------------------
    # GET /v1/jobs/{key}/events — the SSE stream
    # ------------------------------------------------------------------
    async def _get_events(self, key, query, headers, writer) -> None:
        if not self._journal_exists(key) and key not in self._jobs:
            await self._respond(writer, 404, {
                "error": f"unknown job {key!r}",
                "error_type": "NotFound",
            })
            return
        try:
            after = int(headers.get("last-event-id", query.get("after", 0)) or 0)
        except (TypeError, ValueError):
            after = 0
        config = self.supervisor.config
        self._count("gateway_sse_connections")
        active = self.supervisor.tracer.registry.gauge(
            "gateway_sse_active", help="SSE connections currently open"
        )
        active.inc(1)
        journal = self._journal(key)
        sub = journal.subscribe(config.http_send_queue)
        get_task: asyncio.Task | None = None
        shutdown_task = asyncio.ensure_future(self._shutdown.wait())
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            writer.write(b"retry: 500\n\n")
            await writer.drain()

            sent = after
            for record in journal.replay(after):
                await self._write_frame(writer, encode_event(record))
                sent = record["id"]
                self._count("gateway_events_replayed")
            if journal.terminal is not None:
                return  # settled: replay ends the stream
            if key not in self._jobs or self._jobs[key].done:
                # No live producer (predecessor gateway's job, or a
                # suspended one).  Closing tells the client to re-POST
                # the spec — idempotent — which resumes the work.
                writer.write(encode_comment("no live job; resubmit to resume"))
                await writer.drain()
                return

            while True:
                if self._shutdown.is_set():
                    writer.write(encode_comment("gateway shutting down"))
                    await writer.drain()
                    return
                if sub.evicted:
                    self._evict(writer)
                    return
                if get_task is None:
                    get_task = asyncio.ensure_future(sub.queue.get())
                done, _ = await asyncio.wait(
                    {get_task, shutdown_task},
                    timeout=config.http_heartbeat_s,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if shutdown_task in done:
                    writer.write(encode_comment("gateway shutting down"))
                    await writer.drain()
                    return
                if get_task in done:
                    record = get_task.result()
                    get_task = None
                    if record["id"] <= sent:
                        continue  # already replayed from the journal
                    await self._write_frame(writer, encode_event(record))
                    sent = record["id"]
                    self._count("gateway_events_streamed")
                    if record["type"] == "result":
                        return
                else:
                    await self._write_frame(writer, encode_comment("hb"))
                    self._count("gateway_heartbeats")
        except asyncio.TimeoutError:
            # _write_frame deadline: the reader is stalled.
            self._evict(writer)
        finally:
            if get_task is not None:
                get_task.cancel()
            shutdown_task.cancel()
            sub.close()
            active.inc(-1)

    async def _write_frame(self, writer, payload: bytes) -> None:
        """Write one frame under the slow-reader deadline.

        ``drain()`` blocks once the client stops reading and the socket
        buffers fill; bounding it is what keeps one stalled reader from
        pinning this handler (and its subscription queue) forever.
        """
        writer.write(payload)
        await asyncio.wait_for(
            writer.drain(), self.supervisor.config.http_write_timeout_s
        )

    def _evict(self, writer) -> None:
        self._count("service_slow_client_evictions")
        # Abort, not close: close() would try to flush the very backlog
        # the reader is not consuming.
        transport = writer.transport
        if transport is not None:
            transport.abort()

    # ------------------------------------------------------------------
    # GET /v1/metrics
    # ------------------------------------------------------------------
    async def _get_metrics(self, query, writer) -> None:
        fmt = query.get("format", "prom")
        if fmt not in ("prom", "json"):
            await self._respond(writer, 400, {
                "error": f"unknown metrics format {fmt!r}",
                "error_type": "BadRequest",
            })
            return
        text = self.supervisor.render_metrics(fmt)
        content_type = (
            "application/json" if fmt == "json"
            else "text/plain; version=0.0.4"
        )
        await self._respond_text(writer, 200, text, content_type)


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class GatewayClient:
    """Stdlib-only client speaking the gateway's fault contract.

    * :meth:`submit` retries connection failures and 429s with
      jittered exponential backoff (``policy.backoff_bound_us``),
      honouring ``Retry-After`` when the gateway sends one;
    * :meth:`solve` drives the full submit -> stream -> result loop
      with **auto-reconnect**: a dropped stream (or a restarted
      gateway) is re-entered via an idempotent re-POST plus
      ``Last-Event-ID``, and the monotone-id contract is asserted on
      every event consumed.
    """

    def __init__(
        self,
        base_url: str,
        policy=None,
        timeout_s: float = 60.0,
        rng=None,
    ) -> None:
        from ..resilience.retry import RetryPolicy

        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// gateways are supported: {base_url}")
        if not split.hostname:
            raise ValueError(f"no host in gateway url {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.policy = policy or RetryPolicy(
            max_attempts=8, backoff_base_us=50_000.0, backoff_cap_us=2_000_000.0
        )
        self.timeout_s = timeout_s
        import random

        self._rng = rng or random.Random()

    # -- low-level ------------------------------------------------------
    def _connection(self):
        import http.client

        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )

    def _request_json(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        conn = self._connection()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body, sort_keys=True)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw) if raw else {}
            except ValueError:
                doc = {"error": raw.decode("utf-8", errors="replace")}
            return response.status, doc
        finally:
            conn.close()

    def _backoff_s(self, attempt: int, retry_after_s: float | None = None) -> float:
        if retry_after_s is not None:
            return retry_after_s
        bound = self.policy.backoff_bound_us(attempt) / 1e6
        return self._rng.uniform(bound / 2.0, bound) if bound > 0 else 0.0

    # -- submission -----------------------------------------------------
    def submit(self, spec: JobSpec) -> dict:
        """POST the spec once; returns the submission document."""
        status, doc = self._request_json(
            "POST", "/v1/jobs", spec.as_dict()
        )
        if status not in (200, 201):
            raise GatewayError(status, doc)
        return doc

    def submit_with_retries(self, spec: JobSpec) -> dict:
        """Idempotent submit loop: connection errors and 429s back off.

        Safe to call any number of times — duplicates attach to the
        original job server-side, which is the whole point.
        """
        import time

        last_error: Exception | None = None
        for attempt in range(self.policy.max_attempts):
            try:
                return self.submit(spec)
            except GatewayError as exc:
                if exc.status not in (429, 503):
                    raise  # 400/404/500 won't heal with a retry
                last_error = exc
                time.sleep(self._backoff_s(attempt, exc.retry_after_s))
            except (ConnectionError, OSError) as exc:
                last_error = exc
                time.sleep(self._backoff_s(attempt))
        raise GatewayError(503, {
            "error": f"submission did not go through after "
                     f"{self.policy.max_attempts} attempts: {last_error}",
        })

    def job(self, key: str) -> tuple[int, dict]:
        return self._request_json("GET", f"/v1/jobs/{key}")

    def metrics(self, fmt: str = "json") -> str:
        conn = self._connection()
        try:
            conn.request("GET", f"/v1/metrics?format={fmt}")
            response = conn.getresponse()
            return response.read().decode("utf-8")
        finally:
            conn.close()

    # -- streaming ------------------------------------------------------
    def stream_once(self, key: str, last_event_id: int = 0):
        """One SSE connection; yields parsed records until it ends.

        Caller handles reconnection.  Events arrive as dicts
        ``{"id": int, "event": str, "data": dict}``.
        """
        conn = self._connection()
        try:
            conn.request(
                "GET",
                f"/v1/jobs/{key}/events",
                headers={"Last-Event-ID": str(last_event_id)},
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    doc = json.loads(raw) if raw else {}
                except ValueError:
                    doc = {}
                raise GatewayError(response.status, doc)
            for frame in parse_sse_stream(response):
                try:
                    data = json.loads(frame["data"])
                except ValueError:
                    continue  # torn frame; replay will re-deliver it
                yield {
                    "id": frame["id"],
                    "event": frame["event"],
                    "data": data,
                }
        finally:
            conn.close()

    def solve(
        self,
        spec: JobSpec,
        on_event=None,
        max_reconnects: int = 20,
    ) -> tuple[list[dict], dict]:
        """Submit and stream to completion; returns (incumbents, result).

        Survives dropped connections, gateway restarts, and worker
        crashes: every reconnect re-POSTs the spec (idempotent — this
        also resumes a job the restarted gateway found suspended) and
        resumes the stream from ``Last-Event-ID``.  The reconnect
        budget refills whenever the stream makes progress, so only a
        gateway that stays unreachable exhausts it.  Raises
        :class:`GatewayError` on a typed server failure and asserts the
        monotone, gap-free id contract on everything it consumes.
        """
        import time

        key = self.submit_with_retries(spec)["job"]
        incumbents: list[dict] = []
        last_id = 0
        reconnects = 0
        while True:
            made_progress = False
            try:
                for record in self.stream_once(key, last_id):
                    if on_event is not None:
                        on_event(record)
                    if record["id"] is not None:
                        if record["id"] != last_id + 1:
                            raise GatewayError(500, {
                                "error": "event id contract violated: got "
                                f"{record['id']} after {last_id}",
                            })
                        last_id = record["id"]
                        made_progress = True
                    if record["event"] == "incumbent":
                        incumbents.append(record["data"])
                    elif record["event"] == "result":
                        return incumbents, record["data"]
                # Stream ended without a terminal record: the gateway
                # drained, or the job suspended.  Fall through to the
                # reconnect path.
            except DropConnection:
                pass  # scripted chaos drop: treat as a lost socket
            except (ConnectionError, OSError, GatewayError) as exc:
                if isinstance(exc, GatewayError) and exc.status not in (
                    404, 429, 503,
                ):
                    raise
            if made_progress:
                reconnects = 0
            reconnects += 1
            if reconnects > max_reconnects:
                raise GatewayError(503, {
                    "error": f"stream for {key} did not complete after "
                             f"{max_reconnects} reconnects",
                })
            time.sleep(self._backoff_s(min(reconnects - 1,
                                           self.policy.max_attempts - 1)))
            # Idempotent re-attach: restores a post-restart gateway's
            # index and resumes a suspended job; a live one is replayed.
            try:
                self.submit_with_retries(spec)
            except GatewayError:
                continue  # keep trying from the stream side
