"""Service configuration: pool sizes, admission, degradation ladder."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

from .jobs import SOLVERS

__all__ = ["DEGRADATION", "ServiceConfig"]

#: Per-backend degradation ladder (the PR 1 cascade generalised to the
#: service's job level): when a backend's circuit breaker is open, a
#: *fresh* job submitted against it runs on the next rung instead of
#: failing the request.  The classical branch search is the terminal
#: rung — pure graph code that cannot crash a backend.  Resumed jobs
#: never re-degrade: bit-identical resume requires the original backend.
DEGRADATION = {
    "qmkp": "bs",
    "qamkp-qpu": "qamkp-sa",
    "qamkp-hybrid": "qamkp-sa",
    "qamkp-sa": "bs",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`~repro.service.Supervisor` instance.

    Parameters
    ----------
    workers:
        Worker-slot count; each slot runs at most one job subprocess.
    queue_capacity:
        Bound of the fresh-submission lane (typed backpressure beyond).
    max_resumes:
        How many crash-resumes one job gets before it is failed for
        good; each resume replays the checkpoint journal bit-identically.
    breaker_failure_threshold, breaker_cooldown_calls:
        Per-backend :class:`~repro.resilience.CircuitBreaker` shape
        (consecutive job failures to open; rejected jobs to half-open).
    tenant_budgets:
        Gate-unit allowance per tenant (absent tenant = unlimited).
    workdir:
        Directory for per-job checkpoint journals and ledger receipts.
    shared_cache_dir:
        Directory of the fleet-shared marked-set table store
        (:class:`repro.perf.SharedTableStore`).  When set, every worker
        subprocess attaches its :class:`~repro.perf.MarkedSetCache` to
        the store, so identical graphs submitted by different tenants
        enumerate once per fleet instead of once per job.  None (the
        default) keeps workers fully independent — results, span trees,
        and ledgers are byte-identical to a service without the tier.
    python:
        Interpreter used for worker subprocesses.
    """

    workers: int = 2
    queue_capacity: int = 8
    max_resumes: int = 3
    breaker_failure_threshold: int = 3
    breaker_cooldown_calls: int = 2
    tenant_budgets: dict[str, float] = field(default_factory=dict)
    workdir: str | Path | None = None
    shared_cache_dir: str | Path | None = None
    python: str = sys.executable

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_resumes < 0:
            raise ValueError(
                f"max_resumes must be >= 0, got {self.max_resumes}"
            )
        for tenant, units in self.tenant_budgets.items():
            if not units > 0:
                raise ValueError(
                    f"tenant {tenant!r} budget must be > 0, got {units}"
                )

    def degraded(self, solver: str) -> str | None:
        """Next rung down from ``solver`` (None at the bottom)."""
        rung = DEGRADATION.get(solver)
        if rung is not None and rung not in SOLVERS:  # pragma: no cover
            raise ValueError(f"degradation target {rung!r} is not a solver")
        return rung
