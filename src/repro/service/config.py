"""Service configuration: pool sizes, admission, degradation ladder."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

from .jobs import SOLVERS

__all__ = ["DEGRADATION", "ServiceConfig"]

#: Per-backend degradation ladder (the PR 1 cascade generalised to the
#: service's job level): when a backend's circuit breaker is open, a
#: *fresh* job submitted against it runs on the next rung instead of
#: failing the request.  The classical branch search is the terminal
#: rung — pure graph code that cannot crash a backend.  Resumed jobs
#: never re-degrade: bit-identical resume requires the original backend.
DEGRADATION = {
    "qmkp": "bs",
    "qamkp-qpu": "qamkp-sa",
    "qamkp-hybrid": "qamkp-sa",
    "qamkp-sa": "bs",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`~repro.service.Supervisor` instance.

    Parameters
    ----------
    workers:
        Worker-slot count; each slot runs at most one job subprocess.
    queue_capacity:
        Bound of the fresh-submission lane (typed backpressure beyond).
    max_resumes:
        How many crash-resumes one job gets before it is failed for
        good; each resume replays the checkpoint journal bit-identically.
    breaker_failure_threshold, breaker_cooldown_calls:
        Per-backend :class:`~repro.resilience.CircuitBreaker` shape
        (consecutive job failures to open; rejected jobs to half-open).
    tenant_budgets:
        Gate-unit allowance per tenant (absent tenant = unlimited).
    workdir:
        Directory for per-job checkpoint journals and ledger receipts.
    shared_cache_dir:
        Directory of the fleet-shared marked-set table store
        (:class:`repro.perf.SharedTableStore`).  When set, every worker
        subprocess attaches its :class:`~repro.perf.MarkedSetCache` to
        the store, so identical graphs submitted by different tenants
        enumerate once per fleet instead of once per job.  None (the
        default) keeps workers fully independent — results, span trees,
        and ledgers are byte-identical to a service without the tier.
    spool_retention_s:
        Horizon for the spool's retention sweep: settled request records
        (results + event logs + claimed request files) older than this
        are garbage-collected while the server runs.  ``None`` (the
        default) disables the sweep entirely.  Live and resumable
        artifacts — pending requests, running jobs' event logs,
        ``suspended`` records whose checkpoints are still on disk —
        are never touched regardless of age.
    http_send_queue:
        Per-SSE-connection bound on buffered events.  A reader slow
        enough to fall this many events behind is evicted (connection
        closed, ``service_slow_client_evictions`` counted) instead of
        backing the supervisor up; it can reconnect with
        ``Last-Event-ID`` and replay what it missed from the journal.
    http_heartbeat_s:
        Idle interval after which an SSE connection emits a comment
        heartbeat, so proxies/clients can distinguish a quiet solve
        from a dead gateway.
    http_write_timeout_s:
        Deadline for flushing one SSE frame to a client socket; a
        stalled reader that blocks the write this long is evicted.
    python:
        Interpreter used for worker subprocesses.
    """

    workers: int = 2
    queue_capacity: int = 8
    max_resumes: int = 3
    breaker_failure_threshold: int = 3
    breaker_cooldown_calls: int = 2
    tenant_budgets: dict[str, float] = field(default_factory=dict)
    workdir: str | Path | None = None
    shared_cache_dir: str | Path | None = None
    spool_retention_s: float | None = None
    http_send_queue: int = 64
    http_heartbeat_s: float = 10.0
    http_write_timeout_s: float = 30.0
    python: str = sys.executable

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_resumes < 0:
            raise ValueError(
                f"max_resumes must be >= 0, got {self.max_resumes}"
            )
        for tenant, units in self.tenant_budgets.items():
            if not units > 0:
                raise ValueError(
                    f"tenant {tenant!r} budget must be > 0, got {units}"
                )
        if self.spool_retention_s is not None and not self.spool_retention_s > 0:
            raise ValueError(
                "spool_retention_s must be > 0 (or None to disable), got "
                f"{self.spool_retention_s}"
            )
        if self.http_send_queue < 1:
            raise ValueError(
                f"http_send_queue must be >= 1, got {self.http_send_queue}"
            )
        if not self.http_heartbeat_s > 0 or not self.http_write_timeout_s > 0:
            raise ValueError(
                "http_heartbeat_s and http_write_timeout_s must be > 0"
            )

    def degraded(self, solver: str) -> str | None:
        """Next rung down from ``solver`` (None at the bottom)."""
        rung = DEGRADATION.get(solver)
        if rung is not None and rung not in SOLVERS:  # pragma: no cover
            raise ValueError(f"degradation target {rung!r} is not a solver")
        return rung
