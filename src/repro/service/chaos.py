"""Deterministic chaos plans for the service's kill-resume harness.

A :class:`ChaosPlan` scripts faults against *named* jobs (the
:attr:`~repro.service.jobs.JobSpec.name` field), keyed by attempt
number, by injecting the checkpoint layer's deterministic signal hooks
into the worker subprocess environment:

* ``kills[name] = [2, 3]`` — attempt 0 SIGKILLs itself after its 2nd
  journaled probe, attempt 1 (the resume) after its 3rd *cumulative*
  probe record, attempt 2 runs clean.  Counts are cumulative because
  :class:`~repro.resilience.CheckpointJournal` counts resumed records
  toward ``records_written`` — so each entry must exceed the previous
  one for the kill to land on a *live* probe.
* ``interrupts[name] = [1]`` — attempt 0 receives SIGINT after its 1st
  probe (the graceful path: journal flushed, exit 130, job suspended).
* ``holds[name] = seconds`` — the runner sleeps before solving, pinning
  the job in the running state so shutdown/drain paths can be tested
  without races.
* ``publish_kills[name] = [1]`` — attempt 0 SIGKILLs itself in the
  middle of its 1st shared-cache publish: after the temp segment is
  fsynced, *before* the atomic rename
  (:data:`repro.perf.shared.PUBLISH_KILL_ENV`).  Exercises the store's
  crash-safety contract — readers see the old segment or nothing,
  never a torn table, and fall back to local enumeration.

The gateway smoke adds **connection-level** faults, consumed by the
client-side harness (:meth:`ChaosPlan.stream_faults`) rather than the
worker environment — the network front end's fault domain is the
connection, not the subprocess:

* ``conn_drops[name] = [2, 5]`` — the client tears its SSE connection
  down right after consuming the 2nd, then (post-reconnect) the 5th
  event id; the harness then asserts ``Last-Event-ID`` resume closes
  every gap without duplicates.
* ``stalled_readers[name] = seconds`` — the client connects and then
  stops reading for this long, which must trip the gateway's
  slow-reader eviction rather than stall the supervisor.
* ``gateway_kills[name] = [3]`` — the harness SIGKILLs the *gateway
  process* after the client consumed the 3rd event; the restarted
  gateway must replay the journal from disk and finish the stream.

Everything is seeded/scripted — no wall-clock randomness — so a chaos
run's kill points, and therefore its resumed answers, are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..perf.shared import PUBLISH_KILL_ENV
from ..resilience.checkpoint import CRASH_ENV, SIGINT_ENV

__all__ = ["ChaosPlan", "HOLD_ENV"]

#: Test hook read by the runner: sleep this many seconds before solving.
HOLD_ENV = "REPRO_RUNNER_HOLD_S"


@dataclass(frozen=True)
class ChaosPlan:
    """Scripted per-job fault schedules (see module docstring)."""

    kills: dict[str, list[int]] = field(default_factory=dict)
    interrupts: dict[str, list[int]] = field(default_factory=dict)
    holds: dict[str, float] = field(default_factory=dict)
    publish_kills: dict[str, list[int]] = field(default_factory=dict)
    # Connection-level faults (gateway harness; not worker env):
    conn_drops: dict[str, list[int]] = field(default_factory=dict)
    stalled_readers: dict[str, float] = field(default_factory=dict)
    gateway_kills: dict[str, list[int]] = field(default_factory=dict)

    def env_for(self, name: str | None, attempt: int) -> dict[str, str]:
        """Environment overrides for ``name``'s ``attempt``-th run.

        Returns an empty dict for unplanned jobs/attempts, so the
        worker can apply it unconditionally.
        """
        env: dict[str, str] = {}
        if name is None:
            return env
        schedule = self.kills.get(name, [])
        if attempt < len(schedule):
            env[CRASH_ENV] = str(schedule[attempt])
        schedule = self.interrupts.get(name, [])
        if attempt < len(schedule):
            env[SIGINT_ENV] = str(schedule[attempt])
        schedule = self.publish_kills.get(name, [])
        if attempt < len(schedule):
            env[PUBLISH_KILL_ENV] = str(schedule[attempt])
        hold = self.holds.get(name)
        if hold:
            env[HOLD_ENV] = str(hold)
        return env

    def stream_faults(self, name: str | None) -> dict[str, object]:
        """Connection-fault schedule for ``name``'s event stream.

        Returned keys: ``drop_after`` (sorted event ids after which the
        client tears the connection down, each consumed once),
        ``stall_s`` (seconds a stalled-reader connection stays silent;
        0 = no stall scenario), ``kill_after`` (event ids after which
        the harness SIGKILLs the gateway process).  Client-side
        harnesses consume this; nothing here touches the worker env.
        """
        if name is None:
            return {"drop_after": [], "stall_s": 0.0, "kill_after": []}
        return {
            "drop_after": sorted(self.conn_drops.get(name, [])),
            "stall_s": float(self.stalled_readers.get(name, 0.0)),
            "kill_after": sorted(self.gateway_kills.get(name, [])),
        }
