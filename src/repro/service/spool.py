"""File-spool front end: submit and serve jobs through a directory.

The service core (:class:`~repro.service.supervisor.Supervisor`) is an
in-process asyncio engine; this module gives it a zero-dependency wire
format so ``repro submit`` and ``repro serve`` can talk across
processes without a network stack:

* ``SPOOL/jobs/<id>.json``     — one pending request (atomic rename
  submit, so the server never reads a torn file);
* ``SPOOL/events/<id>.jsonl``  — the job's anytime incumbent stream,
  appended live while it runs;
* ``SPOOL/results/<id>.json``  — the terminal record: final state,
  answer, receipt path — or the typed rejection (malformed request,
  backpressure, admission) if the job never made it past the queue.

A request file is *moved* into ``jobs/claimed/`` the moment the server
picks it up, so a crashed server leaves unclaimed requests intact for
the next ``repro serve`` to find.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
from pathlib import Path

from .jobs import AdmissionError, BackpressureError, Job, JobSpec

__all__ = ["submit_to_spool", "serve_spool", "wait_for_result"]

_counter = itertools.count()


def _spool_dirs(spool: Path) -> tuple[Path, Path, Path, Path]:
    jobs = spool / "jobs"
    claimed = jobs / "claimed"
    events = spool / "events"
    results = spool / "results"
    for d in (jobs, claimed, events, results):
        d.mkdir(parents=True, exist_ok=True)
    return jobs, claimed, events, results


def submit_to_spool(spool: str | Path, spec: JobSpec) -> str:
    """Drop one request into the spool; returns the request id.

    The id is ``spec.name`` when that is still free, else the name with
    a numeric suffix — two submissions reusing one ``--name`` must not
    overwrite each other's request/result files or interleave their
    event logs.  The write is tmp-then-hardlink so a concurrently
    polling server can never observe a half-written request and a
    concurrent same-name submitter can never steal the id.
    """
    spool = Path(spool)
    jobs, claimed, events, results = _spool_dirs(spool)
    base = spec.name or f"req-{os.getpid()}-{next(_counter):04d}"
    tmp = jobs / f".{base}.{os.getpid()}.{next(_counter)}.json.tmp"
    tmp.write_text(json.dumps(spec.as_dict(), indent=2, sort_keys=True) + "\n")
    request_id, n = base, 1
    try:
        while True:
            taken = (
                (claimed / f"{request_id}.json").exists()
                or (events / f"{request_id}.jsonl").exists()
                or (results / f"{request_id}.json").exists()
            )
            if not taken:
                try:
                    os.link(tmp, jobs / f"{request_id}.json")
                    return request_id
                except FileExistsError:
                    pass  # lost the race for this id; try the next one
            n += 1
            request_id = f"{base}-{n}"
    finally:
        tmp.unlink(missing_ok=True)


def wait_for_result(
    spool: str | Path, request_id: str, timeout_s: float = 120.0
) -> dict[str, object]:
    """Block (sync, for the submit CLI) until the result file appears."""
    import time

    path = Path(spool) / "results" / f"{request_id}.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists():
            return json.loads(path.read_text())
        time.sleep(0.05)
    raise TimeoutError(f"no result for {request_id!r} within {timeout_s:g}s")


async def _consume(job: Job, request_id: str, events: Path, results: Path) -> None:
    """Stream one job's incumbents to its event log, then settle it."""
    event_log = events / f"{request_id}.jsonl"
    with open(event_log, "a", encoding="utf-8") as fh:
        async for incumbent in job.stream():
            fh.write(json.dumps(incumbent.as_dict(), sort_keys=True) + "\n")
            fh.flush()
    record: dict[str, object] = {
        "request_id": request_id,
        "job_id": job.job_id,
        "state": job.state,
        "error": job.error,
    }
    if job.result is not None:
        record.update(job.result)
    if job.degraded_from:
        record["degraded_from"] = list(job.degraded_from)
    if job.state == "suspended":
        record["checkpoint"] = str(job.checkpoint_path)
    _write_result(results, request_id, record)


def _write_result(results: Path, request_id: str, record: dict[str, object]) -> None:
    tmp = results / f".{request_id}.json.tmp"
    tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    tmp.rename(results / f"{request_id}.json")


async def serve_spool(
    supervisor,
    spool: str | Path,
    max_jobs: int | None = None,
    poll_s: float = 0.05,
    idle_timeout_s: float | None = None,
) -> int:
    """Poll the spool and feed the supervisor until told to stop.

    Stops after ``max_jobs`` requests have been *settled* (not merely
    claimed), or after ``idle_timeout_s`` with nothing claimed and
    nothing running.  Returns the number of requests served.  The
    caller owns the supervisor's lifecycle (start/shutdown).
    """
    spool = Path(spool)
    jobs_dir, claimed, events, results = _spool_dirs(spool)
    consumers: list[asyncio.Task] = []
    served = 0
    idle_s = 0.0
    while True:
        claimed_any = False
        for request in sorted(jobs_dir.glob("*.json")):
            # Claim before parsing: a malformed request must leave the
            # jobs/ directory either way, or every restarted server
            # would crash on the same poison file forever.
            request.rename(claimed / request.name)
            request_id = request.stem
            claimed_any = True
            served += 1
            try:
                payload = json.loads((claimed / request.name).read_text())
                spec = JobSpec.from_dict(payload)
            except (TypeError, ValueError) as exc:
                _write_result(results, request_id, {
                    "request_id": request_id,
                    "state": "rejected",
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            try:
                job = supervisor.submit(spec)
            except (AdmissionError, BackpressureError) as exc:
                _write_result(results, request_id, {
                    "request_id": request_id,
                    "state": "rejected",
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            consumers.append(asyncio.ensure_future(
                _consume(job, request_id, events, results)
            ))
            if max_jobs is not None and served >= max_jobs:
                break
        if max_jobs is not None and served >= max_jobs:
            break
        if claimed_any or any(not c.done() for c in consumers):
            idle_s = 0.0
        else:
            idle_s += poll_s
            if idle_timeout_s is not None and idle_s >= idle_timeout_s:
                break
        await asyncio.sleep(poll_s)
    if consumers:
        await asyncio.gather(*consumers)
    return served
