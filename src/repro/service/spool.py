"""File-spool front end: submit and serve jobs through a directory.

The service core (:class:`~repro.service.supervisor.Supervisor`) is an
in-process asyncio engine; this module gives it a zero-dependency wire
format so ``repro submit`` and ``repro serve`` can talk across
processes without a network stack:

* ``SPOOL/jobs/<id>.json``     — one pending request (atomic rename
  submit, so the server never reads a torn file);
* ``SPOOL/events/<id>.jsonl``  — the job's anytime incumbent stream,
  appended live while it runs;
* ``SPOOL/results/<id>.json``  — the terminal record: final state,
  answer, receipt path — or the typed rejection (malformed request,
  backpressure, admission) if the job never made it past the queue.

A request file is *moved* into ``jobs/claimed/`` the moment the server
picks it up, so a crashed server leaves unclaimed requests intact for
the next ``repro serve`` to find.

Liveness and hygiene, both opt-in for byte-compatibility:

* ``SPOOL/server.json`` is the server's **heartbeat** — refreshed about
  once a second while ``serve_spool`` runs, so a waiting submitter can
  tell "result pending" apart from "nobody is serving this spool"
  (:func:`spool_server_alive`) instead of burning its whole timeout;
* :func:`sweep_spool` is the **retention sweep**: settled records older
  than a horizon are garbage-collected, while live and resumable
  artifacts (pending requests, running jobs' event logs, ``suspended``
  records with checkpoints on disk) are never touched.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import random
import time
from pathlib import Path

from ..resilience.retry import RetryPolicy
from .jobs import AdmissionError, BackpressureError, Job, JobSpec, ServiceError

__all__ = [
    "NoServerError",
    "SpoolTimeout",
    "spool_server_alive",
    "submit_to_spool",
    "serve_spool",
    "sweep_spool",
    "wait_for_result",
]

_counter = itertools.count()

#: Heartbeat refresh interval while serving, and the staleness bound a
#: waiter applies: a heartbeat older than ``HEARTBEAT_STALE_S`` means no
#: live server (SIGKILLed, suspended, or never started).
HEARTBEAT_INTERVAL_S = 1.0
HEARTBEAT_STALE_S = 5.0

#: States whose spool records hold no resumable work — the retention
#: sweep may collect them.  ``suspended`` is deliberately absent: its
#: record points at a checkpoint journal the next server resumes.
_SETTLED_STATES = ("done", "failed", "rejected")


class SpoolTimeout(ServiceError, TimeoutError):
    """Typed: no result record appeared within the caller's deadline."""


class NoServerError(ServiceError):
    """Typed: the spool has no live server (missing/stale heartbeat)."""


def _spool_dirs(spool: Path) -> tuple[Path, Path, Path, Path]:
    jobs = spool / "jobs"
    claimed = jobs / "claimed"
    events = spool / "events"
    results = spool / "results"
    for d in (jobs, claimed, events, results):
        d.mkdir(parents=True, exist_ok=True)
    return jobs, claimed, events, results


def submit_to_spool(spool: str | Path, spec: JobSpec) -> str:
    """Drop one request into the spool; returns the request id.

    The id is ``spec.name`` when that is still free, else the name with
    a numeric suffix — two submissions reusing one ``--name`` must not
    overwrite each other's request/result files or interleave their
    event logs.  The write is tmp-then-hardlink so a concurrently
    polling server can never observe a half-written request and a
    concurrent same-name submitter can never steal the id.
    """
    spool = Path(spool)
    jobs, claimed, events, results = _spool_dirs(spool)
    base = spec.name or f"req-{os.getpid()}-{next(_counter):04d}"
    tmp = jobs / f".{base}.{os.getpid()}.{next(_counter)}.json.tmp"
    tmp.write_text(json.dumps(spec.as_dict(), indent=2, sort_keys=True) + "\n")
    request_id, n = base, 1
    try:
        while True:
            taken = (
                (claimed / f"{request_id}.json").exists()
                or (events / f"{request_id}.jsonl").exists()
                or (results / f"{request_id}.json").exists()
            )
            if not taken:
                try:
                    os.link(tmp, jobs / f"{request_id}.json")
                    return request_id
                except FileExistsError:
                    pass  # lost the race for this id; try the next one
            n += 1
            request_id = f"{base}-{n}"
    finally:
        tmp.unlink(missing_ok=True)


def _write_heartbeat(spool: Path) -> None:
    """Refresh ``SPOOL/server.json`` (atomic, torn-read-proof)."""
    doc = {"pid": os.getpid(), "ts": time.time()}
    tmp = spool / f".server.{os.getpid()}.json.tmp"
    tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
    os.replace(tmp, spool / "server.json")


def spool_server_alive(
    spool: str | Path, stale_after_s: float = HEARTBEAT_STALE_S
) -> bool:
    """True iff a serve process heartbeat is present and fresh."""
    path = Path(spool) / "server.json"
    try:
        doc = json.loads(path.read_text())
        ts = float(doc["ts"])
    except (OSError, ValueError, KeyError, TypeError):
        return False
    return (time.time() - ts) < stale_after_s


#: Poll shape for :func:`wait_for_result`: exponential from 50 ms to a
#: 1 s ceiling (``max_attempts`` is irrelevant here — the overall
#: timeout bounds the loop, not an attempt count).
_WAIT_POLICY = RetryPolicy(
    max_attempts=1, backoff_base_us=50_000.0, backoff_cap_us=1_000_000.0
)


def wait_for_result(
    spool: str | Path,
    request_id: str,
    timeout_s: float | None = 120.0,
    policy: RetryPolicy | None = None,
    require_server: bool = False,
    rng: random.Random | None = None,
) -> dict[str, object]:
    """Block (sync, for the submit CLI) until the result file appears.

    Polls with jittered exponential backoff — attempt ``i`` sleeps
    ``uniform(bound/2, bound)`` seconds where ``bound`` is
    ``policy.backoff_bound_us(i) / 1e6`` — so a thousand waiting
    submitters do not hammer one filesystem in lockstep.  After
    ``timeout_s`` (``None`` = wait forever) raises the typed
    :class:`SpoolTimeout` instead of hanging.

    With ``require_server=True``, a missing or stale server heartbeat
    (after a grace of :data:`HEARTBEAT_STALE_S` so a server still
    booting is not misdiagnosed) raises :class:`NoServerError` — the
    "nobody is serving this spool" answer, worth more than a timeout.
    """
    policy = policy or _WAIT_POLICY
    rng = rng or random.Random()
    path = Path(spool) / "results" / f"{request_id}.json"
    start = time.monotonic()
    deadline = None if timeout_s is None else start + timeout_s
    attempt = 0
    while True:
        if path.exists():
            return json.loads(path.read_text())
        now = time.monotonic()
        if require_server and (now - start) >= HEARTBEAT_STALE_S \
                and not spool_server_alive(spool):
            raise NoServerError(
                f"no result for {request_id!r} and no live server on spool "
                f"{spool} (missing or stale heartbeat); start one with "
                "'repro serve'"
            )
        if deadline is not None and now >= deadline:
            raise SpoolTimeout(
                f"no result for {request_id!r} within {timeout_s:g}s"
            )
        bound_s = policy.backoff_bound_us(attempt) / 1e6
        sleep_s = rng.uniform(bound_s / 2.0, bound_s) if bound_s > 0 else 0.0
        if deadline is not None:
            sleep_s = min(sleep_s, max(0.0, deadline - now))
        time.sleep(sleep_s)
        attempt += 1


def sweep_spool(
    spool: str | Path,
    retention_s: float,
    now: float | None = None,
) -> int:
    """Garbage-collect settled records older than ``retention_s``.

    A record is collected only when its ``results/<id>.json`` exists,
    parses, carries a terminal non-resumable state (``done`` /
    ``failed`` / ``rejected`` — **not** ``suspended``), and is older
    than the horizon (result-file mtime).  Collection removes the
    result file, the event log, and the claimed request file for that
    id — never pending requests, never another id's artifacts, never
    checkpoint journals (those live in the workdir and belong to the
    supervisor).  Returns the number of records collected.
    """
    spool = Path(spool)
    jobs, claimed, events, results = _spool_dirs(spool)
    horizon = (time.time() if now is None else now) - retention_s
    collected = 0
    for record_path in sorted(results.glob("*.json")):
        if record_path.name.startswith("."):
            continue  # in-flight temp file
        try:
            if record_path.stat().st_mtime > horizon:
                continue
            record = json.loads(record_path.read_text())
        except (OSError, ValueError):
            continue  # torn/vanished: leave it for a later sweep
        if record.get("state") not in _SETTLED_STATES:
            continue
        request_id = record_path.stem
        (events / f"{request_id}.jsonl").unlink(missing_ok=True)
        (claimed / f"{request_id}.json").unlink(missing_ok=True)
        record_path.unlink(missing_ok=True)
        collected += 1
    return collected


async def _consume(job: Job, request_id: str, events: Path, results: Path) -> None:
    """Stream one job's incumbents to its event log, then settle it."""
    event_log = events / f"{request_id}.jsonl"
    with open(event_log, "a", encoding="utf-8") as fh:
        async for incumbent in job.stream():
            fh.write(json.dumps(incumbent.as_dict(), sort_keys=True) + "\n")
            fh.flush()
    record: dict[str, object] = {
        "request_id": request_id,
        "job_id": job.job_id,
        "state": job.state,
        "error": job.error,
    }
    if job.result is not None:
        record.update(job.result)
    if job.degraded_from:
        record["degraded_from"] = list(job.degraded_from)
    if job.state == "suspended":
        record["checkpoint"] = str(job.checkpoint_path)
    _write_result(results, request_id, record)


def _write_result(results: Path, request_id: str, record: dict[str, object]) -> None:
    tmp = results / f".{request_id}.json.tmp"
    tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    tmp.rename(results / f"{request_id}.json")


async def serve_spool(
    supervisor,
    spool: str | Path,
    max_jobs: int | None = None,
    poll_s: float = 0.05,
    idle_timeout_s: float | None = None,
    retention_s: float | None = None,
) -> int:
    """Poll the spool and feed the supervisor until told to stop.

    Stops after ``max_jobs`` requests have been *settled* (not merely
    claimed), or after ``idle_timeout_s`` with nothing claimed and
    nothing running.  Returns the number of requests served.  The
    caller owns the supervisor's lifecycle (start/shutdown).

    While running, refreshes the ``server.json`` heartbeat about once a
    second (see :func:`spool_server_alive`) and — when ``retention_s``
    or ``supervisor.config.spool_retention_s`` is set — periodically
    runs :func:`sweep_spool` against that horizon.
    """
    spool = Path(spool)
    jobs_dir, claimed, events, results = _spool_dirs(spool)
    if retention_s is None:
        retention_s = getattr(supervisor.config, "spool_retention_s", None)
    consumers: list[asyncio.Task] = []
    served = 0
    idle_s = 0.0
    last_heartbeat = -float("inf")
    last_sweep = -float("inf")  # first sweep right at boot
    sweep_every = (
        max(retention_s / 4.0, HEARTBEAT_INTERVAL_S)
        if retention_s is not None
        else None
    )
    while True:
        now = time.monotonic()
        if now - last_heartbeat >= HEARTBEAT_INTERVAL_S:
            _write_heartbeat(spool)
            last_heartbeat = now
        if sweep_every is not None and now - last_sweep >= sweep_every:
            swept = sweep_spool(spool, retention_s)
            if swept:
                supervisor.tracer.add("service_spool_records_swept", swept)
            last_sweep = now
        claimed_any = False
        for request in sorted(jobs_dir.glob("*.json")):
            # Claim before parsing: a malformed request must leave the
            # jobs/ directory either way, or every restarted server
            # would crash on the same poison file forever.
            request.rename(claimed / request.name)
            request_id = request.stem
            claimed_any = True
            served += 1
            try:
                payload = json.loads((claimed / request.name).read_text())
                spec = JobSpec.from_dict(payload)
            except (TypeError, ValueError) as exc:
                _write_result(results, request_id, {
                    "request_id": request_id,
                    "state": "rejected",
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            try:
                job = supervisor.submit(spec)
            except (AdmissionError, BackpressureError) as exc:
                _write_result(results, request_id, {
                    "request_id": request_id,
                    "state": "rejected",
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            consumers.append(asyncio.ensure_future(
                _consume(job, request_id, events, results)
            ))
            if max_jobs is not None and served >= max_jobs:
                break
        if max_jobs is not None and served >= max_jobs:
            break
        if claimed_any or any(not c.done() for c in consumers):
            idle_s = 0.0
        else:
            idle_s += poll_s
            if idle_timeout_s is not None and idle_s >= idle_timeout_s:
                break
        await asyncio.sleep(poll_s)
    if consumers:
        await asyncio.gather(*consumers)
    return served
