"""The service brain: worker pool, crash-resume policy, degradation.

:class:`Supervisor` owns the bounded :class:`~repro.service.queue.JobQueue`,
per-tenant admission pools, one :class:`~repro.resilience.CircuitBreaker`
per backend, and ``config.workers`` worker slots.  Its invariants:

* **Nothing is lost.**  A worker subprocess killed mid-job (negative
  returncode) is detected here; if the job has resumes left it goes
  back through the queue's priority lane and the next worker resumes
  it **bit-identically** from its write-ahead checkpoint journal.
* **Nothing is silent.**  A full queue raises a typed
  :class:`~repro.service.jobs.BackpressureError` at submission; a dry
  tenant pool raises :class:`~repro.service.jobs.AdmissionError`; a job
  out of resumes settles ``failed`` with the crash recorded.
* **Degrade, don't fail.**  A backend whose breaker is open routes
  fresh jobs down the degradation ladder
  (:data:`~repro.service.config.DEGRADATION`); resumed jobs keep their
  original backend because bit-identical resume requires it.
* **Shutdown checkpoints.**  ``shutdown(drain=False)`` SIGINTs
  in-flight children — they flush their journals and exit 130 — and
  settles them ``suspended``; resubmitting the same spec against the
  same workdir resumes where they stopped.

Every counter lives in the supervisor's :class:`~repro.obs.Tracer`
registry (``service_*``, plus the breakers' ``breaker_*`` instruments)
and renders as JSON or Prometheus text via :meth:`Supervisor.render_metrics`.
"""

from __future__ import annotations

import asyncio
import signal
import tempfile
from pathlib import Path

from ..obs import Tracer
from ..resilience import CircuitBreaker
from ..resilience.checkpoint import CheckpointJournal
from .chaos import ChaosPlan
from .config import ServiceConfig
from .jobs import Job, JobSpec
from .queue import JobQueue, TenantPools
from .worker import Worker

__all__ = ["Supervisor"]


class Supervisor:
    """Supervised async job engine over the qMKP/qaMKP solver stack."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        chaos: ChaosPlan | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.workdir = Path(
            self.config.workdir
            if self.config.workdir is not None
            else tempfile.mkdtemp(prefix="repro-service-")
        )
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.shared_cache_dir: Path | None = None
        if self.config.shared_cache_dir is not None:
            self.shared_cache_dir = Path(self.config.shared_cache_dir)
            self.shared_cache_dir.mkdir(parents=True, exist_ok=True)
        self.tracer = tracer or Tracer()
        self.queue = JobQueue(self.config.queue_capacity)
        self.tenants = TenantPools(self.config.tenant_budgets)
        self.chaos = chaos
        self.jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}  # content_key -> latest job
        self._breakers: dict[str, CircuitBreaker] = {}
        self._workers: list[Worker] = []
        self._tasks: list[asyncio.Task] = []
        self._job_seq = 0
        self._suspending = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._tasks:
            return
        for i in range(self.config.workers):
            worker = Worker(f"worker-{i}", self)
            self._workers.append(worker)
            self._tasks.append(asyncio.ensure_future(worker.run()))

    async def drain(self) -> None:
        """Stop intake, finish everything queued and in flight."""
        self.queue.close()
        self._update_depth()
        if self._tasks:
            await asyncio.gather(*self._tasks)
        self._tasks = []

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` finishes all admitted work first.  ``drain=False``
        is the graceful-suspend path: queued-but-unstarted jobs settle
        ``suspended`` immediately, in-flight children get SIGINT (they
        flush their checkpoint journals and exit 130) and settle
        ``suspended`` with their journals resumable on disk.
        """
        if drain:
            await self.drain()
            return
        self._suspending = True
        pending = self.queue.drain_pending()
        self.queue.close()
        for job in pending:
            self.tracer.add("service_jobs_suspended", 1)
            job.settle("suspended", "service shut down before the job started")
        for worker in self._workers:
            proc = worker.proc
            if proc is not None and proc.returncode is None:
                proc.send_signal(signal.SIGINT)
        if self._tasks:
            await asyncio.gather(*self._tasks)
        self._tasks = []
        self._update_depth()

    @property
    def suspending(self) -> bool:
        """True once a non-drain shutdown began: workers stop spawning
        children and suspend anything they dequeue instead."""
        return self._suspending

    async def __aenter__(self) -> "Supervisor":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    # ------------------------------------------------------------------
    # Submission (admission control)
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit one request; returns the caller's :class:`Job` handle.

        Raises :class:`~repro.service.jobs.AdmissionError` when the
        tenant's gate-unit pool is dry and
        :class:`~repro.service.jobs.BackpressureError` when the bounded
        queue is full — both *before* any state is created, so a
        rejected submission leaves no trace to clean up.
        """
        try:
            self.tenants.admit(spec.tenant)
        except Exception:
            self.tracer.add("service_jobs_rejected_admission", 1)
            raise
        job_id = f"job-{self._job_seq:04d}" + (
            f"-{spec.name}" if spec.name else ""
        )
        job = Job(job_id, spec, self.workdir, self._artifact_stem(spec))
        try:
            self.queue.submit(job)
        except Exception:
            self.tracer.add("service_jobs_rejected_backpressure", 1)
            raise
        self._job_seq += 1
        self.jobs[job_id] = job
        self._by_key[spec.content_key()] = job
        self.tracer.add("service_jobs_submitted", 1)
        self._update_depth()
        return job

    def submit_idempotent(self, spec: JobSpec) -> tuple[Job, bool]:
        """Admit ``spec`` exactly once; duplicate submissions attach.

        The network front end's submission semantics: a client retrying
        a timed-out ``POST`` must never double-solve.  Keyed on
        :meth:`JobSpec.content_key`, so two byte-identical specs are one
        job:

        * a **live** job with this key → return it (``replayed=True``);
        * a job that settled **done** → return it, so the retrier gets
          the finished answer (``replayed=True``);
        * settled ``failed`` / ``suspended``, or no job → a fresh
          :meth:`submit` (``replayed=False``).  A suspended job's fresh
          submission resumes from its content-keyed checkpoint journal,
          which is exactly the restart-survival contract.

        Replays never consume queue capacity or tenant admission — the
        original submission already paid both.
        """
        key = spec.content_key()
        existing = self._by_key.get(key)
        if existing is not None and (
            not existing.done or existing.state == "done"
        ):
            self.tracer.add("service_jobs_replayed", 1)
            return existing, True
        return self.submit(spec), False

    def _artifact_stem(self, spec: JobSpec) -> str:
        """Artifact basename for ``spec``, unique among live jobs.

        The stem is content-keyed (see :meth:`JobSpec.artifact_stem`) so
        checkpoints survive supervisor restarts and never collide across
        different specs; two *concurrently live* submissions of an
        identical spec must still not share a journal, so duplicates get
        a deterministic ``-dupN`` suffix.
        """
        stem = spec.artifact_stem()
        live = {
            job.checkpoint_path.name
            for job in self.jobs.values()
            if not job.done
        }
        candidate, dup = stem, 1
        while f"{candidate}.wal" in live:
            dup += 1
            candidate = f"{stem}-dup{dup}"
        return candidate

    # ------------------------------------------------------------------
    # Worker callbacks
    # ------------------------------------------------------------------
    def breaker(self, backend: str) -> CircuitBreaker:
        """Get-or-create the shared breaker for ``backend``."""
        existing = self._breakers.get(backend)
        if existing is None:
            existing = CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_calls=self.config.breaker_cooldown_calls,
                name=backend,
            ).bind(self.tracer)
            self._breakers[backend] = existing
        return existing

    def resolve_backend(self, job: Job) -> None:
        """Route ``job`` around open breakers down the degradation ladder.

        Resumed jobs keep their backend: a journal replays bit-identically
        only against the configuration that wrote it.
        """
        if job.resumes > 0:
            return
        while not self.breaker(job.solver).allow():
            rung = self.config.degraded(job.solver)
            if rung is None:
                self.tracer.add("service_jobs_failed", 1)
                job.settle(
                    "failed",
                    f"backend {job.solver!r} circuit is open and no "
                    "degradation rung remains",
                )
                return
            self.tracer.add("service_jobs_degraded", 1)
            job.degraded_from.append(job.solver)
            job.solver = rung

    def mark_busy(self, delta: int) -> None:
        self.tracer.registry.gauge(
            "service_workers_busy", help="worker slots currently running a job"
        ).inc(delta)
        self._update_depth()

    def _update_depth(self) -> None:
        self.tracer.registry.gauge(
            "service_queue_depth", help="jobs queued (both lanes)"
        ).set(self.queue.depth)

    def record_cache_stats(self, stats: dict) -> None:
        """Fold one finished worker's `MarkedSetCache.stats()` into
        fleet-level ``service_cache_*`` gauges.

        Each job subprocess dies with its in-process counters; this is
        the only place they outlive the child, so shared-tier
        effectiveness is observable per spool run.  Gauges (not
        counters) on purpose: the ledger's registry cross-check covers
        counters only, and these totals aggregate *other* processes'
        ledgers — they must not be claimed against this tracer's spans.
        """
        for key in (
            "hits", "misses", "patches", "reused_partitions",
            "shared_hits", "shared_misses", "shared_publishes",
        ):
            if key in stats:
                self.tracer.registry.gauge(
                    f"service_cache_{key}",
                    help="fleet aggregate of per-worker MarkedSetCache "
                    f"{key} (summed over finished jobs)",
                ).inc(float(stats[key]))

    async def on_exit(self, job: Job, returncode: int, stderr: str) -> None:
        """Apply the exit policy for one finished job subprocess."""
        if returncode == 0 and job.result is not None:
            self.breaker(job.solver).record_success()
            answer = job.result.get("answer", {})
            self.tenants.charge(
                job.spec.tenant, float(answer.get("gate_units", 0) or 0)
            )
            self.tracer.add("service_jobs_completed", 1)
            if job.result.get("cache"):
                self.record_cache_stats(job.result["cache"])
            if job.result.get("resumed_probes"):
                self.tracer.add(
                    "service_probes_resumed", int(job.result["resumed_probes"])
                )
            # A finished job's journal holds no resumable work; leaving
            # it behind in a persistent workdir would only shadow a
            # later resubmission of the same spec.  The receipt stays.
            job.checkpoint_path.unlink(missing_ok=True)
            job.jobfile_path.unlink(missing_ok=True)
            job.settle("done")
            return
        if returncode == 130:
            # Graceful SIGINT (drain or operator): journal flushed,
            # resumable on disk.  Not a backend failure.
            self.tracer.add("service_jobs_suspended", 1)
            job.settle("suspended")
            return
        if returncode < 0:
            # The crash domain did its job: the worker child died (e.g.
            # SIGKILL) but the journal survived.
            self.tracer.add("service_worker_crashes", 1)
            self.breaker(job.solver).record_failure()
            resumable = CheckpointJournal.resumable(job.checkpoint_path)
            if self._suspending:
                if resumable:
                    self.tracer.add("service_jobs_suspended", 1)
                    job.settle("suspended", "crashed during service suspend")
                else:
                    self.tracer.add("service_jobs_failed", 1)
                    job.settle(
                        "failed", f"worker killed by signal {-returncode} "
                        "during service suspend"
                    )
                return
            if job.resumes < self.config.max_resumes:
                # A zero-length / torn-header journal means the kill
                # landed before the first probe: the "resume" is then a
                # deterministic fresh start — same guarantee, zero work
                # replayed.
                job.resumes += 1
                self.tracer.add("service_jobs_resumed", 1)
                self.queue.requeue(job)
                self._update_depth()
                return
            self.tracer.add("service_jobs_failed", 1)
            job.settle(
                "failed",
                f"worker killed by signal {-returncode}; resume budget "
                f"({self.config.max_resumes}) exhausted",
            )
            return
        # Nonzero exit: solver error or ledger drift — fail loudly.
        self.breaker(job.solver).record_failure()
        self.tracer.add("service_jobs_failed", 1)
        tail = stderr.strip().splitlines()[-1] if stderr.strip() else ""
        job.settle(
            "failed", f"worker exited {returncode}" + (f": {tail}" if tail else "")
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def render_metrics(self, fmt: str = "prom") -> str:
        """Service metrics as Prometheus text (``prom``) or JSON."""
        if fmt == "prom":
            return self.tracer.registry.render_prometheus()
        if fmt == "json":
            import json

            return json.dumps(
                self.tracer.registry.as_dict(), indent=2, sort_keys=True
            )
        raise ValueError(f"unknown metrics format {fmt!r}")

    def stats(self) -> dict[str, object]:
        """One-shot service snapshot (states, tenants, breakers)."""
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "jobs": states,
            "queue_depth": self.queue.depth,
            "tenants": self.tenants.as_dict(),
            "breakers": {
                name: breaker.state
                for name, breaker in sorted(self._breakers.items())
            },
        }
