"""Job model for the solver service: specs, states, typed errors.

A :class:`JobSpec` is the caller-facing description of one solve
request — everything needed to reproduce the run bit-identically (the
graph file, ``k``, the solver backend, the seed).  The service wraps an
admitted spec in a :class:`Job`, which carries the runtime state
machine, the checkpoint/receipt artifact paths, and the caller's
anytime stream of :class:`IncumbentEvent`\\ s.

Every rejection the service can produce is a *typed* error — a full
queue raises :class:`BackpressureError`, an exhausted tenant budget
raises :class:`AdmissionError` — so callers distinguish "retry later"
from "your budget is gone" without parsing strings, and nothing is
ever silently dropped.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "AdmissionError",
    "BackpressureError",
    "IncumbentEvent",
    "Job",
    "JobSpec",
    "SOLVERS",
    "ServiceError",
    "JOB_STATES",
]

#: Backends the service accepts; each maps onto an existing solver path.
SOLVERS = ("qmkp", "bs", "qamkp-sa", "qamkp-hybrid", "qamkp-qpu")

#: The job state machine.  ``queued -> running -> {done, failed,
#: suspended}``; a crashed-but-resumable job goes ``running -> queued``
#: again (its ``resumes`` counter increments).  ``suspended`` means the
#: service shut down gracefully with the job checkpointed on disk —
#: resubmitting the same spec with the same workdir resumes it.
JOB_STATES = ("queued", "running", "done", "failed", "suspended")


class ServiceError(RuntimeError):
    """Base class for solver-service failures."""


class BackpressureError(ServiceError):
    """Typed rejection: the bounded job queue is full.

    Carries ``capacity`` and ``depth`` so clients can implement
    informed backoff.  Raised at submission time — the queue never
    grows unboundedly and never drops an accepted job.
    """

    def __init__(self, capacity: int, depth: int) -> None:
        self.capacity = capacity
        self.depth = depth
        super().__init__(
            f"job queue is full ({depth}/{capacity}); retry after a "
            "completion or raise the queue capacity"
        )


class AdmissionError(ServiceError):
    """Typed rejection: the tenant's gate-unit budget pool is exhausted."""

    def __init__(self, tenant: str, budget: float, charged: float) -> None:
        self.tenant = tenant
        self.budget = budget
        self.charged = charged
        super().__init__(
            f"tenant {tenant!r} gate-unit budget exhausted "
            f"({charged:.0f}/{budget:.0f} charged)"
        )


@dataclass(frozen=True)
class JobSpec:
    """One solve request, JSON-round-trippable for the spool front end.

    ``name`` is an optional caller-chosen label; the chaos harness keys
    its fault plans on it, and the spool uses it for artifact names.
    ``gate_deadline`` is a per-job :class:`~repro.resilience.DeadlineBudget`
    in gate units (qmkp only) — on expiry the job degrades to the
    classical branch search inside the solver, per the PR 5 semantics.
    ``edits_path`` turns the job into a *mutation job* (qmkp only): the
    worker runs an incremental session over the edit script
    (:mod:`repro.dynamic`), re-solving after every edit, with per-step
    checkpoints next to the job's journal path.
    """

    graph_path: str
    k: int = 2
    solver: str = "qmkp"
    seed: int | None = None
    tenant: str = "default"
    name: str | None = None
    gate_deadline: float | None = None
    runtime_us: float = 1000.0  # annealing backends' budget
    edits_path: str | None = None  # dynamic-graph mutation jobs (qmkp)

    def __post_init__(self) -> None:
        if self.solver not in SOLVERS:
            raise ValueError(
                f"unknown solver {self.solver!r}; expected one of {SOLVERS}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.edits_path is not None and self.solver != "qmkp":
            raise ValueError(
                "edits_path (dynamic mutation jobs) requires solver='qmkp', "
                f"got {self.solver!r}"
            )

    def as_dict(self) -> dict[str, object]:
        return {
            "graph_path": str(self.graph_path),
            "k": self.k,
            "solver": self.solver,
            "seed": self.seed,
            "tenant": self.tenant,
            "name": self.name,
            "gate_deadline": self.gate_deadline,
            "runtime_us": self.runtime_us,
            "edits_path": (
                str(self.edits_path) if self.edits_path is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "JobSpec":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown job-spec field(s): {sorted(unknown)}")
        if "graph_path" not in payload:
            raise ValueError("job spec is missing 'graph_path'")
        return cls(**payload)

    def content_key(self) -> str:
        """Stable hash of the full spec content (hex, 16 chars).

        Two :class:`JobSpec`\\ s have the same key iff every field is
        equal, so the key identifies one reproducible run regardless of
        submission order or service restarts.
        """
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def artifact_stem(self) -> str:
        """Base name for this spec's on-disk artifacts (journal, receipt).

        Content-keyed, *not* sequence-numbered: a persistent workdir may
        outlive many supervisors, and artifact names must never collide
        across restarts nor depend on submission order — resubmitting
        the same spec against the same workdir always finds the same
        checkpoint journal.
        """
        prefix = f"{self.name}-" if self.name else "job-"
        return prefix + self.content_key()


@dataclass(frozen=True)
class IncumbentEvent:
    """One verified feasible k-plex streamed to the caller mid-job.

    ``replayed`` marks incumbents re-announced while a resumed job
    replayed its checkpoint journal (the caller sees the current best
    again after a crash, never a silent regression).
    """

    job_id: str
    size: int
    threshold: int
    cumulative_gate_units: int
    cumulative_oracle_calls: int
    vertices: tuple[int, ...]
    replayed: bool = False

    def as_dict(self) -> dict[str, object]:
        return {
            "job_id": self.job_id,
            "size": self.size,
            "threshold": self.threshold,
            "cumulative_gate_units": self.cumulative_gate_units,
            "cumulative_oracle_calls": self.cumulative_oracle_calls,
            "vertices": list(self.vertices),
            "replayed": self.replayed,
        }


class Job:
    """An admitted request plus its runtime state — also the caller's handle.

    The submitting caller keeps the returned :class:`Job` and consumes
    :meth:`stream` (anytime incumbents, ending when the job settles)
    and :meth:`result` (the final answer dict, or a raised
    :class:`ServiceError` on failure).
    """

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        workdir: Path,
        artifact_stem: str | None = None,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.state = "queued"
        self.resumes = 0          # crash-resume count so far
        self.degraded_from: list[str] = []  # backends skipped by open breakers
        self.solver = spec.solver  # effective backend (after degradation)
        self.worker: str | None = None
        self.child_pid: int | None = None  # set on the child's "started"
        self.error: str | None = None
        self.result: dict[str, object] | None = None
        # Artifacts are content-keyed (never sequence-numbered): the
        # workdir may be shared across supervisor restarts, and a stale
        # journal must only ever be found by the spec that wrote it.
        stem = artifact_stem or spec.artifact_stem()
        self.receipt_path = workdir / f"{stem}.receipt.json"
        self.checkpoint_path = workdir / f"{stem}.wal"
        self.jobfile_path = workdir / f"{stem}.job.json"
        self.incumbents: list[IncumbentEvent] = []
        self._events: asyncio.Queue = asyncio.Queue()
        self._done = asyncio.Event()

    # -- service-side transitions --------------------------------------
    def push_incumbent(self, event: IncumbentEvent) -> None:
        self.incumbents.append(event)
        self._events.put_nowait(event)

    def settle(self, state: str, error: str | None = None) -> None:
        """Terminal transition; closes the event stream exactly once."""
        if self._done.is_set():
            return
        self.state = state
        self.error = error
        self._events.put_nowait(None)  # stream sentinel
        self._done.set()

    # -- caller-side API -----------------------------------------------
    @property
    def done(self) -> bool:
        return self._done.is_set()

    async def stream(self):
        """Yield :class:`IncumbentEvent`\\ s until the job settles."""
        while True:
            event = await self._events.get()
            if event is None:
                return
            yield event

    async def result_dict(self) -> dict[str, object]:
        """Wait for the final answer; raises on failure/suspension."""
        await self._done.wait()
        if self.state == "done" and self.result is not None:
            return self.result
        raise ServiceError(
            f"job {self.job_id} settled as {self.state}"
            + (f": {self.error}" if self.error else "")
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.as_dict(),
            "state": self.state,
            "solver": self.solver,
            "resumes": self.resumes,
            "degraded_from": list(self.degraded_from),
            "worker": self.worker,
            "error": self.error,
            "result": self.result,
            "receipt": str(self.receipt_path),
            "checkpoint": str(self.checkpoint_path),
            "incumbents": [e.as_dict() for e in self.incumbents],
        }
