"""Degradation cascade: qpu -> sa -> tabu -> greedy.

When the resilient QPU path fails outright — embedding cannot fit,
breaker stuck open, budget gone — a production service must still
answer.  :class:`FallbackCascade` walks a fixed ladder of ever-cheaper
backends, spending whatever simulated runtime remains in the shared
budget at each rung:

1. **qpu** — :class:`~repro.resilience.retry.ResilientSampler` around
   the (possibly fault-injected) annealer;
2. **sa** — classical simulated annealing, shots sized from the
   remaining budget at the paper's per-shot CPU cost;
3. **tabu** — one tabu-search descent on the QUBO;
4. **greedy** — the classical :func:`~repro.kplex.greedy_kplex`
   heuristic with closed-form slack completion.  Pure graph code: it
   cannot fail, so the cascade always terminates with an answer.

Every rung taken is appended to the shared
:class:`~repro.resilience.retry.ResilienceReport`, so a result carries
the full story of how it was obtained.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..annealing.sa import SimulatedAnnealingSampler
from ..annealing.sampleset import SampleSet
from ..annealing.tabu import tabu_search
from ..graphs import Graph
from ..kplex import greedy_kplex
from ..obs import NULL_TRACER
from .retry import (
    AttemptRecord,
    CircuitBreaker,
    ResilienceReport,
    ResilientSampler,
    RetryPolicy,
    _attempt_accounting,
)

__all__ = ["CascadeOutcome", "FallbackCascade", "CASCADE_ORDER"]

#: The full ladder, strongest first.
CASCADE_ORDER = ("qpu", "sa", "tabu", "greedy")


@dataclass
class CascadeOutcome:
    """The cascade's answer plus its provenance."""

    assignment: dict
    cost: float
    backend: str
    sampleset: SampleSet | None
    report: ResilienceReport


class FallbackCascade:
    """Run the backend ladder until one rung produces an answer.

    Parameters
    ----------
    qpu_sampler:
        The primary sampler (wrap it in a
        :class:`~repro.resilience.faults.FaultInjectingSampler` to test
        the ladder).  ``None`` skips the qpu rung.
    backends:
        Which rungs to use, in order; must be a subsequence of
        :data:`CASCADE_ORDER`.
    policy, breaker:
        Passed to the qpu rung's :class:`ResilientSampler`.
    sa_shot_cost_us:
        Modelled CPU cost of one SA shot (2 sweeps), matching
        :func:`repro.core.qamkp.qamkp`'s accounting.
    tabu_iterations:
        Flip budget of the tabu rung.
    """

    def __init__(
        self,
        qpu_sampler=None,
        backends: tuple[str, ...] = CASCADE_ORDER,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sa_shot_cost_us: float = 100.0,
        sa_sweeps: int = 2,
        tabu_iterations: int = 2000,
    ) -> None:
        unknown = [b for b in backends if b not in CASCADE_ORDER]
        if unknown:
            raise ValueError(f"unknown backends {unknown}; choose from {CASCADE_ORDER}")
        if not backends:
            raise ValueError("at least one backend is required")
        self.backends = tuple(backends)
        self.qpu_sampler = qpu_sampler
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.sa_shot_cost_us = sa_shot_cost_us
        self.sa_sweeps = sa_sweeps
        self.tabu_iterations = tabu_iterations

    # ------------------------------------------------------------------
    def solve(
        self,
        model,
        graph: Graph,
        k: int,
        runtime_us: float,
        delta_t_us: float = 1.0,
        seed: int | None = None,
        tracer=None,
    ) -> CascadeOutcome:
        """Solve ``model`` (an ``MkpQubo``-shaped object) down the ladder.

        ``model`` needs ``bqm``, ``decode`` and ``optimal_slack`` — the
        cascade never imports :mod:`repro.core`, keeping the dependency
        arrows pointing down.  ``tracer`` (optional
        :class:`repro.obs.Tracer`) wraps the walk in one
        ``resilience.cascade`` span whose claims are checked against the
        final :class:`ResilienceReport` — including on the re-raise
        path, so failed cascades still reconcile.
        """
        tracer = tracer or NULL_TRACER
        report = ResilienceReport(budget_us=float(runtime_us))
        with tracer.span(
            "resilience.cascade", backends=list(self.backends)
        ) as cascade_span:
            try:
                return self._walk(
                    model, graph, k, delta_t_us, seed, report, tracer
                )
            finally:
                cascade_span.set("final_backend", report.final_backend)
                cascade_span.set("breaker_state", report.breaker_state)
                cascade_span.claim("resilience_attempts", len(report.attempts))
                cascade_span.claim(
                    "resilience_retries",
                    sum(1 for a in report.attempts if a.attempt > 0),
                )
                cascade_span.claim("resilience_faults", len(report.faults))
                cascade_span.claim("resilience_charged_us", report.charged_us)
                cascade_span.claim(
                    "resilience_fallback_hops", len(report.fallbacks)
                )

    def _walk(
        self, model, graph, k, delta_t_us, seed, report, tracer
    ) -> CascadeOutcome:
        last_error: Exception | None = None
        for rung, backend in enumerate(self.backends):
            if rung > 0:
                report.fallbacks.append(backend)
                tracer.add("resilience_fallback_hops", 1)
            try:
                with tracer.span("resilience.rung", backend=backend, rung=rung):
                    if backend == "qpu":
                        result = self._qpu_rung(
                            model.bqm, delta_t_us, seed, report, tracer
                        )
                    elif backend == "sa":
                        result = self._sa_rung(model.bqm, seed, report, tracer)
                    elif backend == "tabu":
                        result = self._tabu_rung(
                            model, graph, k, seed, report, tracer
                        )
                    else:
                        result = self._greedy_rung(model, graph, k, report, tracer)
            except Exception as exc:  # every rung failure cascades down
                last_error = exc
                continue
            report.final_backend = backend
            report.breaker_state = self.breaker.state
            assignment, cost, sampleset = result
            return CascadeOutcome(assignment, cost, backend, sampleset, report)
        # Unreachable with the greedy rung enabled; without it, re-raise.
        assert last_error is not None
        last_error.resilience_report = report
        raise last_error

    # ------------------------------------------------------------------
    # Rungs
    # ------------------------------------------------------------------
    def _qpu_rung(self, bqm, delta_t_us, seed, report, tracer):
        if self.qpu_sampler is None:
            raise RuntimeError("no qpu sampler configured")
        reads = max(1, int(round(report.remaining_us / delta_t_us)))
        sampler = ResilientSampler(
            self.qpu_sampler, policy=self.policy, breaker=self.breaker
        )
        sampleset, _ = sampler.sample(
            bqm,
            annealing_time_us=delta_t_us,
            num_reads=reads,
            runtime_budget_us=report.remaining_us,
            seed=seed,
            report=report,
            tracer=tracer,
        )
        best = sampleset.first
        return dict(best.assignment), float(best.energy), sampleset

    def _sa_rung(self, bqm, seed, report, tracer):
        shots = int(report.remaining_us // self.sa_shot_cost_us)
        record = AttemptRecord(
            backend="sa",
            attempt=0,
            requested_reads=max(0, shots),
            annealing_time_us=self.sa_shot_cost_us,
            outcome="rejected",
        )
        report.attempts.append(record)
        with tracer.span(
            "resilience.attempt", backend="sa", attempt=0
        ) as span, _attempt_accounting(tracer, span, record):
            if shots < 1:
                record.fault = "budget_exhausted"
                raise RuntimeError("no budget left for the sa rung")
            try:
                sampleset = SimulatedAnnealingSampler().sample(
                    bqm,
                    num_reads=shots,
                    num_sweeps=self.sa_sweeps,
                    seed=seed,
                    tracer=tracer,
                )
            except Exception:
                record.outcome = "fault"
                record.fault = "sa_error"
                raise
            charged = min(shots * self.sa_shot_cost_us, report.remaining_us)
            record.charged_us = charged
            report.charge(charged)
            record.outcome = "ok"
            best = sampleset.first
            return dict(best.assignment), float(best.energy), sampleset

    def _tabu_rung(self, model, graph, k, seed, report, tracer):
        record = AttemptRecord(
            backend="tabu",
            attempt=0,
            requested_reads=1,
            annealing_time_us=0.0,
            outcome="rejected",
        )
        report.attempts.append(record)
        with tracer.span(
            "resilience.attempt", backend="tabu", attempt=0
        ) as span, _attempt_accounting(tracer, span, record):
            try:
                # Warm-start from the greedy k-plex: tabu then only ever
                # improves on the rung below it, keeping the ladder monotone.
                initial = model.optimal_slack(greedy_kplex(graph, k))
                assignment, energy = tabu_search(
                    model.bqm,
                    initial=initial,
                    iterations=self.tabu_iterations,
                    seed=seed,
                    tracer=tracer,
                )
            except Exception:
                record.outcome = "fault"
                record.fault = "tabu_error"
                raise
            record.outcome = "ok"
            return assignment, float(energy), None

    def _greedy_rung(self, model, graph, k, report, tracer):
        record = AttemptRecord(
            backend="greedy",
            attempt=0,
            requested_reads=1,
            annealing_time_us=0.0,
            outcome="ok",
        )
        report.attempts.append(record)
        with tracer.span(
            "resilience.attempt", backend="greedy", attempt=0
        ) as span, _attempt_accounting(tracer, span, record):
            subset = greedy_kplex(graph, k)
            assignment = model.optimal_slack(subset)
            return dict(assignment), float(model.bqm.energy(assignment)), None
