"""A gate-unit deadline shared across the probes of one qMKP run.

The annealing stack budgets *simulated microseconds* (``t = Delta-t x
s``); the gate stack's natural currency is **gate units** — the
oracle+diffusion gate counts the paper's Table IV charges per Grover
round.  :class:`DeadlineBudget` is one pool debited by every qTKP probe
of a qMKP binary search; when it runs dry the search stops launching
probes and degrades gracefully to the classical
:func:`repro.kplex.maximum_kplex` branch search instead of silently
discarding the work done so far.

The budget is checked *between* probes: a probe in flight always
completes (the simulator cannot abandon a unitary halfway), so one
probe may overdraw the pool — the same semantics as the annealing
stack's per-call charge against ``runtime_budget_us``.  A pool may be
shared by concurrent consumers (the service layer's per-tenant
admission pools), so charging is lock-protected; check-then-charge is
deliberately *not* one atomic step — overdraw by in-flight work is
allowed by design, never silent loss of a charge.
"""

from __future__ import annotations

import threading

__all__ = ["DeadlineBudget", "DeadlineExpired"]


class DeadlineExpired(RuntimeError):
    """Raised by :meth:`DeadlineBudget.check` when the pool is dry."""


class DeadlineBudget:
    """A debitable pool of gate units.

    Parameters
    ----------
    gate_units:
        Total budget (must be > 0).  Every completed probe charges its
        ``gate_units`` here; ``expired`` flips once the pool is spent.
    """

    def __init__(self, gate_units: float) -> None:
        if not gate_units > 0:
            raise ValueError(f"gate_units must be > 0, got {gate_units}")
        self.budget = float(gate_units)
        self.charged = 0.0
        self._lock = threading.Lock()

    @property
    def remaining(self) -> float:
        return max(0.0, self.budget - self.charged)

    @property
    def expired(self) -> bool:
        return self.charged >= self.budget

    def charge(self, units: float) -> None:
        """Debit ``units`` (negative charges are ignored).

        Safe to call from concurrent consumers sharing one pool: the
        read-modify-write is lock-protected so no charge is ever lost.
        """
        units = max(0.0, float(units))
        with self._lock:
            self.charged += units

    def check(self) -> None:
        """Raise :class:`DeadlineExpired` if the pool is dry."""
        if self.expired:
            raise DeadlineExpired(
                f"gate-unit deadline {self.budget:.0f} exhausted "
                f"({self.charged:.0f} charged)"
            )

    def as_dict(self) -> dict[str, float]:
        return {
            "budget": self.budget,
            "charged": self.charged,
            "remaining": self.remaining,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeadlineBudget(budget={self.budget!r}, charged={self.charged!r})"
        )
