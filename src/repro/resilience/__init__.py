"""Resilience layer: fault injection, budgeted retry, degradation.

Sits between the annealing substrate and ``repro.core``: it imports
samplers and k-plex heuristics but never ``repro.core`` itself (the
cascade takes the QUBO model by duck type), keeping the architecture's
arrows pointing down.
"""

from .fallback import CASCADE_ORDER, CascadeOutcome, FallbackCascade
from .faults import FaultInjectingSampler, FaultPlan, TransientSamplerError
from .retry import (
    AttemptRecord,
    BudgetExhausted,
    CircuitBreaker,
    CircuitOpenError,
    ResilienceReport,
    ResilientSampler,
    RetryPolicy,
)
from .validation import ValidationReport, validate_sampleset

__all__ = [
    "AttemptRecord",
    "BudgetExhausted",
    "CASCADE_ORDER",
    "CascadeOutcome",
    "CircuitBreaker",
    "CircuitOpenError",
    "FallbackCascade",
    "FaultInjectingSampler",
    "FaultPlan",
    "ResilienceReport",
    "ResilientSampler",
    "RetryPolicy",
    "TransientSamplerError",
    "ValidationReport",
    "validate_sampleset",
]
