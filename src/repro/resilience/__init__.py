"""Resilience layer: fault injection, budgeted retry, degradation.

Sits between the annealing substrate and ``repro.core``: it imports
samplers and k-plex heuristics but never ``repro.core`` itself (the
cascade takes the QUBO model by duck type), keeping the architecture's
arrows pointing down.
"""

from .checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
)
from .deadline import DeadlineBudget, DeadlineExpired
from .fallback import CASCADE_ORDER, CascadeOutcome, FallbackCascade
from .faults import FaultInjectingSampler, FaultPlan, TransientSamplerError
from .gate import (
    GateFaultInjector,
    GateFaultPlan,
    GateVerification,
    TransientSimulatorError,
)
from .retry import (
    AttemptRecord,
    BudgetExhausted,
    CircuitBreaker,
    CircuitOpenError,
    ResilienceReport,
    ResilientSampler,
    RetryPolicy,
)
from .validation import ValidationReport, validate_sampleset

__all__ = [
    "AttemptRecord",
    "BudgetExhausted",
    "CASCADE_ORDER",
    "CascadeOutcome",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointMismatchError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineBudget",
    "DeadlineExpired",
    "FallbackCascade",
    "FaultInjectingSampler",
    "FaultPlan",
    "GateFaultInjector",
    "GateFaultPlan",
    "GateVerification",
    "TransientSimulatorError",
    "ResilienceReport",
    "ResilientSampler",
    "RetryPolicy",
    "TransientSamplerError",
    "ValidationReport",
    "validate_sampleset",
]
