"""Sampleset validation and quarantine.

Samplers can hand back rows that are not usable answers: bits outside
the binary domain, variables missing from the assignment, or energies
that are non-finite or inconsistent with the model.  Downstream code
(k-plex decode + repair in :mod:`repro.core.qamkp`) assumes none of
that, so every sampler-backed solve routes its sample set through
:func:`validate_sampleset` first.

The policy distinguishes *repairable* from *quarantinable* damage:

* a wrong or non-finite **energy** on an otherwise well-formed row is
  repaired by recomputing against the clean model (energies are
  bookkeeping, never trusted from hardware — see
  ``docs/architecture.md``);
* a malformed **assignment** (missing variable, non-binary value) has
  no trustworthy interpretation and the row is quarantined.

An empty post-validation set is the caller's signal to treat the whole
call as failed (the retry layer maps it to a ``all_quarantined`` fault).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..annealing.bqm import BinaryQuadraticModel
from ..annealing.sampleset import Sample, SampleSet

__all__ = ["ValidationReport", "validate_sampleset"]


@dataclass
class ValidationReport:
    """Outcome of one sampleset validation pass."""

    total_rows: int = 0
    kept_rows: int = 0
    quarantined_rows: int = 0
    repaired_energies: int = 0
    reasons: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.quarantined_rows == 0 and self.repaired_energies == 0

    def _count(self, reason: str) -> None:
        self.reasons[reason] = self.reasons.get(reason, 0) + 1

    def as_dict(self) -> dict[str, object]:
        return {
            "total_rows": self.total_rows,
            "kept_rows": self.kept_rows,
            "quarantined_rows": self.quarantined_rows,
            "repaired_energies": self.repaired_energies,
            "reasons": dict(self.reasons),
        }


def _row_defect(sample: Sample, variables: list) -> str | None:
    """The quarantine reason for a row, or ``None`` if well-formed."""
    assignment = sample.assignment
    for v in variables:
        if v not in assignment:
            return "missing_variable"
        x = assignment[v]
        if isinstance(x, float) and not math.isfinite(x):
            return "non_finite_value"
        if x not in (0, 1):
            return "non_binary_value"
    return None


def validate_sampleset(
    sampleset: SampleSet,
    bqm: BinaryQuadraticModel,
    energy_tol: float = 1e-6,
) -> tuple[SampleSet, ValidationReport]:
    """Return ``(clean_sampleset, report)``.

    Rows with malformed assignments are dropped; rows whose reported
    energy is non-finite or off the recomputed value by more than
    ``energy_tol`` are kept with the energy repaired.  The returned set
    preserves ``info`` and re-sorts by (repaired) energy.
    """
    report = ValidationReport()
    variables = bqm.variables
    kept: list[Sample] = []
    for sample in sampleset.samples:
        report.total_rows += sample.num_occurrences
        defect = _row_defect(sample, variables)
        if defect is not None:
            report.quarantined_rows += sample.num_occurrences
            report._count(defect)
            continue
        energy = sample.energy
        true_energy = bqm.energy(sample.assignment)
        if not math.isfinite(energy) or abs(energy - true_energy) > energy_tol:
            report.repaired_energies += sample.num_occurrences
            report._count(
                "non_finite_energy"
                if not math.isfinite(energy)
                else "inconsistent_energy"
            )
            sample = Sample(sample.assignment, true_energy, sample.num_occurrences)
        kept.append(sample)
        report.kept_rows += sample.num_occurrences
    out = SampleSet(kept, dict(sampleset.info))
    if not report.clean:
        out.info["validation"] = report.as_dict()
    return out, report
