"""Deterministic fault injection for sampler pipelines.

Real QPU access fails in ways the paper's experiments had to live with:
transient submission errors, embeddings that do not fit the chip,
per-call runtime rejections, chain-break storms at long chain lengths,
corrupted readout rows, and latency spikes that eat the access budget.
None of those can be provoked on demand from a simulator — so this
module wraps any sampler and injects them on a seeded schedule, making
every handler in :mod:`repro.resilience.retry` and
:mod:`repro.resilience.fallback` testable bit-for-bit reproducibly.

Two injection styles compose:

* **scripted** faults (``transient=2``) consume a countdown — the first
  N calls raise — which is what retry tests want ("fail twice, then
  succeed");
* **probabilistic** faults (``storm=0.5``) draw from the plan's own
  seeded RNG per call, which is what soak-style matrix tests want.

Raised faults use the same exception types the real stack raises
(:class:`~repro.annealing.EmbeddingError`,
:class:`~repro.annealing.QPURuntimeExceeded`) plus
:class:`TransientSamplerError` for retryable submission failures, so
handlers cannot tell injected faults from organic ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..annealing.embedding import EmbeddingError
from ..annealing.qpu import QPURuntimeExceeded
from ..annealing.sampleset import Sample, SampleSet

__all__ = [
    "TransientSamplerError",
    "FaultPlan",
    "FaultInjectingSampler",
]


class TransientSamplerError(RuntimeError):
    """A submission failure that is expected to succeed on retry."""


#: Fault classes a plan can carry, in the order scripted faults fire.
SCRIPTED_FAULTS = ("transient", "embedding", "runtime")
PROBABILISTIC_FAULTS = ("storm", "corrupt", "latency")


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, and from which seed.

    Scripted counts (``transient``, ``embedding``, ``runtime``) are
    consumed one per call, in that order, before the wrapped sampler is
    reached.  Probabilities (``storm``, ``corrupt``, ``latency``) apply
    to calls that do reach it and corrupt the returned sample set.
    """

    transient: int = 0
    embedding: int = 0
    runtime: int = 0
    storm: float = 0.0
    corrupt: float = 0.0
    latency: float = 0.0
    storm_flip_prob: float = 0.5
    corrupt_row_prob: float = 0.5
    latency_factor: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in SCRIPTED_FAULTS:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} count must be >= 0")
        for name in PROBABILISTIC_FAULTS:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")

    @property
    def is_noop(self) -> bool:
        return all(getattr(self, n) == 0 for n in SCRIPTED_FAULTS) and all(
            getattr(self, n) == 0.0 for n in PROBABILISTIC_FAULTS
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"transient=2,storm=0.5,seed=7"`` (``:`` also accepted).

        Scripted fault values are counts, probabilistic ones are rates;
        tuning knobs (``latency_factor`` etc.) are accepted by name.
        """
        plan = cls()
        if not spec.strip():
            return plan
        updates: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            sep = "=" if "=" in part else ":"
            name, _, raw = part.partition(sep)
            name = name.strip()
            if name not in {f.name for f in plan.__dataclass_fields__.values()}:  # type: ignore[attr-defined]
                raise ValueError(f"unknown fault class {name!r} in {spec!r}")
            try:
                value: object = (
                    int(raw) if name in SCRIPTED_FAULTS + ("seed",) else float(raw)
                )
            except ValueError as exc:
                raise ValueError(f"bad value for {name!r}: {raw!r}") from exc
            updates[name] = value
        return replace(plan, **updates)


@dataclass
class _Counters:
    transient: int = 0
    embedding: int = 0
    runtime: int = 0


class FaultInjectingSampler:
    """Wrap a sampler and inject the plan's faults deterministically.

    Exposes the wrapped sampler's ``max_call_time_us`` so budget-aware
    callers (:class:`~repro.resilience.retry.ResilientSampler`) see the
    same cap through the wrapper.  Every injected fault is appended to
    :attr:`fault_log` as ``(call_index, fault_name)``.
    """

    def __init__(self, inner, plan: FaultPlan | str | None = None) -> None:
        self.inner = inner
        self.plan = (
            FaultPlan.parse(plan) if isinstance(plan, str) else (plan or FaultPlan())
        )
        self._rng = np.random.default_rng(self.plan.seed)
        self._pending = _Counters(
            self.plan.transient, self.plan.embedding, self.plan.runtime
        )
        self.calls = 0
        self.fault_log: list[tuple[int, str]] = []

    @property
    def max_call_time_us(self):
        return getattr(self.inner, "max_call_time_us", None)

    # ------------------------------------------------------------------
    def sample(self, bqm, **kwargs) -> SampleSet:
        self.calls += 1
        fault = self._next_scripted()
        if fault == "transient":
            raise TransientSamplerError(
                f"injected transient submission error (call {self.calls})"
            )
        if fault == "embedding":
            raise EmbeddingError(
                f"injected embedding failure: chip too small (call {self.calls})"
            )
        if fault == "runtime":
            raise QPURuntimeExceeded(
                f"injected per-call runtime rejection (call {self.calls})"
            )
        result = self.inner.sample(bqm, **kwargs)
        if self.plan.storm and self._rng.random() < self.plan.storm:
            result = self._chain_break_storm(bqm, result)
        if self.plan.corrupt and self._rng.random() < self.plan.corrupt:
            result = self._corrupt_rows(result)
        if self.plan.latency and self._rng.random() < self.plan.latency:
            result = self._latency_spike(result)
        return result

    def _next_scripted(self) -> str | None:
        for name in SCRIPTED_FAULTS:
            if getattr(self._pending, name) > 0:
                setattr(self._pending, name, getattr(self._pending, name) - 1)
                self.fault_log.append((self.calls, name))
                return name
        return None

    # ------------------------------------------------------------------
    # Sampleset-level faults
    # ------------------------------------------------------------------
    def _chain_break_storm(self, bqm, result: SampleSet) -> SampleSet:
        """Randomise a large fraction of bits, as a broken-chain readout
        does, and report the elevated break fraction honestly — energies
        are recomputed against the clean model, matching QPU bookkeeping.
        """
        self.fault_log.append((self.calls, "storm"))
        flipped: list[dict] = []
        for sample in result.samples:
            for _ in range(sample.num_occurrences):
                assignment = {
                    v: (1 - x if self._rng.random() < self.plan.storm_flip_prob else x)
                    for v, x in sample.assignment.items()
                }
                flipped.append(assignment)
        energies = [bqm.energy(a) for a in flipped]
        out = SampleSet.from_states(flipped, energies, dict(result.info))
        # Storm flips land on top of whatever organically broke, so the
        # reported fraction composes the two rates.
        organic = float(result.info.get("chain_break_fraction", 0.0))
        out.info["chain_break_fraction"] = (
            self.plan.storm_flip_prob + (1.0 - self.plan.storm_flip_prob) * organic
        )
        out.info["injected_storm"] = True
        return out

    def _corrupt_rows(self, result: SampleSet) -> SampleSet:
        """NaN energies and out-of-domain bits on a subset of rows —
        the readout-corruption class sampleset validation must catch."""
        self.fault_log.append((self.calls, "corrupt"))
        corrupted: list[Sample] = []
        hit_any = False
        for i, sample in enumerate(result.samples):
            hit = self._rng.random() < self.plan.corrupt_row_prob
            # Guarantee at least the first row is corrupted so the fault
            # is observable regardless of the row draw.
            if i == 0 and not hit_any:
                hit = True
            if hit:
                hit_any = True
                assignment = dict(sample.assignment)
                victim = next(iter(assignment))
                assignment[victim] = 3  # out of the binary domain
                corrupted.append(
                    Sample(assignment, float("nan"), sample.num_occurrences)
                )
            else:
                corrupted.append(sample)
        out = SampleSet(corrupted, dict(result.info))
        out.info["injected_corruption"] = True
        return out

    def _latency_spike(self, result: SampleSet) -> SampleSet:
        """Inflate the reported runtime: the call took far longer than
        requested, so budget accounting must debit more."""
        self.fault_log.append((self.calls, "latency"))
        out = SampleSet(list(result.samples), dict(result.info))
        base = float(out.info.get("total_runtime_us", 0.0))
        out.info["total_runtime_us"] = base * self.plan.latency_factor
        out.info["injected_latency_factor"] = self.plan.latency_factor
        return out
