"""Retrying sampler: backoff with full jitter, budget debits, breaker.

:class:`ResilientSampler` wraps any QPU-style sampler and turns "one
shot, raise on failure" into a budgeted submission loop:

* **retry with exponential backoff + full jitter** — attempt ``i``
  waits ``uniform(0, min(cap, base * 2**i))`` simulated microseconds,
  drawn from a seeded RNG so runs replay exactly;
* **runtime-budget accounting** — every attempt's reported runtime
  *and* every backoff wait are debited from one ``runtime_budget_us``
  pool, and the reads requested by later attempts shrink to whatever
  still fits, so the sum across retries never exceeds the paper's
  per-run QPU access budget (``t = Delta-t x s``);
* **circuit breaker** — after ``failure_threshold`` consecutive
  failures the breaker opens and calls fail fast with
  :class:`CircuitOpenError`; after ``cooldown_calls`` rejected calls it
  half-opens and lets one probe through.

Fault classification mirrors real submission stacks:
``TransientSamplerError`` and chain-break storms retry; runtime
rejections retry with the read count clamped under the cap;
``EmbeddingError`` is permanent (the same chip will not grow) and
surfaces immediately so a fallback layer can take over.

Everything that happens — attempts, faults, charges, backoffs, breaker
transitions — is recorded in a :class:`ResilienceReport`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..annealing.embedding import EmbeddingError
from ..annealing.qpu import QPURuntimeExceeded
from ..annealing.sampleset import SampleSet
from ..obs import NULL_TRACER
from .faults import TransientSamplerError
from .validation import validate_sampleset

__all__ = [
    "BREAKER_STATE_CODES",
    "BudgetExhausted",
    "CircuitBreaker",
    "CircuitOpenError",
    "AttemptRecord",
    "ResilienceReport",
    "RetryPolicy",
    "ResilientSampler",
]


class CircuitOpenError(RuntimeError):
    """Fast-fail: the breaker is open after repeated consecutive failures."""


class BudgetExhausted(RuntimeError):
    """The runtime budget ran out before any attempt succeeded."""


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape and attempt ceiling.

    ``backoff_base_us`` doubles per attempt up to ``backoff_cap_us``;
    the actual wait is uniform in ``[0, bound]`` (full jitter), debited
    from the runtime budget like annealing time is.
    """

    max_attempts: int = 4
    backoff_base_us: float = 50.0
    backoff_cap_us: float = 5_000.0
    # Physical-mode majority-vote readout legitimately reports break
    # fractions of 0.45-0.65 on long-chain instances (measured on the
    # paper's Fig. 1 QUBO across embedding seeds), so only clearly
    # anomalous rates above that band count as a storm.
    chain_break_retry_threshold: float = 0.7

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_us < 0 or self.backoff_cap_us < 0:
            raise ValueError("backoff times must be >= 0")

    def backoff_bound_us(self, attempt: int) -> float:
        """Jitter upper bound before attempt ``attempt`` (0-based)."""
        return min(self.backoff_cap_us, self.backoff_base_us * (2.0**attempt))


#: Numeric encoding of breaker states for the ``breaker_state_<name>``
#: gauge (Prometheus cannot render strings).
BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """Consecutive-failure breaker with a call-counted cooldown.

    The simulator has no wall clock, so the open->half-open transition
    is counted in rejected calls instead of elapsed seconds; the
    semantics (open fails fast, a half-open probe closes or re-opens)
    match the standard pattern.

    Half-open admits **exactly one** trial call, atomically: concurrent
    :meth:`allow` callers racing the probe are rejected (and counted as
    rejections) until the probe resolves through
    :meth:`record_success` / :meth:`record_failure`.  All transitions
    run under one lock, so a breaker shared across threads — the
    service supervisor shares one per backend — never double-admits a
    trial or loses a caller's typed :class:`CircuitOpenError`.

    Breaker health is observable: :meth:`bind` attaches a recording
    :class:`~repro.obs.Tracer`, after which every state transition
    charges the ``breaker_transitions`` counter, every open-state
    rejection charges ``breaker_rejections``, and the current state is
    mirrored into the ``breaker_state_<name>`` gauge (see
    :data:`BREAKER_STATE_CODES`) — so breaker behaviour shows up in the
    CLI's ``--metrics`` output and the service layer's Prometheus
    endpoint.  Unbound breakers record nothing, keeping the clean path
    byte-identical.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_calls: int = 3,
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_calls < 1:
            raise ValueError("cooldown_calls must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self.name = name
        self.state = "closed"
        self.consecutive_failures = 0
        self.rejections_total = 0
        self.transitions_total = 0
        self._rejections = 0
        self._probe_in_flight = False
        self._lock = threading.RLock()
        self._tracer = None

    def bind(self, tracer, name: str | None = None) -> "CircuitBreaker":
        """Route transitions/rejections into ``tracer``'s metrics.

        No-op for ``None`` / non-recording tracers, so instrumented
        call sites can bind unconditionally.  Returns ``self``.
        """
        if name:
            self.name = name
        if tracer is not None and getattr(tracer, "is_recording", False):
            self._tracer = tracer
            self._publish_state()
        return self

    def _publish_state(self) -> None:
        if self._tracer is not None and self._tracer.registry is not None:
            self._tracer.registry.gauge(
                f"breaker_state_{self.name}",
                help="circuit breaker state (0=closed 1=half_open 2=open)",
            ).set(BREAKER_STATE_CODES[self.state])

    def _set_state(self, new: str) -> None:
        if new == self.state:
            return
        self.state = new
        self.transitions_total += 1
        if self._tracer is not None:
            self._tracer.add("breaker_transitions", 1)
        self._publish_state()

    def _count_rejection(self) -> None:
        self.rejections_total += 1
        if self._tracer is not None:
            self._tracer.add("breaker_rejections", 1)

    def allow(self) -> bool:
        with self._lock:
            if self.state == "open":
                self._rejections += 1
                self._count_rejection()
                if self._rejections >= self.cooldown_calls:
                    # This caller *is* the half-open probe; racers are
                    # rejected below until it resolves.
                    self._set_state("half_open")
                    self._probe_in_flight = True
                    return True
                return False
            if self.state == "half_open" and self._probe_in_flight:
                # One trial at a time: a second caller racing the probe
                # gets the typed rejection, never a duplicate trial.
                self._count_rejection()
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self._set_state("closed")
            self.consecutive_failures = 0
            self._rejections = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state == "half_open" or (
                self.consecutive_failures >= self.failure_threshold
            ):
                self._set_state("open")
                self._rejections = 0
            self._probe_in_flight = False


@dataclass
class AttemptRecord:
    """One submission attempt (or fast-fail) in the resilience loop."""

    backend: str
    attempt: int
    requested_reads: int
    annealing_time_us: float
    outcome: str  # "ok" | "fault" | "rejected" | "degraded"
    fault: str | None = None
    charged_us: float = 0.0
    backoff_us: float = 0.0
    quarantined_rows: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "attempt": self.attempt,
            "requested_reads": self.requested_reads,
            "annealing_time_us": self.annealing_time_us,
            "outcome": self.outcome,
            "fault": self.fault,
            "charged_us": self.charged_us,
            "backoff_us": self.backoff_us,
            "quarantined_rows": self.quarantined_rows,
        }


@dataclass
class ResilienceReport:
    """Structured account of everything the resilient pipeline did."""

    budget_us: float = 0.0
    charged_us: float = 0.0
    attempts: list[AttemptRecord] = field(default_factory=list)
    fallbacks: list[str] = field(default_factory=list)
    final_backend: str | None = None
    breaker_state: str = "closed"

    @property
    def faults(self) -> list[str]:
        return [a.fault for a in self.attempts if a.fault]

    @property
    def remaining_us(self) -> float:
        return max(0.0, self.budget_us - self.charged_us)

    def charge(self, us: float) -> None:
        self.charged_us += max(0.0, float(us))

    def as_dict(self) -> dict[str, object]:
        return {
            "budget_us": self.budget_us,
            "charged_us": self.charged_us,
            "attempts": [a.as_dict() for a in self.attempts],
            "faults": self.faults,
            "fallbacks": list(self.fallbacks),
            "final_backend": self.final_backend,
            "breaker_state": self.breaker_state,
        }


@contextmanager
def _attempt_accounting(tracer, span, record: AttemptRecord):
    """Charge one attempt's record to its span on *every* exit path.

    Entered alongside the ``resilience.attempt`` span (and exited
    before it, so the span is still current), this guarantees the
    accounting below runs whether the attempt succeeds, ``continue``s
    into a retry, ``break``s on budget exhaustion, or raises — the
    one-record-one-span invariant :meth:`repro.obs.RunLedger.verify`
    reconciles against :class:`ResilienceReport`.
    """
    try:
        yield
    finally:
        _charge_attempt_span(tracer, span, record)


def _charge_attempt_span(tracer, span, record: AttemptRecord) -> None:
    """Mirror one finished :class:`AttemptRecord` into its span."""
    span.set("outcome", record.outcome)
    if record.fault:
        span.set("fault", record.fault)
        tracer.add("resilience_faults", 1)
    tracer.add("resilience_attempts", 1)
    if record.attempt > 0:
        tracer.add("resilience_retries", 1)
    charged = record.charged_us + record.backoff_us
    if charged:
        tracer.add("resilience_charged_us", charged)
    if record.quarantined_rows:
        tracer.add("resilience_quarantined_rows", record.quarantined_rows)


class ResilientSampler:
    """Budgeted retry loop around a QPU-style sampler.

    Parameters
    ----------
    inner:
        Any object with ``sample(bqm, annealing_time_us=..., num_reads=...,
        seed=...)`` returning a :class:`SampleSet` (optionally exposing
        ``max_call_time_us``).
    policy:
        Backoff/attempt configuration.
    breaker:
        Shared circuit breaker; a private one is created if omitted.
    validate:
        Run sampleset validation after each successful call, quarantining
        malformed rows; a fully-quarantined set counts as a failure.
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        validate: bool = True,
    ) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.validate = validate

    # ------------------------------------------------------------------
    def sample(
        self,
        bqm,
        annealing_time_us: float = 1.0,
        num_reads: int = 100,
        runtime_budget_us: float | None = None,
        seed: int | None = None,
        report: ResilienceReport | None = None,
        backend: str = "qpu",
        tracer=None,
        **kwargs,
    ) -> tuple[SampleSet, ResilienceReport]:
        """Sample under a total runtime budget; returns (result, report).

        ``runtime_budget_us`` defaults to ``annealing_time_us *
        num_reads`` (the single-call budget).  On unrecoverable failure
        the last exception is re-raised — with the report attached as
        ``exc.resilience_report`` — so cascades can keep the history.
        ``tracer`` (optional :class:`repro.obs.Tracer`) records one
        ``resilience.attempt`` span per :class:`AttemptRecord`, with the
        attempt/retry/fault counts and budget charges as additive
        metrics the run ledger reconciles against this report.
        """
        tracer = tracer or NULL_TRACER
        # Surface breaker health in the run's metrics; explicitly named
        # breakers (service-level, shared) keep their name.
        self.breaker.bind(
            tracer, backend if self.breaker.name == "breaker" else None
        )
        if report is None:
            report = ResilienceReport(
                budget_us=(
                    float(runtime_budget_us)
                    if runtime_budget_us is not None
                    else annealing_time_us * num_reads
                )
            )
        rng = np.random.default_rng(seed)
        cap = getattr(self.inner, "max_call_time_us", None)
        last_error: Exception | None = None
        degraded_best: SampleSet | None = None

        for attempt in range(self.policy.max_attempts):
            backoff_us = 0.0
            if attempt > 0:
                bound = self.policy.backoff_bound_us(attempt - 1)
                backoff_us = float(rng.uniform(0.0, bound)) if bound > 0 else 0.0
                backoff_us = min(backoff_us, report.remaining_us)
                report.charge(backoff_us)

            reads = min(num_reads, int(report.remaining_us // annealing_time_us))
            if cap is not None:
                reads = min(reads, int(cap // annealing_time_us))
            record = AttemptRecord(
                backend=backend,
                attempt=attempt,
                requested_reads=reads,
                annealing_time_us=annealing_time_us,
                outcome="rejected",
                backoff_us=backoff_us,
            )
            report.attempts.append(record)

            with tracer.span(
                "resilience.attempt", backend=backend, attempt=attempt
            ) as attempt_span, _attempt_accounting(tracer, attempt_span, record):
                if reads < 1:
                    record.fault = "budget_exhausted"
                    last_error = BudgetExhausted(
                        f"runtime budget {report.budget_us} us exhausted after "
                        f"{report.charged_us:.1f} us across {attempt} attempt(s)"
                    )
                    break
                if not self.breaker.allow():
                    record.fault = "circuit_open"
                    last_error = CircuitOpenError(
                        f"circuit open after {self.breaker.consecutive_failures} "
                        "consecutive failures"
                    )
                    continue

                attempt_seed = None if seed is None else seed + 1009 * attempt
                try:
                    result = self.inner.sample(
                        bqm,
                        annealing_time_us=annealing_time_us,
                        num_reads=reads,
                        seed=attempt_seed,
                        **kwargs,
                    )
                except TransientSamplerError as exc:
                    # The submission never reached the anneal stage, so no
                    # QPU time is charged — the backoff waits before the
                    # retries are what this fault costs the budget.
                    record.outcome = "fault"
                    record.fault = "transient"
                    self.breaker.record_failure()
                    last_error = exc
                    continue
                except QPURuntimeExceeded as exc:
                    # Rejected before running — nothing charged; retry with
                    # the cap re-read in case the wrapper misreported it.
                    record.outcome = "fault"
                    record.fault = "runtime_exceeded"
                    self.breaker.record_failure()
                    last_error = exc
                    cap = (
                        getattr(exc, "cap_us", None)
                        or getattr(self.inner, "max_call_time_us", None)
                        or reads * annealing_time_us / 2.0
                    )
                    continue
                except EmbeddingError as exc:
                    # Permanent for this (problem, chip) pair: retrying the
                    # identical embed cannot succeed.  Surface immediately.
                    record.outcome = "fault"
                    record.fault = "embedding"
                    self.breaker.record_failure()
                    report.breaker_state = self.breaker.state
                    exc.resilience_report = report
                    raise

                # The per-call deadline cuts execution at the budget
                # boundary, so a latency spike can cost at most what is
                # left in the pool.
                charged = min(
                    float(result.info.get("total_runtime_us", reads * annealing_time_us)),
                    report.remaining_us,
                )
                record.charged_us = charged
                report.charge(charged)

                if self.validate:
                    result, vreport = validate_sampleset(result, bqm)
                    record.quarantined_rows = vreport.quarantined_rows
                    if not result.samples:
                        record.outcome = "fault"
                        record.fault = "all_quarantined"
                        self.breaker.record_failure()
                        last_error = ValueError(
                            "every sample row was quarantined by validation"
                        )
                        continue

                cbf = float(result.info.get("chain_break_fraction", 0.0))
                tracer.observe("chain_break_fraction", cbf)
                if cbf > self.policy.chain_break_retry_threshold:
                    # A storm: the samples are noise-dominated.  Keep the
                    # best-so-far in case every retry storms too, but retry.
                    record.outcome = "degraded"
                    record.fault = "chain_break_storm"
                    if (
                        degraded_best is None
                        or result.lowest_energy < degraded_best.lowest_energy
                    ):
                        degraded_best = result
                    self.breaker.record_failure()
                    last_error = RuntimeError(
                        f"chain break fraction {cbf:.2f} exceeds "
                        f"{self.policy.chain_break_retry_threshold}"
                    )
                    continue

                record.outcome = "ok"
                self.breaker.record_success()
                report.final_backend = backend
                report.breaker_state = self.breaker.state
                return result, report

        report.breaker_state = self.breaker.state
        if degraded_best is not None:
            # Every attempt stormed; a noisy answer beats none.
            report.final_backend = backend
            report.fallbacks.append("degraded_accept")
            tracer.add("resilience_fallback_hops", 1)
            return degraded_best, report
        assert last_error is not None
        last_error.resilience_report = report
        raise last_error
