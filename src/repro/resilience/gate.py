"""Gate-stack fault injection and self-verifying Grover sampling.

PR 1 gave the *annealing* stack fault injection and budgeted retries;
this module is the gate-model counterpart.  Real NISQ Grover runs fail
in their own ways — readout bit-flips on the measured register,
depolarizing noise that dampens the success amplitude, tensor-network
backends that truncate bonds too aggressively, and transient simulator
/ submission errors — and none of those can be provoked on demand from
an exact simulator.  :class:`GateFaultInjector` injects all four on a
seeded schedule, so the self-verifying sampling loop in
:mod:`repro.core.qtkp` and the BBHT restarts in
:mod:`repro.grover.unknown_m` are testable bit-for-bit reproducibly.

The posture mirrors NISQ clique-search practice (Sanyal et al.; Han et
al.): **every** quantum measurement is checked against the classical
certificate (:meth:`repro.core.oracle.KCplexOracle.predicate` /
``is_kplex``) before it is trusted, rejected samples drive budgeted
retries, and the false-positive / false-negative ledger is surfaced on
the result objects instead of being silently swallowed.

Injection styles compose exactly like :class:`repro.resilience.faults.FaultPlan`:

* **scripted** faults (``transient=2``) consume a countdown — the first
  N Grover executions raise :class:`TransientSimulatorError`, which is
  what retry tests want ("fail twice, then succeed");
* **probabilistic** faults (``readout=0.5``) draw from the injector's
  *own* seeded RNG per event, never from the run's measurement RNG —
  so enabling injection perturbs outcomes, but the clean path's random
  stream is byte-identical whether this module is imported or not.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "GateFaultInjector",
    "GateFaultPlan",
    "GateVerification",
    "TransientSimulatorError",
]


class TransientSimulatorError(RuntimeError):
    """A Grover execution failure that is expected to succeed on retry."""


#: Scripted fault classes (counts, consumed in order) and probabilistic
#: ones (rates, drawn per event from the plan's seeded RNG).
SCRIPTED_GATE_FAULTS = ("transient",)
PROBABILISTIC_GATE_FAULTS = ("readout", "depolarize")


@dataclass(frozen=True)
class GateFaultPlan:
    """What to inject into the gate stack, how often, from which seed.

    Fields
    ------
    transient:
        Scripted count: the first N Grover executions raise
        :class:`TransientSimulatorError` before any amplitude is
        computed (the submission never ran).
    readout:
        Probability that a measured sample suffers readout noise; when
        it fires, each vertex bit flips independently with
        ``readout_flip_prob``.
    depolarize:
        Per-iteration depolarizing rate forwarded to
        :meth:`repro.grover.PhaseOracleGrover.run` — the measurement
        distribution is mixed toward uniform, dampening the success
        probability exactly as a depolarizing channel on the register
        would.
    truncate_bond:
        Forced MPS bond-dimension cap (0 = off) applied on top of the
        caller's ``max_bond`` by :meth:`GateFaultInjector.mps_bond_cap`
        — the "MPS truncation gone bad" class, caught by the norm guard
        in :mod:`repro.quantum.mps`.
    seed:
        Seed of the injector's private RNG.
    """

    transient: int = 0
    readout: float = 0.0
    readout_flip_prob: float = 0.25
    depolarize: float = 0.0
    truncate_bond: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.transient < 0:
            raise ValueError("transient count must be >= 0")
        if self.truncate_bond < 0:
            raise ValueError("truncate_bond must be >= 0")
        for name in PROBABILISTIC_GATE_FAULTS + ("readout_flip_prob",):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")

    @property
    def is_noop(self) -> bool:
        return (
            self.transient == 0
            and self.readout == 0.0
            and self.depolarize == 0.0
            and self.truncate_bond == 0
        )

    @classmethod
    def parse(cls, spec: str) -> "GateFaultPlan":
        """Parse ``"transient=2,readout=0.5,seed=7"`` (``:`` also accepted)."""
        plan = cls()
        if not spec.strip():
            return plan
        updates: dict[str, object] = {}
        int_fields = ("transient", "truncate_bond", "seed")
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            sep = "=" if "=" in part else ":"
            name, _, raw = part.partition(sep)
            name = name.strip()
            if name not in {f.name for f in plan.__dataclass_fields__.values()}:  # type: ignore[attr-defined]
                raise ValueError(f"unknown gate fault class {name!r} in {spec!r}")
            try:
                value: object = int(raw) if name in int_fields else float(raw)
            except ValueError as exc:
                raise ValueError(f"bad value for {name!r}: {raw!r}") from exc
            updates[name] = value
        return replace(plan, **updates)


@dataclass
class GateVerification:
    """Sample-verification ledger for one qTKP / BBHT execution.

    A *false positive* is a measured candidate the classical certificate
    rejected (noisy collapse or injected readout error — the loop
    retried instead of trusting it).  ``false_negative`` is set when the
    run declared the threshold infeasible although the simulator's
    ground truth says solutions existed (``M > 0``) — the error class a
    hardware run could not even detect, surfaced here so acceptance
    tests can bound it.
    """

    measurements: int = 0
    verified: int = 0
    false_positives: int = 0
    false_negative: bool = False
    transient_retries: int = 0
    bbht_restarts: int = 0
    faults: list[tuple[int, str]] = field(default_factory=list)

    def merge(self, other: "GateVerification") -> None:
        self.measurements += other.measurements
        self.verified += other.verified
        self.false_positives += other.false_positives
        self.false_negative = self.false_negative or other.false_negative
        self.transient_retries += other.transient_retries
        self.bbht_restarts += other.bbht_restarts
        self.faults.extend(other.faults)

    def as_dict(self) -> dict[str, object]:
        return {
            "measurements": self.measurements,
            "verified": self.verified,
            "false_positives": self.false_positives,
            "false_negative": self.false_negative,
            "transient_retries": self.transient_retries,
            "bbht_restarts": self.bbht_restarts,
            "faults": [list(f) for f in self.faults],
        }


class GateFaultInjector:
    """Inject the plan's faults into Grover executions and measurements.

    The injector is stateful (scripted countdowns, its own RNG, a fault
    log) and deliberately separate from the run's measurement RNG:
    corruption decisions never consume draws from the stream that
    produces the physics, so a plan with all rates at zero is
    indistinguishable from no injector at all.

    Every injected fault is appended to :attr:`fault_log` as
    ``(execution_index, fault_name)``.
    """

    def __init__(self, plan: GateFaultPlan | str | None = None) -> None:
        self.plan = (
            GateFaultPlan.parse(plan)
            if isinstance(plan, str)
            else (plan or GateFaultPlan())
        )
        self._rng = np.random.default_rng(self.plan.seed)
        self._pending_transient = self.plan.transient
        self.executions = 0
        self.fault_log: list[tuple[int, str]] = []

    # ------------------------------------------------------------------
    # Grover execution
    # ------------------------------------------------------------------
    def execute(self, engine, iterations: int):
        """Run ``engine`` for ``iterations`` rounds through the fault model.

        Raises :class:`TransientSimulatorError` while the scripted
        countdown lasts; otherwise forwards the plan's depolarizing rate
        into :meth:`repro.grover.PhaseOracleGrover.run`.
        """
        self.executions += 1
        if self._pending_transient > 0:
            self._pending_transient -= 1
            self.fault_log.append((self.executions, "transient"))
            raise TransientSimulatorError(
                f"injected transient simulator error (execution {self.executions})"
            )
        if self.plan.depolarize:
            self.fault_log.append((self.executions, "depolarize"))
            return engine.run(iterations, depolarize=self.plan.depolarize)
        return engine.run(iterations)

    # ------------------------------------------------------------------
    # Measurement corruption
    # ------------------------------------------------------------------
    def corrupt_measurement(self, mask: int, num_qubits: int) -> int:
        """Apply readout bit-flips to one measured basis state."""
        if self.plan.readout and self._rng.random() < self.plan.readout:
            flips = self._rng.random(num_qubits) < self.plan.readout_flip_prob
            flip_mask = 0
            for bit in range(num_qubits):
                if flips[bit]:
                    flip_mask |= 1 << bit
            if flip_mask:
                self.fault_log.append((self.executions, "readout"))
                return mask ^ flip_mask
        return mask

    # ------------------------------------------------------------------
    # MPS truncation forcing
    # ------------------------------------------------------------------
    def mps_bond_cap(self, max_bond: int | None) -> int | None:
        """The effective bond cap: the caller's, forced down by the plan."""
        forced = self.plan.truncate_bond
        if not forced:
            return max_bond
        self.fault_log.append((self.executions, "truncate"))
        return forced if max_bond is None else min(max_bond, forced)


def execute_with_retries(
    engine,
    iterations: int,
    injector: GateFaultInjector,
    stats: GateVerification,
    tracer,
    max_retries: int,
):
    """Run ``engine`` through the injector, retrying transient faults.

    Each retry is recorded as a ``gate.retry`` span (kind
    ``"transient"``) and counted in ``stats.transient_retries``; when
    the retry budget is exhausted the last error is re-raised — the
    documented degradation path for a persistently failing backend.
    """
    attempts = 0
    while True:
        try:
            return injector.execute(engine, iterations)
        except TransientSimulatorError:
            attempts += 1
            stats.transient_retries += 1
            with tracer.span("gate.retry", kind="transient", retry=attempts):
                tracer.add("gate_retries", 1)
            if attempts > max_retries:
                raise
