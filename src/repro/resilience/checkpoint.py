"""Write-ahead checkpoint journal for qMKP binary searches.

A killed ``O*(2^(n/2))`` run should not discard its completed threshold
probes.  :class:`CheckpointJournal` is a line-oriented JSON WAL:

* line 1 is a **header** binding the journal to one instance — the
  graph's structural fingerprint (original and reduced), ``k``, the
  counting mode and search flags, and the RNG bit-generator kind;
* every completed qTKP probe appends one **probe record**: the
  threshold, the verified witness, the full cost accounting needed to
  rebuild the :class:`~repro.core.qtkp.QTKPResult`, and the measurement
  RNG's bit-generator state *after* the probe.

Appends are flushed and fsynced before the search advances, so a
SIGKILL can lose at most the probe in flight; a torn final line
(the crash landed mid-write) is detected and dropped on load.  Resuming
(``qmkp(..., resume=PATH)``) replays the recorded probes through the
same binary-search update rule, re-verifies every witness classically,
restores the RNG state, and continues live — bit-identical to the run
that was never killed.
"""

from __future__ import annotations

import json
import os
import signal
from pathlib import Path

import numpy as np

__all__ = [
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointMismatchError",
    "CheckpointCorruptError",
    "restore_rng_state",
    "rng_state",
    "validate_header",
]

#: Current schema: v2 adds the adaptive-ladder fields — ``ladder`` in
#: the header, and per-record ``incumbent`` / ``skipped`` /
#: ``bbht_ceiling``.  v1 journals (no ladder concept) load fine and are
#: normalized to ``ladder="binary"``, which is exactly the semantics
#: they were written under.
SCHEMA = "repro.resilience/qmkp-checkpoint/v2"
SCHEMA_V1 = "repro.resilience/qmkp-checkpoint/v1"

#: CI/test hook: when set to N, the process SIGKILLs itself after the
#: N-th probe record has been durably appended — a deterministic
#: "crash mid-search" for the kill-and-resume smoke job.
CRASH_ENV = "QMKP_CRASH_AFTER_PROBES"

#: Like :data:`CRASH_ENV` but delivers SIGINT instead of SIGKILL — a
#: deterministic "operator pressed Ctrl-C mid-search", used to test the
#: graceful-interrupt paths (CLI exit 130, service job suspension).
#: Unlike the SIGKILL hook the journal is *not* closed first: the
#: KeyboardInterrupt unwinds through the search's normal cleanup.
SIGINT_ENV = "QMKP_SIGINT_AFTER_PROBES"


class CheckpointError(RuntimeError):
    """Base class for checkpoint problems."""


class CheckpointMismatchError(CheckpointError):
    """The journal belongs to a different instance / configuration."""


class CheckpointCorruptError(CheckpointError):
    """A journal record failed re-verification on resume."""


def validate_header(
    expected: dict[str, object], actual: dict[str, object], where: str
) -> None:
    """Every field the run needs must match the journal's header."""
    for key, value in expected.items():
        if actual.get(key) != value:
            raise CheckpointMismatchError(
                f"{where}: journal header field {key!r} is "
                f"{actual.get(key)!r}, this run needs {value!r}"
            )


def rng_state(rng: np.random.Generator) -> dict[str, object]:
    """The generator's bit-generator state as a JSON-safe dict."""
    return json.loads(json.dumps(rng.bit_generator.state))


def restore_rng_state(rng: np.random.Generator, state: dict[str, object]) -> None:
    """Restore a state captured by :func:`rng_state` (kind-checked)."""
    expected = type(rng.bit_generator).__name__
    recorded = state.get("bit_generator")
    if recorded != expected:
        raise CheckpointMismatchError(
            f"journal RNG kind {recorded!r} does not match the run's {expected!r}"
        )
    rng.bit_generator.state = state


class CheckpointJournal:
    """Append-only JSON-lines WAL with a validated header.

    Parameters
    ----------
    path:
        Journal file.  A new file gets the header written immediately;
        an existing file is opened for append after the header has been
        validated against ``header`` (so a resumed run keeps extending
        the same journal).
    header:
        Instance-binding dict (see module docstring).  Compared
        key-by-key against an existing journal's header; any difference
        raises :class:`CheckpointMismatchError`.
    resume:
        ``True`` keeps an existing journal and appends after validating
        its header (the kill-and-resume path); ``False`` (default)
        starts the journal fresh, truncating any stale file at ``path``.
    """

    def __init__(
        self, path: str | Path, header: dict[str, object], resume: bool = False
    ) -> None:
        self.path = Path(path)
        self.header = dict(header)
        self.header["schema"] = SCHEMA
        self.records_written = 0
        if resume and self.path.exists() and self.path.stat().st_size > 0:
            existing, records = self.load(self.path)
            validate_header(self.header, existing, str(self.path))
            self.records_written = len(records)
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line(self.header)

    # ------------------------------------------------------------------
    def _write_line(self, payload: dict[str, object]) -> None:
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append_probe(self, record: dict[str, object]) -> None:
        """Durably append one completed-probe record, then honour the
        CI crash hooks (SIGKILL / SIGINT after the configured record
        count)."""
        self._write_line(record)
        self.records_written += 1
        target = os.environ.get(CRASH_ENV)
        if target and self.records_written >= int(target):
            self._fh.close()
            os.kill(os.getpid(), signal.SIGKILL)
        target = os.environ.get(SIGINT_ENV)
        if target and self.records_written >= int(target):
            os.kill(os.getpid(), signal.SIGINT)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def resumable(path: str | Path) -> bool:
        """Whether ``path`` holds a journal worth resuming from.

        A worker can be killed *before* the first fsynced header lands —
        leaving a zero-length file — or mid-header-write, leaving a torn
        first line.  Neither holds any recoverable work, so auto-resume
        callers should treat both as a fresh start instead of erroring
        out and stranding the job file.  Returns ``True`` only when the
        first line parses as a JSON object (header validity itself —
        schema, instance binding — is still the loader's job, so a
        *mismatched* journal keeps failing loudly rather than being
        silently truncated).
        """
        path = Path(path)
        try:
            if not path.exists() or path.stat().st_size == 0:
                return False
            with open(path, encoding="utf-8") as fh:
                first = fh.readline()
        except OSError:
            return False
        if not first.strip():
            return False
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            return False  # torn header: the kill landed mid-write
        return isinstance(header, dict)

    @staticmethod
    def load(path: str | Path) -> tuple[dict[str, object], list[dict[str, object]]]:
        """Read a journal: ``(header, probe_records)``.

        A torn final line — the fsync'd prefix of a record whose write
        was cut by a kill — fails to parse as JSON and is dropped; a
        torn line anywhere *before* the end means the file was edited
        behind the WAL's back and raises
        :class:`CheckpointCorruptError`.
        """
        path = Path(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise CheckpointError(f"{path}: empty checkpoint journal")
        parsed: list[dict[str, object]] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a mid-write kill: drop it
                raise CheckpointCorruptError(
                    f"{path}: unparseable journal line {i + 1} "
                    "(not the final line — the file was modified)"
                ) from None
        if not parsed:
            raise CheckpointError(f"{path}: no parseable journal lines")
        header = parsed[0]
        schema = header.get("schema")
        if schema == SCHEMA_V1:
            # Pre-ladder journal: binary-search semantics, presented as
            # the current schema so resume-time header validation works
            # uniformly (the file itself is left untouched).
            header = {**header, "schema": SCHEMA, "ladder": "binary"}
        elif schema != SCHEMA:
            raise CheckpointMismatchError(
                f"{path}: schema {schema!r} != {SCHEMA!r}"
            )
        return header, parsed[1:]
