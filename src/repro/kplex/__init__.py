"""Classical k-plex domain layer: predicates, exact solvers, heuristics."""

from .bounds import (
    best_upper_bound,
    coloring_bound,
    degeneracy,
    degeneracy_bound,
    trivial_bound,
)
from .enumeration import enumerate_maximal_kplexes, maximum_connected_kplex
from .branch_search import (
    BranchSearchResult,
    BranchStats,
    find_kplex_of_size,
    maximum_kplex,
)
from .heuristics import (
    grasp_kplex,
    greedy_kplex,
    local_search_improve,
    repair_to_kplex,
)
from .naive import (
    count_kplexes_of_size,
    enumerate_kplexes,
    kplexes_of_min_size,
    maximum_kplex_bruteforce,
)
from .relaxations import (
    is_nclan,
    is_nclique,
    is_nclub,
    maximum_nclan_bruteforce,
    maximum_nclub_bruteforce,
)
from .verify import (
    is_kcplex,
    is_kplex,
    kplex_deficiencies,
    max_k_for_subset,
    violating_vertices,
)

__all__ = [
    "BranchSearchResult",
    "BranchStats",
    "best_upper_bound",
    "coloring_bound",
    "count_kplexes_of_size",
    "degeneracy",
    "degeneracy_bound",
    "enumerate_kplexes",
    "enumerate_maximal_kplexes",
    "find_kplex_of_size",
    "grasp_kplex",
    "greedy_kplex",
    "is_kcplex",
    "is_kplex",
    "is_nclan",
    "is_nclique",
    "is_nclub",
    "kplex_deficiencies",
    "kplexes_of_min_size",
    "local_search_improve",
    "max_k_for_subset",
    "maximum_connected_kplex",
    "maximum_kplex",
    "maximum_kplex_bruteforce",
    "maximum_nclan_bruteforce",
    "maximum_nclub_bruteforce",
    "repair_to_kplex",
    "trivial_bound",
    "violating_vertices",
]
