"""k-plex / k-cplex predicates (Definitions 1 and 4 of the paper).

These predicates are the ground truth every solver, oracle, and QUBO
decoder in the library is tested against.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graphs import Graph

__all__ = [
    "is_kplex",
    "is_kcplex",
    "kplex_deficiencies",
    "violating_vertices",
    "max_k_for_subset",
]


def is_kplex(graph: Graph, subset: Iterable[int], k: int) -> bool:
    """True iff ``subset`` is a k-plex of ``graph``.

    Every vertex of the subset must have at least ``|subset| - k``
    neighbours inside the subset.  The empty set is a k-plex by
    convention (it imposes no constraint), matching the behaviour
    needed by binary-search drivers.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    members = frozenset(subset)
    need = len(members) - k
    if need <= 0:
        return True
    mask = graph.subset_to_bitmask(members)
    return all(graph.degree_in_mask(v, mask) >= need for v in members)


def is_kcplex(graph: Graph, subset: Iterable[int], k: int) -> bool:
    """True iff ``subset`` is a k-cplex of ``graph``.

    Every vertex of the subset has at most ``k - 1`` neighbours inside
    the subset.  A set is a k-plex of ``G`` exactly when it is a
    k-cplex of the complement of ``G`` — the equivalence the gate
    oracle and the QUBO are built on.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    members = frozenset(subset)
    mask = graph.subset_to_bitmask(members)
    return all(graph.degree_in_mask(v, mask) <= k - 1 for v in members)


def kplex_deficiencies(graph: Graph, subset: Iterable[int]) -> dict[int, int]:
    """Missing-neighbour count per member: ``|subset| - 1 - internal degree``.

    A subset is a k-plex iff every deficiency is ``<= k - 1``.
    """
    members = frozenset(subset)
    size = len(members)
    return {v: size - 1 - graph.degree_in(v, members) for v in members}


def violating_vertices(graph: Graph, subset: Iterable[int], k: int) -> list[int]:
    """Members whose internal degree is below ``|subset| - k``, sorted."""
    members = frozenset(subset)
    need = len(members) - k
    return sorted(v for v in members if graph.degree_in(v, members) < need)


def max_k_for_subset(graph: Graph, subset: Iterable[int]) -> int:
    """Smallest ``k`` for which ``subset`` is a k-plex.

    Equals ``1 + max deficiency`` (and 1 for sets of size <= 1, which
    are cliques).
    """
    members = frozenset(subset)
    if len(members) <= 1:
        return 1
    return 1 + max(kplex_deficiencies(graph, members).values())
