"""Maximal k-plex enumeration and connected variants.

Community detection — one of the paper's motivating applications —
usually wants *all* the cohesive groups, not just the single largest,
and often requires them to be connected.  This module supplies both:

* :func:`enumerate_maximal_kplexes` — every inclusion-maximal k-plex,
  via the Bron-Kerbosch scheme generalised to hereditary properties
  (candidate / excluded sets with feasibility filtering);
* :func:`maximum_connected_kplex` — the largest k-plex whose induced
  subgraph is connected (for ``k >= 2`` a k-plex may be disconnected,
  e.g. two isolated vertices form a 2-plex).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..graphs import Graph, is_connected
from .branch_search import BranchSearchResult, BranchStats
from .verify import is_kplex

__all__ = ["enumerate_maximal_kplexes", "maximum_connected_kplex"]

_ENUMERATION_VERTEX_LIMIT = 40


def _can_add(graph: Graph, members: set[int], v: int, k: int) -> bool:
    new_size = len(members) + 1
    need = new_size - k
    if need <= 0:
        return True
    nv = graph.neighbors(v)
    if len(nv & members) < need:
        return False
    return all(
        graph.degree_in(u, members) + (1 if u in nv else 0) >= need
        for u in members
    )


def enumerate_maximal_kplexes(
    graph: Graph,
    k: int,
    min_size: int = 1,
    max_results: int | None = None,
) -> Iterator[frozenset[int]]:
    """Yield every inclusion-maximal k-plex of size >= ``min_size``.

    A k-plex is maximal when no vertex can be added without violating
    the property.  Enumeration follows Bron-Kerbosch: recurse over a
    candidate set ``C`` (vertices that can still extend the current
    plex) and an excluded set ``X`` (vertices deliberately branched
    away); a plex is reported when both filtered sets are empty.

    ``max_results`` caps the output (the count can be exponential).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.num_vertices > _ENUMERATION_VERTEX_LIMIT:
        raise ValueError(
            f"enumeration refuses n={graph.num_vertices} > "
            f"{_ENUMERATION_VERTEX_LIMIT}"
        )
    emitted = 0

    def recurse(
        members: set[int], candidates: list[int], excluded: list[int]
    ) -> Iterator[frozenset[int]]:
        nonlocal emitted
        if max_results is not None and emitted >= max_results:
            return
        feasible_c = [v for v in candidates if _can_add(graph, members, v, k)]
        feasible_x = [v for v in excluded if _can_add(graph, members, v, k)]
        if not feasible_c:
            if not feasible_x and len(members) >= min_size:
                emitted += 1
                yield frozenset(members)
            return
        for i, v in enumerate(feasible_c):
            members.add(v)
            yield from recurse(
                members,
                feasible_c[i + 1:],
                feasible_x + feasible_c[:i],
            )
            members.discard(v)
            if max_results is not None and emitted >= max_results:
                return

    order = sorted(graph.vertices, key=graph.degree, reverse=True)
    yield from recurse(set(), order, [])


def maximum_connected_kplex(graph: Graph, k: int) -> BranchSearchResult:
    """The largest k-plex inducing a connected subgraph.

    Branch and bound over (members, candidates) with the same pruning
    as the unconstrained search; incumbents must pass a connectivity
    check.  The unconstrained upper bound stays valid because every
    connected k-plex is a k-plex.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    stats = BranchStats()
    best: frozenset[int] = frozenset()

    def upper_bound(members: set[int], candidates: list[int]) -> int:
        size = len(members)
        bound = size + len(candidates)
        cand = set(candidates)
        for u in members:
            deficiency = size - 1 - graph.degree_in(u, members)
            slack = k - 1 - deficiency
            adjacent = len(graph.neighbors(u) & cand)
            bound = min(bound, size + adjacent + slack)
        return bound

    def extend(members: set[int], candidates: list[int]) -> None:
        nonlocal best
        stats.nodes += 1
        if len(members) > len(best) and (
            len(members) <= 1 or is_connected(graph.induced_subgraph(members))
        ):
            best = frozenset(members)
            stats.best_updates += 1
        if not candidates:
            return
        if upper_bound(members, candidates) <= len(best):
            stats.prunes_bound += 1
            return
        v = candidates[0]
        rest = candidates[1:]
        if _can_add(graph, members, v, k):
            members.add(v)
            feasible = [w for w in rest if _can_add(graph, members, w, k)]
            extend(members, feasible)
            members.discard(v)
        extend(members, rest)

    order = sorted(graph.vertices, key=graph.degree, reverse=True)
    extend(set(), order)
    assert is_kplex(graph, best, k)
    return BranchSearchResult(best, stats)
