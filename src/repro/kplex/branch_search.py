"""Branch-and-search exact solver — the classical "BS" baseline.

The paper benchmarks qMKP against the branch-and-search algorithm of
Xiao et al. (2017), the best-known classical exact method (complexity
``O*(c_k^n)`` with ``c_k < 2``).  This module implements a
branch-and-bound of the same family: incremental construction over a
candidate set, degree-based feasibility pruning, a support-based upper
bound, and an optional greedy warm start.  Since k-plexes are
hereditary (every subset of a k-plex is a k-plex), incremental
construction is sound.

Besides the solution, the solver reports the number of search-tree
nodes it expanded.  The cost model in :mod:`repro.analysis.runtime`
converts node counts into comparable "work" so quantum/classical tables
can be regenerated without the authors' hardware.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from ..graphs import Graph
from .heuristics import greedy_kplex
from .verify import is_kplex

__all__ = ["BranchStats", "BranchSearchResult", "maximum_kplex", "find_kplex_of_size"]

IncumbentCallback = Callable[[frozenset[int], int], None]


@dataclass
class BranchStats:
    """Search-effort counters filled in during a run."""

    nodes: int = 0
    prunes_bound: int = 0
    prunes_infeasible: int = 0
    best_updates: int = 0
    timed_out: bool = False


@dataclass(frozen=True)
class BranchSearchResult:
    """An exact solver outcome: the plex plus search statistics."""

    subset: frozenset[int]
    stats: BranchStats = field(default_factory=BranchStats)

    @property
    def size(self) -> int:
        return len(self.subset)


class _Searcher:
    """Shared machinery for the optimisation and decision variants."""

    def __init__(
        self,
        graph: Graph,
        k: int,
        target: int | None = None,
        time_limit_s: float | None = None,
        on_incumbent: IncumbentCallback | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = k
        self.target = target  # decision mode: stop at this size
        self.stats = BranchStats()
        self.best: frozenset[int] = frozenset()
        self.on_incumbent = on_incumbent
        self._deadline = (
            None if time_limit_s is None else time.monotonic() + time_limit_s
        )

    # -- feasibility -----------------------------------------------------
    def _can_add(self, v: int, members: set[int]) -> bool:
        """Would ``members | {v}`` still be a k-plex?"""
        new_size = len(members) + 1
        need = new_size - self.k
        if need <= 0:
            return True
        nv = self.graph.neighbors(v)
        if len(nv & members) < need:
            return False
        for u in members:
            du = self.graph.degree_in(u, members) + (1 if u in nv else 0)
            if du < need:
                return False
        return True

    def _upper_bound(self, members: set[int], candidates: list[int]) -> int:
        """Cheap optimistic bound on the best extension of ``members``.

        Every member ``u`` can tolerate only ``k - 1 - deficiency(u)``
        more non-neighbours, so the final size is at most
        ``|members| + adj_candidates(u) + slack(u)`` for each ``u``.
        """
        size = len(members)
        bound = size + len(candidates)
        cand = set(candidates)
        for u in members:
            deficiency = size - 1 - self.graph.degree_in(u, members)
            slack = self.k - 1 - deficiency
            adjacent = len(self.graph.neighbors(u) & cand)
            bound = min(bound, size + adjacent + slack)
        return bound

    # -- search ----------------------------------------------------------
    def run(self) -> None:
        order = sorted(self.graph.vertices, key=self.graph.degree, reverse=True)
        self._extend(set(), order)

    def _goal_reached(self) -> bool:
        if self.target is not None and len(self.best) >= self.target:
            return True
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.stats.timed_out = True
            return True
        return False

    def _extend(self, members: set[int], candidates: list[int]) -> None:
        if self._goal_reached():
            return
        self.stats.nodes += 1
        if len(members) > len(self.best):
            self.best = frozenset(members)
            self.stats.best_updates += 1
            if self.on_incumbent is not None:
                self.on_incumbent(self.best, self.stats.nodes)
            if self._goal_reached():
                return
        if not candidates:
            return
        if self._upper_bound(members, candidates) <= len(self.best):
            self.stats.prunes_bound += 1
            return
        v = candidates[0]
        rest = candidates[1:]
        # Branch 1: include v (if feasible).
        if self._can_add(v, members):
            members.add(v)
            feasible_rest = [w for w in rest if self._can_add(w, members)]
            if len(feasible_rest) < len(rest):
                self.stats.prunes_infeasible += 1
            self._extend(members, feasible_rest)
            members.discard(v)
        # Branch 2: exclude v.
        self._extend(members, rest)


def maximum_kplex(
    graph: Graph,
    k: int,
    warm_start: bool = True,
    time_limit_s: float | None = None,
    on_incumbent: IncumbentCallback | None = None,
    initial_incumbent: frozenset[int] | None = None,
) -> BranchSearchResult:
    """Exact maximum k-plex via branch-and-search.

    Parameters
    ----------
    graph, k:
        The MKP instance.
    warm_start:
        Seed the incumbent with :func:`repro.kplex.heuristics.greedy_kplex`
        so bound pruning bites immediately.
    initial_incumbent:
        A caller-supplied feasible k-plex (re-verified here) adopted as
        the starting incumbent when it beats the greedy seed — the
        incremental solver hands the previous step's optimum through
        this so the bound pruning starts at yesterday's answer.  Raises
        ``ValueError`` if the set is not a k-plex of ``graph``.
    time_limit_s:
        Optional wall-clock budget; on expiry the best incumbent is
        returned with ``stats.timed_out`` set (optimality not proven).
    on_incumbent:
        Called as ``on_incumbent(subset, nodes_so_far)`` whenever the
        incumbent improves — branch-and-bound is progressive too, and
        this hook makes its anytime curve observable (see
        :mod:`repro.analysis.progression`).

    Returns
    -------
    BranchSearchResult
        The maximum k-plex (or best incumbent) and search statistics.
    """
    searcher = _Searcher(
        graph, k, time_limit_s=time_limit_s, on_incumbent=on_incumbent
    )
    if warm_start and graph.num_vertices:
        seed = greedy_kplex(graph, k)
        if is_kplex(graph, seed, k):
            searcher.best = frozenset(seed)
            if on_incumbent is not None:
                on_incumbent(searcher.best, 0)
    if initial_incumbent is not None:
        incumbent = frozenset(initial_incumbent)
        if incumbent and not is_kplex(graph, incumbent, k):
            raise ValueError(
                f"initial_incumbent of size {len(incumbent)} is not a "
                f"k-plex (k={k})"
            )
        if len(incumbent) > len(searcher.best):
            searcher.best = incumbent
            if on_incumbent is not None:
                on_incumbent(searcher.best, 0)
    searcher.run()
    return BranchSearchResult(searcher.best, searcher.stats)


def find_kplex_of_size(graph: Graph, k: int, size: int) -> BranchSearchResult:
    """Decision variant: find any k-plex with at least ``size`` vertices.

    Returns a result whose subset is empty when no such plex exists —
    the classical counterpart of qTKP, used to validate its answers.
    """
    if size <= 0:
        return BranchSearchResult(frozenset())
    searcher = _Searcher(graph, k, target=size)
    searcher.run()
    if len(searcher.best) >= size:
        return BranchSearchResult(searcher.best, searcher.stats)
    return BranchSearchResult(frozenset(), searcher.stats)
