"""Other clique relaxations: n-clan and n-club.

The adaptability discussion of the paper argues the qTKP oracle design
(count + compare circuits) carries over to distance-based relaxations.
This module supplies the classical predicates and brute-force optima for
those models so the quantum adapters (and their tests) have a ground
truth:

* an **n-clique** is a set whose members are pairwise within distance
  ``n`` *in the whole graph*;
* an **n-clan** is an n-clique whose induced subgraph also has diameter
  ``<= n``;
* an **n-club** is a set whose induced subgraph has diameter ``<= n``
  (no whole-graph condition).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graphs import Graph, bfs_distances, subset_diameter

__all__ = [
    "is_nclique",
    "is_nclan",
    "is_nclub",
    "maximum_nclan_bruteforce",
    "maximum_nclub_bruteforce",
]

_BRUTE_FORCE_LIMIT = 18


def is_nclique(graph: Graph, subset: Iterable[int], n: int) -> bool:
    """True iff all member pairs are within distance ``n`` in ``graph``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    members = sorted(set(subset))
    for i, u in enumerate(members):
        dist = bfs_distances(graph, u)
        for v in members[i + 1:]:
            if dist.get(v, n + 1) > n:
                return False
    return True


def is_nclan(graph: Graph, subset: Iterable[int], n: int) -> bool:
    """True iff ``subset`` is an n-clique whose induced diameter is <= n."""
    members = frozenset(subset)
    if not is_nclique(graph, members, n):
        return False
    return is_nclub(graph, members, n)


def is_nclub(graph: Graph, subset: Iterable[int], n: int) -> bool:
    """True iff the induced subgraph has diameter <= ``n``.

    Sets of size <= 1 qualify trivially; disconnected induced subgraphs
    do not.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    members = frozenset(subset)
    if len(members) <= 1:
        return True
    diam = subset_diameter(graph, members)
    return diam is not None and diam <= n


def _bruteforce_max(graph: Graph, predicate) -> frozenset[int]:
    if graph.num_vertices > _BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"brute force refuses n={graph.num_vertices} > {_BRUTE_FORCE_LIMIT}"
        )
    best: frozenset[int] = frozenset()
    for mask in range(1 << graph.num_vertices):
        subset = graph.bitmask_to_subset(mask)
        if len(subset) > len(best) and predicate(subset):
            best = subset
    return best


def maximum_nclan_bruteforce(graph: Graph, n: int) -> frozenset[int]:
    """Maximum n-clan by exhaustive enumeration (small graphs only)."""
    return _bruteforce_max(graph, lambda s: is_nclan(graph, s, n))


def maximum_nclub_bruteforce(graph: Graph, n: int) -> frozenset[int]:
    """Maximum n-club by exhaustive enumeration (small graphs only)."""
    return _bruteforce_max(graph, lambda s: is_nclub(graph, s, n))
