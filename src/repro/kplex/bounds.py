"""Upper bounds on the maximum k-plex size.

The paper notes that upper-bounding techniques (colouring-based, Zhou et
al. 2021; partition-based, Jiang et al. 2021) can be integrated into the
binary search of qMKP to shrink the search interval.  These are
polynomial-time bounds:

* ``degeneracy_bound`` — a k-plex of size ``s`` forces a vertex of
  degree >= ``s - k`` in every subgraph it touches, so
  ``s <= degeneracy + k``.
* ``coloring_bound`` — a greedy proper colouring with ``c`` colours
  bounds the clique number by ``c``; a k-plex can take at most ``k``
  vertices of each colour class beyond what a clique could, yielding
  ``s <= k * c`` (each colour class is an independent set, and an
  independent set inside a k-plex has size <= k).
* ``trivial_bound`` — ``s <= n``.
"""

from __future__ import annotations

from ..graphs import Graph

__all__ = ["trivial_bound", "degeneracy", "degeneracy_bound", "coloring_bound", "best_upper_bound"]


def trivial_bound(graph: Graph, k: int) -> int:
    """The vertex count, valid for any k."""
    return graph.num_vertices


def degeneracy(graph: Graph) -> int:
    """Graph degeneracy via the standard peeling order."""
    alive = set(graph.vertices)
    degree = {v: graph.degree(v) for v in alive}
    best = 0
    while alive:
        v = min(alive, key=lambda u: degree[u])
        best = max(best, degree[v])
        alive.discard(v)
        for w in graph.neighbors(v):
            if w in alive:
                degree[w] -= 1
    return best


def degeneracy_bound(graph: Graph, k: int) -> int:
    """``degeneracy + k`` bounds the maximum k-plex size.

    Inside a k-plex ``P``, every vertex has internal degree
    ``>= |P| - k``, so the subgraph induced by ``P`` has min degree
    ``>= |P| - k``; the degeneracy of the whole graph is at least that.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.num_vertices == 0:
        return 0
    return min(graph.num_vertices, degeneracy(graph) + k)


def coloring_bound(graph: Graph, k: int) -> int:
    """``k * chi_greedy`` bounds the maximum k-plex size.

    A set of mutually non-adjacent vertices inside a k-plex has size at
    most ``k`` (each misses all the others, and may miss at most
    ``k - 1``).  A proper colouring partitions any k-plex into
    independent sets, one per colour, so the plex has at most ``k``
    vertices per colour used.  Greedy colouring in descending-degree
    order supplies the colour count.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.num_vertices == 0:
        return 0
    order = sorted(graph.vertices, key=graph.degree, reverse=True)
    color: dict[int, int] = {}
    for v in order:
        used = {color[w] for w in graph.neighbors(v) if w in color}
        c = 0
        while c in used:
            c += 1
        color[v] = c
    num_colors = max(color.values()) + 1
    return min(graph.num_vertices, k * num_colors)


def best_upper_bound(graph: Graph, k: int) -> int:
    """The tightest of all implemented bounds."""
    return min(
        trivial_bound(graph, k),
        degeneracy_bound(graph, k),
        coloring_bound(graph, k),
    )
