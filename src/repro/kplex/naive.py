"""Naive exact MKP solvers: the O*(2^n) baselines.

The introduction of the paper uses exhaustive subset enumeration as the
trivial baseline that everything else improves on.  These solvers are
only practical to ~n = 22 but they are simple enough to trust, so the
test suite uses them as ground truth for every other solver.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..graphs import Graph
from .verify import is_kplex

__all__ = [
    "enumerate_kplexes",
    "maximum_kplex_bruteforce",
    "count_kplexes_of_size",
    "kplexes_of_min_size",
]

_BRUTE_FORCE_LIMIT = 26


def _check_size(graph: Graph) -> None:
    if graph.num_vertices > _BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"brute force refuses n={graph.num_vertices} > {_BRUTE_FORCE_LIMIT}; "
            "use branch_search.maximum_kplex instead"
        )


def enumerate_kplexes(graph: Graph, k: int) -> Iterator[frozenset[int]]:
    """Yield every k-plex of ``graph`` (including the empty set).

    Subsets are produced in bitmask order, i.e. the same order the
    Grover engine indexes its basis states, which makes cross-checking
    oracles against this enumeration straightforward.
    """
    _check_size(graph)
    n = graph.num_vertices
    for mask in range(1 << n):
        subset = graph.bitmask_to_subset(mask)
        if is_kplex(graph, subset, k):
            yield subset


def maximum_kplex_bruteforce(graph: Graph, k: int) -> frozenset[int]:
    """The maximum k-plex by exhaustive enumeration.

    Ties are broken towards the smallest bitmask, making the result
    deterministic.
    """
    _check_size(graph)
    best: frozenset[int] = frozenset()
    for subset in enumerate_kplexes(graph, k):
        if len(subset) > len(best):
            best = subset
    return best


def count_kplexes_of_size(graph: Graph, k: int, size: int) -> int:
    """Number of k-plexes with exactly ``size`` vertices.

    This is the quantity ``M`` that fixes Grover's iteration count in
    qTKP (with the >= T variant, see :func:`kplexes_of_min_size`).
    """
    return sum(1 for p in enumerate_kplexes(graph, k) if len(p) == size)


def kplexes_of_min_size(graph: Graph, k: int, min_size: int) -> list[frozenset[int]]:
    """All k-plexes with at least ``min_size`` vertices."""
    return [p for p in enumerate_kplexes(graph, k) if len(p) >= min_size]
