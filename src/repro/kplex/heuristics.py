"""Heuristic k-plex construction: greedy, GRASP, and local search.

The related-work section of the paper surveys GRASP/tabu/local-search
approximations for MKP.  The library uses these three ways:

* the exact branch-and-search warm-starts from :func:`greedy_kplex`;
* the annealing hybrid solver polishes samples with
  :func:`local_search_improve`;
* the examples demonstrate heuristic-vs-exact-vs-quantum trade-offs.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from ..graphs import Graph
from .verify import is_kplex

__all__ = [
    "greedy_kplex",
    "grasp_kplex",
    "local_search_improve",
    "repair_to_kplex",
]


def _addable(graph: Graph, members: set[int], v: int, k: int) -> bool:
    """Would ``members | {v}`` remain a k-plex?"""
    new_size = len(members) + 1
    need = new_size - k
    if need <= 0:
        return True
    nv = graph.neighbors(v)
    if len(nv & members) < need:
        return False
    return all(
        graph.degree_in(u, members) + (1 if u in nv else 0) >= need
        for u in members
    )


def greedy_kplex(graph: Graph, k: int, start: int | None = None) -> frozenset[int]:
    """Degree-greedy construction of a maximal k-plex.

    Starts from ``start`` (or the max-degree vertex) and repeatedly adds
    the feasible candidate with the most neighbours inside the current
    set, breaking ties towards higher global degree then lower id.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.num_vertices == 0:
        return frozenset()
    if start is None:
        start = max(graph.vertices, key=lambda v: (graph.degree(v), -v))
    members = {start}
    while True:
        candidates = [
            v for v in graph.vertices
            if v not in members and _addable(graph, members, v, k)
        ]
        if not candidates:
            return frozenset(members)
        best = max(
            candidates,
            key=lambda v: (graph.degree_in(v, members), graph.degree(v), -v),
        )
        members.add(best)


def grasp_kplex(
    graph: Graph,
    k: int,
    iterations: int = 20,
    alpha: float = 0.3,
    seed: int | None = None,
) -> frozenset[int]:
    """GRASP: randomised greedy restarts followed by local search.

    Each iteration builds a solution with a restricted candidate list
    (top ``alpha`` fraction by internal degree), improves it with
    :func:`local_search_improve`, and keeps the best overall.
    """
    if not (0.0 <= alpha <= 1.0):
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    rng = random.Random(seed)
    best: frozenset[int] = frozenset()
    for _ in range(iterations):
        candidate = _randomized_greedy(graph, k, alpha, rng)
        candidate = local_search_improve(graph, candidate, k)
        if len(candidate) > len(best):
            best = candidate
    return best


def _randomized_greedy(
    graph: Graph, k: int, alpha: float, rng: random.Random
) -> frozenset[int]:
    if graph.num_vertices == 0:
        return frozenset()
    members = {rng.randrange(graph.num_vertices)}
    while True:
        candidates = [
            v for v in graph.vertices
            if v not in members and _addable(graph, members, v, k)
        ]
        if not candidates:
            return frozenset(members)
        candidates.sort(key=lambda v: graph.degree_in(v, members), reverse=True)
        rcl_len = max(1, int(len(candidates) * alpha))
        members.add(rng.choice(candidates[:rcl_len]))


def local_search_improve(
    graph: Graph, subset: Iterable[int], k: int
) -> frozenset[int]:
    """(1, 1)-swap + add local search starting from a k-plex.

    Repeatedly: add any feasible vertex; otherwise try swapping one
    member out for two candidates in.  Returns a maximal k-plex at
    least as large as the input.  The input must itself be a k-plex.
    """
    members = set(subset)
    if not is_kplex(graph, members, k):
        raise ValueError("local search requires a feasible starting k-plex")
    improved = True
    while improved:
        improved = False
        # Additions first.
        for v in graph.vertices:
            if v not in members and _addable(graph, members, v, k):
                members.add(v)
                improved = True
        if improved:
            continue
        # One-out, two-in swaps.
        for out in sorted(members):
            trial = set(members)
            trial.discard(out)
            added = []
            for v in graph.vertices:
                if v not in trial and v != out and _addable(graph, trial, v, k):
                    trial.add(v)
                    added.append(v)
                    if len(added) == 2:
                        break
            if len(added) >= 2:
                members = trial
                improved = True
                break
    return frozenset(members)


def repair_to_kplex(graph: Graph, subset: Iterable[int], k: int) -> frozenset[int]:
    """Shrink an arbitrary vertex set into a k-plex.

    Greedily removes the member with the largest deficiency until the
    k-plex condition holds.  Used to decode infeasible annealer samples
    into feasible solutions (the paper's qaMKP reports sizes of the
    decoded plexes).
    """
    members = set(subset)
    while members and not is_kplex(graph, members, k):
        need = len(members) - k
        worst = min(
            members,
            key=lambda v: (graph.degree_in(v, members), -v),
        )
        if graph.degree_in(worst, members) >= need:
            break  # already feasible
        members.discard(worst)
    return frozenset(members)
