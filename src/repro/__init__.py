"""repro — quantum algorithms for the Maximum k-Plex Problem.

A full reproduction of "Gate-Based and Annealing-Based Quantum
Algorithms for the Maximum K-Plex Problem" (Li, Cong, Zhou; ICDE 2024),
including every substrate the paper runs on: a gate-model circuit
simulator, a Grover engine, a simulated quantum annealer with minor
embedding, a MILP solver, and the classical k-plex toolbox.

Quick start::

    from repro import Graph, qmkp, qamkp

    g = Graph(6, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 3), (3, 4), (4, 5)])
    result = qmkp(g, k=2)            # gate-based maximum k-plex
    print(sorted(result.subset))      # [0, 1, 3, 4]

    annealed = qamkp(g, k=2, runtime_us=100.0, solver="sa", seed=7)
    print(sorted(annealed.repaired))

Package map:

* :mod:`repro.graphs`    — graph type, generators, IO, reductions
* :mod:`repro.kplex`     — classical predicates, exact solvers, heuristics
* :mod:`repro.quantum`   — circuit IR, simulators, arithmetic circuits
* :mod:`repro.grover`    — diffusion, schedules, Grover simulation
* :mod:`repro.core`      — the paper's qTKP / qMKP / qaMKP and the QUBO
* :mod:`repro.annealing` — QUBO models, SA / QPU / hybrid samplers
* :mod:`repro.milp`      — linearisation + HiGHS / branch-and-bound
* :mod:`repro.datasets`  — the paper's pinned evaluation instances
* :mod:`repro.analysis`  — error & runtime models, table rendering
"""

from .core import (
    KCplexOracle,
    MkpQubo,
    QAMKPResult,
    QMKPResult,
    QTKPResult,
    build_mkp_qubo,
    cost_versus_runtime,
    qamkp,
    qmkp,
    qtkp,
)
from .graphs import Graph
from .kplex import is_kcplex, is_kplex, maximum_kplex

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "KCplexOracle",
    "MkpQubo",
    "QAMKPResult",
    "QMKPResult",
    "QTKPResult",
    "__version__",
    "build_mkp_qubo",
    "cost_versus_runtime",
    "is_kcplex",
    "is_kplex",
    "maximum_kplex",
    "qamkp",
    "qmkp",
    "qtkp",
]
