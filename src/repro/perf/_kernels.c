/* Compiled kernels behind repro.perf.kernels' "cext" backend.
 *
 * Three hot loops, each a line-for-line transcription of the NumPy
 * reference in repro/perf/bitparallel.py and repro/perf/anneal.py so the
 * produced decisions are identical:
 *
 *   - enumerate_chunk: the popcount/SWAR k-cplex mask sweep.  Pure
 *     integer arithmetic, bit-for-bit equal to the reference.
 *   - sa_sweep_chunk:  one chunk of the Gauss-Seidel Metropolis sweep —
 *     bulk field build (same nnz accumulation order as SciPy's
 *     csr @ dense product) + intra-chunk forward scatter.  Float ops
 *     replay the reference's exact sequence; the only divergence window
 *     is libm's exp() vs NumPy's (<= 1 ulp), which can flip an
 *     acceptance only when a uniform draw lands in that 2^-52 gap.
 *   - tabu_descend: the batched single-flip tabu loop.  First-minimum
 *     argmin tie-break, 1e-12 aspiration slack, identical float
 *     evaluation order — exactly reproducible (no transcendentals).
 *
 * Compiled on demand by repro/perf/cext.py with the system C compiler;
 * no Python.h dependency (plain shared library driven through ctypes).
 */

#include <stddef.h>
#include <stdint.h>
#include <math.h>

#if defined(__GNUC__) || defined(__clang__)
#define POPCOUNT64(x) __builtin_popcountll(x)
#else
static int POPCOUNT64(uint64_t x) {
    x -= (x >> 1) & 0x5555555555555555ULL;
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    return (int)((x * 0x0101010101010101ULL) >> 56);
}
#endif

/* Masks in [start, stop) whose selected vertices all have
 * popcount(mask & adj[v]) <= limit.  ``adj``/``nv`` hold only the
 * pre-filtered vertices (degree > limit), matching the reference's
 * skip of always-passing vertices; ``verts[i]`` is vertex i's bit
 * position.  Returns the number of surviving masks; out_masks /
 * out_sizes must have room for stop - start entries. */
int64_t enumerate_chunk(
    const uint64_t *adj, const int64_t *verts, int64_t nv,
    int64_t limit, uint64_t start, uint64_t stop,
    int64_t *out_masks, int64_t *out_sizes)
{
    int64_t count = 0;
    for (uint64_t m = start; m < stop; ++m) {
        int keep = 1;
        for (int64_t i = 0; i < nv; ++i) {
            if ((m >> verts[i]) & 1ULL) {
                if (POPCOUNT64(m & adj[i]) > limit) { keep = 0; break; }
            }
        }
        if (keep) {
            out_masks[count] = (int64_t)m;
            out_sizes[count] = POPCOUNT64(m);
            ++count;
        }
    }
    return count;
}

/* One chunk [start, end) of a Metropolis sweep over the transposed
 * (n, reads) ±1 replica matrix.  fields_scratch has room for
 * (end - start) * reads doubles.  Returns accepted flips. */
int64_t sa_sweep_chunk(
    int64_t reads, int64_t start, int64_t end,
    const int64_t *restrict sub_indptr, const int64_t *restrict sub_indices,
    const double *restrict sub_data,
    const double *restrict h_c, const double *restrict rs_c,
    const int64_t *restrict iptr, const int64_t *restrict icols,
    const double *restrict ivals,
    double *restrict spins_t, const double *restrict uniforms,
    double neg_beta, double *restrict fields_scratch)
{
    int64_t nc = end - start;
    /* Bulk field build: jt = J_block @ spins_t accumulated per output
     * cell in nnz order (SciPy's csr_matvecs order), then the
     * reference's exact (rs - jt) * 0.5 + h op sequence.  The restrict
     * qualifiers let the compiler vectorize the += over replicas (each
     * r accumulates independently, so lane order never changes the
     * float result). */
    for (int64_t li = 0; li < nc; ++li) {
        double *restrict frow = fields_scratch + li * reads;
        for (int64_t r = 0; r < reads; ++r) frow[r] = 0.0;
        for (int64_t jj = sub_indptr[li]; jj < sub_indptr[li + 1]; ++jj) {
            const double a = sub_data[jj];
            const double *restrict srow = spins_t + sub_indices[jj] * reads;
            for (int64_t r = 0; r < reads; ++r) frow[r] += a * srow[r];
        }
        const double rs = rs_c[li];
        const double hh = h_c[li];
        for (int64_t r = 0; r < reads; ++r)
            frow[r] = (rs - frow[r]) * 0.5 + hh;
    }
    int64_t flips = 0;
    for (int64_t li = 0; li < nc; ++li) {
        double *t = spins_t + (start + li) * reads;
        const double *u = uniforms + (start + li) * reads;
        const int64_t lo = iptr[li], hi = iptr[li + 1];
        for (int64_t r = 0; r < reads; ++r) {
            double d = t[r] * fields_scratch[li * reads + r];
            int accept;
            if (d <= 0.0) {
                /* clip(d, 0, 700) == 0, exp(0) == 1.0 exactly, and
                 * uniforms live in [0, 1): always accepted. */
                accept = 1;
            } else {
                if (d > 700.0) d = 700.0;
                accept = u[r] < exp(d * neg_beta);
            }
            if (accept) {
                ++flips;
                const double tr = t[r];
                for (int64_t jj = lo; jj < hi; ++jj)
                    fields_scratch[icols[jj] * reads + r] += ivals[jj] * tr;
                t[r] = -tr;
            }
        }
    }
    return flips;
}

/* Whole-plan Metropolis sweep: iterates every chunk of a packed sweep
 * plan in one call, so the per-sweep Python cost is a single ctypes
 * dispatch instead of one per chunk.  ``bounds`` holds the nchunks + 1
 * chunk boundaries; the flat arrays are the per-chunk plan slices
 * concatenated, with ``*_off`` giving each chunk's base offset.
 * fields_scratch needs room for the widest chunk. */
int64_t sa_sweep_plan(
    int64_t reads, int64_t nchunks,
    const int64_t *restrict bounds,
    const int64_t *restrict ip_flat, const int64_t *restrict ip_off,
    const int64_t *restrict nz_cols, const double *restrict nz_vals,
    const int64_t *restrict nz_off,
    const double *restrict h, const double *restrict rs,
    const int64_t *restrict sp_ptr_flat, const int64_t *restrict sp_ptr_off,
    const int64_t *restrict sp_cols, const double *restrict sp_vals,
    const int64_t *restrict sp_nz_off,
    double *restrict spins_t, const double *restrict uniforms,
    double neg_beta, double *restrict fields_scratch)
{
    int64_t flips = 0;
    for (int64_t c = 0; c < nchunks; ++c) {
        flips += sa_sweep_chunk(
            reads, bounds[c], bounds[c + 1],
            ip_flat + ip_off[c],
            nz_cols + nz_off[c], nz_vals + nz_off[c],
            h + bounds[c], rs + bounds[c],
            sp_ptr_flat + sp_ptr_off[c],
            sp_cols + sp_nz_off[c], sp_vals + sp_nz_off[c],
            spins_t, uniforms, neg_beta, fields_scratch);
    }
    return flips;
}

/* Batched single-flip tabu descent over (R, n) 0/1 states.  x, energy
 * are advanced in place; best_x / best_energy must enter as copies of
 * x / energy.  delta and tabu_until are (R, n) scratch (contents
 * ignored on entry).  record (iterations * R entries) receives the
 * chosen variable per replica per step when non-NULL. */
void tabu_descend(
    int64_t R, int64_t n,
    const int64_t *indptr, const int64_t *indices, const double *data,
    const double *h,
    int8_t *x, double *energy,
    int64_t iterations, int64_t tenure,
    int64_t *record,
    int8_t *best_x, double *best_energy,
    double *delta, int64_t *tabu_until)
{
    /* Delta table init: fields[j] = h[j] + sum_nnz data * x[col]
     * (nnz accumulation order = SciPy csr @ dense), then
     * delta = (1 - 2x) * fields. */
    for (int64_t r = 0; r < R; ++r) {
        const int8_t *xr = x + r * n;
        double *dr = delta + r * n;
        for (int64_t j = 0; j < n; ++j) {
            double f = 0.0;
            for (int64_t jj = indptr[j]; jj < indptr[j + 1]; ++jj)
                f += data[jj] * (double)xr[indices[jj]];
            f += h[j];
            dr[j] = (1.0 - 2.0 * (double)xr[j]) * f;
        }
        for (int64_t j = 0; j < n; ++j) tabu_until[r * n + j] = 0;
    }
    for (int64_t step = 1; step <= iterations; ++step) {
        for (int64_t r = 0; r < R; ++r) {
            int8_t *xr = x + r * n;
            double *dr = delta + r * n;
            int64_t *tr = tabu_until + r * n;
            const double aspiration = best_energy[r] - 1e-12;
            /* First-minimum argmin over allowed moves; when every move
             * is tabu without aspiration the whole row is freed. */
            int64_t chosen = -1;
            double best_score = 0.0;
            for (int64_t j = 0; j < n; ++j) {
                if (tr[j] < step || energy[r] + dr[j] < aspiration) {
                    if (chosen < 0 || dr[j] < best_score) {
                        chosen = j;
                        best_score = dr[j];
                    }
                }
            }
            if (chosen < 0) {
                chosen = 0;
                best_score = dr[0];
                for (int64_t j = 1; j < n; ++j) {
                    if (dr[j] < best_score) {
                        chosen = j;
                        best_score = dr[j];
                    }
                }
            }
            if (record != NULL)
                record[(step - 1) * R + r] = chosen;
            const double sign = 1.0 - 2.0 * (double)xr[chosen];
            xr[chosen] ^= 1;
            const double moved = dr[chosen];
            energy[r] += moved;
            dr[chosen] = -moved;
            for (int64_t jj = indptr[chosen]; jj < indptr[chosen + 1]; ++jj) {
                const int64_t col = indices[jj];
                dr[col] += ((1.0 - 2.0 * (double)xr[col]) * data[jj]) * sign;
            }
            tr[chosen] = step + tenure;
            if (energy[r] < best_energy[r] - 1e-12) {
                best_energy[r] = energy[r];
                for (int64_t j = 0; j < n; ++j)
                    best_x[r * n + j] = xr[j];
            }
        }
    }
}
