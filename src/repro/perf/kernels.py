"""Pluggable compiled-kernel tier for the perf engine's hot loops.

Three inner loops dominate the pipeline's classical runtime — the
bit-parallel mask enumeration (:func:`repro.perf.bitparallel`'s chunk
sweep), the CSR Metropolis sweep, and the batched tabu flip loop
(:mod:`repro.perf.anneal`).  Each has exactly one reference
implementation (pure NumPy, byte-identical to the seed) and up to two
compiled twins behind a common :class:`KernelBackend` interface:

* ``numpy`` — the reference.  Always available; selecting it (or having
  no compiler/JIT available at all) reproduces seed-era results
  bit-for-bit.
* ``numba`` — ``@njit`` twins (:mod:`repro.perf.jit`), used when the
  optional ``numba`` package is importable.  Never a hard dependency.
* ``cext`` — a C translation (:mod:`repro.perf.cext`) compiled on
  demand from the packaged ``_kernels.c`` with the system C compiler
  and driven through ``ctypes``; cached as a shared library per source
  digest.

Selection is by name — the ``REPRO_KERNEL`` environment variable, the
CLI's ``--kernel`` flag, or an explicit ``kernel=`` argument — with
``auto`` picking the fastest available tier (numba, then cext, then
numpy).  Requesting a compiled backend that is unavailable falls back
to NumPy *silently*: the compiled tiers are accelerators, never
correctness requirements.  Every compiled backend self-validates on
first load (a fixed probe instance is run through both it and the
reference; any mismatch disqualifies the backend for the process), so
a miscompiled library degrades to the reference instead of corrupting
results.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "KernelBackend",
    "KernelUnavailable",
    "available_backends",
    "pack_sweep_plan",
    "resolve",
]

#: Resolution order for ``auto``.
_AUTO_ORDER = ("numba", "cext", "numpy")

#: Recognised backend names (``auto`` resolves to one of these).
KERNEL_NAMES = ("numpy", "numba", "cext")


class KernelUnavailable(RuntimeError):
    """Raised by a backend factory when its toolchain is missing/broken."""


class KernelBackend:
    """Interface every kernel tier implements.

    All three entry points take and return exactly what the NumPy
    reference functions do, and must produce byte-identical integer
    decisions (masks, spin signs, chosen flips); float outputs are
    produced by the same operation sequences so they agree bitwise on
    the model classes the equivalence suite pins (the lone caveat is
    the Metropolis ``exp`` — see :mod:`repro.perf.cext`).
    """

    name: str = "?"

    def enumerate_chunk(
        self, adj_masks, limit: int, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def sa_sweep(
        self, plan: list, spins_t: np.ndarray, beta: float, uniforms: np.ndarray
    ) -> int:
        raise NotImplementedError

    def tabu_descend(
        self,
        h: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        x: np.ndarray,
        energies: np.ndarray,
        iterations: int,
        tenure: int,
        record_flips: list | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class PackedPlan:
    """A sweep plan flattened for single-call native dispatch.

    One contiguous array per plan field (per-chunk slices concatenated,
    with per-chunk base offsets), so a compiled backend walks every
    chunk of a sweep inside one native call instead of paying a
    Python/ctypes round trip per chunk.
    """

    __slots__ = (
        "nchunks", "bounds", "ip_flat", "ip_off", "nz_cols", "nz_vals",
        "nz_off", "h", "rs", "sp_ptr_flat", "sp_ptr_off", "sp_cols",
        "sp_vals", "sp_nz_off", "max_chunk",
    )


def pack_sweep_plan(plan) -> PackedPlan | None:
    """Flatten ``plan`` (see :func:`repro.perf.anneal.build_sweep_plan`)
    into a :class:`PackedPlan`, memoized on the plan when it is a
    :class:`~repro.perf.anneal.SweepPlan`.

    Returns None for plans whose chunks do not tile ``[0, n)``
    contiguously (never produced by ``build_sweep_plan``; a hand-built
    irregular plan keeps the per-chunk path).
    """
    cached = getattr(plan, "kernel_pack", None)
    if cached is not None:
        return cached
    if not plan:
        return None
    if plan[0][0] != 0 or any(
        plan[c][1] != plan[c + 1][0] for c in range(len(plan) - 1)
    ):
        return None
    pack = PackedPlan()
    pack.nchunks = len(plan)
    bounds = [p[0] for p in plan] + [plan[-1][1]]
    pack.bounds = np.asarray(bounds, dtype=np.int64)
    ip_parts, nz_cols, nz_vals = [], [], []
    sp_ptrs, sp_cols, sp_vals = [], [], []
    ip_off, nz_off, sp_ptr_off, sp_nz_off = [], [], [], []
    h_parts, rs_parts = [], []
    for (
        _start, _end, _jc, sub_indptr, sub_indices, sub_data,
        h_c, rs_c, iptr, icols, ivals,
    ) in plan:
        ip_off.append(sum(p.size for p in ip_parts))
        nz_off.append(sum(p.size for p in nz_cols))
        sp_ptr_off.append(sum(p.size for p in sp_ptrs))
        sp_nz_off.append(sum(p.size for p in sp_cols))
        ip_parts.append(np.ascontiguousarray(sub_indptr, dtype=np.int64))
        nz_cols.append(np.ascontiguousarray(sub_indices, dtype=np.int64))
        nz_vals.append(np.ascontiguousarray(sub_data, dtype=np.float64))
        sp_ptrs.append(np.asarray(iptr, dtype=np.int64))
        sp_cols.append(np.ascontiguousarray(icols, dtype=np.int64))
        sp_vals.append(np.ascontiguousarray(ivals, dtype=np.float64))
        h_parts.append(np.ascontiguousarray(h_c, dtype=np.float64))
        rs_parts.append(np.ascontiguousarray(rs_c, dtype=np.float64))
    pack.ip_flat = np.concatenate(ip_parts)
    pack.ip_off = np.asarray(ip_off, dtype=np.int64)
    pack.nz_cols = np.concatenate(nz_cols)
    pack.nz_vals = np.concatenate(nz_vals)
    pack.nz_off = np.asarray(nz_off, dtype=np.int64)
    pack.h = np.concatenate(h_parts)
    pack.rs = np.concatenate(rs_parts)
    pack.sp_ptr_flat = np.concatenate(sp_ptrs)
    pack.sp_ptr_off = np.asarray(sp_ptr_off, dtype=np.int64)
    pack.sp_cols = np.concatenate(sp_cols)
    pack.sp_vals = np.concatenate(sp_vals)
    pack.sp_nz_off = np.asarray(sp_nz_off, dtype=np.int64)
    pack.max_chunk = max(p[1] - p[0] for p in plan)
    try:
        plan.kernel_pack = pack
    except AttributeError:
        pass  # plain list: correct but re-packed per call
    return pack


class NumpyKernels(KernelBackend):
    """The reference tier: delegates to the pure-NumPy implementations."""

    name = "numpy"

    def enumerate_chunk(self, adj_masks, limit, start, stop):
        from .bitparallel import _enumerate_chunk

        return _enumerate_chunk(adj_masks, limit, start, stop)

    def sa_sweep(self, plan, spins_t, beta, uniforms):
        from .anneal import _sa_sweep_numpy

        return _sa_sweep_numpy(plan, spins_t, beta, uniforms)

    def tabu_descend(
        self, h, indptr, indices, data, x, energies, iterations, tenure,
        record_flips=None,
    ):
        from .anneal import _tabu_descend_numpy

        return _tabu_descend_numpy(
            h, indptr, indices, data, x, energies, iterations, tenure,
            record_flips=record_flips,
        )


def _make_numpy() -> KernelBackend:
    return NumpyKernels()


def _make_numba() -> KernelBackend:
    from .jit import NumbaKernels  # raises KernelUnavailable without numba

    return NumbaKernels()


def _make_cext() -> KernelBackend:
    from .cext import CExtKernels  # raises KernelUnavailable without a compiler

    return CExtKernels()


_FACTORIES = {"numpy": _make_numpy, "numba": _make_numba, "cext": _make_cext}

#: Resolved backend singletons (``False`` marks a failed construction,
#: so an unavailable toolchain is probed once per process, not per call).
_instances: dict[str, KernelBackend | bool] = {}


def _get(name: str) -> KernelBackend | None:
    """The backend singleton for ``name``, or None if unavailable."""
    cached = _instances.get(name)
    if cached is False:
        return None
    if cached is not None:
        return cached  # type: ignore[return-value]
    try:
        backend = _FACTORIES[name]()
    except KernelUnavailable:
        _instances[name] = False
        return None
    except Exception:
        # A broken toolchain (compiler present but miscompiling, numba
        # importable but crashing) must degrade, not poison the solve.
        _instances[name] = False
        return None
    _instances[name] = backend
    return backend


def available_backends() -> list[str]:
    """Names of the tiers that actually work in this environment."""
    return [name for name in KERNEL_NAMES if _get(name) is not None]


def resolve(name: str | None = None) -> KernelBackend:
    """The backend to use for ``name``.

    ``None`` or ``"auto"`` reads ``REPRO_KERNEL`` (itself defaulting to
    ``auto``); ``auto`` walks :data:`_AUTO_ORDER` and returns the first
    tier that constructs and self-validates.  A *named* tier that is
    unavailable falls back to NumPy silently — per the contract that
    compiled tiers are accelerators only.  Unknown names raise
    ``ValueError`` (they are typos, not missing toolchains).
    """
    if name is None:
        name = os.environ.get("REPRO_KERNEL") or "auto"
    name = name.strip().lower()
    if name == "auto":
        for candidate in _AUTO_ORDER:
            backend = _get(candidate)
            if backend is not None:
                return backend
        return NumpyKernels()  # unreachable: numpy always constructs
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{('auto',) + KERNEL_NAMES}"
        )
    backend = _get(name)
    if backend is None:
        backend = _get("numpy")
    return backend
