"""First-load self-validation for compiled kernel backends.

A compiled tier is only offered after it reproduces the NumPy reference
bit-for-bit on a fixed probe instance covering all three kernels.  This
catches miscompiles, ABI mismatches, and toolchain quirks at resolution
time — the registry treats a failed probe exactly like a missing
toolchain (silent fallback to the reference) instead of letting a wrong
kernel corrupt downstream results.
"""

from __future__ import annotations

import numpy as np

from .kernels import KernelBackend, KernelUnavailable

__all__ = ["validate_backend"]


def _probe_csr():
    """A small deterministic CSR model exercising chunking and scatter."""
    from .anneal import CSRQuadratic

    rng = np.random.default_rng(20260808)
    n = 37  # > 2 sweep chunks at the default chunk size of 16
    h = np.round(rng.normal(size=n) * 4) / 2
    rows, cols, vals = [], [], []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.25:
                rows.append(u)
                cols.append(v)
                vals.append(float(np.round(rng.normal() * 4) / 2) or 0.5)
    return CSRQuadratic.from_pairs(n, h, rows, cols, vals)


def validate_backend(backend: KernelBackend) -> None:
    """Raise :class:`KernelUnavailable` unless ``backend`` matches the
    reference on the probe instance (byte-identical outputs)."""
    from .anneal import _sa_sweep_numpy, _tabu_descend_numpy, build_sweep_plan
    from .bitparallel import _enumerate_chunk

    rng = np.random.default_rng(12345)

    # --- enumerate: an 8-vertex adjacency with mixed degrees ---------
    adj_masks = tuple(
        int(m) & ~(1 << v) & 0xFF
        for v, m in enumerate(rng.integers(0, 256, size=8))
    )
    for limit in (0, 1, 2):
        ref = _enumerate_chunk(adj_masks, limit, 0, 256)
        got = backend.enumerate_chunk(adj_masks, limit, 0, 256)
        if not (
            np.array_equal(ref[0], got[0]) and np.array_equal(ref[1], got[1])
        ):
            raise KernelUnavailable(
                f"{backend.name}: enumerate_chunk self-check mismatch"
            )

    # --- sa_sweep: multi-chunk plan, both scatter branches -----------
    csr = _probe_csr()
    plan = build_sweep_plan(csr.h, csr.indptr, csr.indices, csr.data, csr.row_sums)
    reads = 24
    spins = np.where(
        rng.integers(0, 2, size=(csr.num_variables, reads)) > 0, 1.0, -1.0
    )
    for beta in (0.05, 2.0):  # hot (broad scatter) and cold (narrow)
        uniforms = rng.random((csr.num_variables, reads))
        ref_spins = spins.copy()
        got_spins = spins.copy()
        ref_flips = _sa_sweep_numpy(plan, ref_spins, beta, uniforms)
        got_flips = backend.sa_sweep(plan, got_spins, beta, uniforms)
        if ref_flips != got_flips or ref_spins.tobytes() != got_spins.tobytes():
            raise KernelUnavailable(
                f"{backend.name}: sa_sweep self-check mismatch"
            )
        spins = ref_spins

    # --- tabu: record the flip trail and compare it too --------------
    x = rng.integers(0, 2, size=(5, csr.num_variables)).astype(np.int8)
    energies = csr.energies(x)
    ref_x, got_x = x.copy(), x.copy()
    ref_e, got_e = energies.copy(), energies.copy()
    ref_trail: list = []
    got_trail: list = []
    ref_best = _tabu_descend_numpy(
        csr.h, csr.indptr, csr.indices, csr.data, ref_x, ref_e, 40, 7,
        record_flips=ref_trail,
    )
    got_best = backend.tabu_descend(
        csr.h, csr.indptr, csr.indices, csr.data, got_x, got_e, 40, 7,
        record_flips=got_trail,
    )
    ok = (
        np.array_equal(ref_best[0], got_best[0])
        and ref_best[1].tobytes() == got_best[1].tobytes()
        and np.array_equal(ref_x, got_x)
        and ref_e.tobytes() == got_e.tobytes()
        and len(ref_trail) == len(got_trail)
        and all(np.array_equal(a, b) for a, b in zip(ref_trail, got_trail))
    )
    if not ok:
        raise KernelUnavailable(f"{backend.name}: tabu_descend self-check mismatch")
