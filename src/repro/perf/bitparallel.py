"""Bit-parallel k-cplex / k-plex enumeration over all subset masks.

The classical bottleneck of the simulated qTKP/qMKP pipeline is the
oracle sweep: deciding, for every one of the ``2^n`` subset bitmasks,
whether the subset is a k-cplex of the complement graph.  The
pure-Python predicate costs a ``frozenset`` build plus ``n`` set
intersections per mask; this module replaces the whole sweep with
chunked NumPy:

* each vertex contributes one complement-adjacency bitmask, so its
  in-subset degree is ``popcount(mask & comp_adj[v])`` — a single AND
  plus a vectorized popcount over a whole chunk of masks at once;
* the k-cplex condition is the AND over vertices of
  ``not selected(v) or degree(v) <= k - 1``, evaluated with boolean
  array ops (the size-``T`` filter is deliberately *not* applied here —
  it is the only threshold-dependent part of the oracle, and
  :mod:`repro.perf.cache` handles it with a size partition);
* masks are processed in memory-bounded chunks of ``np.arange`` blocks,
  optionally fanned out over a process pool for large ``n``.

Popcount uses ``np.bitwise_count`` when the installed NumPy has it
(>= 2.0) and a SWAR bit-trick fallback otherwise, so the module runs on
the declared ``numpy>=1.24`` floor.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..graphs import Graph
from ..obs import NULL_TRACER

__all__ = [
    "MAX_VERTICES",
    "popcount_u64",
    "kcplex_masks",
    "kplex_masks",
    "kplex_mask_status",
    "kplex_masks_containing",
]

#: Same ceiling as ``PhaseOracleGrover.MAX_QUBITS`` — beyond this the
#: amplitude vector itself is unreasonable, so the enumerator refuses too.
MAX_VERTICES = 26

#: Default memory budget for one chunk's working arrays (~64 MB).
_DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024

#: Approximate bytes of temporaries per mask in :func:`_enumerate_chunk`
#: (masks + sizes + keep flag + degree + selection scratch).
_BYTES_PER_MASK = 34


def popcount_u64(masks: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array.

    Uses the native ufunc when available, else the classic SWAR
    (SIMD-within-a-register) reduction: fold pairs of bits, nibbles,
    bytes, then gather the byte sums with one multiply.
    """
    masks = np.asarray(masks, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(masks).astype(np.int64)
    x = masks.copy()
    x -= (x >> np.uint64(1)) & np.uint64(0x5555555555555555)
    x = (x & np.uint64(0x3333333333333333)) + (
        (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
    )
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((x * np.uint64(0x0101010101010101)) >> np.uint64(56)).astype(np.int64)


def _chunk_size(num_masks: int, chunk_masks: int | None) -> int:
    if chunk_masks is not None:
        if chunk_masks < 1:
            raise ValueError(f"chunk_masks must be >= 1, got {chunk_masks}")
        return min(chunk_masks, num_masks)
    return max(1, min(num_masks, _DEFAULT_CHUNK_BYTES // _BYTES_PER_MASK))


def _enumerate_chunk(
    adj_masks: Sequence[int], limit: int, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray]:
    """Masks in ``[start, stop)`` whose selected vertices all have
    ``popcount(mask & adj_masks[v]) <= limit``, with their sizes."""
    masks = np.arange(start, stop, dtype=np.uint64)
    sizes = popcount_u64(masks)
    keep = np.ones(masks.shape, dtype=bool)
    for v, am in enumerate(adj_masks):
        if am == 0 or am.bit_count() <= limit:
            # Vertex degree can never exceed the limit: always passes.
            continue
        degree = popcount_u64(masks & np.uint64(am))
        selected = (masks >> np.uint64(v)) & np.uint64(1)
        keep &= (degree <= limit) | (selected == 0)
    return masks[keep], sizes[keep]


def _chunk_worker(
    args: tuple[tuple[int, ...], int, int, int, str]
) -> tuple[np.ndarray, np.ndarray]:
    adj_masks, limit, start, stop, kernel = args
    # Each pool process resolves the backend by name: the compiled
    # library loads from the shared on-disk cache, so children never
    # re-compile, and a child without the toolchain falls back to the
    # reference (byte-identical output either way).
    from .kernels import resolve

    return resolve(kernel).enumerate_chunk(adj_masks, limit, start, stop)


def _enumerate(
    adj_masks: Sequence[int],
    num_vertices: int,
    k: int,
    chunk_masks: int | None,
    workers: int | None,
    tracer=None,
    kernel: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if num_vertices > MAX_VERTICES:
        raise ValueError(
            f"bit-parallel enumeration supports n <= {MAX_VERTICES}, got {num_vertices}"
        )
    from .kernels import resolve

    backend = resolve(kernel)
    tracer = tracer or NULL_TRACER
    num_masks = 1 << num_vertices
    size = _chunk_size(num_masks, chunk_masks)
    spans = [(s, min(s + size, num_masks)) for s in range(0, num_masks, size)]
    limit = k - 1
    if workers is not None and workers > 1 and len(spans) > 1:
        import multiprocessing

        jobs = [(tuple(adj_masks), limit, s, e, backend.name) for s, e in spans]
        with multiprocessing.Pool(min(workers, len(spans))) as pool:
            parts = pool.map(_chunk_worker, jobs)
        # Pool workers are separate processes: charge their chunk scans
        # in aggregate on this side of the fork.
        tracer.add("perf_chunks_scanned", len(spans))
        tracer.add("perf_masks_scanned", num_masks)
    else:
        parts = []
        for s, e in spans:
            parts.append(backend.enumerate_chunk(adj_masks, limit, s, e))
            tracer.add("perf_chunks_scanned", 1)
            tracer.add("perf_masks_scanned", e - s)
    masks = np.concatenate([p[0] for p in parts])
    sizes = np.concatenate([p[1] for p in parts])
    return masks.astype(np.int64), sizes


def kcplex_masks(
    graph: Graph,
    k: int,
    chunk_masks: int | None = None,
    workers: int | None = None,
    tracer=None,
    kernel: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All bitmasks whose subsets are k-cplexes of ``graph``.

    Returns ``(masks, sizes)`` with ``masks`` ascending — exactly the
    order a Python scan ``[m for m in range(2**n) if predicate(m)]``
    produces, so downstream marked sets are interchangeable.

    Parameters
    ----------
    graph, k:
        Every selected vertex may have at most ``k - 1`` selected
        neighbours (Definition 4 of the paper).
    chunk_masks:
        Masks per chunk; default keeps chunk temporaries near 64 MB.
    workers:
        Process-pool width for chunk fan-out (None / 1 = in-process).
    tracer:
        Optional :class:`repro.obs.Tracer`; chunk/mask scan counts are
        charged to the current span (``perf_chunks_scanned``,
        ``perf_masks_scanned``).
    kernel:
        Kernel-backend name (``repro.perf.kernels``); None honours the
        ``REPRO_KERNEL`` environment variable (default ``auto``).  All
        backends return byte-identical masks.
    """
    return _enumerate(
        graph.adjacency_masks(), graph.num_vertices, k, chunk_masks, workers,
        tracer, kernel,
    )


def kplex_mask_status(
    graph: Graph,
    k: int,
    masks: np.ndarray,
) -> np.ndarray:
    """k-plex status of *arbitrary* subset bitmasks, as a boolean array.

    The full-sweep entry points above always scan the contiguous range
    ``[0, 2^n)``; this evaluates the same predicate on any mask array —
    the primitive behind :meth:`repro.perf.MarkedSetCache.patch`, which
    re-checks only the masks an edge edit can actually affect instead
    of re-sweeping the whole space.  Status agrees element-for-element
    with membership in :func:`kplex_masks`' output.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.num_vertices > MAX_VERTICES:
        raise ValueError(
            f"bit-parallel evaluation supports n <= {MAX_VERTICES}, "
            f"got {graph.num_vertices}"
        )
    masks = np.asarray(masks, dtype=np.uint64)
    limit = k - 1
    keep = np.ones(masks.shape, dtype=bool)
    for v, am in enumerate(graph.complement_adjacency_masks()):
        if am == 0 or am.bit_count() <= limit:
            continue
        degree = popcount_u64(masks & np.uint64(am))
        selected = (masks >> np.uint64(v)) & np.uint64(1)
        keep &= (degree <= limit) | (selected == 0)
    return keep


def kplex_masks_containing(
    graph: Graph,
    k: int,
    *vertices: int,
    chunk_masks: int | None = None,
    tracer=None,
    kernel: str | None = None,
) -> np.ndarray:
    """Marked k-plex masks among all masks containing every ``vertices``.

    Equivalent to filtering :func:`kplex_masks` down to masks with all
    the given bits set, but scans only that ``2^(n-r)`` subspace — the
    re-evaluation set of an incremental patch (``r = 2`` for an edge
    insertion, ``r = 1`` for a vertex add).  A vertex permutation
    sending the pinned vertices to the ``r`` highest bit positions
    turns the candidate set into the contiguous range
    ``[(2^r - 1) << (n-r), 2^n)``, which any enumeration kernel sweeps
    natively; the surviving masks are then mapped back (an
    order-preserving bit scatter, so the result stays ascending) —
    byte-identical to the filtered full sweep at ``1/2^r`` of its mask
    count, through the same compiled tiers.
    """
    n = graph.num_vertices
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n > MAX_VERTICES:
        raise ValueError(
            f"bit-parallel enumeration supports n <= {MAX_VERTICES}, got {n}"
        )
    r = len(vertices)
    if not 1 <= r < n or len(set(vertices)) != r:
        raise ValueError(
            f"need 1..{n - 1} distinct pinned vertices, got {vertices}"
        )
    if any(not 0 <= w < n for w in vertices):
        raise ValueError(f"pinned vertices out of range: {vertices}")
    from .kernels import resolve

    backend = resolve(kernel)
    tracer = tracer or NULL_TRACER
    free = [w for w in range(n) if w not in vertices]
    perm = free + list(vertices)  # new bit position -> original vertex
    inv = [0] * n
    for pos, orig in enumerate(perm):
        inv[orig] = pos
    cam = graph.complement_adjacency_masks()
    remapped = []
    for orig in perm:
        am = int(cam[orig])
        shuffled = 0
        while am:
            low = am & -am
            shuffled |= 1 << inv[low.bit_length() - 1]
            am ^= low
        remapped.append(shuffled)

    start, stop = ((1 << r) - 1) << (n - r), 1 << n
    size = _chunk_size(stop - start, chunk_masks)
    parts = []
    for s in range(start, stop, size):
        e = min(s + size, stop)
        parts.append(backend.enumerate_chunk(remapped, k - 1, s, e)[0])
        tracer.add("perf_chunks_scanned", 1)
        tracer.add("perf_masks_scanned", e - s)
    permuted = np.concatenate(parts).astype(np.uint64)

    # Scatter the free bits back to their original positions.  Both the
    # scan order and the scatter are monotone, so the output stays
    # ascending without a sort.
    pinned = 0
    for w in vertices:
        pinned |= 1 << w
    out = np.full(permuted.shape, pinned, dtype=np.uint64)
    for pos, orig in enumerate(free):
        out |= ((permuted >> np.uint64(pos)) & np.uint64(1)) << np.uint64(orig)
    return out.astype(np.int64)


def kplex_masks(
    graph: Graph,
    k: int,
    chunk_masks: int | None = None,
    workers: int | None = None,
    tracer=None,
    kernel: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All bitmasks whose subsets are k-plexes of ``graph``.

    Uses the complement-adjacency bitmasks directly (a k-plex of ``G``
    is a k-cplex of ``G-bar``), skipping the O(n^2) complement-graph
    construction the oracle path performs.
    """
    return _enumerate(
        graph.complement_adjacency_masks(), graph.num_vertices, k,
        chunk_masks, workers, tracer, kernel,
    )
