"""Performance engine: bit-parallel mask enumeration, marked-set caching,
and the sparse incremental annealing kernels.

Substrate layer (like ``repro.graphs``): imported by ``repro.core``,
``repro.grover``, and ``repro.annealing``; imports nothing above
``repro.graphs`` itself.
"""

from .anneal import (
    CSRQuadratic,
    SweepPlan,
    build_sweep_plan,
    fields_energies,
    fields_energies_t,
    local_fields,
    refresh_fields_t,
    sa_shard_reads,
    sa_sweep,
    tabu_descend,
)
from .bitparallel import (
    MAX_VERTICES,
    kcplex_masks,
    kplex_mask_status,
    kplex_masks,
    kplex_masks_containing,
    popcount_u64,
)
from .cache import MarkedSetCache, MarkedSetTable, PredicateMaskCache
from .kernels import KernelBackend, available_backends, resolve as resolve_kernel
from .shared import (
    PUBLISH_KILL_ENV,
    SHARED_CACHE_ENV,
    SegmentError,
    SharedTableStore,
)

__all__ = [
    "MAX_VERTICES",
    "PUBLISH_KILL_ENV",
    "SHARED_CACHE_ENV",
    "CSRQuadratic",
    "KernelBackend",
    "MarkedSetCache",
    "MarkedSetTable",
    "PredicateMaskCache",
    "SegmentError",
    "SharedTableStore",
    "SweepPlan",
    "available_backends",
    "resolve_kernel",
    "build_sweep_plan",
    "fields_energies",
    "fields_energies_t",
    "kcplex_masks",
    "kplex_mask_status",
    "kplex_masks",
    "kplex_masks_containing",
    "local_fields",
    "popcount_u64",
    "refresh_fields_t",
    "sa_shard_reads",
    "sa_sweep",
    "tabu_descend",
]
