"""Performance engine: bit-parallel mask enumeration and marked-set caching.

Substrate layer (like ``repro.graphs``): imported by ``repro.core`` and
``repro.grover``, imports nothing above ``repro.graphs`` itself.
"""

from .bitparallel import MAX_VERTICES, kcplex_masks, kplex_masks, popcount_u64
from .cache import MarkedSetCache, MarkedSetTable, PredicateMaskCache

__all__ = [
    "MAX_VERTICES",
    "MarkedSetCache",
    "MarkedSetTable",
    "PredicateMaskCache",
    "kcplex_masks",
    "kplex_masks",
    "popcount_u64",
]
