"""Performance engine: bit-parallel mask enumeration, marked-set caching,
and the sparse incremental annealing kernels.

Substrate layer (like ``repro.graphs``): imported by ``repro.core``,
``repro.grover``, and ``repro.annealing``; imports nothing above
``repro.graphs`` itself.
"""

from .anneal import (
    CSRQuadratic,
    build_sweep_plan,
    fields_energies,
    fields_energies_t,
    local_fields,
    refresh_fields_t,
    sa_shard_reads,
    sa_sweep,
    tabu_descend,
)
from .bitparallel import MAX_VERTICES, kcplex_masks, kplex_masks, popcount_u64
from .cache import MarkedSetCache, MarkedSetTable, PredicateMaskCache

__all__ = [
    "MAX_VERTICES",
    "CSRQuadratic",
    "MarkedSetCache",
    "MarkedSetTable",
    "PredicateMaskCache",
    "build_sweep_plan",
    "fields_energies",
    "fields_energies_t",
    "kcplex_masks",
    "kplex_masks",
    "local_fields",
    "popcount_u64",
    "refresh_fields_t",
    "sa_shard_reads",
    "sa_sweep",
    "tabu_descend",
]
