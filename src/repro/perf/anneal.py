"""Sparse incremental annealing kernels (CSR BQMs, delta-maintained sweeps).

The annealing stack's QUBOs are sparse by construction — couplings only
along complement-graph edges and vertex->slack penalty blocks, with
``O(n log n)`` total variables — yet the seed samplers ran every sweep
on dense ``O(n^2)`` matrices.  This module is the numeric core of the
replacement engine:

* :class:`CSRQuadratic` — the sparse view ``BinaryQuadraticModel.to_csr()``
  caches: the symmetric coupling matrix in CSR form (``indptr`` /
  ``indices`` / ``data``), the linear vector ``h``, the variable
  ``order``, and the upper-triangular COO pairs used for vectorised
  energy evaluation.

* :func:`local_fields` — ``fields[r, j] = h[j] + sum_i s[r, i] J_ij``
  for a whole replica batch, built once per run in ``O(reads * nnz)``.

* :func:`sa_sweep` — one Gauss-Seidel Metropolis sweep over the batch
  with **incrementally maintained fields**, walked in chunks from a
  :func:`build_sweep_plan` schedule: each chunk's local fields are
  built in bulk by one compiled sparse product against the current
  spins, and each accepted flip scatters only to the flipped column's
  intra-chunk CSR neighbours, so a sweep costs ``O(reads * nnz)``
  instead of ``n`` dense matvecs.  Acceptance decisions are computed
  exactly as the seed sampler did (same clip, same exponential, same
  uniform-draw consumption), so fixed-seed runs are flip-for-flip
  identical.

* :func:`tabu_descend` — ``num_restarts`` tabu trajectories advanced as
  one matrix, with per-replica delta tables, tabu clocks, and the
  aspiration criterion.  With one replica it reproduces the seed
  ``tabu_search`` trajectory flip-for-flip (first-minimum tie-break,
  same 1e-12 aspiration slack).

The kernels are pure NumPy over plain arrays — no imports from
``repro.annealing`` — so the annealing layer depends on ``repro.perf``
and not the other way around.  Tracing is the caller's job; the kernels
return exact sweep/flip counts for the run ledger to reconcile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

try:  # compiled sparse matmul for the field setup; pure-NumPy fallback below
    import scipy.sparse as _sparse
except ImportError:  # pragma: no cover - exercised only without SciPy
    _sparse = None

__all__ = [
    "CSRQuadratic",
    "SweepPlan",
    "build_sweep_plan",
    "concat_ranges",
    "fields_energies",
    "fields_energies_t",
    "local_fields",
    "refresh_fields_t",
    "sa_sweep",
    "sa_shard_reads",
    "tabu_descend",
]


@dataclass(frozen=True)
class CSRQuadratic:
    """Sparse view of a binary quadratic model's coefficients.

    ``indptr`` / ``indices`` / ``data`` hold the *symmetrised* coupling
    matrix (every pair stored in both directions) so row ``i`` is the
    full neighbourhood of variable ``i`` — the slice samplers touch on
    a flip.  ``pair_rows`` / ``pair_cols`` / ``pair_vals`` keep the
    upper triangle once, for energy evaluation.
    """

    num_variables: int
    h: np.ndarray           # (n,) float64 linear biases
    indptr: np.ndarray      # (n + 1,) int64
    indices: np.ndarray     # (2 * num_pairs,) int64
    data: np.ndarray        # (2 * num_pairs,) float64
    pair_rows: np.ndarray   # (num_pairs,) int64, row < col
    pair_cols: np.ndarray   # (num_pairs,) int64
    pair_vals: np.ndarray   # (num_pairs,) float64
    order: tuple = field(default=())

    @classmethod
    def from_pairs(
        cls,
        num_variables: int,
        h: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        order: tuple = (),
    ) -> "CSRQuadratic":
        """Build from unique upper-triangular pairs (``rows < cols``)."""
        n = int(num_variables)
        h = np.asarray(h, dtype=np.float64)
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        sym_rows = np.concatenate([rows, cols])
        sym_cols = np.concatenate([cols, rows])
        sym_vals = np.concatenate([vals, vals])
        # Deterministic layout: rows ascending, columns ascending within
        # a row (lexsort's last key is primary).
        perm = np.lexsort((sym_cols, sym_rows))
        sym_rows = sym_rows[perm]
        indices = sym_cols[perm]
        data = sym_vals[perm]
        counts = np.bincount(sym_rows, minlength=n) if sym_rows.size else np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            num_variables=n,
            h=h,
            indptr=indptr,
            indices=indices,
            data=data,
            pair_rows=rows,
            pair_cols=cols,
            pair_vals=vals,
            order=tuple(order),
        )

    @property
    def num_pairs(self) -> int:
        return int(self.pair_vals.size)

    def neighbours(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(columns, couplings)`` of variable ``i``'s CSR row."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def abs_row_sums(self) -> np.ndarray:
        """Per-variable ``sum_j |J_ij|`` (the flip-energy radius)."""
        prefix = np.concatenate([[0.0], np.cumsum(np.abs(self.data))])
        return np.maximum(prefix[self.indptr[1:]] - prefix[self.indptr[:-1]], 0.0)

    @cached_property
    def row_sums(self) -> np.ndarray:
        """Per-variable signed ``sum_j J_ij`` (for field refreshes).

        Cached (the dataclass is frozen, so the inputs cannot change);
        samplers hit this once per ``sample`` call on a cached CSR.
        """
        n = self.num_variables
        if not self.data.size:
            return np.zeros(n)
        rows = np.repeat(np.arange(n), np.diff(self.indptr))
        return np.bincount(rows, weights=self.data, minlength=n)

    @cached_property
    def spmatrix(self):
        """SciPy CSR matrix of the symmetric couplings, or ``None``.

        Built (and validated) once per model so per-sweep field
        refreshes go straight to the compiled matmul.
        """
        if _sparse is None or not self.data.size:
            return None
        n = self.num_variables
        return _sparse.csr_matrix(
            (self.data, self.indices, self.indptr), shape=(n, n)
        )

    @cached_property
    def sweep_plan(self) -> list:
        """Cached :func:`build_sweep_plan` at the default chunk size."""
        return build_sweep_plan(
            self.h, self.indptr, self.indices, self.data, self.row_sums
        )

    def energies(self, states: np.ndarray, offset: float = 0.0) -> np.ndarray:
        """Vectorised energies of a ``(num_samples, n)`` 0/1 matrix.

        Row-independent reductions (``sum(axis=1)``, not BLAS matmul,
        whose summation order varies with the batch shape) so each row's
        energy is bitwise identical whether evaluated alone or in a
        batch — the guarantee ``BinaryQuadraticModel.energy`` relies on.
        """
        states = np.asarray(states, dtype=np.float64)
        out = (states * self.h).sum(axis=1) + offset
        if self.pair_vals.size:
            # ascontiguousarray: the fancy-indexed product can come out
            # F-ordered, and reducing a strided axis sums in a different
            # order than a contiguous row would.
            out += np.ascontiguousarray(
                states[:, self.pair_rows] * states[:, self.pair_cols] * self.pair_vals
            ).sum(axis=1)
        return out

    def dense(self) -> np.ndarray:
        """Strictly upper-triangular dense ``J`` (for tests / fallbacks)."""
        j = np.zeros((self.num_variables, self.num_variables))
        j[self.pair_rows, self.pair_cols] = self.pair_vals
        return j


def local_fields(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    states: np.ndarray,
) -> np.ndarray:
    """``fields[r, j] = h[j] + sum_i states[r, i] * J_sym[i, j]``.

    The one-off ``O(reads * nnz)`` setup for the incremental kernels;
    after this, every accepted flip keeps the invariant by adjusting
    only the flipped variable's neighbour columns.
    """
    states = np.asarray(states, dtype=np.float64)
    num_reads = states.shape[0]
    if _sparse is not None and data.size:
        n = indptr.size - 1
        j_sym = _sparse.csr_matrix((data, indices, indptr), shape=(n, n))
        # J_sym is symmetric, so the row-wise product is one compiled
        # sparse @ dense multiply over the transposed batch.
        return np.asarray(h, dtype=np.float64) + (j_sym @ states.T).T
    fields = np.tile(np.asarray(h, dtype=np.float64), (num_reads, 1))
    for j in range(fields.shape[1]):
        lo, hi = indptr[j], indptr[j + 1]
        if hi > lo:
            fields[:, j] += states[:, indices[lo:hi]] @ data[lo:hi]
    return fields


def refresh_fields_t(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    row_sums: np.ndarray,
    spins_t: np.ndarray,
    spmat=None,
) -> np.ndarray:
    """Local fields for a transposed ±1 replica batch, in bulk.

    With ``t = 1 - 2s`` the 0/1 field is
    ``h + J @ s = h + (row_sums - J @ t) / 2``, one sparse product over
    the whole batch.  Each replica column is reduced independently, so
    the result is byte-identical however the batch is sharded — and on
    the integer/half-integer models the equivalence tests pin, it is
    bitwise equal to incrementally maintained fields.

    ``spmat`` (optional) is a prebuilt SciPy CSR of the couplings
    (:attr:`CSRQuadratic.spmatrix`); passing it skips re-validating the
    matrix on every refresh.
    """
    if not data.size:
        return np.repeat(h[:, None], spins_t.shape[1], axis=1)
    n = indptr.size - 1
    if spmat is not None:
        jt = spmat @ spins_t
    elif _sparse is not None:
        jt = _sparse.csr_matrix((data, indices, indptr), shape=(n, n)) @ spins_t
    else:
        jt = np.empty_like(spins_t)
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            jt[i] = data[lo:hi] @ spins_t[indices[lo:hi]] if hi > lo else 0.0
    np.subtract(row_sums[:, None], jt, out=jt)
    jt *= 0.5
    jt += h[:, None]
    return jt


#: Variables per chunk in :func:`sa_sweep`.  Within a chunk, accepted
#: flips propagate through per-flip scatter updates; across chunks they
#: are picked up by the next chunk's compiled sparse field build.
DEFAULT_SWEEP_CHUNK = 16


class SweepPlan(list):
    """A sweep schedule (list of chunk tuples) that can carry a cached
    kernel-tier packing.

    Compiled backends flatten the per-chunk arrays into one packed
    layout so a whole sweep is a single native call; the packing is
    memoized here (``kernel_pack``) because the plan is immutable once
    built and reused for every sweep of a run.  Plain lists work
    everywhere a ``SweepPlan`` does — backends simply re-pack per call.
    """

    __slots__ = ("kernel_pack",)

    def __init__(self, *args):
        super().__init__(*args)
        self.kernel_pack = None


def build_sweep_plan(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    row_sums: np.ndarray,
    chunk: int = DEFAULT_SWEEP_CHUNK,
) -> list:
    """Chunk schedule for :func:`sa_sweep`.

    Splits the variable range into blocks of ``chunk``.  Each entry
    carries the block's CSR row slice (as a prebuilt SciPy matrix when
    available, raw arrays otherwise) for the bulk field build, plus the
    **intra-chunk forward** sub-structure — for each variable, its
    couplings to later variables of the same chunk, with chunk-local
    column ids — which is the only part a flip still has to scatter to
    by hand.  Column ids are sorted within a CSR row, so both cuts are
    ``searchsorted`` slices.
    """
    n = indptr.size - 1
    chunk = max(1, min(int(chunk), n)) if n else 1
    plan = SweepPlan()
    for start in range(0, n, chunk):
        end = min(start + chunk, n)
        lo, hi = int(indptr[start]), int(indptr[end])
        sub_indptr = indptr[start : end + 1] - indptr[start]
        sub_indices = indices[lo:hi]
        sub_data = data[lo:hi]
        jc = (
            _sparse.csr_matrix(
                (sub_data, sub_indices, sub_indptr), shape=(end - start, n)
            )
            if _sparse is not None and sub_data.size
            else None
        )
        iptr = [0]
        icols = []
        ivals = []
        for i in range(start, end):
            rlo, rhi = int(indptr[i]), int(indptr[i + 1])
            cols_row = indices[rlo:rhi]
            a = int(np.searchsorted(cols_row, i + 1))
            b = int(np.searchsorted(cols_row, end))
            icols.append(cols_row[a:b] - start)
            ivals.append(data[rlo:rhi][a:b])
            iptr.append(iptr[-1] + (b - a))
        plan.append(
            (
                start,
                end,
                jc,
                sub_indptr,
                sub_indices,
                sub_data,
                np.ascontiguousarray(h[start:end]),
                np.ascontiguousarray(row_sums[start:end]),
                iptr,
                np.concatenate(icols) if icols else np.empty(0, dtype=np.int64),
                np.concatenate(ivals) if ivals else np.empty(0),
            )
        )
    return plan


def sa_sweep(
    plan: list,
    spins_t: np.ndarray,
    beta: float,
    uniforms: np.ndarray,
    kernel: str | None = None,
) -> int:
    """One Metropolis sweep over all variables, batched across replicas.

    Dispatches to the selected kernel backend
    (:mod:`repro.perf.kernels`; ``kernel=None`` honours ``REPRO_KERNEL``,
    default ``auto``) and falls back to the NumPy reference
    (:func:`_sa_sweep_numpy`, documented below) whenever the inputs are
    not in the compiled kernels' canonical layout.  All backends make
    identical flip decisions, so the updated ``spins_t`` is the same
    bit-for-bit whichever tier ran the sweep (the Metropolis ``exp``
    ulp caveat is documented in :mod:`repro.perf.cext`).
    """
    from .kernels import resolve

    backend = resolve(kernel)
    if (
        backend.name != "numpy"
        and spins_t.dtype == np.float64
        and spins_t.flags.c_contiguous
        and uniforms.dtype == np.float64
        and uniforms.flags.c_contiguous
        and spins_t.shape == uniforms.shape
    ):
        return backend.sa_sweep(plan, spins_t, float(beta), uniforms)
    return _sa_sweep_numpy(plan, spins_t, beta, uniforms)


def _sa_sweep_numpy(
    plan: list,
    spins_t: np.ndarray,
    beta: float,
    uniforms: np.ndarray,
) -> int:
    """One Metropolis sweep over all variables, batched across replicas.

    ``spins_t`` is the **transposed** ``(n, reads)`` replica matrix in
    the ±1 view ``t = 1 - 2s`` (so the flip energy is a single product
    ``t * field`` and a flip is a sign change), updated in place.  The
    transposed layout makes every per-variable access a contiguous row.

    The sweep walks the chunks of ``plan`` in variable order.  At each
    chunk boundary the block's local fields are built in bulk from the
    *current* spins — ``h + (row_sums - J_block @ t) / 2``, one compiled
    sparse product — so flips from earlier chunks are already priced in.
    Within a chunk, an accepted flip scatters to its **intra-chunk
    forward** neighbours only (already-visited fields are never read
    again, later chunks get rebuilt anyway): when few replicas
    accepted, the update narrows to just those columns (a sub-block add
    of the exact same addends); otherwise it is one row-gathered outer
    product in which non-accepted replicas contribute an exact ``0.0``.
    Neither choice can change any later acceptance decision, so
    decisions stay flip-for-flip identical to the seed sampler.

    The acceptance decision is the seed's: it computed
    ``(delta <= 0) | (u < exp(-beta * clip(delta, 0, 700)))``, but the
    first disjunct is redundant — ``delta <= 0`` clips to ``0``,
    ``exp(0) == 1.0`` exactly, and uniform draws live in ``[0, 1)`` —
    so the kernel evaluates only the second, with raw ufuncs into
    scratch buffers allocated once per sweep: the inner loop performs
    no allocations at all.

    ``uniforms`` is the ``(n, reads)`` slab of uniform draws for this
    sweep — row ``i`` is exactly the vector the seed sampler drew for
    variable ``i``, which is what makes fixed-seed runs byte-identical.
    Returns the number of accepted flips.
    """
    num_reads = spins_t.shape[1]
    delta = np.empty(num_reads)
    boltz = np.empty(num_reads)
    ds = np.empty(num_reads)
    flipped = np.empty(num_reads)
    accept = np.empty(num_reads, dtype=bool)
    max_deg = max(
        (iptr[-1] and max(b - a for a, b in zip(iptr, iptr[1:])))
        for *_, iptr, _ic, _iv in plan
    ) if plan else 0
    scratch = np.empty((max_deg, num_reads))
    narrow = num_reads // 8
    neg_beta = -float(beta)
    flips = 0
    for start, end, jc, sub_indptr, sub_indices, sub_data, h_c, rs_c, iptr, icols, ivals in plan:
        if jc is not None:
            jt = jc @ spins_t
        elif sub_data.size:
            jt = np.empty((end - start, num_reads))
            for li in range(end - start):
                lo, hi = int(sub_indptr[li]), int(sub_indptr[li + 1])
                jt[li] = (
                    sub_data[lo:hi] @ spins_t[sub_indices[lo:hi]]
                    if hi > lo
                    else 0.0
                )
        else:
            jt = np.zeros((end - start, num_reads))
        np.subtract(rs_c[:, None], jt, out=jt)
        jt *= 0.5
        jt += h_c[:, None]
        fields_c = jt
        for li in range(end - start):
            t = spins_t[start + li]
            np.multiply(t, fields_c[li], out=delta)
            np.maximum(delta, 0.0, out=boltz)
            np.minimum(boltz, 700.0, out=boltz)
            boltz *= neg_beta
            np.exp(boltz, out=boltz)
            np.less(uniforms[start + li], boltz, out=accept)
            accepted = np.count_nonzero(accept)
            if accepted:
                flips += accepted
                lo, hi = iptr[li], iptr[li + 1]
                if accepted <= narrow:
                    sel = np.nonzero(accept)[0]
                    t_sel = t[sel]
                    if hi > lo:
                        fields_c[np.ix_(icols[lo:hi], sel)] += (
                            ivals[lo:hi, None] * t_sel
                        )
                    t[sel] = -t_sel                  # accepted spins change sign
                else:
                    np.multiply(t, accept, out=ds)   # ±1 where accepted, else 0.0
                    if hi > lo:
                        upd = scratch[: hi - lo]
                        np.multiply(ivals[lo:hi, None], ds, out=upd)
                        fields_c[icols[lo:hi]] += upd
                    np.multiply(ds, -2.0, out=flipped)
                    t += flipped
    return int(flips)


def fields_energies(
    states: np.ndarray,
    fields: np.ndarray,
    h: np.ndarray,
    offset: float,
) -> np.ndarray:
    """Replica energies straight from the maintained local fields.

    With ``fields[r, j] = h[j] + sum_i s[r, i] J_ij`` the pair term of
    the energy is ``sum_j s_j (fields_j - h_j) / 2`` (every coupling is
    counted from both endpoints), so

        ``E_r = offset + sum_j s[r, j] * (h[j] + (fields[r, j] - h[j]) / 2)``

    costs ``O(reads * n)`` — no per-pair gather at all.  All reductions
    are contiguous per-row ``sum(axis=1)``, so each replica's energy is
    independent of the batch it is evaluated in (sharded and unsharded
    runs agree byte-for-byte).
    """
    g = fields - h
    g *= 0.5
    g += h
    g *= states
    return g.sum(axis=1) + offset


def fields_energies_t(
    spins_t: np.ndarray,
    fields_t: np.ndarray,
    h: np.ndarray,
    offset: float,
) -> np.ndarray:
    """Replica energies from the transposed ±1 batch, in place.

    Same quantity as :func:`fields_energies`, evaluated without ever
    transposing back: with ``s = (1 - t) / 2`` and
    ``g = h + (fields - h) / 2``,

        ``E_r = offset + (sum_j g[j, r] - sum_j t[j, r] g[j, r]) / 2``.

    Both reductions run down axis 0 of the ``(n, reads)`` matrices,
    column by column, so each replica's energy is independent of the
    batch — and on the exact (integer / half-integer coefficient)
    models the equivalence tests pin, bitwise equal to the row-layout
    evaluation.  ``fields_t`` is consumed as scratch.
    """
    g = fields_t
    g -= h[:, None]
    g *= 0.5
    g += h[:, None]
    total = g.sum(axis=0)
    total -= np.einsum("ij,ij->j", spins_t, g)
    total *= 0.5
    total += offset
    return total


def _sa_shard_worker(
    args: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, str | None],
) -> tuple[np.ndarray, np.ndarray]:
    h, indptr, indices, data, row_sums, states, betas, uniforms, kernel = args
    n = indptr.size - 1
    spmat = (
        _sparse.csr_matrix((data, indices, indptr), shape=(n, n))
        if _sparse is not None and data.size
        else None
    )
    plan = build_sweep_plan(h, indptr, indices, data, row_sums)
    spins_t = np.ascontiguousarray(states.T, dtype=np.float64)
    spins_t *= -2.0
    spins_t += 1.0                                   # ±1 view: t = 1 - 2s
    flips = np.zeros(len(betas), dtype=np.int64)
    for t, beta in enumerate(betas):
        flips[t] = sa_sweep(plan, spins_t, float(beta), uniforms[t], kernel=kernel)
    fields_t = refresh_fields_t(h, indptr, indices, data, row_sums, spins_t, spmat)
    out = spins_t.T.astype(np.float64, order="C")
    out -= 1.0
    out *= -0.5                                      # back to 0/1, exactly
    return (
        out.astype(np.int8, order="C"),
        np.ascontiguousarray(fields_t.T),
        flips,
    )


def sa_shard_reads(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    row_sums: np.ndarray,
    states: np.ndarray,
    betas: np.ndarray,
    uniforms: np.ndarray,
    workers: int,
    kernel: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fan the replica batch over a process pool, shard by reads.

    ``uniforms`` is the full ``(num_sweeps, n, reads)`` draw tensor —
    pre-drawn by the caller so every replica consumes exactly the
    uniforms it would in a single-process run, keeping sharded results
    byte-identical to unsharded ones.  Returns ``(states, fields,
    flips)``: the final int8 states, the final per-replica local fields
    (so the caller can price energies without re-deriving them), and
    the per-sweep accepted-flip totals across all shards.
    """
    import multiprocessing

    num_reads = states.shape[0]
    shards = np.array_split(np.arange(num_reads), min(workers, num_reads))
    jobs = [
        (
            h, indptr, indices, data, row_sums,
            states[sel].copy(),
            betas,
            np.ascontiguousarray(uniforms[:, :, sel]),
            kernel,
        )
        for sel in shards
        if sel.size
    ]
    with multiprocessing.Pool(len(jobs)) as pool:
        parts = pool.map(_sa_shard_worker, jobs)
    out = np.concatenate([p[0] for p in parts], axis=0)
    fields = np.concatenate([p[1] for p in parts], axis=0)
    flips = np.sum([p[2] for p in parts], axis=0).astype(np.int64)
    return out, fields, flips


def concat_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(start, start + len)`` per group.

    The ragged-gather helper behind the batched tabu kernel: each
    replica flips a different variable, so the neighbour slices to
    update have different offsets and lengths.
    """
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    group_ends = np.cumsum(lens)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(group_ends - lens, lens)
        + np.repeat(starts, lens)
    )


def tabu_descend(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
    energies: np.ndarray,
    iterations: int,
    tenure: int,
    record_flips: list | None = None,
    kernel: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched single-flip tabu search over ``(num_restarts, n)`` states.

    Dispatches to the selected kernel backend exactly like
    :func:`sa_sweep` (``kernel=None`` honours ``REPRO_KERNEL``); the
    tabu loop has no transcendentals, so every backend reproduces the
    reference flip-for-flip and byte-for-byte.  Falls back to the NumPy
    reference (:func:`_tabu_descend_numpy`, documented below) when the
    inputs are not in the compiled kernels' canonical layout.
    """
    from .kernels import resolve

    backend = resolve(kernel)
    energies_arr = np.asarray(energies, dtype=np.float64)
    if (
        backend.name != "numpy"
        and x.dtype == np.int8
        and x.flags.c_contiguous
        and x.ndim == 2
        and x.shape[0] >= 1
        and x.shape[1] >= 1
        and energies_arr.flags.c_contiguous
    ):
        return backend.tabu_descend(
            h, indptr, indices, data, x, energies_arr, iterations, tenure,
            record_flips=record_flips,
        )
    return _tabu_descend_numpy(
        h, indptr, indices, data, x, energies, iterations, tenure,
        record_flips=record_flips,
    )


def _tabu_descend_numpy(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
    energies: np.ndarray,
    iterations: int,
    tenure: int,
    record_flips: list | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched single-flip tabu search over ``(num_restarts, n)`` states.

    Per-replica state: a delta table (energy change per single flip), a
    tabu clock, and the incumbent.  Each step every replica flips its
    best allowed variable — tabu moves are admissible only under the
    aspiration criterion (they would beat the incumbent by more than
    1e-12), and a replica whose moves are all tabu without aspiration
    has its whole row freed, exactly like the seed's single-trajectory
    loop.  ``x`` (int8) and ``energies`` are advanced in place;
    ``record_flips`` (a list, when given) receives the chosen variable
    index per replica for every step — the flip-for-flip evidence the
    equivalence tests compare.

    Returns ``(best_x, best_energies)`` per replica.
    """
    num_restarts, n = x.shape
    fields = local_fields(h, indptr, indices, data, x)
    delta = (1.0 - 2.0 * x) * fields
    energy = np.asarray(energies, dtype=np.float64)
    best_energy = energy.copy()
    best_x = x.copy()
    tabu_until = np.zeros((num_restarts, n), dtype=np.int64)
    replicas = np.arange(num_restarts)
    for step in range(1, iterations + 1):
        allowed = (tabu_until < step) | (
            energy[:, None] + delta < best_energy[:, None] - 1e-12
        )
        stuck = ~allowed.any(axis=1)
        if stuck.any():
            allowed[stuck] = True
        scores = np.where(allowed, delta, np.inf)
        chosen = np.argmin(scores, axis=1)
        if record_flips is not None:
            record_flips.append(chosen.copy())
        sign = 1.0 - 2.0 * x[replicas, chosen]
        x[replicas, chosen] ^= 1
        moved = delta[replicas, chosen]
        energy += moved
        delta[replicas, chosen] = -moved
        starts = indptr[chosen]
        lens = indptr[chosen + 1] - starts
        flat = concat_ranges(starts, lens)
        if flat.size:
            rows = np.repeat(replicas, lens)
            cols = indices[flat]
            # Flat 1-D scatter (indices are unique): much cheaper than a
            # paired two-axis fancy add.
            delta.ravel()[rows * n + cols] += (
                (1.0 - 2.0 * x[rows, cols]) * data[flat] * np.repeat(sign, lens)
            )
        tabu_until[replicas, chosen] = step + tenure
        improved = energy < best_energy - 1e-12
        if improved.any():
            best_energy[improved] = energy[improved]
            best_x[improved] = x[improved]
    return best_x, best_energy
