"""Fleet-shared marked-set table store: mmap segments, crash-safe publish.

The service layer runs every job in its own worker subprocess, so the
per-process :class:`~repro.perf.MarkedSetCache` starts cold on every
request — identical graphs submitted by different tenants re-enumerate
the same ``2^n`` mask space over and over.  This module gives the fleet
one shared tier below the in-process LRU: a directory of mmap-backed
segments, one per ``(structural fingerprint, k)``, that any worker can
**attach** to with zero copying and any worker can **publish** into
after a cold build.

Design constraints, in order:

* **Never a torn read.**  A segment becomes visible only through an
  atomic rename of a fully written, fsynced temp file; a writer
  SIGKILLed mid-publish leaves either the old segment or nothing.
  Readers additionally validate magic bytes, a length-consistent
  header, and a trailer sentinel before trusting a file — a corrupt or
  truncated segment is *rejected* (the caller falls back to local
  enumeration), never partially served.
* **Zero-copy attach.**  The mask partition (``_by_size``) is mapped
  read-only via :class:`numpy.memmap`; attaching costs a header parse
  and an mmap call, not a table copy.  Attached segments are kept in a
  small LRU so long-lived readers don't accumulate mappings for every
  fingerprint they ever saw.
* **Byte identity.**  The serialized arrays are the table's own
  ``_by_size`` / ``_offsets`` buffers verbatim, so an attached table is
  indistinguishable — dtype, order, offsets — from the table the
  publisher built.  Any solve running off a shared hit produces the
  same subset, oracle calls, gate units, and ledger claims as a cold
  solve.

The store never *requires* coordination: publish is idempotent (same
key ⇒ byte-identical content, because tables are pure functions of the
structural fingerprint and ``k``), so concurrent publishers can only
race to install identical bytes and the loser simply skips.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import struct
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from .cache import MarkedSetTable

__all__ = [
    "PUBLISH_KILL_ENV",
    "SHARED_CACHE_ENV",
    "SegmentError",
    "SharedTableStore",
]

#: Worker-subprocess hook: the service sets this to the shared store
#: directory and the runner attaches its job cache to it.
SHARED_CACHE_ENV = "REPRO_SHARED_CACHE_DIR"

#: Chaos hook: SIGKILL the process mid-publish (after the temp segment
#: is written, *before* the atomic rename) on the Nth publish attempt.
#: Exercises the crash-safety contract: readers must see the old
#: segment or nothing, never a torn file.
PUBLISH_KILL_ENV = "REPRO_SHARED_KILL_ON_PUBLISH"

_MAGIC = b"RPROSHM2"
_TRAILER = b"RPROEND."
_ALIGN = 64  # payload alignment, so mmap'd arrays start on a cache line


class SegmentError(ValueError):
    """A segment file failed validation (torn, truncated, or foreign)."""


def _pad(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


_TMP_SEQ = itertools.count()


def _tmp_name(final: Path) -> Path:
    """Unique-per-writer temp path: pid + thread + sequence, so
    concurrent publishers (even threads sharing a pid) never clobber
    each other's in-flight segment."""
    tag = f"{os.getpid()}.{threading.get_ident()}.{next(_TMP_SEQ)}"
    return final.with_name(f".{final.name}.{tag}.tmp")


class SharedTableStore:
    """Cross-process segment store for :class:`MarkedSetTable` partitions.

    Parameters
    ----------
    root:
        Store directory (created if missing).  Typically the service
        workdir's ``shared-cache/`` subdirectory, shared by every
        worker subprocess of a spool run — and by successive service
        restarts against the same workdir.
    max_attached:
        Attached-segment LRU bound: mappings for at most this many keys
        are kept alive; older attachments are dropped (the mmap closes
        when the last table referencing it is garbage collected).
    """

    def __init__(self, root: str | Path, max_attached: int = 8) -> None:
        if max_attached < 1:
            raise ValueError(f"max_attached must be >= 1, got {max_attached}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_attached = max_attached
        self.attaches = 0
        self.publishes = 0
        self.torn_rejected = 0
        self._attached: OrderedDict[str, tuple[int, MarkedSetTable]] = OrderedDict()
        self._publish_attempts = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def key(fingerprint: str, k: int) -> str:
        """Filename-safe store key for ``(fingerprint, k)``."""
        return f"{fingerprint}-k{k}"

    def segment_path(self, fingerprint: str, k: int) -> Path:
        return self.root / f"{self.key(fingerprint, k)}.seg"

    def generation_path(self, fingerprint: str, k: int) -> Path:
        return self.root / f"{self.key(fingerprint, k)}.gen"

    def generation(self, fingerprint: str, k: int) -> int:
        """Published generation for the key (0 when never published)."""
        try:
            return int(self.generation_path(fingerprint, k).read_text())
        except (OSError, ValueError):
            return 0

    # ------------------------------------------------------------------
    # Publish (single-writer protocol: tmp -> fsync -> rename -> gen)
    # ------------------------------------------------------------------
    def publish(
        self,
        fingerprint: str,
        k: int,
        table: MarkedSetTable,
        kernel: str | None = None,
    ) -> bool:
        """Install ``table`` as the segment for ``(fingerprint, k)``.

        Returns True when a segment was written, False when a valid
        segment already exists (the content would be byte-identical —
        tables are pure functions of the key — so the second publisher
        skips).  The write is crash-safe: the full segment is written
        to a uniquely named temp file and fsynced before one atomic
        rename makes it visible, then the generation file is bumped the
        same way.  A SIGKILL at any point leaves the previous state.
        """
        with self._lock:
            return self._publish_locked(fingerprint, k, table, kernel)

    def _publish_locked(self, fingerprint, k, table, kernel) -> bool:
        final = self.segment_path(fingerprint, k)
        if final.exists():
            try:
                self._validate(final, fingerprint, k)
                return False  # identical content is already published
            except (OSError, SegmentError):
                pass  # torn/foreign leftover: overwrite it below
        self._publish_attempts += 1

        by_size = np.ascontiguousarray(table._by_size)
        offsets = np.ascontiguousarray(table._offsets)
        header = {
            "fingerprint": fingerprint,
            "k": int(k),
            "num_vertices": int(table.num_vertices),
            "num_marked": int(by_size.size),
            "offsets_len": int(offsets.size),
            "dtype": str(by_size.dtype),
            "kernel": kernel,
            "generation": self.generation(fingerprint, k) + 1,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("ascii")
        payload_at = _pad(len(_MAGIC) + 8 + len(header_bytes))

        tmp = _tmp_name(final)
        try:
            with open(tmp, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(struct.pack("<Q", len(header_bytes)))
                fh.write(header_bytes)
                fh.write(b"\0" * (payload_at - fh.tell()))
                fh.write(by_size.tobytes())
                fh.write(offsets.tobytes())
                fh.write(_TRAILER)
                fh.flush()
                os.fsync(fh.fileno())
            self._maybe_chaos_kill()
            os.replace(tmp, final)
        finally:
            tmp.unlink(missing_ok=True)
        self._bump_generation(fingerprint, k, header["generation"])
        self.publishes += 1
        return True

    def _bump_generation(self, fingerprint: str, k: int, generation: int) -> None:
        path = self.generation_path(fingerprint, k)
        tmp = _tmp_name(path)
        try:
            with open(tmp, "w", encoding="ascii") as fh:
                fh.write(f"{generation}\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def _maybe_chaos_kill(self) -> None:
        target = os.environ.get(PUBLISH_KILL_ENV)
        if target and self._publish_attempts >= int(target):
            os.kill(os.getpid(), signal.SIGKILL)

    # ------------------------------------------------------------------
    # Attach (zero-copy, validated, LRU-bounded)
    # ------------------------------------------------------------------
    def attach(
        self, fingerprint: str, k: int, num_vertices: int | None = None
    ) -> MarkedSetTable | None:
        """The published table for ``(fingerprint, k)``, or None.

        Never raises on a bad segment: a torn, truncated, or foreign
        file counts toward ``torn_rejected`` and returns None so the
        caller degrades to local enumeration.  Successful attaches are
        cached per generation; a republished key re-attaches.
        """
        with self._lock:
            key = self.key(fingerprint, k)
            generation = self.generation(fingerprint, k)
            cached = self._attached.get(key)
            if cached is not None and cached[0] == generation:
                self._attached.move_to_end(key)
                self.attaches += 1
                return cached[1]
            path = self.segment_path(fingerprint, k)
            try:
                table = self._load(path, fingerprint, k, num_vertices)
            except (OSError, SegmentError):
                if path.exists():
                    self.torn_rejected += 1
                return None
            self._attached[key] = (generation, table)
            self._attached.move_to_end(key)
            while len(self._attached) > self.max_attached:
                self._attached.popitem(last=False)
            self.attaches += 1
            return table

    def _validate(self, path: Path, fingerprint: str, k: int) -> dict:
        """Parse and length-check a segment header; raises SegmentError."""
        size = path.stat().st_size
        with open(path, "rb") as fh:
            magic = fh.read(len(_MAGIC))
            if magic != _MAGIC:
                raise SegmentError(f"{path}: bad magic {magic!r}")
            (header_len,) = struct.unpack("<Q", fh.read(8))
            if header_len > size:
                raise SegmentError(f"{path}: header length overruns file")
            header = json.loads(fh.read(header_len).decode("ascii"))
            payload_at = _pad(len(_MAGIC) + 8 + header_len)
            expected = (
                payload_at
                + 8 * int(header["num_marked"])
                + 8 * int(header["offsets_len"])
                + len(_TRAILER)
            )
            if size != expected:
                raise SegmentError(
                    f"{path}: size {size} != expected {expected} (truncated?)"
                )
            fh.seek(expected - len(_TRAILER))
            if fh.read(len(_TRAILER)) != _TRAILER:
                raise SegmentError(f"{path}: missing trailer sentinel")
        if header["fingerprint"] != fingerprint or int(header["k"]) != k:
            raise SegmentError(
                f"{path}: segment is for ({header['fingerprint']}, "
                f"k={header['k']}), requested ({fingerprint}, k={k})"
            )
        if header.get("dtype") != "int64":
            raise SegmentError(f"{path}: unsupported dtype {header.get('dtype')!r}")
        header["payload_at"] = payload_at
        return header

    def _load(
        self, path: Path, fingerprint: str, k: int, num_vertices: int | None
    ) -> MarkedSetTable:
        header = self._validate(path, fingerprint, k)
        n = int(header["num_vertices"])
        if num_vertices is not None and n != num_vertices:
            raise SegmentError(
                f"{path}: segment has n={n}, caller expects n={num_vertices}"
            )
        num_marked = int(header["num_marked"])
        payload_at = int(header["payload_at"])
        if num_marked:
            by_size = np.memmap(
                path, dtype=np.int64, mode="r", offset=payload_at,
                shape=(num_marked,),
            )
        else:
            by_size = np.empty(0, dtype=np.int64)
        with open(path, "rb") as fh:
            fh.seek(payload_at + 8 * num_marked)
            raw = fh.read(8 * int(header["offsets_len"]))
        offsets = np.frombuffer(raw, dtype=np.int64)
        return MarkedSetTable.from_partitions(n, by_size, offsets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of published segments currently in the store."""
        return sum(1 for _ in self.root.glob("*.seg"))

    def stats(self) -> dict[str, int]:
        return {
            "attaches": self.attaches,
            "publishes": self.publishes,
            "torn_rejected": self.torn_rejected,
            "attached_entries": len(self._attached),
            "segments": len(self),
        }
