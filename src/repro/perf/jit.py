"""Numba JIT kernel tier (optional — gated on ``import numba``).

``@njit`` transcriptions of the same three loops the C tier compiles
(:mod:`repro.perf.cext`); like it, the float kernels replay the NumPy
reference's operation sequence step for step, and the backend
self-validates against the reference on first load.  Masks stay in
``int64`` throughout (``n <= 26`` so every mask fits) — this sidesteps
NumPy's ``uint64 (op) int64 -> float64`` promotion rule, which Numba
inherits.

This module imports cleanly without ``numba`` installed; constructing
:class:`NumbaKernels` then raises
:class:`~repro.perf.kernels.KernelUnavailable` and the registry falls
back (the declared dependency floor gains nothing).
"""

from __future__ import annotations

import numpy as np

from .kernels import KernelBackend, KernelUnavailable

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit
except ImportError:  # pragma: no cover
    _njit = None

__all__ = ["NumbaKernels"]


def _build_kernels():  # pragma: no cover - requires numba
    njit = _njit

    @njit(cache=False)
    def popcount64(x):
        x = x - ((x >> 1) & 0x5555555555555555)
        x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
        x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0F
        return (x * 0x0101010101010101) >> 56

    @njit(cache=False)
    def enumerate_chunk(adj, verts, limit, start, stop, out_masks, out_sizes):
        count = 0
        for m in range(start, stop):
            keep = True
            for i in range(verts.shape[0]):
                if (m >> verts[i]) & 1:
                    if popcount64(m & adj[i]) > limit:
                        keep = False
                        break
            if keep:
                out_masks[count] = m
                out_sizes[count] = popcount64(m)
                count += 1
        return count

    @njit(cache=False)
    def sa_sweep_chunk(
        reads, start, end, sub_indptr, sub_indices, sub_data, h_c, rs_c,
        iptr, icols, ivals, spins_t, uniforms, neg_beta, fields,
    ):
        nc = end - start
        for li in range(nc):
            for r in range(reads):
                fields[li, r] = 0.0
            for jj in range(sub_indptr[li], sub_indptr[li + 1]):
                a = sub_data[jj]
                col = sub_indices[jj]
                for r in range(reads):
                    fields[li, r] += a * spins_t[col, r]
            rs = rs_c[li]
            hh = h_c[li]
            for r in range(reads):
                fields[li, r] = (rs - fields[li, r]) * 0.5 + hh
        flips = 0
        for li in range(nc):
            v = start + li
            lo = iptr[li]
            hi = iptr[li + 1]
            for r in range(reads):
                d = spins_t[v, r] * fields[li, r]
                if d <= 0.0:
                    accept = True  # clip -> 0, exp(0) == 1.0, u < 1 always
                else:
                    if d > 700.0:
                        d = 700.0
                    accept = uniforms[v, r] < np.exp(d * neg_beta)
                if accept:
                    flips += 1
                    tr = spins_t[v, r]
                    for jj in range(lo, hi):
                        fields[icols[jj], r] += ivals[jj] * tr
                    spins_t[v, r] = -tr
        return flips

    @njit(cache=False)
    def sa_sweep_plan(
        reads, nchunks, bounds, ip_flat, ip_off, nz_cols, nz_vals, nz_off,
        h, rs, sp_ptr_flat, sp_ptr_off, sp_cols, sp_vals, sp_nz_off,
        spins_t, uniforms, neg_beta, fields,
    ):
        flips = 0
        for c in range(nchunks):
            start = bounds[c]
            end = bounds[c + 1]
            nc = end - start
            ip = ip_off[c]
            nz = nz_off[c]
            for li in range(nc):
                for r in range(reads):
                    fields[li, r] = 0.0
                for jj in range(ip_flat[ip + li], ip_flat[ip + li + 1]):
                    a = nz_vals[nz + jj]
                    col = nz_cols[nz + jj]
                    for r in range(reads):
                        fields[li, r] += a * spins_t[col, r]
                rs_v = rs[start + li]
                hh = h[start + li]
                for r in range(reads):
                    fields[li, r] = (rs_v - fields[li, r]) * 0.5 + hh
            sp = sp_ptr_off[c]
            sz = sp_nz_off[c]
            for li in range(nc):
                v = start + li
                lo = sp_ptr_flat[sp + li]
                hi = sp_ptr_flat[sp + li + 1]
                for r in range(reads):
                    d = spins_t[v, r] * fields[li, r]
                    if d <= 0.0:
                        accept = True
                    else:
                        if d > 700.0:
                            d = 700.0
                        accept = uniforms[v, r] < np.exp(d * neg_beta)
                    if accept:
                        flips += 1
                        tr = spins_t[v, r]
                        for jj in range(lo, hi):
                            fields[sp_cols[sz + jj], r] += sp_vals[sz + jj] * tr
                        spins_t[v, r] = -tr
        return flips

    @njit(cache=False)
    def tabu_descend(
        indptr, indices, data, h, x, energy, iterations, tenure,
        record, has_record, best_x, best_energy,
    ):
        num_restarts, n = x.shape
        delta = np.empty((num_restarts, n), dtype=np.float64)
        tabu_until = np.zeros((num_restarts, n), dtype=np.int64)
        for r in range(num_restarts):
            for j in range(n):
                f = 0.0
                for jj in range(indptr[j], indptr[j + 1]):
                    f += data[jj] * x[r, indices[jj]]
                f += h[j]
                delta[r, j] = (1.0 - 2.0 * x[r, j]) * f
        for step in range(1, iterations + 1):
            for r in range(num_restarts):
                aspiration = best_energy[r] - 1e-12
                chosen = -1
                best_score = 0.0
                for j in range(n):
                    if tabu_until[r, j] < step or energy[r] + delta[r, j] < aspiration:
                        if chosen < 0 or delta[r, j] < best_score:
                            chosen = j
                            best_score = delta[r, j]
                if chosen < 0:
                    chosen = 0
                    best_score = delta[r, 0]
                    for j in range(1, n):
                        if delta[r, j] < best_score:
                            chosen = j
                            best_score = delta[r, j]
                if has_record:
                    record[step - 1, r] = chosen
                sign = 1.0 - 2.0 * x[r, chosen]
                x[r, chosen] ^= 1
                moved = delta[r, chosen]
                energy[r] += moved
                delta[r, chosen] = -moved
                for jj in range(indptr[chosen], indptr[chosen + 1]):
                    col = indices[jj]
                    delta[r, col] += ((1.0 - 2.0 * x[r, col]) * data[jj]) * sign
                tabu_until[r, chosen] = step + tenure
                if energy[r] < best_energy[r] - 1e-12:
                    best_energy[r] = energy[r]
                    for j in range(n):
                        best_x[r, j] = x[r, j]
        return 0

    return enumerate_chunk, sa_sweep_chunk, sa_sweep_plan, tabu_descend


class NumbaKernels(KernelBackend):  # pragma: no cover - requires numba
    """The JIT tier (see module docstring)."""

    name = "numba"

    def __init__(self) -> None:
        if _njit is None:
            raise KernelUnavailable("numba is not installed")
        self._enumerate, self._sa_chunk, self._sa_plan, self._tabu = (
            _build_kernels()
        )
        from .selfcheck import validate_backend

        validate_backend(self)

    # ------------------------------------------------------------------
    def enumerate_chunk(self, adj_masks, limit, start, stop):
        verts = [v for v, am in enumerate(adj_masks) if am.bit_count() > limit]
        adj = np.asarray([adj_masks[v] for v in verts], dtype=np.int64)
        verts_arr = np.asarray(verts, dtype=np.int64)
        span = stop - start
        out_masks = np.empty(span, dtype=np.int64)
        out_sizes = np.empty(span, dtype=np.int64)
        count = self._enumerate(
            adj, verts_arr, limit, start, stop, out_masks, out_sizes
        )
        return (
            out_masks[:count].astype(np.uint64),
            out_sizes[:count].copy(),
        )

    def sa_sweep(self, plan, spins_t, beta, uniforms):
        from .kernels import pack_sweep_plan

        reads = spins_t.shape[1]
        neg_beta = -float(beta)
        spins_t = np.ascontiguousarray(spins_t)
        uniforms = np.ascontiguousarray(uniforms)
        pack = pack_sweep_plan(plan)
        if pack is not None:
            scratch = np.empty((pack.max_chunk, reads), dtype=np.float64)
            return int(
                self._sa_plan(
                    reads, pack.nchunks, pack.bounds,
                    pack.ip_flat, pack.ip_off,
                    pack.nz_cols, pack.nz_vals, pack.nz_off,
                    pack.h, pack.rs,
                    pack.sp_ptr_flat, pack.sp_ptr_off,
                    pack.sp_cols, pack.sp_vals, pack.sp_nz_off,
                    spins_t, uniforms, neg_beta, scratch,
                )
            )
        max_chunk = max((end - start for start, end, *_ in plan), default=0)
        scratch = np.empty((max_chunk, reads), dtype=np.float64)
        flips = 0
        for (
            start, end, _jc, sub_indptr, sub_indices, sub_data,
            h_c, rs_c, iptr, icols, ivals,
        ) in plan:
            flips += self._sa_chunk(
                reads, start, end,
                np.ascontiguousarray(sub_indptr, dtype=np.int64),
                np.ascontiguousarray(sub_indices, dtype=np.int64),
                np.ascontiguousarray(sub_data, dtype=np.float64),
                h_c, rs_c,
                np.asarray(iptr, dtype=np.int64),
                np.ascontiguousarray(icols, dtype=np.int64),
                np.ascontiguousarray(ivals, dtype=np.float64),
                spins_t, uniforms, neg_beta, scratch[: end - start],
            )
        return int(flips)

    def tabu_descend(
        self, h, indptr, indices, data, x, energies, iterations, tenure,
        record_flips=None,
    ):
        num_restarts, _n = x.shape
        energy = np.asarray(energies, dtype=np.float64)
        best_energy = energy.copy()
        best_x = x.copy()
        record = np.zeros(
            (max(iterations, 1), num_restarts), dtype=np.int64
        )
        self._tabu(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(data, dtype=np.float64),
            np.ascontiguousarray(h, dtype=np.float64),
            x, energy, iterations, tenure,
            record, record_flips is not None, best_x, best_energy,
        )
        if record_flips is not None:
            record_flips.extend(record[step].copy() for step in range(iterations))
        return best_x, best_energy
